"""PTX-flavoured pretty printer for kernel functions.

The output is what the paper calls "the PTX code" in Section IV-A — the
artifact whose instructions Table I inventories. It is also used by
``examples/codegen_dump.py`` to let users eyeball the generated fat kernels.
"""

from __future__ import annotations

from .function import KernelFunction
from .instructions import Instruction, Opcode


def format_instruction(instr: Instruction) -> str:
    op = instr.op
    if op is Opcode.EXIT:
        return "exit;"
    if op is Opcode.BRA:
        if instr.pred is None:
            return f"bra {instr.target};"
        neg = "!" if instr.pred_negated else ""
        return f"@{neg}{instr.pred} bra {instr.target}; // else {instr.target_else}"
    if op is Opcode.MOV and instr.special is not None:
        return f"mov.s32 {instr.dst}, {instr.special.value};"
    if op is Opcode.LDPARAM:
        return f"ld.param.{instr.dtype.suffix} {instr.dst}, [{instr.param}];"
    if op is Opcode.TEX:
        x, y = instr.srcs
        return (f"tex.2d.v1.f32 {instr.dst}, [{instr.param}, {{{x}, {y}}}];"
                f" // mode={instr.tex_mode}")
    if op is Opcode.LD:
        return f"ld.global.{instr.dtype.suffix} {instr.dst}, [{instr.srcs[0]}];"
    if op is Opcode.ST:
        return f"st.global.{instr.dtype.suffix} [{instr.srcs[0]}], {instr.srcs[1]};"
    if op is Opcode.LDS:
        return f"ld.shared.{instr.dtype.suffix} {instr.dst}, [{instr.srcs[0]}];"
    if op is Opcode.STS:
        return f"st.shared.{instr.dtype.suffix} [{instr.srcs[0]}], {instr.srcs[1]};"
    if op is Opcode.BAR:
        return "bar.sync 0;"
    if op is Opcode.SETP:
        a, b = instr.srcs
        return f"setp.{instr.cmp.value}.{instr.dtype.suffix} {instr.dst}, {a}, {b};"
    if op is Opcode.SELP:
        a, b, p = instr.srcs
        return f"selp.{instr.dtype.suffix} {instr.dst}, {a}, {b}, {p};"
    if op is Opcode.CVT:
        return (
            f"cvt.{instr.dtype.suffix}.{instr.src_dtype.suffix} "
            f"{instr.dst}, {instr.srcs[0]};"
        )
    srcs = ", ".join(str(s) for s in instr.srcs)
    return f"{op.value}.{instr.dtype.suffix} {instr.dst}, {srcs};"


def print_function(func: KernelFunction, *, annotate: bool = False) -> str:
    """Render the function as PTX-like text.

    With ``annotate=True``, each instruction gets a trailing comment showing
    its ISP region and accounting role — handy when auditing the per-region
    attribution behind the Table I reproduction.
    """
    lines = [f".visible .entry {func.name}("]
    for i, p in enumerate(func.params):
        comma = "," if i + 1 < len(func.params) else ""
        kind = ".ptr " if p.is_pointer else ""
        lines.append(f"    .param .{p.dtype.suffix} {kind}{p.name}{comma}")
    lines.append(")")
    lines.append("{")
    for block in func.blocks:
        lines.append(f"{block.label}:")
        for instr in block:
            text = f"    {format_instruction(instr)}"
            if annotate and (instr.region or instr.role):
                text += f"  // region={instr.region or '-'} role={instr.role or '-'}"
            lines.append(text)
    lines.append("}")
    return "\n".join(lines)
