"""SIMT GPU simulator: devices, occupancy, memory, warp execution, timing.

This package stands in for the paper's GTX680/RTX2080 testbed. See DESIGN.md
("Substitutions") for the fidelity argument: the simulator models exactly the
mechanisms the paper's analysis depends on — dynamic instruction counts per
region, register-limited occupancy, and wave scheduling. A device zoo
(``DEVICES``) extends the paper's pair with Pascal/Ampere NVIDIA parts and
wave64 AMD-like specs; the warp width is a ``DeviceSpec`` field threaded
through the whole stack.
"""

from .cost import CostTable, cost_table_for
from .device import (
    DEVICES,
    GTX680,
    GTX1080,
    MI100,
    RTX2080,
    RTX3080,
    VEGA64,
    DeviceSpec,
    get_device,
)
from .launch import LaunchConfig, execute_block, launch
from .memory import GlobalMemory, MemoryError_, transactions_for
from .occupancy import OccupancyResult, compute_occupancy, registers_per_block
from .profiler import EVENT_NAMES, BlockProfile, Profiler
from .simt import SimtError, WarpContext, WarpExecutor
from .timing import LAUNCH_OVERHEAD_US, TimingEstimate, estimate_time

__all__ = [
    "DEVICES",
    "EVENT_NAMES",
    "GTX680",
    "GTX1080",
    "MI100",
    "RTX2080",
    "RTX3080",
    "VEGA64",
    "WARP_SIZE",
    "LAUNCH_OVERHEAD_US",
    "BlockProfile",
    "CostTable",
    "DeviceSpec",
    "GlobalMemory",
    "LaunchConfig",
    "MemoryError_",
    "OccupancyResult",
    "Profiler",
    "SimtError",
    "TimingEstimate",
    "WarpContext",
    "WarpExecutor",
    "compute_occupancy",
    "cost_table_for",
    "estimate_time",
    "execute_block",
    "get_device",
    "launch",
    "registers_per_block",
    "transactions_for",
]


def __getattr__(name: str):
    if name == "WARP_SIZE":
        # Deprecated alias — kept so `from repro.gpu import WARP_SIZE` still
        # works. The device module's shim owns the DeprecationWarning.
        from . import device

        return device.WARP_SIZE
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
