"""Ablation — offset-sign filtering of border checks.

The paper's Listing 1 applies the full border handling to every read in the
window. A compiler can additionally prove that a tap with ``dx >= 0`` can
never cross the left border and elide that check (`sign_filter=True` in our
compiler). This ablation measures how much of ISP's advantage that static
optimization already captures — i.e. how much headroom ISP has left when the
baseline is smarter.

Expected: sign filtering cuts the naive variant's check cost roughly in half
(each tap checks ~2 of 4 sides), so the ISP-over-naive gain shrinks — and
for a cheap 3x3 clamp kernel at a small size it can flip below 1.0: the
dispatch chain then costs more than the remaining checks. This reinforces
the paper's central caveat that "it is not always beneficial to partition
the iteration space", and shows the result is sensitive to how smart the
baseline compiler already is.
"""

from __future__ import annotations

from repro.compiler import Variant, compile_kernel, trace_kernel
from repro.dsl import Boundary
from repro.filters import gaussian
from repro.gpu import GTX680, GlobalMemory, Profiler, cost_table_for, launch
from repro.reporting import format_table

SIZE = 256
BLOCK = (32, 4)
BOUNDARY = Boundary.CLAMP


def dynamic_instructions(desc, variant, sign_filter):
    ck = compile_kernel(desc, variant=variant, block=BLOCK, device=GTX680,
                        sign_filter=sign_filter)
    mem = GlobalMemory(1 << 22)
    bases = {}
    for acc in desc.accessors:
        if acc.image.name not in bases:
            bases[acc.image.name] = mem.alloc(SIZE * SIZE * 4)
    bases[desc.output_name] = mem.alloc(SIZE * SIZE * 4)
    prof = Profiler(cost_table_for(GTX680))
    launch(ck.func, ck.launch_config, mem, ck.param_values(bases), prof)
    return prof.warp_instructions


def build():
    pipe = gaussian.build_pipeline(SIZE, SIZE, BOUNDARY)
    desc = trace_kernel(pipe.kernels[0])
    counts = {}
    for sign_filter in (False, True):
        for variant in (Variant.NAIVE, Variant.ISP):
            counts[(sign_filter, variant)] = dynamic_instructions(
                desc, variant, sign_filter
            )
    rows = []
    for sign_filter in (False, True):
        n = counts[(sign_filter, Variant.NAIVE)]
        i = counts[(sign_filter, Variant.ISP)]
        rows.append([
            "listing-1 (all checks)" if not sign_filter else "sign-filtered",
            n, i, n / i,
        ])
    table = format_table(
        ["baseline", "naive instrs", "isp instrs", "reduction"],
        rows,
        title=f"Ablation: check sign-filtering (gaussian/{BOUNDARY.value}, "
              f"{SIZE}x{SIZE}, full-grid dynamic warp instructions)",
    )
    return counts, table


def test_ablation_sign_filter(benchmark, report):
    counts, table = benchmark.pedantic(build, rounds=1, iterations=1)
    report("ablation_sign_filter", table)

    # Sign filtering helps the naive baseline substantially...
    assert counts[(True, Variant.NAIVE)] < counts[(False, Variant.NAIVE)]
    # ...and shrinks (but does not erase) ISP's instruction reduction.
    red_plain = counts[(False, Variant.NAIVE)] / counts[(False, Variant.ISP)]
    red_filtered = counts[(True, Variant.NAIVE)] / counts[(True, Variant.ISP)]
    assert red_filtered < red_plain
    # Against the Listing-1 baseline, ISP reduces instructions; against the
    # sign-filtered baseline the residual may flip slightly below 1.0 (the
    # dispatch chain costs more than the few remaining clamp checks) but the
    # regression stays bounded by that overhead.
    assert red_plain > 1.0
    assert red_filtered > 0.85
