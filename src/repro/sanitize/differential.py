"""Cross-variant differential verification against the golden reference.

Every execution path of the repo — naive / ISP / warp-grained ISP on the
SIMT simulator, naive / ISP on the vectorized host executor — must produce
**bit-identical** float32 output for a convolution, because all paths
accumulate taps row-major in float32 exactly like
:func:`repro.filters.reference.correlate`.  This module exploits that: it
runs an adversarial corpus of *tiny images times large windows* (the regime
where every border mapping executes deep excursions, the exact conditions
under which the out-of-bounds Mirror mapping corrupted pixels) through every
variant and compares with ``np.array_equal``.

A mismatch is reported with the first differing pixel; a crash (simulated
memory trap, vectorized bounds assertion) is reported as a violation of the
same case — either way the harness never aborts mid-corpus.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Iterable, Optional

import numpy as np

from ..compiler.isp import Variant
from ..dsl import (
    Accessor,
    Boundary,
    BoundaryCondition,
    Image,
    IterationSpace,
    Kernel,
    Mask,
)
from ..dsl.pipeline import Pipeline
from ..filters.reference import correlate

#: image sizes x window half-extents exercised by default.  Half-extents are
#: taken per-size as ``min(he, 2 * size + 1)`` and deduplicated, so every
#: size is also paired with a window more than twice its own extent — the
#: "small images computed using a large filter window" case the paper calls
#: out, and the one the old Mirror lowering got wrong.
DEFAULT_SIZES = (1, 2, 3, 5, 8)
DEFAULT_HALF_EXTENTS = (1, 2, 3, 7, 99)
DEFAULT_PATTERNS = (
    Boundary.CLAMP,
    Boundary.MIRROR,
    Boundary.REPEAT,
    Boundary.CONSTANT,
)
DEFAULT_SIMT_VARIANTS = (Variant.NAIVE, Variant.ISP, Variant.ISP_WARP)
DEFAULT_VEC_VARIANTS = ("naive", "isp")


class _ConvKernel(Kernel):
    def __init__(self, iter_space, acc, mask, kernel_name):
        super().__init__(iter_space)
        self.acc = self.add_accessor(acc)
        self.mask = mask
        self._name = kernel_name

    @property
    def name(self) -> str:
        return self._name

    def kernel(self):
        return self.convolve(self.mask, self.acc)


def make_conv_pipeline(
    width: int,
    height: int,
    boundary: Boundary,
    mask: np.ndarray,
    constant: float = 0.0,
    name: str = "diffconv",
) -> Pipeline:
    """One-kernel convolution pipeline reading ``inp``, writing ``out``."""
    inp = Image(width, height, "inp")
    out = Image(width, height, "out")
    acc = Accessor(BoundaryCondition(inp, boundary, constant))
    kernel = _ConvKernel(IterationSpace(out), acc, Mask(mask), name)
    return Pipeline(name, [kernel])


@dataclasses.dataclass(frozen=True)
class Mismatch:
    """One variant disagreeing with (or crashing against) the reference."""

    path: str  # e.g. "simt/isp_warp", "vectorized/naive"
    boundary: str
    width: int
    height: int
    half_extent: int
    message: str

    def __str__(self) -> str:
        return (
            f"{self.path} {self.boundary} {self.width}x{self.height} "
            f"he={self.half_extent}: {self.message}"
        )


@dataclasses.dataclass
class DifferentialReport:
    cases: int = 0
    comparisons: int = 0
    mismatches: list[Mismatch] = dataclasses.field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def summary(self) -> str:
        status = "ok" if self.ok else f"{len(self.mismatches)} mismatch(es)"
        return (
            f"differential: {self.cases} cases, "
            f"{self.comparisons} variant comparisons: {status}"
        )


def _compare(expected: np.ndarray, actual: np.ndarray) -> Optional[str]:
    if np.array_equal(expected, actual):
        return None
    diff = expected != actual
    # NaN != NaN: only count positions where the values genuinely differ.
    both_nan = np.isnan(expected) & np.isnan(actual)
    diff &= ~both_nan
    if not diff.any():
        return None
    y, x = np.argwhere(diff)[0]
    return (
        f"{int(diff.sum())} pixel(s) differ; first at ({int(x)}, {int(y)}): "
        f"expected {expected[y, x]!r}, got {actual[y, x]!r}"
    )


def run_differential(
    *,
    sizes: Iterable[int] = DEFAULT_SIZES,
    half_extents: Iterable[int] = DEFAULT_HALF_EXTENTS,
    patterns: Iterable[Boundary] = DEFAULT_PATTERNS,
    simt_variants: Iterable[Variant] = DEFAULT_SIMT_VARIANTS,
    vectorized_variants: Iterable[str] = DEFAULT_VEC_VARIANTS,
    block: tuple[int, int] = (32, 4),
    constant: float = 1.25,
    shadow: bool = True,
    seed: int = 20210521,
) -> DifferentialReport:
    """Run every variant over the adversarial corpus vs the reference.

    With ``shadow=True`` the SIMT runs use shadow-OOB memory and the
    vectorized runs use canary-padded images, so a silent out-of-bounds
    access is caught even when it happens to produce the right value.
    """
    from ..runtime.executor import run_pipeline_simt
    from ..runtime.vectorized import run_pipeline_vectorized
    from .shadow import check_pipeline_simt, check_pipeline_vectorized

    rng = np.random.default_rng(seed)
    report = DifferentialReport()
    for size, he_req, boundary in itertools.product(
        sorted(set(sizes)), sorted(set(half_extents)), patterns
    ):
        he = min(he_req, 2 * size + 1)
        if he != he_req and he in half_extents:
            continue  # the clipped extent is its own corpus entry
        w = h = size
        mask = rng.uniform(0.25, 1.0, (2 * he + 1, 2 * he + 1)).astype(np.float32)
        src = rng.uniform(-1.0, 1.0, (h, w)).astype(np.float32)
        expected = correlate(src, mask, boundary, constant)
        pipe = make_conv_pipeline(w, h, boundary, mask, constant)
        report.cases += 1

        for variant in simt_variants:
            path = f"simt/{variant.value}"
            report.comparisons += 1
            try:
                if shadow:
                    sr = check_pipeline_simt(
                        pipe, variant=variant, block=block, inputs={"inp": src}
                    )
                    if not sr.ok:
                        _record(report, path, boundary, w, h, he, sr.violations[0])
                        continue
                    actual = sr.images["out"]
                else:
                    actual = run_pipeline_simt(
                        pipe, variant=variant, block=block, inputs={"inp": src}
                    ).images["out"]
            except Exception as exc:  # noqa: BLE001 — corpus must not abort
                _record(report, path, boundary, w, h, he, f"crash: {exc}")
                continue
            msg = _compare(expected, actual)
            if msg:
                _record(report, path, boundary, w, h, he, msg)

        for vec in vectorized_variants:
            path = f"vectorized/{vec}"
            report.comparisons += 1
            try:
                if shadow:
                    sr = check_pipeline_vectorized(
                        pipe, variant=vec, inputs={"inp": src}
                    )
                    if not sr.ok:
                        _record(report, path, boundary, w, h, he, sr.violations[0])
                        continue
                    actual = sr.images["out"]
                else:
                    actual = run_pipeline_vectorized(
                        pipe, {"inp": src}, variant=vec
                    )["out"]
            except Exception as exc:  # noqa: BLE001
                _record(report, path, boundary, w, h, he, f"crash: {exc}")
                continue
            msg = _compare(expected, actual)
            if msg:
                _record(report, path, boundary, w, h, he, msg)
    return report


def _record(
    report: DifferentialReport,
    path: str,
    boundary: Boundary,
    w: int,
    h: int,
    he: int,
    message: str,
) -> None:
    report.mismatches.append(
        Mismatch(
            path=path,
            boundary=boundary.value,
            width=w,
            height=h,
            half_extent=he,
            message=message,
        )
    )
