"""Dynamic execution counters.

The profiler is the simulator's NVProf: it observes every executed warp
instruction and aggregates

* dynamic counts by PTX keyword (the unit of the paper's Table I),
* counts by ISP region tag and by accounting role (check/switch/kernel),
* per-block totals (block classes feed representative-block scaling),
* memory transactions (coalescing) and divergence events,
* architectural event counters in the style of a simulated machine's
  event-counter file: branch divergences, memory-transaction replays,
  coalesced vs scattered accesses, and watchdog stalls — kept globally,
  per block, and per ISP region (see ``docs/devices.md``),
* cost-weighted issue cycles when a :class:`~repro.gpu.cost.CostTable` is
  attached.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from typing import Optional

from ..ir.instructions import Instruction, Opcode
from .cost import CostTable, category_of

#: Architectural event names, in a stable reporting order. Every consumer
#: (trace spans, Prometheus, the device regression matrix) uses these keys.
EVENT_NAMES = (
    "branch_divergence",   # a warp's branch split its active mask
    "mem_replay",          # extra transactions beyond the first per access
    "coalesced_access",    # global-memory access serviced by 1 transaction
    "scattered_access",    # global-memory access needing >1 transaction
    "watchdog_stall",      # warp paused to poll the host abort watchdog
    "smem_load",           # warp-level shared-memory load (lds)
    "smem_store",          # warp-level shared-memory store (sts)
    "lds_bank_conflict",   # shared-access replays: distinct words in one bank
)


@dataclasses.dataclass
class BlockProfile:
    """Counters for a single executed threadblock.

    ``by_category`` holds device-independent cost-category counts
    (:func:`repro.gpu.cost.category_of`), so a single profiled block can be
    priced on any device's cost table via :meth:`cycles_on`.
    """

    block_idx: tuple[int, int]
    block_class: Optional[str] = None
    warp_instructions: int = 0
    thread_instructions: int = 0
    issue_cycles: float = 0.0
    mem_transactions: int = 0
    divergences: int = 0
    by_keyword: Counter = dataclasses.field(default_factory=Counter)
    by_category: Counter = dataclasses.field(default_factory=Counter)
    #: warp instructions by ISP region tag / accounting role — these make a
    #: representative block regionally scalable (repro.trace.profile lifts
    #: them into whole-grid region profiles via class block counts, Eq. 8)
    by_region: Counter = dataclasses.field(default_factory=Counter)
    by_role: Counter = dataclasses.field(default_factory=Counter)
    #: architectural events of this block (keys from :data:`EVENT_NAMES`)
    events: Counter = dataclasses.field(default_factory=Counter)

    def cycles_on(self, table: CostTable) -> float:
        """Issue cycles of this block under a specific device cost table."""
        cycles = sum(n * table.rate(cat) for cat, n in self.by_category.items())
        cycles += self.mem_transactions * table.mem_transaction
        cycles += self.divergences * table.divergence_penalty
        return cycles

    def mem_cycles_on(self, table: CostTable) -> float:
        """Memory-issue share of :meth:`cycles_on` (latency-hiding proxy)."""
        return (
            self.by_category.get("mem", 0) * table.mem_issue
            + self.mem_transactions * table.mem_transaction
        )


class Profiler:
    """Accumulates dynamic statistics for one or more launches."""

    def __init__(self, cost_table: Optional[CostTable] = None):
        self.cost_table = cost_table
        self.warp_instructions = 0
        self.thread_instructions = 0
        self.issue_cycles = 0.0
        self.mem_transactions = 0
        self.divergent_branches = 0
        self.by_keyword: Counter = Counter()
        self.by_region: dict[str, Counter] = {}
        self.by_role: dict[str, Counter] = {}
        #: architectural events, globally and per ISP region tag
        self.events: Counter = Counter()
        self.events_by_region: dict[str, Counter] = {}
        self.block_profiles: list[BlockProfile] = []
        self._current: Optional[BlockProfile] = None

    # ------------------------------------------------------------- block scope

    def begin_block(
        self, block_idx: tuple[int, int], block_class: Optional[str] = None
    ) -> None:
        self._current = BlockProfile(block_idx=block_idx, block_class=block_class)

    def end_block(self) -> BlockProfile:
        if self._current is None:
            raise RuntimeError("end_block without begin_block")
        done, self._current = self._current, None
        self.block_profiles.append(done)
        return done

    # ----------------------------------------------------------------- events

    def on_instruction(
        self, instr: Instruction, active_lanes: int, transactions: int = 0
    ) -> None:
        """Record one warp-level execution of ``instr``."""
        keyword = instr.keyword
        self.warp_instructions += 1
        self.thread_instructions += active_lanes
        self.by_keyword[keyword] += 1
        region = instr.region or "(shared)"
        self.by_region.setdefault(region, Counter())[keyword] += 1
        role = instr.role or "(untagged)"
        self.by_role.setdefault(role, Counter())[keyword] += 1

        cycles = 0.0
        if self.cost_table is not None:
            cycles = self.cost_table.issue_cost(instr)
            if instr.op in (Opcode.LD, Opcode.ST):
                cycles += self.cost_table.mem_transaction * transactions
            self.issue_cycles += cycles
        if transactions:
            self.mem_transactions += transactions
            if transactions == 1:
                self._event("coalesced_access", region)
            else:
                self._event("scattered_access", region)
                self._event("mem_replay", region, transactions - 1)

        blk = self._current
        if blk is not None:
            blk.warp_instructions += 1
            blk.thread_instructions += active_lanes
            blk.by_keyword[keyword] += 1
            blk.by_category[category_of(instr)] += 1
            blk.by_region[region] += 1
            blk.by_role[role] += 1
            blk.issue_cycles += cycles
            blk.mem_transactions += transactions

    def _event(self, name: str, region: Optional[str] = None, n: int = 1) -> None:
        self.events[name] += n
        if region is not None:
            self.events_by_region.setdefault(region, Counter())[name] += n
        if self._current is not None:
            self._current.events[name] += n

    def on_shared_access(
        self, instr: Instruction, *, store: bool, conflicts: int = 0
    ) -> None:
        """Record one warp-level shared-memory access.

        ``conflicts`` is the replay count of the bank model: with
        ``warp_size`` banks of one 4-byte word, a warp access replays once
        per *distinct word* beyond the first that lands in the most-loaded
        bank (lanes hitting the same word broadcast for free). Purely
        observational — the cost table prices the instruction itself.
        """
        region = instr.region or "(shared)"
        self._event("smem_store" if store else "smem_load", region)
        if conflicts > 0:
            self._event("lds_bank_conflict", region, conflicts)

    def on_divergence(self, instr: Optional[Instruction] = None) -> None:
        self.divergent_branches += 1
        self._event("branch_divergence",
                    instr.region if instr is not None else None)
        if self._current is not None:
            self._current.divergences += 1
        if self.cost_table is not None:
            self.issue_cycles += self.cost_table.divergence_penalty
            if self._current is not None:
                self._current.issue_cycles += self.cost_table.divergence_penalty

    def on_watchdog_poll(self) -> None:
        """The interpreter paused a warp to poll the host abort watchdog."""
        self._event("watchdog_stall")

    # ---------------------------------------------------------------- queries

    @property
    def mem_issue_fraction(self) -> float:
        """Fraction of issue cycles spent on memory ops — the timing model's
        proxy for how latency-sensitive (occupancy-hungry) a kernel is."""
        if not self.issue_cycles:
            return 0.0
        if self.cost_table is None:
            return 0.0
        mem_cycles = 0.0
        for kw in ("ld", "st"):
            mem_cycles += self.by_keyword.get(kw, 0) * self.cost_table.mem_issue
        mem_cycles += self.mem_transactions * self.cost_table.mem_transaction
        return min(1.0, mem_cycles / self.issue_cycles)

    def region_totals(self) -> dict[str, int]:
        return {r: sum(c.values()) for r, c in self.by_region.items()}

    def event_totals(self) -> dict[str, int]:
        """All architectural event counters, zero-filled in stable order."""
        return {name: int(self.events.get(name, 0)) for name in EVENT_NAMES}
