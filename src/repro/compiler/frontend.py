"""Front end: trace a DSL kernel into a compiler-internal description.

The Hipacc front end parses C++ with Clang and walks the AST; our embedded
DSL makes this trivial — calling ``Kernel.kernel()`` *builds* the AST
directly. The front end then validates the kernel and extracts the domain
knowledge Hipacc's ``Analyze`` library gathers (paper Section V-A): window
extent, access set, and per-accessor boundary conditions.
"""

from __future__ import annotations

import dataclasses
import hashlib

from ..dsl.accessor import Accessor
from ..dsl.boundary import Boundary
from ..dsl.expr import BINARY_OPS, UNARY_OPS, BinOp, Const, Expr, PixelAccess, UnOp, walk, wrap
from ..dsl.kernel import Kernel


class FrontendError(Exception):
    """Raised when a user kernel is malformed."""


def canonical_expr(expr: Expr) -> str:
    """Deterministic serialization of an expression tree.

    Two independently-traced kernels that build the same computation produce
    the same string: nodes are labelled in first-visit order (never by
    ``id()``), shared subexpressions serialize once and are referenced as
    ``@<label>`` afterwards — so CSE structure is part of the canonical form.
    """
    labels: dict[int, int] = {}

    def rec(node: Expr) -> str:
        key = id(node)
        if key in labels:
            return f"@{labels[key]}"
        labels[key] = len(labels)
        if isinstance(node, Const):
            return f"c({node.value!r}:{node.dtype.name})"
        if isinstance(node, BinOp):
            return f"({node.op} {rec(node.lhs)} {rec(node.rhs)})"
        if isinstance(node, UnOp):
            return f"({node.op} {rec(node.operand)})"
        if isinstance(node, PixelAccess):
            a = node.accessor
            return (
                f"px({a.image.name}:{a.image.width}x{a.image.height}:"
                f"{a.boundary.value}:{a.constant!r}:{node.dx:+d}{node.dy:+d})"
            )
        raise TypeError(f"cannot serialize {node!r}")

    return rec(expr)


@dataclasses.dataclass
class KernelDescription:
    """Everything the lowering passes need to compile one kernel."""

    name: str
    width: int
    height: int
    expr: Expr
    accessors: list[Accessor]
    #: (hx, hy) — window half-extent across all accesses of all accessors
    extent: tuple[int, int]
    #: accesses grouped per accessor (for analysis/reporting)
    accesses: dict[int, list[PixelAccess]] = dataclasses.field(default_factory=dict)
    output_name: str = "out"

    @property
    def is_point_operator(self) -> bool:
        """True when no access can ever leave the image (no border handling)."""
        return self.extent == (0, 0)

    @property
    def window_size(self) -> tuple[int, int]:
        hx, hy = self.extent
        return 2 * hx + 1, 2 * hy + 1

    @property
    def needs_border_handling(self) -> bool:
        if self.is_point_operator:
            return False
        return any(a.boundary.needs_checks for a in self.accessors)

    def stable_digest(self) -> str:
        """Content hash of the traced kernel (sha256 hex, first 16 bytes).

        Identical for two independent traces of the same kernel and stable
        across processes — unlike ``id()``-derived keys — so it can key
        caches that outlive a single compilation (the serve plan cache).
        Covers everything compilation depends on: the canonical expression
        (which embeds every access's image geometry, boundary pattern and
        constant), the iteration-space geometry, and the output binding.
        """
        accs = ",".join(
            f"{a.image.name}:{a.image.width}x{a.image.height}:"
            f"{a.boundary.value}:{a.constant!r}"
            for a in self.accessors
        )
        payload = "|".join(
            [
                self.name,
                f"{self.width}x{self.height}",
                f"ext{self.extent[0]},{self.extent[1]}",
                f"out:{self.output_name}",
                accs,
                canonical_expr(self.expr),
            ]
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]


def trace_kernel(kernel: Kernel) -> KernelDescription:
    """Run the user's ``kernel()`` and validate the resulting expression."""
    result = kernel.kernel()
    if result is None:
        raise FrontendError(
            f"{kernel.name}: kernel() returned None — return the output expression"
        )
    expr = wrap(result)

    accesses: list[PixelAccess] = []
    for node in walk(expr):
        if isinstance(node, BinOp):
            if node.op not in BINARY_OPS:
                raise FrontendError(f"{kernel.name}: unknown binary op {node.op!r}")
        elif isinstance(node, UnOp):
            if node.op not in UNARY_OPS:
                raise FrontendError(f"{kernel.name}: unknown unary op {node.op!r}")
        elif isinstance(node, PixelAccess):
            accesses.append(node)
        elif isinstance(node, (Const, Expr)) and not isinstance(node, Expr):
            raise FrontendError(f"{kernel.name}: unexpected node {node!r}")

    if not accesses:
        raise FrontendError(f"{kernel.name}: kernel reads no input pixels")

    registered = {id(a) for a in kernel.accessors}
    by_accessor: dict[int, list[PixelAccess]] = {}
    out = kernel.iter_space.output
    for acc_node in accesses:
        acc = acc_node.accessor
        if id(acc) not in registered:
            raise FrontendError(
                f"{kernel.name}: accessor on image {acc.image.name!r} used but "
                "not registered with add_accessor()"
            )
        if acc.image.shape != out.shape:
            raise FrontendError(
                f"{kernel.name}: input {acc.image.name!r} {acc.image.shape} does "
                f"not match output {out.name!r} {out.shape}"
            )
        by_accessor.setdefault(id(acc), []).append(acc_node)
        if acc.boundary is Boundary.UNDEFINED and (acc_node.dx or acc_node.dy):
            raise FrontendError(
                f"{kernel.name}: offset access ({acc_node.dx}, {acc_node.dy}) on "
                f"image {acc.image.name!r} without a boundary condition — "
                "out-of-bounds reads would be undefined behaviour"
            )

    hx = max(abs(a.dx) for a in accesses)
    hy = max(abs(a.dy) for a in accesses)

    return KernelDescription(
        name=kernel.name,
        width=out.width,
        height=out.height,
        expr=expr,
        accessors=list(kernel.accessors),
        extent=(hx, hy),
        accesses=by_accessor,
        output_name=out.name,
    )
