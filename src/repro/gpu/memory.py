"""Simulated global memory.

A flat, byte-addressed memory backed by a single ``uint32`` word array.
All ISA types are 4 bytes, so every access is word-aligned; the simulator
traps misaligned or out-of-range addresses instead of corrupting neighbours —
the exact failure mode border handling exists to prevent (Section I of the
paper: "Accessing unknown memory locations may result in undefined behavior
and lead to corrupted pixels").
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..faults import core as _faults
from ..ir.types import DataType

#: Size of one coalescing segment in bytes (Kepler/Turing L1/L2 line for
#: global accesses). Used by the profiler to count memory transactions.
SEGMENT_BYTES = 128


class MemoryError_(Exception):
    """Out-of-bounds or misaligned simulated memory access."""


class GlobalMemory:
    """Flat simulated device memory with bump allocation.

    With ``shadow=True`` the memory runs in shadow-OOB mode: every allocation
    is recorded and followed by a :data:`SEGMENT_BYTES` redzone, and every
    lane address of a kernel load/store must fall *inside a live allocation*
    — not merely inside the flat memory.  This turns the silent cross-buffer
    reads a real GPU would perform (the "corrupted pixels" failure mode of
    paper Section I) into hard trap, the runtime complement of the static
    bounds sanitizer in :mod:`repro.sanitize`.
    """

    def __init__(self, size_bytes: int = 1 << 26, *, shadow: bool = False):
        if size_bytes % 4:
            raise ValueError("memory size must be a multiple of 4 bytes")
        self._words = np.zeros(size_bytes // 4, dtype=np.uint32)
        # Address 0 is reserved so that a null pointer always traps.
        self._next = 4
        self.shadow = shadow
        self._alloc_bases: list[int] = []
        self._alloc_ends: list[int] = []
        self._alloc_arrays: Optional[tuple[np.ndarray, np.ndarray]] = None

    @property
    def size_bytes(self) -> int:
        return self._words.size * 4

    # ------------------------------------------------------------- allocation

    def alloc(self, nbytes: int, *, align: int = 128) -> int:
        """Reserve ``nbytes`` and return the base byte address."""
        if nbytes <= 0:
            raise ValueError("allocation size must be positive")
        base = ((self._next + align - 1) // align) * align
        end = base + nbytes
        # In shadow mode a redzone separates consecutive allocations so that
        # an overflow of one buffer can never alias the next one's base.
        reserve = end + SEGMENT_BYTES if self.shadow else end
        if reserve > self.size_bytes:
            raise MemoryError_(
                f"out of simulated memory: need {reserve} bytes, have {self.size_bytes}"
            )
        self._next = reserve
        if self.shadow:
            self._alloc_bases.append(base)
            self._alloc_ends.append(end)
            self._alloc_arrays = None
        return base

    def alloc_array(self, shape: tuple[int, ...], dtype: DataType) -> int:
        n = int(np.prod(shape))
        return self.alloc(n * dtype.size_bytes)

    # ------------------------------------------------------- host-side access

    def write_array(self, base: int, array: np.ndarray) -> None:
        """Copy a host array into memory at ``base`` (row-major)."""
        flat = np.ascontiguousarray(array).reshape(-1)
        dtype = _resolve_np(flat.dtype)
        words = flat.view(np.uint32)
        self._check_range(base, words.size * 4)
        self._words[base // 4 : base // 4 + words.size] = words
        del dtype

    def read_array(self, base: int, shape: tuple[int, ...], dtype: DataType) -> np.ndarray:
        n = int(np.prod(shape))
        self._check_range(base, n * 4)
        words = self._words[base // 4 : base // 4 + n]
        return words.view(dtype.numpy_dtype).reshape(shape).copy()

    # ------------------------------------------------------ lane-vector access

    def gather(self, addrs: np.ndarray, mask: np.ndarray, dtype: DataType) -> np.ndarray:
        """Vector load: one value per active lane. Inactive lanes read 0."""
        self._check_lane_addrs(addrs, mask)
        out = np.zeros(addrs.shape, dtype=dtype.numpy_dtype)
        active = addrs[mask] // 4
        out[mask] = self._words[active].view(dtype.numpy_dtype)
        return out

    def scatter(
        self, addrs: np.ndarray, values: np.ndarray, mask: np.ndarray, dtype: DataType
    ) -> None:
        """Vector store for active lanes.

        Duplicate addresses among active lanes follow NumPy fancy-assignment
        order (last write wins) — matching CUDA's "one of the writes is
        guaranteed to land" contract closely enough for these kernels, which
        never write the same pixel twice.
        """
        self._check_lane_addrs(addrs, mask)
        vals = values.astype(dtype.numpy_dtype, copy=False)
        self._words[addrs[mask] // 4] = vals[mask].view(np.uint32)

    # ------------------------------------------------------------- validation

    def _check_range(self, base: int, nbytes: int) -> None:
        if base % 4:
            raise MemoryError_(f"misaligned base address {base:#x}")
        if base < 4 or base + nbytes > self.size_bytes:
            raise MemoryError_(
                f"access [{base:#x}, {base + nbytes:#x}) outside memory "
                f"of {self.size_bytes} bytes"
            )

    def _check_lane_addrs(self, addrs: np.ndarray, mask: np.ndarray) -> None:
        if _faults._current is not None:
            # Fault point: a simulated redzone/OOB trap on an otherwise valid
            # access — exercises the same typed-failure path as a real hit.
            if _faults.fire("gpu.memory.redzone", shadow=self.shadow) is not None:
                raise MemoryError_(
                    "injected fault: shadow redzone hit (gpu.memory.redzone)"
                )
        if not mask.any():
            return
        active = addrs[mask].astype(np.int64)
        bad_align = active % 4 != 0
        if bad_align.any():
            raise MemoryError_(
                f"misaligned lane address {int(active[bad_align][0]):#x}"
            )
        oob = (active < 4) | (active + 4 > self.size_bytes)
        if oob.any():
            raise MemoryError_(
                f"lane address {int(active[oob][0]):#x} out of bounds "
                f"(memory is {self.size_bytes} bytes) — an unhandled border access?"
            )
        if self.shadow and self._alloc_bases:
            if self._alloc_arrays is None:
                self._alloc_arrays = (
                    np.asarray(self._alloc_bases, dtype=np.int64),
                    np.asarray(self._alloc_ends, dtype=np.int64),
                )
            bases, ends = self._alloc_arrays
            idx = np.searchsorted(bases, active, side="right") - 1
            stray = (idx < 0) | (active + 4 > ends[np.maximum(idx, 0)])
            if stray.any():
                addr = int(active[stray][0])
                raise MemoryError_(
                    f"shadow OOB: lane address {addr:#x} is outside every live "
                    f"allocation (redzone or cross-buffer access) — "
                    f"an unhandled border access?"
                )


def transactions_for(addrs: np.ndarray, mask: np.ndarray) -> int:
    """Number of 128-byte coalescing segments touched by the active lanes.

    A perfectly coalesced warp access touches 1 segment; the worst case is one
    per lane. Warp-grained ISP (paper Section V-B) is motivated by keeping
    warps on the efficient path, so the profiler tracks this.
    """
    if not mask.any():
        return 0
    segments = np.unique(addrs[mask].astype(np.int64) // SEGMENT_BYTES)
    return int(segments.size)


def _resolve_np(np_dtype: np.dtype) -> DataType:
    for dt in (DataType.S32, DataType.U32, DataType.F32):
        if dt.numpy_dtype == np_dtype:
            return dt
    raise TypeError(f"unsupported host array dtype {np_dtype}; use int32/uint32/float32")
