"""Device specifications for the simulated GPUs.

The paper evaluates on an Nvidia GTX680 (Kepler GK104, compute capability 3.0)
and an RTX2080 (Turing TU104, compute capability 7.5). The specification
fields below are the public numbers from the CUDA programming guide's
"Compute Capabilities" tables — exactly the inputs the CUDA occupancy
calculator uses, plus a few scheduling parameters consumed by the timing model
(:mod:`repro.gpu.timing`).

Beyond the paper's pair, the zoo carries a Pascal- and an Ampere-class NVIDIA
part and two wave64 AMD-like parts (GCN5 and CDNA generations). Lappi et al.
(arXiv:2406.08923) show border-handling and autotuning tradeoffs flip between
vendors; the ``warp_size`` field is what lets the whole stack — occupancy,
cost/timing, the SIMT interpreter, and warp-grained ISP codegen — follow the
device instead of a baked-in 32.
"""

from __future__ import annotations

import dataclasses
import warnings

#: Deprecated module constant; kept only for old imports. New code must use
#: ``DeviceSpec.warp_size`` — see the module ``__getattr__`` shim below.
_DEFAULT_WARP_SIZE = 32


@dataclasses.dataclass(frozen=True)
class DeviceSpec:
    """Static description of a GPU, sufficient for occupancy + timing.

    Attributes
    ----------
    name / arch / compute_capability:
        Identification.
    sm_count:
        Number of streaming multiprocessors (compute units on AMD).
    max_warps_per_sm / max_blocks_per_sm / max_threads_per_block:
        Hardware scheduler limits ("warp" reads "wavefront" on AMD).
    registers_per_sm:
        Size of the SM register file (32-bit registers).
    max_registers_per_thread:
        Per-thread architectural cap; exceeding it forces spills to local
        memory (CC 3.0: 63, CC 7.5: 255). The paper notes Turing's larger
        register budget is why its model saw no occupancy drop there.
    register_alloc_unit:
        Register-file allocation granularity (registers, per warp).
    warp_alloc_granularity:
        Warps per block are rounded up to a multiple of this for allocation.
    clock_mhz:
        Core clock, used only to convert cycles to (pseudo) seconds.
    issue_width:
        Independent warp-instructions an SM can issue per cycle across its
        schedulers (Kepler SMX: 4 schedulers dual-issue ≈ 6 effective for
        mixed code; Turing SM: 4 schedulers single-issue = 4).
    latency_hiding_warps:
        Resident warps per SM needed to fully hide ALU latency for a purely
        arithmetic kernel; the per-kernel memory fraction raises the
        requirement (see :mod:`repro.gpu.timing`).
    mem_latency_warps:
        Additional warps needed at 100% memory-issue fraction.
    mem_bandwidth_gbs:
        Peak global-memory bandwidth in GB/s; used to price the memory copy
        of the padding baseline (paper Section I: padding requires "additional
        memory copy, which is costly, particularly for ... GPUs").
    warp_size:
        SIMT execution width in lanes: 32 on every NVIDIA generation
        modelled here, 64 on the AMD GCN/CDNA wavefront parts. Threads per
        warp, strip width of warp-grained ISP, and the coalescing window all
        scale with it.
    """

    name: str
    arch: str
    compute_capability: tuple[int, int]
    sm_count: int
    max_warps_per_sm: int
    max_blocks_per_sm: int
    max_threads_per_block: int
    registers_per_sm: int
    max_registers_per_thread: int
    register_alloc_unit: int
    warp_alloc_granularity: int
    clock_mhz: float
    issue_width: float
    latency_hiding_warps: float
    mem_latency_warps: float
    mem_bandwidth_gbs: float = 200.0
    #: shared memory per SM (bytes) — limits resident blocks for the
    #: tile-staging kernel variants
    shared_mem_per_sm: int = 49152
    #: shared-memory allocation granularity (bytes)
    shared_alloc_unit: int = 256
    #: SIMT width in lanes (32 = NVIDIA warp, 64 = AMD wavefront)
    warp_size: int = 32

    def __post_init__(self):
        if self.warp_size <= 0 or self.warp_size & (self.warp_size - 1):
            raise ValueError(
                f"warp_size must be a positive power of two, got {self.warp_size}"
            )

    @property
    def max_threads_per_sm(self) -> int:
        return self.max_warps_per_sm * self.warp_size

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name} ({self.arch}, CC {self.compute_capability[0]}.{self.compute_capability[1]})"


#: Nvidia GTX680 — Kepler GK104, CC 3.0 (paper's first evaluation GPU).
GTX680 = DeviceSpec(
    name="GTX680",
    arch="Kepler",
    compute_capability=(3, 0),
    sm_count=8,
    max_warps_per_sm=64,
    max_blocks_per_sm=16,
    max_threads_per_block=1024,
    registers_per_sm=65536,
    max_registers_per_thread=63,
    register_alloc_unit=256,
    warp_alloc_granularity=4,
    clock_mhz=1006.0,
    issue_width=6.0,
    latency_hiding_warps=30.0,
    mem_latency_warps=30.0,
    mem_bandwidth_gbs=192.2,
    shared_mem_per_sm=49152,
    shared_alloc_unit=256,
    warp_size=32,
)

#: Nvidia GTX1080 — Pascal GP104, CC 6.1 (one generation past the paper).
GTX1080 = DeviceSpec(
    name="GTX1080",
    arch="Pascal",
    compute_capability=(6, 1),
    sm_count=20,
    max_warps_per_sm=64,
    max_blocks_per_sm=32,
    max_threads_per_block=1024,
    registers_per_sm=65536,
    max_registers_per_thread=255,
    register_alloc_unit=256,
    warp_alloc_granularity=4,
    clock_mhz=1607.0,
    issue_width=5.0,
    latency_hiding_warps=16.0,
    mem_latency_warps=20.0,
    mem_bandwidth_gbs=320.3,
    shared_mem_per_sm=98304,
    shared_alloc_unit=256,
    warp_size=32,
)

#: Nvidia RTX2080 — Turing TU104, CC 7.5 (paper's second evaluation GPU).
RTX2080 = DeviceSpec(
    name="RTX2080",
    arch="Turing",
    compute_capability=(7, 5),
    sm_count=46,
    max_warps_per_sm=32,
    max_blocks_per_sm=16,
    max_threads_per_block=1024,
    registers_per_sm=65536,
    max_registers_per_thread=255,
    register_alloc_unit=256,
    warp_alloc_granularity=4,
    clock_mhz=1515.0,
    issue_width=4.0,
    latency_hiding_warps=10.0,
    mem_latency_warps=14.0,
    mem_bandwidth_gbs=448.0,
    shared_mem_per_sm=65536,
    shared_alloc_unit=256,
    warp_size=32,
)

#: Nvidia RTX3080 — Ampere GA102, CC 8.6.
RTX3080 = DeviceSpec(
    name="RTX3080",
    arch="Ampere",
    compute_capability=(8, 6),
    sm_count=68,
    max_warps_per_sm=48,
    max_blocks_per_sm=16,
    max_threads_per_block=1024,
    registers_per_sm=65536,
    max_registers_per_thread=255,
    register_alloc_unit=256,
    warp_alloc_granularity=4,
    clock_mhz=1710.0,
    issue_width=4.0,
    latency_hiding_warps=8.0,
    mem_latency_warps=12.0,
    mem_bandwidth_gbs=760.3,
    shared_mem_per_sm=102400,
    shared_alloc_unit=128,
    warp_size=32,
)

#: AMD Vega 64 — GCN5, wave64. ``compute_capability`` carries the GFX ISA
#: level in the NVIDIA-shaped field (gfx9.0). A CU holds 4 SIMD16 units,
#: each with 10 wavefront slots → 40 resident waves of 64 lanes per CU.
VEGA64 = DeviceSpec(
    name="VEGA64",
    arch="GCN5",
    compute_capability=(9, 0),
    sm_count=64,
    max_warps_per_sm=40,
    max_blocks_per_sm=16,
    max_threads_per_block=1024,
    registers_per_sm=65536,
    max_registers_per_thread=255,
    register_alloc_unit=256,
    warp_alloc_granularity=1,
    clock_mhz=1546.0,
    issue_width=4.0,
    latency_hiding_warps=16.0,
    mem_latency_warps=24.0,
    mem_bandwidth_gbs=483.8,
    shared_mem_per_sm=65536,
    shared_alloc_unit=512,
    warp_size=64,
)

#: AMD Instinct MI100 — CDNA, wave64 (gfx9.08).
MI100 = DeviceSpec(
    name="MI100",
    arch="CDNA",
    compute_capability=(9, 8),
    sm_count=120,
    max_warps_per_sm=40,
    max_blocks_per_sm=16,
    max_threads_per_block=1024,
    registers_per_sm=65536,
    max_registers_per_thread=255,
    register_alloc_unit=256,
    warp_alloc_granularity=1,
    clock_mhz=1502.0,
    issue_width=4.0,
    latency_hiding_warps=12.0,
    mem_latency_warps=20.0,
    mem_bandwidth_gbs=1228.8,
    shared_mem_per_sm=65536,
    shared_alloc_unit=512,
    warp_size=64,
)

#: Registry used by the benchmark harness and the cross-device matrix.
DEVICES: dict[str, DeviceSpec] = {
    d.name: d for d in (GTX680, GTX1080, RTX2080, RTX3080, VEGA64, MI100)
}


def get_device(name: str) -> DeviceSpec:
    try:
        return DEVICES[name]
    except KeyError:
        raise KeyError(
            f"unknown device {name!r}; available: {sorted(DEVICES)}"
        ) from None


def __getattr__(name: str):
    if name == "WARP_SIZE":
        warnings.warn(
            "repro.gpu.device.WARP_SIZE is deprecated: warp width is a "
            "DeviceSpec field now; use device.warp_size",
            DeprecationWarning,
            stacklevel=2,
        )
        return _DEFAULT_WARP_SIZE
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
