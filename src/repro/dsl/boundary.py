"""Border handling patterns and boundary conditions.

The four patterns of the paper's Figure 2 / Listing 1:

* ``CLAMP``  — return the nearest valid pixel (a.k.a. duplicate),
* ``MIRROR`` — reflect at the border (symmetric; the edge pixel repeats),
* ``REPEAT`` — tile the image periodically,
* ``CONSTANT`` — a user-defined value for every out-of-bounds pixel,

plus ``UNDEFINED`` for accessors that are statically known to stay in bounds
(point operators), which compile with no checks at all.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Optional

from .image import Image


class Boundary(enum.Enum):
    CLAMP = "clamp"
    MIRROR = "mirror"
    REPEAT = "repeat"
    CONSTANT = "constant"
    UNDEFINED = "undefined"

    @property
    def needs_checks(self) -> bool:
        return self is not Boundary.UNDEFINED


@dataclasses.dataclass(frozen=True)
class BoundaryCondition:
    """Binds a border pattern (and optional constant) to an image read.

    Matches Hipacc's ``BoundaryCondition<float> bound(in, mask, Boundary::
    CLAMP)`` from paper Listing 4. The window extent itself comes from the
    kernel's Domain/Mask at compile time.
    """

    image: Image
    boundary: Boundary
    constant: float = 0.0

    def __post_init__(self):
        if self.boundary is Boundary.CONSTANT and self.constant is None:
            raise ValueError("CONSTANT boundary requires a constant value")


def reference_index(coord: int, size: int, boundary: Boundary) -> Optional[int]:
    """Scalar golden model of the index mapping for one axis.

    Returns the in-bounds source index, or ``None`` for CONSTANT when the
    coordinate falls outside (the caller substitutes the constant). This tiny
    function anchors the whole reproduction: the compiler's generated checks,
    the vectorized executor, and the NumPy references are all tested against
    it (and against each other).
    """
    if size <= 0:
        raise ValueError("size must be positive")
    if 0 <= coord < size:
        return coord
    if boundary is Boundary.UNDEFINED:
        raise IndexError(
            f"out-of-bounds access {coord} with UNDEFINED boundary (size {size})"
        )
    if boundary is Boundary.CLAMP:
        return min(max(coord, 0), size - 1)
    if boundary is Boundary.MIRROR:
        # Symmetric reflection (edge pixel duplicated): ... 2 1 0 | 0 1 2 ...
        # i.e. Listing 1's `if (x < 0) x = -x - 1`, == np.pad mode="symmetric".
        period = 2 * size
        c = coord % period
        if c < 0:
            c += period
        return c if c < size else period - 1 - c
    if boundary is Boundary.REPEAT:
        return coord % size
    if boundary is Boundary.CONSTANT:
        return None
    raise AssertionError(f"unhandled boundary {boundary}")
