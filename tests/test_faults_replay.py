"""Deterministic replay: the same FaultPlan seed reproduces the same run.

The injection core keys every fire/no-fire decision on
``(seed, spec, point, key, occurrence)`` — not on a shared RNG stream — so a
failing chaos run can be replayed exactly: same injected-fault trace, same
per-request outcomes. These tests pin that contract end to end through
:class:`~repro.serve.ServeEngine` (single worker, explicit request ids, so
the occurrence streams line up run to run).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import faults
from repro.faults import FaultPlan, FaultSpec
from repro.serve import Request, ServeEngine

SEEDS = (101, 202, 303)


def make_image(seed: int) -> np.ndarray:
    return np.random.default_rng(seed).random((32, 32)).astype(np.float32)


def make_plan(seed: int) -> FaultPlan:
    return FaultPlan.make(seed, [
        FaultSpec.make("serve.engine.execute", "error", rate=0.35),
        FaultSpec.make("runtime.vectorized.kernel", "error", rate=0.1,
                       max_fires=3),
        FaultSpec.make("serve.cache.evict", "evict", rate=0.25),
    ])


def run_once(seed: int):
    """One engine run under the seeded plan; returns a replayable record."""
    image = make_image(seed)
    apps = ("gaussian", "laplace", "sobel")
    requests = [
        Request(app=apps[i % len(apps)], image=image, pattern="clamp",
                variant="isp", request_id=i)
        for i in range(12)
    ]
    with faults.armed(make_plan(seed)) as injector:
        with ServeEngine(workers=1, batch_size=1, retries=1) as engine:
            responses = engine.run(requests)
        signature = injector.trace_signature()
        counts = dict(injector.counts())
    outcomes = tuple(
        (r.request_id, r.ok, r.error_kind, r.retries, tuple(r.fallbacks))
        for r in responses
    )
    digests = tuple(
        None if r.output is None else r.output.tobytes()
        for r in responses
    )
    return signature, counts, outcomes, digests


@pytest.mark.parametrize("seed", SEEDS)
def test_same_seed_replays_identically(seed):
    first = run_once(seed)
    second = run_once(seed)
    sig1, counts1, outcomes1, digests1 = first
    sig2, counts2, outcomes2, digests2 = second
    assert sig1 == sig2, "injected-fault trace diverged between replays"
    assert counts1 == counts2
    assert outcomes1 == outcomes2, "per-request outcomes diverged"
    assert digests1 == digests2, "successful outputs diverged bit-wise"
    assert counts1, "plan injected nothing; replay test is vacuous"


def test_different_seeds_produce_different_runs():
    runs = {run_once(seed)[0] for seed in SEEDS}
    assert len(runs) == len(SEEDS), "distinct seeds collapsed to one trace"


def test_trace_survives_for_postmortem():
    """After a run the injector trace names every fault in canonical order —
    the artifact a failing chaos seed would be diagnosed from."""
    seed = SEEDS[0]
    with faults.armed(make_plan(seed)) as injector:
        with ServeEngine(workers=1, batch_size=1, retries=0) as engine:
            engine.run([
                Request(app="gaussian", image=make_image(seed),
                        pattern="clamp", variant="isp", request_id=i)
                for i in range(8)
            ])
    trace = injector.trace()
    assert trace
    for event in trace:
        assert event.point in {
            "serve.engine.execute",
            "runtime.vectorized.kernel",
            "serve.cache.evict",
        }
        assert event.occurrence >= 0
    assert injector.trace_signature() == tuple(
        sorted(trace, key=lambda e: (e.point, e.key, e.occurrence, e.kind))
    )
