"""Pre-padded border materialization — the raw-speed tier's ``make_border``.

Paper Section I frames padding as the costly software alternative to ISP:
"the required additional memory copy ... is costly". That is true for a
*single* filter invocation — but for repeated filters on the same image, a
multi-tap window, or a multi-stage pipeline, the copy amortizes: pay one
gather to materialize the apron, then every tap of every stage runs the
check-free Body evaluator over the whole padded image. This module is the
host-side analogue of RustyViT's ``make_border_cpu.rs`` (SNIPPETS.md): one
function that turns an ``(..., H, W)`` image into an
``(..., H+2hy, W+2hx)`` buffer with the border pattern materialized.

The index mappings are *not* re-implemented here: :func:`make_border`
reuses :func:`repro.runtime.vectorized._map_axis` with both sides checked —
the exact closed-form total mappings fixed in PR 2 — so a padded cell at any
depth past the edge (over-wide windows included, where ``np.pad`` needs
per-pattern care) holds precisely the value the checked executors would
read. Leading axes are preserved, which is what makes the padded buffer
batch-aware for free: an ``(N, H, W)`` stack pads into ``(N, H+2hy,
W+2hx)`` with one gather.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..dsl.boundary import Boundary

#: The one element type every executor in this repository computes in.
#: Anything that prices a buffer (the padding cost model, the cluster
#: protocol, memory-footprint accounting) must derive its element size from
#: here instead of hardcoding ``4``.
ELEMENT_DTYPE = np.dtype(np.float32)
ELEMENT_BYTES = ELEMENT_DTYPE.itemsize


def padded_shape(
    shape: tuple[int, ...], hx: int, hy: int
) -> tuple[int, ...]:
    """Shape of the padded buffer for an ``(..., H, W)`` input."""
    if len(shape) < 2:
        raise ValueError(f"expected an (..., H, W) shape, got {shape}")
    return (*shape[:-2], shape[-2] + 2 * hy, shape[-1] + 2 * hx)


def padded_bytes(width: int, height: int, hx: int, hy: int) -> int:
    """Footprint of one padded single-image buffer, in bytes."""
    return (width + 2 * hx) * (height + 2 * hy) * ELEMENT_BYTES


def make_border(
    src: np.ndarray,
    hx: int,
    hy: int,
    boundary: Boundary,
    constant: float = 0.0,
) -> np.ndarray:
    """Materialize the border into an ``(..., H+2hy, W+2hx)`` padded buffer.

    All four concrete patterns (CLAMP / MIRROR / REPEAT / CONSTANT) are
    expressible, at any half-extent — including over-wide windows where the
    apron is deeper than the image, the regime the PR-2 total mappings were
    fixed for. ``hx == hy == 0`` returns the input itself (point operators
    need no apron, and the zero-copy identity is what lets the cost model
    charge nothing for them).
    """
    from .vectorized import _map_axis

    src = np.asarray(src, dtype=ELEMENT_DTYPE)
    if src.ndim < 2:
        raise ValueError(
            f"expected an (..., H, W) image, got shape {src.shape}"
        )
    if hx < 0 or hy < 0:
        raise ValueError(f"negative half-extent ({hx}, {hy})")
    if boundary is Boundary.UNDEFINED:
        raise ValueError("cannot materialize an UNDEFINED border")
    if hx == 0 and hy == 0:
        return src
    h, w = src.shape[-2:]
    ys, vy = _map_axis(
        np.arange(-hy, h + hy), h, boundary, True, True
    )
    xs, vx = _map_axis(
        np.arange(-hx, w + hx), w, boundary, True, True
    )
    out = src[..., ys[:, None], xs[None, :]]
    if boundary is Boundary.CONSTANT:
        valid = vy[:, None] & vx[None, :]
        out = np.where(valid, out, ELEMENT_DTYPE.type(constant))
    return np.ascontiguousarray(out, dtype=ELEMENT_DTYPE)


#: Key identifying one padded buffer: which image, under which pattern.
PadKey = tuple[str, str, float, int, int]


def pad_key(
    name: str, boundary: Boundary, constant: float, hx: int, hy: int
) -> PadKey:
    return (name, boundary.value, float(constant), int(hx), int(hy))


def padded_for(
    images: dict[str, np.ndarray],
    name: str,
    hx: int,
    hy: int,
    boundary: Boundary,
    constant: float = 0.0,
    cache: Optional[dict] = None,
) -> np.ndarray:
    """Padded buffer for ``images[name]``, via ``cache`` when given.

    The cache maps :func:`pad_key` to ``(source array, padded array)`` and
    is validated by *identity*: an entry is only reused while its key still
    resolves to the same source object, so a caller-owned cache shared
    across pipeline stages (or across repeated same-image requests) can
    never serve a stale apron after an image is rebound. Entries keep their
    source alive for exactly as long as the caller keeps the cache.
    """
    src = images[name]
    if cache is None:
        return make_border(src, hx, hy, boundary, constant)
    key = pad_key(name, boundary, constant, hx, hy)
    entry = cache.get(key)
    if entry is not None and entry[0] is src:
        return entry[1]
    padded = make_border(src, hx, hy, boundary, constant)
    cache[key] = (src, padded)
    return padded
