"""Trace exporters: Chrome trace-event JSON and Prometheus text exposition.

* :func:`chrome_trace` renders a :class:`~repro.trace.core.Tracer`'s spans
  as the Chrome trace-event format (JSON Object Format with a
  ``traceEvents`` array of complete ``"X"`` events), loadable in Perfetto /
  ``chrome://tracing``. :func:`validate_chrome_trace` checks the schema so
  tests and the CI smoke job can gate on it without a browser.
* :func:`prometheus_text` renders a
  :class:`~repro.serve.metrics.MetricsRegistry` in the Prometheus text
  exposition format (version 0.0.4): counters as ``_total``, gauges, and
  histograms as summaries with ``quantile`` labels plus ``_sum``/``_count``.
  :func:`parse_prometheus_text` is a strict validating parser for the same
  subset, used by the smoke tests.

Both exporters are read-only over their sources and dependency-free (the
container has no prometheus client or tracing SDK).
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import TYPE_CHECKING, Union

from .core import Span, Tracer

if TYPE_CHECKING:  # avoid a runtime repro.serve import cycle
    from ..serve.metrics import MetricsRegistry


# ---------------------------------------------------------------------------
# Chrome trace-event JSON
# ---------------------------------------------------------------------------

def _json_safe(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return repr(value)


def chrome_trace(tracer: Tracer) -> dict:
    """Render the tracer's spans as a Chrome trace-event document."""
    spans = tracer.spans()
    tids: dict[str, int] = {}
    events: list[dict] = []
    for span in spans:
        tid = tids.setdefault(span.thread or "(main)", len(tids) + 1)
        args = {
            "trace_id": span.trace_id,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "status": span.status,
        }
        args.update(_json_safe(span.attributes))
        events.append({
            "name": span.name,
            "cat": "repro.serve",
            "ph": "X",
            "ts": span.start_s * 1e6,          # microseconds
            "dur": span.duration_s * 1e6,
            "pid": 1,
            "tid": tid,
            "args": args,
        })
    meta = [
        {"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
         "args": {"name": "repro.serve"}},
    ]
    for thread, tid in sorted(tids.items(), key=lambda kv: kv[1]):
        meta.append({"name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
                     "args": {"name": thread}})
    return {
        "traceEvents": meta + events,
        "displayTimeUnit": "ms",
        "otherData": {
            "epoch_unix": tracer.epoch_unix,
            "dropped_spans": tracer.dropped,
            "span_count": len(spans),
        },
    }


def write_chrome_trace(tracer: Tracer, path: Union[str, Path]) -> Path:
    """Write :func:`chrome_trace` to ``path`` (creating parent dirs)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(chrome_trace(tracer), indent=1) + "\n")
    return target


def validate_chrome_trace(doc: dict) -> list[str]:
    """Schema-check a trace-event document; returns problems (empty = valid).

    Checks the JSON Object Format contract Perfetto relies on: a
    ``traceEvents`` array whose ``"X"`` events carry string names and
    non-negative numeric ``ts``/``dur``, plus internal consistency of the
    span tree (every ``parent_id`` resolves within its trace).
    """
    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"document must be a JSON object, got {type(doc).__name__}"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["missing traceEvents array"]

    span_ids: dict[str, set] = {}
    parents: list[tuple[str, str]] = []
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: event must be an object")
            continue
        ph = ev.get("ph")
        if ph not in ("X", "M"):
            problems.append(f"{where}: unsupported phase {ph!r}")
            continue
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            problems.append(f"{where}: missing event name")
        if not isinstance(ev.get("pid"), int) or not isinstance(ev.get("tid"), int):
            problems.append(f"{where}: pid/tid must be integers")
        if ph == "M":
            continue
        for field in ("ts", "dur"):
            v = ev.get(field)
            if not isinstance(v, (int, float)) or v < 0:
                problems.append(f"{where}: {field} must be a number >= 0, "
                                f"got {v!r}")
        args = ev.get("args")
        if not isinstance(args, dict):
            problems.append(f"{where}: args must be an object")
            continue
        trace_id, span_id = args.get("trace_id"), args.get("span_id")
        if isinstance(trace_id, str) and isinstance(span_id, str):
            span_ids.setdefault(trace_id, set()).add(span_id)
            if args.get("parent_id") is not None:
                parents.append((trace_id, args["parent_id"]))
    for trace_id, parent_id in parents:
        if parent_id not in span_ids.get(trace_id, set()):
            problems.append(
                f"trace {trace_id}: parent_id {parent_id!r} does not "
                "resolve to a span in the same trace"
            )
    return problems


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

_NAME_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")
_HELP_ESCAPE = str.maketrans({"\\": r"\\", "\n": r"\n"})

#: metric line: name{labels} value  (labels optional; value is a float)
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"\\]*\""
    r"(?:,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"\\]*\")*\})?"
    r" (?P<value>[+-]?(?:[0-9]*\.?[0-9]+(?:[eE][+-]?[0-9]+)?|Inf|NaN))$"
)


def metric_name(name: str, prefix: str = "repro_") -> str:
    """Sanitize a dotted registry name into a legal Prometheus name."""
    sanitized = _NAME_SANITIZE.sub("_", name)
    if not re.match(r"[a-zA-Z_:]", sanitized):
        sanitized = "_" + sanitized
    return prefix + sanitized


def prometheus_text(registry: "MetricsRegistry", prefix: str = "repro_") -> str:
    """Render a registry in the Prometheus text exposition format."""
    counters, gauges, histograms = registry.instruments()
    lines: list[str] = []

    def header(name: str, help_text: str, kind: str) -> None:
        if help_text:
            lines.append(f"# HELP {name} {help_text.translate(_HELP_ESCAPE)}")
        lines.append(f"# TYPE {name} {kind}")

    for raw in sorted(counters):
        c = counters[raw]
        name = metric_name(raw, prefix) + "_total"
        header(name, c.help, "counter")
        lines.append(f"{name} {c.value}")

    for raw in sorted(gauges):
        g = gauges[raw]
        name = metric_name(raw, prefix)
        header(name, g.help, "gauge")
        lines.append(f"{name} {g.value:g}")

    for raw in sorted(histograms):
        h = histograms[raw]
        name = metric_name(raw, prefix)
        snap = h.snapshot()
        header(name, h.help, "summary")
        for q, key in ((0.5, "p50"), (0.9, "p90"), (0.99, "p99")):
            lines.append(f'{name}{{quantile="{q:g}"}} {snap[key]:g}')
        lines.append(f"{name}_sum {h.sum:g}")
        lines.append(f"{name}_count {snap['count']}")

    return "\n".join(lines) + "\n"


def prometheus_merged_text(
    snapshots: dict[str, dict], prefix: str = "repro_"
) -> str:
    """Render per-shard metric snapshots as one merged Prometheus exposition.

    ``snapshots`` maps a shard id (e.g. ``"shard-0"``, ``"gateway"``) to a
    :meth:`repro.serve.metrics.MetricsRegistry.snapshot` dict — ideally taken
    with ``include_samples=True`` so merged percentiles pool real samples.
    Every series carries a ``shard=`` label; the cross-shard aggregate
    (counters summed, gauges last-write, histogram windows pooled via
    :meth:`~repro.serve.metrics.MetricsRegistry.merge`) is emitted with
    ``shard="merged"``. One ``# TYPE`` header per metric, so the output
    passes :func:`parse_prometheus_text` — the same validator the
    single-process exporter is held to.
    """
    from ..serve.metrics import MetricsRegistry

    if "merged" in snapshots:
        raise ValueError('shard id "merged" is reserved for the aggregate')
    ordered = dict(sorted(snapshots.items()))
    ordered["merged"] = MetricsRegistry.merge(list(ordered.values()))
    lines: list[str] = []

    def series(kind: str) -> list[str]:
        names: set[str] = set()
        for snap in ordered.values():
            names.update(snap.get(kind, {}))
        return sorted(names)

    for raw in series("counters"):
        name = metric_name(raw, prefix) + "_total"
        lines.append(f"# TYPE {name} counter")
        for shard, snap in ordered.items():
            if raw in snap.get("counters", {}):
                lines.append(f'{name}{{shard="{shard}"}} '
                             f'{snap["counters"][raw]}')

    for raw in series("gauges"):
        name = metric_name(raw, prefix)
        lines.append(f"# TYPE {name} gauge")
        for shard, snap in ordered.items():
            if raw in snap.get("gauges", {}):
                lines.append(f'{name}{{shard="{shard}"}} '
                             f'{snap["gauges"][raw]:g}')

    for raw in series("histograms"):
        name = metric_name(raw, prefix)
        lines.append(f"# TYPE {name} summary")
        for shard, snap in ordered.items():
            h = snap.get("histograms", {}).get(raw)
            if h is None:
                continue
            for q, key in ((0.5, "p50"), (0.9, "p90"), (0.99, "p99")):
                lines.append(f'{name}{{quantile="{q:g}",shard="{shard}"}} '
                             f'{h[key]:g}')
            lines.append(f'{name}_sum{{shard="{shard}"}} '
                         f'{h.get("sum", 0.0):g}')
            lines.append(f'{name}_count{{shard="{shard}"}} {h["count"]}')

    return "\n".join(lines) + "\n"


def parse_prometheus_text(text: str) -> dict[str, float]:
    """Strictly parse a text exposition; raises ``ValueError`` on malformed
    lines. Returns ``{name{labels}: value}`` for every sample."""
    samples: dict[str, float] = {}
    typed: set[str] = set()
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or parts[3] not in (
                "counter", "gauge", "summary", "histogram", "untyped"
            ):
                raise ValueError(f"line {lineno}: malformed TYPE line: {line!r}")
            if parts[2] in typed:
                raise ValueError(f"line {lineno}: duplicate TYPE for {parts[2]}")
            typed.add(parts[2])
            continue
        if line.startswith("#"):
            continue  # HELP / comments
        m = _SAMPLE_RE.match(line)
        if m is None:
            raise ValueError(f"line {lineno}: malformed sample line: {line!r}")
        key = m.group("name") + (m.group("labels") or "")
        if key in samples:
            raise ValueError(f"line {lineno}: duplicate sample {key!r}")
        samples[key] = float(m.group("value"))
    return samples
