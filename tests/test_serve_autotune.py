"""The adaptive variant selector: model prior, trials, commit, hysteresis.

These tests drive :class:`repro.serve.AutoTuner` directly with synthetic
timings (no engine, no clock), so every decision path is deterministic; a
final set exercises the real engine integration end-to-end on small images.
"""

import json

import numpy as np
import pytest

from repro.gpu import DEVICES
from repro.serve.plan import trace_app
from repro.serve import (
    TUNE_CANDIDATES,
    AutoTuner,
    Request,
    ServeEngine,
    TunerKey,
    pipeline_gain,
    tuner_key,
)

KEY = TunerKey(digest="abc123", width=64, height=64, pattern="clamp",
               device="GTX680")
KEY2 = TunerKey(digest="def456", width=128, height=128, pattern="repeat",
                device="GTX680")


def make_tuner(**kw):
    kw.setdefault("trials_per_variant", 1)
    return AutoTuner(**kw)


def drain_trials(tuner, key, timings, prior=2.0):
    """Run the full trial phase, feeding ``timings[variant]`` per trial.

    Tests written around the three original arms need not mention prepad or
    fused: unless a timing is given, they trial at never-winning times.
    """
    timings = {"prepad": 9.0, "fused": 9.5, **timings}
    while True:
        variant, phase = tuner.decide(key, lambda: prior)
        if phase != "trial":
            return variant, phase
        tuner.observe(key, variant, timings[variant])


class TestDecisionLifecycle:
    def test_trials_cover_every_candidate_then_commit(self):
        tuner = make_tuner()
        seen = []
        for _ in range(len(TUNE_CANDIDATES)):
            variant, phase = tuner.decide(KEY, lambda: 2.0)
            assert phase == "trial"
            seen.append(variant)
            tuner.observe(KEY, variant, {"naive": 3.0, "isp": 1.0,
                                         "isp_warp": 2.0,
                                         "prepad": 4.0,
                                         "fused": 5.0}[variant])
        assert sorted(seen) == sorted(TUNE_CANDIDATES)
        variant, phase = tuner.decide(KEY, lambda: 2.0)
        assert (variant, phase) == ("isp", "serve")

    def test_model_prior_orders_the_first_trial(self):
        # G > 1: the partitioned family goes first; G <= 1: naive does.
        tuner = make_tuner()
        assert tuner.decide(KEY, lambda: 1.5)[0] == "isp"
        assert tuner.decide(KEY2, lambda: 0.7)[0] == "naive"

    def test_prior_called_once_per_config(self):
        tuner = make_tuner()
        calls = []

        def prior():
            calls.append(1)
            return 2.0

        for _ in range(4):
            variant, _ = tuner.decide(KEY, prior)
            tuner.observe(KEY, variant, 1.0)
        assert len(calls) == 1

    def test_inflight_trials_serve_provisionally(self):
        # All trials handed out but none measured yet: decide() must still
        # answer (with the model's pick), not block or re-trial.
        tuner = make_tuner()
        for _ in range(len(TUNE_CANDIDATES)):
            _, phase = tuner.decide(KEY, lambda: 2.0)
            assert phase == "trial"
        variant, phase = tuner.decide(KEY, lambda: 2.0)
        assert phase == "serve"
        assert variant == "isp"

    def test_unknown_candidate_rejected(self):
        with pytest.raises(ValueError, match="unknown candidates"):
            AutoTuner(candidates=("naive", "simd"))
        with pytest.raises(ValueError, match="trials_per_variant"):
            AutoTuner(trials_per_variant=0)
        with pytest.raises(ValueError, match="ema_alpha"):
            AutoTuner(ema_alpha=0.0)


class TestMinScoring:
    def test_winner_judged_by_best_observation_not_first(self):
        """Regression for the cold-start contention bug: a variant whose
        *first* sample was inflated (co-tenant compile, GC pause) must still
        win on its best sample. EMA-based scoring failed this — the first
        sample dominates an EMA — and committed the wrong variant."""
        tuner = AutoTuner(trials_per_variant=2)
        timings = {
            "naive": iter([0.050, 0.001]),   # contaminated, then clean
            "isp": iter([0.004, 0.004]),
            "isp_warp": iter([0.005, 0.005]),
            "prepad": iter([0.006, 0.006]),
            "fused": iter([0.007, 0.007]),
        }
        while True:
            variant, phase = tuner.decide(KEY, lambda: 0.5)
            if phase != "trial":
                break
            tuner.observe(KEY, variant, next(timings[variant]))
        assert variant == "naive"
        stats = tuner.table()[0]["stats"]["naive"]
        assert stats.best_seconds == pytest.approx(0.001)
        assert stats.observations == 2

    def test_ema_still_tracked_for_reporting(self):
        tuner = make_tuner()
        drain_trials(tuner, KEY, {"naive": 1.0, "isp": 2.0, "isp_warp": 3.0})
        st = tuner.table()[0]["stats"]["naive"]
        assert st.ema_seconds == pytest.approx(1.0)
        assert st.best_seconds == pytest.approx(1.0)


class TestHysteresisAndProbes:
    def test_small_improvement_does_not_flap(self):
        tuner = make_tuner(hysteresis=0.10)
        drain_trials(tuner, KEY, {"naive": 1.00, "isp": 1.50, "isp_warp": 2.0})
        # isp improves to within 10% of naive: no switch.
        tuner.observe(KEY, "isp", 0.95)
        assert tuner.table()[0]["committed"] == "naive"
        # isp clearly beats the margin: switch.
        tuner.observe(KEY, "isp", 0.80)
        row = tuner.table()[0]
        assert row["committed"] == "isp"
        assert row["switches"] == 1
        assert tuner.metrics.snapshot()["counters"]["tuner.switches"] == 1

    def test_probe_schedules_the_runner_up(self):
        tuner = make_tuner(probe_every=3)
        drain_trials(tuner, KEY, {"naive": 1.0, "isp": 2.0, "isp_warp": 3.0})
        phases = []
        for _ in range(6):
            variant, phase = tuner.decide(KEY, lambda: 2.0)
            phases.append((variant, phase))
            if phase == "probe":
                tuner.observe(KEY, variant, 2.0)
        probes = [v for v, p in phases if p == "probe"]
        assert probes == ["isp", "isp"]  # runner-up by best time, twice
        assert tuner.metrics.snapshot()["counters"]["tuner.probes"] == 2


class TestPenalties:
    def test_failing_variant_is_excluded_from_trials(self):
        tuner = make_tuner(max_failures=2)
        for _ in range(2):
            tuner.decide(KEY, lambda: 2.0)
            tuner.penalize(KEY, "isp")
        # With isp excluded, trials only cover the other two.
        seen = set()
        while True:
            variant, phase = tuner.decide(KEY, lambda: 2.0)
            if phase != "trial":
                break
            seen.add(variant)
            tuner.observe(KEY, variant, 1.0)
        assert "isp" not in seen
        assert tuner.metrics.snapshot()["counters"]["tuner.penalties"] == 2

    def test_penalty_inflates_scores(self):
        tuner = make_tuner()
        drain_trials(tuner, KEY, {"naive": 1.0, "isp": 2.0, "isp_warp": 3.0})
        tuner.penalize(KEY, "naive", factor=4.0)
        st = tuner.table()[0]["stats"]["naive"]
        assert st.best_seconds == pytest.approx(4.0)
        assert st.ema_seconds == pytest.approx(4.0)

    def test_committed_variant_demoted_after_repeated_failures(self):
        tuner = make_tuner(max_failures=2)
        drain_trials(tuner, KEY, {"naive": 2.0, "isp": 1.0, "isp_warp": 3.0})
        assert tuner.table()[0]["committed"] == "isp"
        tuner.penalize(KEY, "isp")
        tuner.penalize(KEY, "isp")
        assert tuner.table()[0]["committed"] is None  # back to trials


class TestAgreement:
    def test_agreement_rate_is_a_live_table_iii(self):
        tuner = make_tuner()
        # Model says partition (G=2), measurement agrees (isp wins).
        drain_trials(tuner, KEY, {"naive": 3.0, "isp": 1.0, "isp_warp": 2.0},
                     prior=2.0)
        # Model says naive (G=0.8), measurement disagrees (isp_warp wins).
        drain_trials(tuner, KEY2, {"naive": 3.0, "isp": 2.0, "isp_warp": 1.0},
                     prior=0.8)
        assert tuner.agreement_rate() == pytest.approx(0.5)
        counters = tuner.metrics.snapshot()["counters"]
        assert counters["tuner.commits"] == 2
        assert counters["tuner.model_agreements"] == 1
        rows = tuner.table()
        assert [r["agrees"] for r in rows] == [True, False]

    def test_isp_warp_counts_as_the_partition_side(self):
        tuner = make_tuner()
        drain_trials(tuner, KEY, {"naive": 3.0, "isp": 2.0, "isp_warp": 1.0},
                     prior=2.0)
        assert tuner.table()[0]["committed"] == "isp_warp"
        assert tuner.table()[0]["agrees"] is True


class TestPersistence:
    def test_save_load_roundtrip_skips_trials(self, tmp_path):
        path = tmp_path / "tune.json"
        tuner = make_tuner(path=path)
        drain_trials(tuner, KEY, {"naive": 3.0, "isp": 1.0, "isp_warp": 2.0})
        tuner.save()

        warm = AutoTuner(trials_per_variant=1, path=path)
        variant, phase = warm.decide(KEY, lambda: (_ for _ in ()).throw(
            AssertionError("prior must not be re-evaluated on warm restart")))
        assert (variant, phase) == ("isp", "serve")
        assert warm.metrics.snapshot()["counters"]["tuner.trials"] == 0

    def test_save_is_versioned_and_sorted(self, tmp_path):
        path = tmp_path / "tune.json"
        tuner = make_tuner(path=path)
        drain_trials(tuner, KEY, {"naive": 1.0, "isp": 2.0, "isp_warp": 3.0})
        tuner.save()
        payload = json.loads(path.read_text())
        assert payload["version"] == 1
        assert payload["configs"][0]["committed"] == "naive"
        assert payload["configs"][0]["stats"]["naive"]["best_seconds"] == 1.0

    def test_unsupported_version_rejected_by_explicit_load(self, tmp_path):
        path = tmp_path / "tune.json"
        path.write_text(json.dumps({"version": 99, "configs": []}))
        tuner = AutoTuner()
        with pytest.raises(ValueError, match="version"):
            tuner.load(path)

    def test_warm_restart_survives_corrupt_file(self, tmp_path):
        """A corrupt/unsupported cache file must not take the constructor
        (and with it the engine) down — it is a cold start, not an outage."""
        path = tmp_path / "tune.json"
        path.write_text(json.dumps({"version": 99, "configs": []}))
        tuner = AutoTuner(path=path)
        assert tuner.stats()["configs"] == 0
        assert tuner.metrics.snapshot()["counters"]["tuner.load_errors"] == 1

        path.write_text("{ not json at all")
        tuner = AutoTuner(path=path)
        assert tuner.stats()["configs"] == 0
        assert tuner.metrics.snapshot()["counters"]["tuner.load_errors"] == 1

    def test_unknown_file_candidates_dropped(self, tmp_path):
        path = tmp_path / "tune.json"
        tuner = make_tuner(path=path)
        drain_trials(tuner, KEY, {"naive": 1.0, "isp": 2.0, "isp_warp": 3.0})
        tuner.save()
        payload = json.loads(path.read_text())
        payload["configs"][0]["committed"] = "gone_variant"
        payload["configs"][0]["stats"]["gone_variant"] = {"best_seconds": 0.1}
        path.write_text(json.dumps(payload))
        warm = AutoTuner(path=path)
        assert warm.table()[0]["committed"] is None
        assert "gone_variant" not in warm.table()[0]["stats"]


class TestModelSeeding:
    def test_pipeline_gain_matches_harness_semantics(self):
        descs = trace_app("gaussian", "repeat", 256, 256)
        g = pipeline_gain(descs, device=DEVICES["GTX680"])
        assert g > 0
        # Point-operator-only pipelines have nothing to partition.
        descs_night = [d for d in trace_app("night", "clamp", 64, 64)
                       if not d.needs_border_handling]
        assert pipeline_gain(descs_night, device=DEVICES["GTX680"]) == 1.0

    def test_tuner_key_is_content_addressed(self):
        descs = trace_app("gaussian", "clamp", 64, 64)
        k1 = tuner_key(descs, "clamp", DEVICES["GTX680"])
        k2 = tuner_key(trace_app("gaussian", "clamp", 64, 64), "clamp",
                       DEVICES["GTX680"])
        assert k1 == k2
        k3 = tuner_key(descs, "clamp", DEVICES["RTX2080"])
        assert k3 != k1


class TestPrepadArm:
    """The raw-speed tier as a fourth arm: priors, ordering, persistence."""

    def test_dict_prior_can_choose_prepad(self):
        tuner = make_tuner()
        # Padding model beats both the ISP gain and 1.0: prepad is the
        # model's pick and therefore runs the very first trial.
        variant, phase = tuner.decide(
            KEY, lambda: {"gain": 1.4, "prepad_gain": 2.5})
        assert (variant, phase) == ("prepad", "trial")
        assert tuner.explain(KEY)["model_choice"] == "prepad"
        assert tuner.explain(KEY)["model_prepad_gain"] == 2.5

    def test_dict_prior_defers_to_isp_when_prepad_weaker(self):
        tuner = make_tuner()
        variant, _ = tuner.decide(
            KEY, lambda: {"gain": 2.0, "prepad_gain": 1.5})
        assert variant == "isp"
        variant, _ = tuner.decide(
            KEY2, lambda: {"gain": 0.8, "prepad_gain": 0.9})
        assert variant == "naive"

    def test_float_prior_still_accepted(self):
        """Legacy callers hand back the bare ISP gain; the prepad prior is
        simply unknown (None), never a crash."""
        tuner = make_tuner()
        variant, phase = tuner.decide(KEY, lambda: 2.0)
        assert (variant, phase) == ("isp", "trial")
        assert tuner.explain(KEY)["model_prepad_gain"] is None

    def test_prepad_commit_when_it_wins_trials(self):
        tuner = make_tuner()
        variant, phase = drain_trials(
            tuner, KEY,
            {"naive": 3.0, "isp": 2.0, "isp_warp": 2.5, "prepad": 1.0},
            prior={"gain": 1.2, "prepad_gain": 3.0})
        assert (variant, phase) == ("prepad", "serve")
        row = tuner.table()[0]
        assert row["committed"] == "prepad"
        # model said prepad (non-naive side), measurement committed prepad:
        # that is agreement under the Eq. 10 binary split.
        assert row["agrees"] is True

    def test_model_prepad_gain_roundtrips_persistence(self, tmp_path):
        path = tmp_path / "tune.json"
        tuner = make_tuner(path=path)
        drain_trials(tuner, KEY,
                     {"naive": 3.0, "isp": 2.0, "isp_warp": 2.5,
                      "prepad": 1.0},
                     prior={"gain": 1.2, "prepad_gain": 3.0})
        tuner.save()
        payload = json.loads(path.read_text())
        assert payload["configs"][0]["model_prepad_gain"] == 3.0
        assert payload["configs"][0]["committed"] == "prepad"

        warm = AutoTuner(trials_per_variant=1, path=path)
        variant, phase = warm.decide(KEY, lambda: 0.0)
        assert (variant, phase) == ("prepad", "serve")
        assert warm.explain(KEY)["model_prepad_gain"] == 3.0

    def test_pre_prepad_persistence_files_load_clean(self, tmp_path):
        """A table saved before the prepad arm existed has no
        model_prepad_gain key and no prepad stats — it must restore with
        None / fresh stats, not KeyError."""
        path = tmp_path / "tune.json"
        path.write_text(json.dumps({
            "version": 1,
            "candidates": ["naive", "isp", "isp_warp"],
            "configs": [{
                "digest": "abc123", "width": 64, "height": 64,
                "pattern": "clamp", "device": "GTX680",
                "model_gain": 2.0, "model_choice": "isp",
                "committed": "isp", "switches": 0,
                "stats": {"isp": {"best_seconds": 0.001,
                                  "observations": 2}},
            }],
        }))
        warm = AutoTuner(path=path)
        assert warm.explain(KEY)["model_prepad_gain"] is None
        assert warm.table()[0]["committed"] == "isp"
        assert warm.table()[0]["stats"]["prepad"].observations == 0

    def test_pipeline_priors_shape(self):
        from repro.serve import pipeline_priors

        priors = pipeline_priors(trace_app("gaussian", "clamp", 256, 256),
                                 device=DEVICES["GTX680"])
        assert set(priors) == {"gain", "prepad_gain", "fused_gain"}
        assert priors["gain"] == pytest.approx(pipeline_gain(
            trace_app("gaussian", "clamp", 256, 256),
            device=DEVICES["GTX680"]))
        assert priors["prepad_gain"] > 0
        # Point-operator-only pipelines: every prior neutral.
        point_only = [d for d in trace_app("night", "clamp", 64, 64)
                      if not d.needs_border_handling]
        neutral = pipeline_priors(point_only, device=DEVICES["GTX680"])
        assert neutral == {"gain": 1.0, "prepad_gain": 1.0,
                           "fused_gain": 1.0}


class TestEngineIntegration:
    @pytest.fixture
    def image(self, rng):
        return rng.random((48, 48), dtype=np.float32)

    def test_auto_requests_trial_then_commit(self, image):
        with ServeEngine(workers=1, batch_size=1, autotune=True) as engine:
            n = (len(engine.tuner.candidates)
                 * engine.tuner.trials_per_variant + 2)
            reqs = [Request(app="gaussian", image=image, pattern="clamp",
                            variant="auto") for _ in range(n)]
            responses = engine.run(reqs)
            assert all(r.ok for r in responses)
            # Every response reports the concrete variant that served it.
            assert all(r.variant in TUNE_CANDIDATES for r in responses)
            rows = engine.tuner.table()
        assert len(rows) == 1
        assert rows[0]["committed"] in TUNE_CANDIDATES
        stats = engine.stats()
        assert stats["tuner"]["configs"] == 1
        assert stats["tuner"]["committed"] == 1

    def test_auto_output_matches_direct_execution(self, image, rng):
        from repro.dsl import Boundary
        from repro.filters import PIPELINES
        from repro.runtime import run_pipeline_vectorized

        pipe = PIPELINES["laplace"](48, 48, Boundary.REPEAT)
        ref = run_pipeline_vectorized(
            pipe, {pipe.inputs[0].name: image})[pipe.output.name]
        with ServeEngine(workers=1, batch_size=1, autotune=True) as engine:
            for _ in range(6):
                resp = engine.run([Request(app="laplace", image=image,
                                           pattern="repeat",
                                           variant="auto")])[0]
                assert resp.ok, resp.error
                np.testing.assert_allclose(resp.output, ref, rtol=1e-5,
                                           atol=1e-5)

    def test_auto_without_tuner_degrades_to_model_policy(self, image):
        with ServeEngine(workers=1) as engine:
            resp = engine.run([Request(app="gaussian", image=image,
                                       pattern="clamp", variant="auto")])[0]
        assert resp.ok
        assert "auto:no-tuner->isp+m" in resp.fallbacks

    def test_engine_persists_learned_table_on_close(self, image, tmp_path):
        path = tmp_path / "learned.json"
        engine = ServeEngine(workers=1, batch_size=1, autotune=True,
                             autotune_path=str(path))
        with engine:
            engine.run([Request(app="gaussian", image=image, pattern="clamp",
                                variant="auto") for _ in range(8)])
        assert path.exists()
        payload = json.loads(path.read_text())
        assert payload["version"] == 1
        assert len(payload["configs"]) == 1
