#!/usr/bin/env python3
"""Quickstart: write a Hipacc-style kernel, compile it three ways, run it.

This is the 5-minute tour of the library:

1. define a Gaussian blur as a DSL kernel (paper Listing 4's shape),
2. print the region partitioning the compiler derives (paper Figure 1),
3. compile the naive / ISP / warp-ISP variants and inspect their stats,
4. run the ISP variant on the simulated GTX680 and check it against NumPy,
5. ask the analytic model whether ISP is worth it (paper Eq. 10).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    Accessor,
    Boundary,
    BoundaryCondition,
    GTX680,
    Image,
    IterationSpace,
    Kernel,
    Mask,
    Pipeline,
    Variant,
    compile_kernel,
    predict_kernel,
    run_pipeline_simt,
)
from repro.compiler import trace_kernel
from repro.filters.reference import correlate

WIDTH = HEIGHT = 128
BLOCK = (32, 4)

GAUSS = np.array([[1, 2, 1], [2, 4, 2], [1, 2, 1]], np.float32) / 16.0


class GaussianBlur(Kernel):
    """out(x,y) = sum over the 3x3 window of mask * in — a local operator."""

    def __init__(self, iter_space, acc, mask):
        super().__init__(iter_space)
        self.acc = self.add_accessor(acc)
        self.mask = mask

    def kernel(self):
        return self.convolve(self.mask, self.acc)


def main():
    rng = np.random.default_rng(0)
    src = rng.random((HEIGHT, WIDTH)).astype(np.float32)

    # --- 1. build the kernel ------------------------------------------------
    inp = Image.from_array(src, "inp")
    out = Image(WIDTH, HEIGHT, "out")
    bound = BoundaryCondition(inp, Boundary.CLAMP)  # like Hipacc's Boundary::CLAMP
    blur = GaussianBlur(IterationSpace(out), Accessor(bound), Mask(GAUSS))
    pipeline = Pipeline("blur", [blur])

    # --- 2. show the iteration-space partitioning (paper Figure 1) ----------
    desc = trace_kernel(blur)
    ck = compile_kernel(desc, variant=Variant.ISP, block=BLOCK, device=GTX680)
    geom = ck.geometry
    print(f"grid {geom.grid[0]}x{geom.grid[1]} blocks of {BLOCK[0]}x{BLOCK[1]} threads")
    print(f"index bounds (Eq. 2): BH_L={geom.bh_l} BH_R={geom.bh_r} "
          f"BH_T={geom.bh_t} BH_B={geom.bh_b}")
    print("region map (one letter per block):")
    glyph = {"TL": "1", "T": "2", "TR": "3", "L": "4", "Body": ".",
             "R": "6", "BL": "7", "B": "8", "BR": "9"}
    for by in range(geom.grid[1]):
        print("  " + "".join(
            glyph[geom.classify(bx, by).value] for bx in range(geom.grid[0])
        ))
    counts = geom.block_counts()
    body_pct = 100 * geom.body_fraction()
    print(f"body blocks: {body_pct:.1f}% of {sum(counts.values())}\n")

    # --- 3. compile all three variants ---------------------------------------
    for variant in (Variant.NAIVE, Variant.ISP, Variant.ISP_WARP):
        c = compile_kernel(desc, variant=variant, block=BLOCK, device=GTX680)
        print(f"{variant.value:9s}: {c.func.static_size():5d} static instrs, "
              f"{len(c.func.blocks):3d} basic blocks, "
              f"~{c.registers.allocated} regs/thread")
    print()

    # --- 4. run on the simulated GTX680 and validate -------------------------
    result = run_pipeline_simt(pipeline, variant=Variant.ISP, block=BLOCK,
                               device=GTX680)
    reference = correlate(src, GAUSS, Boundary.CLAMP)
    err = np.abs(result.output - reference).max()
    print(f"simulated ISP output vs NumPy reference: max |err| = {err:.2e}")
    assert err < 1e-6

    prof = result.profilers[0]
    print(f"executed {prof.warp_instructions} warp instructions "
          f"({prof.thread_instructions} thread instructions, "
          f"{prof.mem_transactions} memory transactions)\n")

    # --- 5. ask the model (paper Eq. 10) --------------------------------------
    p = predict_kernel(desc, block=BLOCK, device=GTX680)
    print(f"analytic model: R_reduced={p.r_reduced:.3f}, "
          f"occupancy {p.occupancy_naive:.1%} -> {p.occupancy_isp:.1%}, "
          f"G={p.gain:.3f}")
    print(f"model verdict for this configuration: use {p.choice.value}")


if __name__ == "__main__":
    main()
