"""Sobel edge detector — 3-kernel pipeline (paper Section VI).

"The Sobel filter consists of 3 kernels to compute x-, y-derivatives, and
the magnitude, among which the first two are local operators." The magnitude
kernel is a point operator: it reads only (0, 0) from the two derivative
images, so it needs no border handling at all — the compiler emits the naive
shape for it under every variant. Many cheap kernels is the configuration
where the paper reports the largest speedups ("more than 4.0 ... on the
RTX2080").
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..dsl import (
    Accessor,
    Boundary,
    BoundaryCondition,
    Image,
    IterationSpace,
    Kernel,
    Mask,
    Pipeline,
    sqrtf,
)

SOBEL_X_MASK = np.array(
    [[-1, 0, 1], [-2, 0, 2], [-1, 0, 1]], dtype=np.float32
)
SOBEL_Y_MASK = SOBEL_X_MASK.T.copy()


class SobelDerivativeKernel(Kernel):
    """3x3 derivative (x or y) — a local operator with border handling."""

    def __init__(
        self, iter_space: IterationSpace, acc: Accessor, mask: Mask, axis: str
    ):
        super().__init__(iter_space)
        self.acc = self.add_accessor(acc)
        self.mask = mask
        self.axis = axis

    @property
    def name(self) -> str:
        return f"sobel_d{self.axis}"

    def kernel(self):
        return self.convolve(self.mask, self.acc)


class SobelMagnitudeKernel(Kernel):
    """mag = sqrt(dx^2 + dy^2) — a point operator (no window, no border)."""

    def __init__(self, iter_space: IterationSpace, acc_dx: Accessor, acc_dy: Accessor):
        super().__init__(iter_space)
        self.acc_dx = self.add_accessor(acc_dx)
        self.acc_dy = self.add_accessor(acc_dy)

    @property
    def name(self) -> str:
        return "sobel_mag"

    def kernel(self):
        gx = self.acc_dx(0, 0)
        gy = self.acc_dy(0, 0)
        return sqrtf(gx * gx + gy * gy)


def build_pipeline(
    width: int,
    height: int,
    boundary: Boundary,
    constant: float = 0.0,
    input_image: Optional[Image] = None,
) -> Pipeline:
    inp = input_image or Image(width, height, "inp")
    img_dx = Image(width, height, "dx")
    img_dy = Image(width, height, "dy")
    out = Image(width, height, "out")

    kx = SobelDerivativeKernel(
        IterationSpace(img_dx),
        Accessor(BoundaryCondition(inp, boundary, constant)),
        Mask(SOBEL_X_MASK),
        "x",
    )
    ky = SobelDerivativeKernel(
        IterationSpace(img_dy),
        Accessor(BoundaryCondition(inp, boundary, constant)),
        Mask(SOBEL_Y_MASK),
        "y",
    )
    mag = SobelMagnitudeKernel(
        IterationSpace(out), Accessor(img_dx), Accessor(img_dy)
    )
    return Pipeline("sobel", [kx, ky, mag])
