"""Golden-file snapshots of the generated IR, per (app, variant, pattern).

The compiler is deterministic (see test_compile_determinism), so the exact
printed IR of every filter x variant x border-pattern combination is pinned
as a text file under ``tests/goldens/``. Any change to lowering, border
emission, region partitioning, or the optimizer shows up as a readable
textual diff — the reviewer sees *which instructions* changed, not just
that something did. (The PR-2 MIRROR fix, for example, changes exactly the
reflection arithmetic lines of every ``mirror`` golden.)

Regenerate intentionally with::

    pytest tests/test_codegen_goldens.py --update-goldens

then review the git diff like any other code change.
"""

from __future__ import annotations

import difflib
import pathlib

import pytest

from repro.compiler import Variant, compile_kernel
from repro.ir.printer import print_function
from repro.serve.plan import trace_app

GOLDEN_DIR = pathlib.Path(__file__).parent / "goldens"

#: the paper's five-application corpus (Section VI)
APPS = ("gaussian", "laplace", "bilateral", "sobel", "night")
VARIANTS = ("naive", "isp", "isp_warp")
PATTERNS = ("clamp", "mirror", "repeat", "constant")
#: small fixed geometry: big enough that ISP partitioning is non-degenerate
#: for every corpus filter, small enough to keep compiles fast
SIZE = 64
BLOCK = (32, 4)

COMBOS = [(a, v, p) for a in APPS for v in VARIANTS for p in PATTERNS]

MAX_DIFF_LINES = 120


def golden_path(app: str, variant: str, pattern: str) -> pathlib.Path:
    return GOLDEN_DIR / f"{app}-{variant}-{pattern}.ir"


def render(app: str, variant: str, pattern: str) -> str:
    """The canonical printed IR of one combination (all pipeline stages)."""
    descs = trace_app(app, pattern, SIZE, SIZE)
    parts = [
        "# golden IR snapshot — regenerate with:",
        "#   pytest tests/test_codegen_goldens.py --update-goldens",
        f"# app={app} variant={variant} pattern={pattern} "
        f"size={SIZE}x{SIZE} block={BLOCK[0]}x{BLOCK[1]}",
    ]
    for desc in descs:
        compiled = compile_kernel(desc, variant=Variant(variant), block=BLOCK)
        parts.append(
            f"\n# kernel {desc.name}: requested={variant} "
            f"effective={compiled.effective_variant.value}"
        )
        parts.append(print_function(compiled.func))
    return "\n".join(parts) + "\n"


@pytest.mark.parametrize("app,variant,pattern", COMBOS,
                         ids=[f"{a}-{v}-{p}" for a, v, p in COMBOS])
def test_ir_matches_golden(app, variant, pattern, update_goldens):
    path = golden_path(app, variant, pattern)
    actual = render(app, variant, pattern)

    if update_goldens:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(actual)
        return

    if not path.exists():
        pytest.fail(
            f"missing golden {path.name}; generate it with "
            f"`pytest {__name__.replace('.', '/')}.py --update-goldens` "
            f"and commit the result"
        )

    expected = path.read_text()
    if actual == expected:
        return

    diff = list(difflib.unified_diff(
        expected.splitlines(keepends=True),
        actual.splitlines(keepends=True),
        fromfile=f"goldens/{path.name}",
        tofile="generated",
    ))
    shown = "".join(diff[:MAX_DIFF_LINES])
    omitted = len(diff) - MAX_DIFF_LINES
    tail = f"\n... ({omitted} more diff lines)" if omitted > 0 else ""
    pytest.fail(
        f"generated IR for {app}/{variant}/{pattern} diverges from its "
        f"golden ({len(diff)} diff lines). If the change is intentional, "
        f"rerun with --update-goldens and commit.\n{shown}{tail}"
    )


def test_no_orphan_goldens():
    """Every file under tests/goldens/ must correspond to a live combo —
    otherwise a renamed filter would leave a stale snapshot nobody checks."""
    expected = {golden_path(*combo).name for combo in COMBOS}
    present = {p.name for p in GOLDEN_DIR.glob("*.ir")}
    assert present <= expected, f"orphan goldens: {sorted(present - expected)}"
