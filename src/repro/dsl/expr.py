"""Expression AST of the embedded DSL.

Users write filter math with ordinary Python operators; each operation builds
a node of this AST instead of computing a value (the Hipacc front end does the
equivalent with Clang ASTs). The compiler lowers the AST to virtual-ISA
instructions, memoizing by node identity so a subexpression that the user
binds to a variable and reuses (e.g. the bilateral weight used in both the
numerator and the normalizer) is computed once — mirroring NVCC's CSE, which
the paper notes is why naive border checks share common sub-expressions.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Union

from ..ir.types import DataType

if TYPE_CHECKING:  # pragma: no cover
    from .accessor import Accessor


_SEQ_COUNTER = 0


def _next_seq() -> int:
    global _SEQ_COUNTER
    _SEQ_COUNTER += 1
    return _SEQ_COUNTER


class Expr:
    """Base class for DSL expressions; carries operator overloads.

    Every node records a creation sequence number (``seq``). The compiler
    lowers nodes in creation order — the order the user's ``kernel()`` body
    executed — which keeps register liveness close to the source program's
    (an accumulator loop interleaves weight computation and both uses, so the
    weight dies immediately). Lowering depth-first from the root instead
    would keep every shared subexpression alive across whole reduction
    chains and blow up register pressure far beyond what NVCC produces.
    """

    dtype: DataType = DataType.F32
    seq: int = 0

    # -- arithmetic ---------------------------------------------------------

    def __add__(self, other) -> "BinOp":
        return BinOp("add", self, wrap(other))

    def __radd__(self, other) -> "BinOp":
        return BinOp("add", wrap(other), self)

    def __sub__(self, other) -> "BinOp":
        return BinOp("sub", self, wrap(other))

    def __rsub__(self, other) -> "BinOp":
        return BinOp("sub", wrap(other), self)

    def __mul__(self, other) -> "BinOp":
        return BinOp("mul", self, wrap(other))

    def __rmul__(self, other) -> "BinOp":
        return BinOp("mul", wrap(other), self)

    def __truediv__(self, other) -> "BinOp":
        return BinOp("div", self, wrap(other))

    def __rtruediv__(self, other) -> "BinOp":
        return BinOp("div", wrap(other), self)

    def __neg__(self) -> "UnOp":
        return UnOp("neg", self)

    def __pos__(self) -> "Expr":
        return self


ExprLike = Union[Expr, int, float]


def wrap(value: ExprLike) -> Expr:
    """Promote Python literals to :class:`Const` nodes."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        raise TypeError("boolean literals are not DSL values")
    if isinstance(value, int):
        return Const(float(value), DataType.F32)
    if isinstance(value, float):
        return Const(value, DataType.F32)
    raise TypeError(f"cannot use {type(value).__name__} as a DSL expression")


@dataclasses.dataclass(frozen=True, eq=False)
class Const(Expr):
    value: float
    dtype_: DataType = DataType.F32

    def __post_init__(self):
        object.__setattr__(self, "seq", _next_seq())

    @property
    def dtype(self) -> DataType:  # type: ignore[override]
        return self.dtype_

    def __repr__(self) -> str:
        return f"Const({self.value})"


@dataclasses.dataclass(eq=False)
class BinOp(Expr):
    """Binary arithmetic: add/sub/mul/div/min/max."""

    op: str
    lhs: Expr
    rhs: Expr

    def __post_init__(self):
        self.seq = _next_seq()

    def __repr__(self) -> str:
        return f"BinOp({self.op}, {self.lhs!r}, {self.rhs!r})"


@dataclasses.dataclass(eq=False)
class UnOp(Expr):
    """Unary math: neg/abs/sqrt/rsqrt/exp/log2/exp2/rcp/sin/cos."""

    op: str
    operand: Expr

    def __post_init__(self):
        self.seq = _next_seq()

    def __repr__(self) -> str:
        return f"UnOp({self.op}, {self.operand!r})"


@dataclasses.dataclass(eq=False)
class PixelAccess(Expr):
    """Read of ``accessor`` at static window offset ``(dx, dy)``.

    This is the node border handling applies to: the compiler turns it into
    address arithmetic plus the pattern- and region-dependent index checks
    (paper Listing 1).
    """

    accessor: "Accessor"
    dx: int
    dy: int

    def __post_init__(self):
        if not isinstance(self.dx, int) or not isinstance(self.dy, int):
            raise TypeError("pixel access offsets must be static Python ints")
        self.seq = _next_seq()

    def __repr__(self) -> str:
        return f"PixelAccess({self.accessor.image.name}, {self.dx:+d}, {self.dy:+d})"


# ---------------------------------------------------------------------------
# Math intrinsics (CUDA-flavoured names, as in Hipacc kernels)
# ---------------------------------------------------------------------------


def expf(x: ExprLike) -> Expr:
    """e**x — lowered to ``ex2`` (SFU) with a log2(e) pre-scale, as NVCC does."""
    return UnOp("exp", wrap(x))


def exp2f(x: ExprLike) -> Expr:
    return UnOp("exp2", wrap(x))


def logf(x: ExprLike) -> Expr:
    return UnOp("log", wrap(x))


def log2f(x: ExprLike) -> Expr:
    return UnOp("log2", wrap(x))


def sqrtf(x: ExprLike) -> Expr:
    return UnOp("sqrt", wrap(x))


def rsqrtf(x: ExprLike) -> Expr:
    return UnOp("rsqrt", wrap(x))


def fabsf(x: ExprLike) -> Expr:
    return UnOp("abs", wrap(x))


def rcpf(x: ExprLike) -> Expr:
    return UnOp("rcp", wrap(x))


def sinf(x: ExprLike) -> Expr:
    return UnOp("sin", wrap(x))


def cosf(x: ExprLike) -> Expr:
    return UnOp("cos", wrap(x))


def fminf(a: ExprLike, b: ExprLike) -> Expr:
    return BinOp("min", wrap(a), wrap(b))


def fmaxf(a: ExprLike, b: ExprLike) -> Expr:
    return BinOp("max", wrap(a), wrap(b))


def powf(x: ExprLike, y: ExprLike) -> Expr:
    """x**y for x > 0, lowered as exp2(y * log2(x))."""
    return exp2f(wrap(y) * log2f(x))


#: Ops a :class:`UnOp` may carry (checked by the lowering pass).
UNARY_OPS = frozenset(
    {"neg", "abs", "sqrt", "rsqrt", "exp", "exp2", "log", "log2", "rcp", "sin", "cos"}
)

#: Ops a :class:`BinOp` may carry.
BINARY_OPS = frozenset({"add", "sub", "mul", "div", "min", "max"})


def walk(expr: Expr):
    """Yield every node of the tree (pre-order, shared nodes once)."""
    seen: set[int] = set()
    stack = [expr]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        yield node
        if isinstance(node, BinOp):
            stack.append(node.lhs)
            stack.append(node.rhs)
        elif isinstance(node, UnOp):
            stack.append(node.operand)


def pixel_accesses(expr: Expr) -> list[PixelAccess]:
    """All pixel-access nodes in the tree (shared nodes reported once)."""
    return [n for n in walk(expr) if isinstance(n, PixelAccess)]
