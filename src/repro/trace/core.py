"""Structured tracing: spans, a head-sampling tracer, and ambient install.

The serve stack (PRs 1-4) answers *how many* — counters, histograms — but
not *where one request's time went*. This module adds the missing per-request
axis: a :class:`Span` tree per sampled request covering
``request -> queue -> plan -> autotune -> execute -> kernel/launch``,
propagated explicitly across the worker pool (thread-locals do not survive a
queue handoff) and exported to Chrome trace-event JSON / Prometheus text by
:mod:`repro.trace.exporters`.

Design constraints, mirroring :mod:`repro.faults`:

* **Zero overhead disarmed.** Every instrumentation site guards with
  ``if core._current is not None`` — a module-global pointer check. No
  tracer installed means no allocation, no locking, no clock reads.
* **Deterministic head sampling.** Whether a request is traced is decided
  once, at the root span (head-based), as a pure SHA-256 function of
  ``(seed, key)`` — so the same workload yields the same sampled set run
  after run, regardless of worker scheduling.
* **Bounded memory.** The span buffer is capped (``max_spans``); overflow
  increments a drop counter instead of growing without bound.

Spans record on a single monotonic timeline (``time.perf_counter`` relative
to the tracer's epoch), so spans recorded by different worker threads order
correctly in the exported trace.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import itertools
import threading
import time
from typing import Iterator, Optional


@dataclasses.dataclass
class Span:
    """One timed operation within a trace.

    ``start_s``/``end_s`` are seconds since the owning tracer's epoch (one
    monotonic timeline shared by every thread). ``parent_id`` is ``None``
    for a trace's root span.
    """

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str
    start_s: float
    end_s: Optional[float] = None
    attributes: dict = dataclasses.field(default_factory=dict)
    status: str = "ok"
    thread: str = ""

    @property
    def finished(self) -> bool:
        return self.end_s is not None

    @property
    def duration_s(self) -> float:
        if self.end_s is None:
            return 0.0
        return max(0.0, self.end_s - self.start_s)


def _sample_draw(seed: int, key: str) -> float:
    """Uniform [0, 1) draw, a pure function of (seed, key) — same scheme as
    :func:`repro.faults.core._draw`, so sampling is replayable."""
    digest = hashlib.sha256(f"{seed}|trace|{key}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


class Tracer:
    """Collects spans for one recording session (thread-safe).

    ``sample_rate`` is the head-sampling probability: :meth:`start_trace`
    returns ``None`` for unsampled keys and every downstream site skips its
    work (children are only created under a sampled root). ``1.0`` traces
    everything, ``0.0`` nothing — the hot path then costs one pointer check
    per site.
    """

    def __init__(
        self,
        *,
        sample_rate: float = 1.0,
        seed: int = 0,
        max_spans: int = 100_000,
    ):
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be in [0, 1], got {sample_rate}")
        if max_spans < 1:
            raise ValueError("max_spans must be >= 1")
        self.sample_rate = sample_rate
        self.seed = int(seed)
        self.max_spans = max_spans
        #: wall-clock instant of the tracer's perf_counter epoch, for
        #: anchoring the exported (relative) timeline to real time
        self.epoch_unix = time.time()
        self._epoch = time.perf_counter()
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._dropped = 0
        self._trace_ids = itertools.count(1)
        self._span_ids = itertools.count(1)

    # ------------------------------------------------------------------ clock

    def now(self) -> float:
        """Seconds since the tracer's epoch (monotonic)."""
        return time.perf_counter() - self._epoch

    def rel(self, perf_counter_ts: float) -> float:
        """Translate a raw ``time.perf_counter()`` stamp onto the timeline."""
        return perf_counter_ts - self._epoch

    # --------------------------------------------------------------- sampling

    def sampled(self, key: str) -> bool:
        """Head-sampling decision for a trace keyed by ``key`` (pure)."""
        if self.sample_rate >= 1.0:
            return True
        if self.sample_rate <= 0.0:
            return False
        return _sample_draw(self.seed, key) < self.sample_rate

    # ------------------------------------------------------------------ spans

    def _next_span_id(self) -> str:
        return f"s{next(self._span_ids):06d}"

    def start_trace(self, name: str, key: str = "", **attributes) -> Optional[Span]:
        """Begin a new trace; ``None`` means the key was not sampled.

        The root span is *live* (unfinished) and is only collected when
        :meth:`finish` is called on it.
        """
        if not self.sampled(key):
            return None
        return Span(
            trace_id=f"t{next(self._trace_ids):06d}",
            span_id=self._next_span_id(),
            parent_id=None,
            name=name,
            start_s=self.now(),
            attributes=dict(attributes),
            thread=threading.current_thread().name,
        )

    def start_span(self, name: str, parent: Span, **attributes) -> Span:
        """Begin a live child span of ``parent``."""
        return Span(
            trace_id=parent.trace_id,
            span_id=self._next_span_id(),
            parent_id=parent.span_id,
            name=name,
            start_s=self.now(),
            attributes=dict(attributes),
            thread=threading.current_thread().name,
        )

    def finish(self, span: Span, status: str = "ok", **attributes) -> Span:
        """End a live span and collect it."""
        span.end_s = self.now()
        span.status = status
        if attributes:
            span.attributes.update(attributes)
        self._collect(span)
        return span

    def record_span(
        self,
        name: str,
        parent: Span,
        start: float,
        end: float,
        status: str = "ok",
        **attributes,
    ) -> Span:
        """Record a span retroactively from raw ``perf_counter`` stamps.

        Used for operations whose duration was measured anyway (queue wait,
        plan build): no live span object has to ride along the hot path.
        """
        span = Span(
            trace_id=parent.trace_id,
            span_id=self._next_span_id(),
            parent_id=parent.span_id,
            name=name,
            start_s=self.rel(start),
            end_s=self.rel(end),
            attributes=dict(attributes),
            status=status,
            thread=threading.current_thread().name,
        )
        self._collect(span)
        return span

    def adopt_spans(
        self, spans: list[Span], *, parent: Span, prefix: str = ""
    ) -> list[Span]:
        """Graft spans recorded elsewhere (another process) under ``parent``.

        This is the receiving half of cross-process trace propagation: a
        cluster shard records its own span subtree for a request (rooted at
        the serve engine's ``request`` span) and ships it back serialized;
        the gateway rebases the times onto its timeline and adopts them here
        so the exported trace is ONE stitched tree.

        ``prefix`` namespaces the foreign span/thread ids (span ids are only
        unique per tracer — two shards both emit ``s000001``). Every foreign
        root (``parent_id is None``) is re-parented onto ``parent``; child
        links are remapped with the same prefix, so no adopted span can be
        an orphan as long as ``spans`` is a closed set (parents shipped with
        their children). Callers pass spans whose ``start_s``/``end_s`` are
        already expressed on *this* tracer's timeline.
        """
        adopted = []
        for s in spans:
            adopted.append(Span(
                trace_id=parent.trace_id,
                span_id=f"{prefix}{s.span_id}",
                parent_id=(f"{prefix}{s.parent_id}" if s.parent_id is not None
                           else parent.span_id),
                name=s.name,
                start_s=s.start_s,
                end_s=s.end_s,
                attributes=dict(s.attributes),
                status=s.status,
                thread=f"{prefix}{s.thread}" if prefix else s.thread,
            ))
        for span in adopted:
            self._collect(span)
        return adopted

    def _collect(self, span: Span) -> None:
        with self._lock:
            if len(self._spans) >= self.max_spans:
                self._dropped += 1
            else:
                self._spans.append(span)

    # -------------------------------------------------------------- queries

    @property
    def dropped(self) -> int:
        with self._lock:
            return self._dropped

    def spans(self) -> list[Span]:
        """Collected (finished) spans, in collection order."""
        with self._lock:
            return list(self._spans)

    def trace(self, trace_id: str) -> list[Span]:
        """Spans of one trace, parents before children where possible."""
        spans = [s for s in self.spans() if s.trace_id == trace_id]
        spans.sort(key=lambda s: (s.start_s, s.span_id))
        return spans

    def summary(self) -> dict[str, dict]:
        """Aggregate by span name: {name: {count, total_s, max_s}}."""
        out: dict[str, dict] = {}
        for s in self.spans():
            agg = out.setdefault(s.name, {"count": 0, "total_s": 0.0,
                                          "max_s": 0.0, "errors": 0})
            agg["count"] += 1
            agg["total_s"] += s.duration_s
            agg["max_s"] = max(agg["max_s"], s.duration_s)
            if s.status != "ok":
                agg["errors"] += 1
        return out


# ---------------------------------------------------------------------------
# Ambient installation + explicit cross-thread context propagation
# ---------------------------------------------------------------------------

_current: Optional[Tracer] = None
_install_lock = threading.Lock()
_tls = threading.local()


def active() -> Optional[Tracer]:
    """The installed tracer, or ``None`` when tracing is disarmed."""
    return _current


def install(tracer: Tracer) -> None:
    """Install ``tracer`` process-wide (exclusive, like fault arming)."""
    global _current
    with _install_lock:
        if _current is not None:
            raise RuntimeError("a Tracer is already installed")
        _current = tracer


def uninstall() -> None:
    global _current
    with _install_lock:
        _current = None


@contextlib.contextmanager
def recording(tracer: Tracer) -> Iterator[Tracer]:
    """Install ``tracer`` for the duration of the block."""
    install(tracer)
    try:
        yield tracer
    finally:
        uninstall()


def current_context() -> Optional[tuple[Tracer, Span]]:
    """The (tracer, span) pair propagated to this thread, if any.

    Executors use this to hang per-kernel spans under the engine's execute
    span. It is set *explicitly* via :func:`context` — the engine re-binds
    it on the worker thread (and inside the SIMT watchdog thread), because
    an ambient thread-local cannot follow a request across a queue handoff.
    """
    return getattr(_tls, "ctx", None)


@contextlib.contextmanager
def context(tracer: Tracer, span: Span) -> Iterator[None]:
    """Bind (tracer, span) as this thread's current trace context."""
    prev = getattr(_tls, "ctx", None)
    _tls.ctx = (tracer, span)
    try:
        yield
    finally:
        _tls.ctx = prev
