"""Unit tests of the fault-injection core: determinism, matching, arming."""

from __future__ import annotations

import threading

import pytest

from repro import faults
from repro.faults import FaultError, FaultInjector, FaultPlan, FaultSpec
from repro.faults.core import _draw


def plan_of(*specs: FaultSpec, seed: int = 42) -> FaultPlan:
    return FaultPlan.make(seed, list(specs))


class TestDecisions:
    def test_rate_one_always_fires(self):
        inj = FaultInjector(plan_of(FaultSpec.make("p", rate=1.0)))
        assert all(inj.fire("p") is not None for _ in range(10))

    def test_rate_zero_never_fires(self):
        inj = FaultInjector(plan_of(FaultSpec.make("p", rate=0.0)))
        assert all(inj.fire("p") is None for _ in range(10))

    def test_at_pins_exact_occurrences(self):
        inj = FaultInjector(plan_of(FaultSpec.make("p", at=(1, 3))))
        fired = [inj.fire("p") is not None for _ in range(5)]
        assert fired == [False, True, False, True, False]

    def test_at_occurrences_are_per_key(self):
        inj = FaultInjector(plan_of(FaultSpec.make("p", at=(0,))))
        assert inj.fire("p", key="a") is not None
        assert inj.fire("p", key="b") is not None  # fresh stream per key
        assert inj.fire("p", key="a") is None

    def test_max_fires_caps_total(self):
        inj = FaultInjector(plan_of(FaultSpec.make("p", rate=1.0, max_fires=2)))
        fired = [inj.fire("p") is not None for _ in range(5)]
        assert fired == [True, True, False, False, False]

    def test_match_filters_on_context(self):
        inj = FaultInjector(plan_of(
            FaultSpec.make("p", match={"variant": "isp"})
        ))
        assert inj.fire("p", variant="naive") is None
        assert inj.fire("p", variant="isp") is not None
        assert inj.fire("p") is None  # missing context key does not match

    def test_unknown_point_is_noop(self):
        inj = FaultInjector(plan_of(FaultSpec.make("p")))
        assert inj.fire("другой") is None
        assert inj.trace() == []

    def test_payload_round_trips(self):
        inj = FaultInjector(plan_of(
            FaultSpec.make("p", "latency", seconds=0.01)
        ))
        act = inj.fire("p")
        assert act is not None
        assert act.payload == {"seconds": 0.01}

    def test_rate_validation(self):
        with pytest.raises(ValueError, match="rate"):
            FaultSpec.make("p", rate=1.5)


class TestDeterminism:
    def test_draw_is_pure(self):
        assert _draw(1, 0, "p", "k", 3) == _draw(1, 0, "p", "k", 3)
        assert _draw(1, 0, "p", "k", 3) != _draw(2, 0, "p", "k", 3)

    def test_same_plan_same_trace(self):
        spec = FaultSpec.make("p", rate=0.5)
        runs = []
        for _ in range(2):
            inj = FaultInjector(plan_of(spec, seed=123))
            for i in range(50):
                inj.fire("p", key=f"r{i}")
            runs.append(inj.trace_signature())
        assert runs[0] == runs[1]
        assert 0 < len(runs[0]) < 50  # a real coin, not a constant

    def test_different_seeds_differ(self):
        def sig(seed):
            inj = FaultInjector(FaultPlan.make(seed, [FaultSpec.make("p", rate=0.5)]))
            for i in range(64):
                inj.fire("p", key=f"r{i}")
            return inj.trace_signature()

        assert sig(1) != sig(2)

    def test_trace_signature_is_scheduling_independent(self):
        """Keyed decisions do not depend on the order threads hit them."""
        spec = FaultSpec.make("p", rate=0.5)

        def run(n_threads):
            inj = FaultInjector(plan_of(spec, seed=7))
            keys = [f"r{i}" for i in range(40)]

            def worker(chunk):
                for k in chunk:
                    inj.fire("p", key=k)

            threads = [
                threading.Thread(target=worker, args=(keys[i::n_threads],))
                for i in range(n_threads)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            return inj.trace_signature()

        assert run(1) == run(4)


class TestArming:
    def test_disarmed_fire_is_none(self):
        assert faults.active() is None
        assert faults.fire("p") is None

    def test_armed_context_installs_and_removes(self):
        plan = plan_of(FaultSpec.make("p"))
        with faults.armed(plan) as inj:
            assert faults.active() is inj
            assert faults.fire("p") is not None
        assert faults.active() is None

    def test_nested_arming_rejected(self):
        plan = plan_of(FaultSpec.make("p"))
        with faults.armed(plan):
            with pytest.raises(RuntimeError, match="already armed"):
                with faults.armed(plan):
                    pass
        assert faults.active() is None

    def test_fault_error_is_typed(self):
        err = FaultError("serve.engine.execute", "error")
        assert err.point == "serve.engine.execute"
        assert "injected fault" in str(err)
