"""Prediction model — paper Eq. 10 and the isp+m decision.

``G = R_reduced * O_ISP / O_naive``: the instruction-count gain discounted by
the occupancy ratio. ``G > 1`` predicts ISP to be faster; otherwise the
model "suggests falling back to the naive implementation" (Section VI-A.2).

Occupancy comes from the same theoretical-occupancy calculator the paper
used, fed by the compiler's register estimates for each variant.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..compiler.driver import compile_kernel
from ..compiler.frontend import KernelDescription
from ..compiler.isp import CompileError, Variant
from ..gpu.device import DeviceSpec, GTX680
from ..gpu.occupancy import compute_occupancy
from .calibration import calibrate
from .instructions import InstructionEstimate, estimate_instructions


def _artifact_key(desc: KernelDescription, block, device, degenerate: bool):
    """Cache key for size-independent model artifacts (calibration and
    register estimates do not depend on the image size; only the block-count
    arithmetic of Eqs. 7-8 does)."""
    from ..dsl.expr import walk

    boundaries = tuple(
        sorted((a.image.name, a.boundary.value) for a in desc.accessors)
    )
    n_nodes = sum(1 for _ in walk(desc.expr))
    return (desc.name, boundaries, desc.extent, n_nodes, block,
            device.name, degenerate)


#: (calibration, regs_naive, regs_isp or None) per artifact key.
_ARTIFACT_CACHE: dict[tuple, tuple] = {}


def clear_model_cache() -> None:
    _ARTIFACT_CACHE.clear()
    _PREPAD_CACHE.clear()
    _FUSED_CACHE.clear()


@dataclasses.dataclass(frozen=True)
class Prediction:
    """Model output for one kernel/configuration."""

    kernel: str
    device: str
    r_reduced: float
    occupancy_naive: float
    occupancy_isp: float
    gain: float  # the paper's G (Eq. 10)
    instructions: InstructionEstimate
    regs_naive: int
    regs_isp: int

    @property
    def use_isp(self) -> bool:
        return self.gain > 1.0

    @property
    def choice(self) -> Variant:
        return Variant.ISP if self.use_isp else Variant.NAIVE


def predict_kernel(
    desc: KernelDescription,
    *,
    block: tuple[int, int] = (32, 4),
    device: DeviceSpec = GTX680,
) -> Prediction:
    """Evaluate the model for one kernel (paper Eqs. 3-10)."""
    return _predict(desc, desc.width, desc.height, block, device)


def predict_for(
    desc: KernelDescription,
    width: Optional[int] = None,
    height: Optional[int] = None,
    *,
    pattern: Optional[str] = None,
    block: tuple[int, int] = (32, 4),
    device: DeviceSpec = GTX680,
) -> Prediction:
    """Cheap model evaluation for the serve-side autotuner.

    Calibration and register estimates are size-independent and cached by
    artifact key, so after the first call for a kernel shape only the
    block-count arithmetic of Eqs. 7-8 is redone — no recompilation. ``width``
    / ``height`` default to the traced geometry; ``pattern`` is a consistency
    check (a description is traced *under* a pattern, so predicting a
    different one requires re-tracing, not this entry point).
    """
    if pattern is not None:
        traced = {
            a.boundary.value
            for a in desc.accessors
            if a.boundary.value != "undefined"
        }
        if traced and traced != {pattern}:
            raise ValueError(
                f"{desc.name} was traced under pattern(s) {sorted(traced)}, "
                f"not {pattern!r}; re-trace the pipeline to predict it"
            )
    return _predict(
        desc,
        desc.width if width is None else width,
        desc.height if height is None else height,
        block,
        device,
    )


@dataclasses.dataclass(frozen=True)
class PrepadPrediction:
    """Analytic cost of the pre-padded path vs the naive (checked) kernel.

    ``copy_us``/``kernel_us`` come straight from the padding cost model
    (:func:`repro.runtime.padding.measure_padding_kernel`: peak-bandwidth
    pad copy + check-free Body kernel over every block); ``naive_us`` is the
    simulated timing of the fully checked single-region kernel. The gain is
    the analogue of Eq. 10 for the padding strategy: > 1 predicts prepad to
    beat naive *for a single invocation* — amortization across repeated
    requests (the serve workload) only improves on it, which is why the
    tuner treats this prior as a lower bound and lets measurement promote
    prepad near the crossover.
    """

    kernel: str
    device: str
    copy_us: float
    kernel_us: float
    naive_us: float

    @property
    def total_us(self) -> float:
        return self.copy_us + self.kernel_us

    @property
    def gain(self) -> float:
        if self.total_us <= 0.0:
            return 1.0
        return self.naive_us / self.total_us


#: PrepadPrediction per (artifact key) — prepad priors are size-dependent
#: only through the block-count arithmetic, but the underlying profile/
#: timing calls are already memoized per exact geometry, so key on it all.
_PREPAD_CACHE: dict[tuple, "PrepadPrediction"] = {}


def predict_prepad(
    desc: KernelDescription,
    *,
    block: tuple[int, int] = (32, 4),
    device: DeviceSpec = GTX680,
) -> PrepadPrediction:
    """Analytic prior for the pre-padded execution strategy.

    Neutral (gain exactly 1.0) for point operators — nothing to pad — and
    for degenerate geometries, where the padding model's check-free Body
    profile does not exist; measurement decides there.
    """
    key = (_artifact_key(desc, block, device, False),
           desc.width, desc.height)
    cached = _PREPAD_CACHE.get(key)
    if cached is not None:
        return cached

    neutral = PrepadPrediction(
        kernel=desc.name, device=device.name,
        copy_us=0.0, kernel_us=1.0, naive_us=1.0,
    )
    if not desc.needs_border_handling:
        _PREPAD_CACHE[key] = neutral
        return neutral
    from ..runtime.executor import profile_kernel
    from ..runtime.padding import measure_padding_kernel

    try:
        est = measure_padding_kernel(desc, block=block, device=device)
        naive_us = profile_kernel(
            desc, variant=Variant.NAIVE, block=block, device=device
        ).timing(device).time_us
    except (CompileError, ValueError, StopIteration):
        # Degenerate ISP geometry (no Body profile) or an unprofilable
        # shape: no analytic leg to stand on — stay neutral.
        _PREPAD_CACHE[key] = neutral
        return neutral
    pred = PrepadPrediction(
        kernel=desc.name,
        device=device.name,
        copy_us=est.copy_us,
        kernel_us=est.kernel_us,
        naive_us=naive_us,
    )
    _PREPAD_CACHE[key] = pred
    return pred


@dataclasses.dataclass(frozen=True)
class FusedPrediction:
    """Analytic fused-vs-staged crossover for a multi-kernel pipeline.

    The Jangda & Guha (arXiv:1909.07190) tradeoff in the terms of this
    model: staged execution pays every stage's kernel *plus* a DRAM
    round-trip per intermediate image (one write by the producer, one read
    per consumer, priced at peak bandwidth like
    :func:`repro.runtime.padding.pad_copy_time_us`); fused execution keeps
    intermediates tile-resident but re-runs each stage over its halo, so
    every stage's kernel cost is amplified by the fused schedule's exact
    computed-area ratio (:meth:`repro.compiler.fusion.FusedPlan
    .amplification` — geometry, not an estimate). ``gain > 1`` predicts
    fusion: the saved traffic outweighs the redundant halo recompute.
    Single-kernel pipelines are neutral by construction (no intermediates,
    amplification exactly 1).
    """

    pipeline: str
    device: str
    #: per-stage simulated naive kernel time (us)
    compute_us: dict[str, float]
    #: per-stage fused computed-area / image-area (0.0 = dead stage skipped)
    amplification: dict[str, float]
    #: DRAM round-trip cost of every staged intermediate (us)
    traffic_us: float
    #: fused SIMT megakernel scratchpad footprint (0 = no SIMT fused shape,
    #: e.g. degenerate geometry or over-budget smem)
    smem_bytes_per_block: int = 0
    #: occupancy after charging the fused scratchpad per block
    occupancy_fused: float = 1.0
    #: on-chip staging traffic of the fused megakernel (us) — what replaces
    #: the DRAM round-trips of ``traffic_us``
    smem_traffic_us: float = 0.0

    @property
    def staged_us(self) -> float:
        return sum(self.compute_us.values()) + self.traffic_us

    @property
    def fused_us(self) -> float:
        return sum(
            us * self.amplification.get(name, 0.0)
            for name, us in self.compute_us.items()
        )

    @property
    def gain(self) -> float:
        if self.fused_us <= 0.0 or self.staged_us <= 0.0:
            return 1.0
        return self.staged_us / self.fused_us

    @property
    def use_fused(self) -> bool:
        return self.gain > 1.0

    @property
    def simt_fused_us(self) -> float:
        """Megakernel estimate: halo-amplified compute stretched by the
        scratchpad's occupancy charge, plus the on-chip staging traffic
        that replaces the DRAM intermediates."""
        if self.smem_bytes_per_block <= 0:
            return self.fused_us
        return (
            self.fused_us / max(self.occupancy_fused, 1e-6)
            + self.smem_traffic_us
        )

    @property
    def simt_gain(self) -> float:
        """Staged-vs-megakernel ratio; 0.0 when no SIMT fused shape exists
        (the simulator would run the staged fallback)."""
        if self.smem_bytes_per_block <= 0:
            return 0.0
        if self.simt_fused_us <= 0.0 or self.staged_us <= 0.0:
            return 1.0
        return self.staged_us / self.simt_fused_us


#: On-chip (shared-memory) bandwidth advantage over DRAM used to price the
#: megakernel's staging traffic — a stable order-of-magnitude across the zoo.
SMEM_BANDWIDTH_RATIO = 8.0

_FUSED_CACHE: dict[tuple, "FusedPrediction"] = {}


def predict_fused(
    descs,
    *,
    tile_rows: Optional[int] = None,
    tile_cols: Optional[int] = None,
    block: tuple[int, int] = (32, 4),
    device: DeviceSpec = GTX680,
    name: str = "pipeline",
) -> FusedPrediction:
    """Analytic prior for fused overlapped-tile pipeline execution.

    ``descs`` are the traced stages in pipeline order (what
    ``serve.plan.trace_app`` returns). Neutral (gain exactly 1.0) when any
    stage is unprofilable — degenerate geometry leaves no Body profile to
    price compute with, so measurement decides, same stance as
    :func:`predict_prepad`.
    """
    from ..compiler.fusion import fuse_descs
    from ..runtime.make_border import ELEMENT_BYTES

    descs = tuple(descs)
    key = (
        tuple(d.stable_digest() for d in descs),
        tile_rows, tile_cols, block, device.name,
    )
    cached = _FUSED_CACHE.get(key)
    if cached is not None:
        return cached

    plan = fuse_descs(descs, tile_rows=tile_rows, tile_cols=tile_cols,
                      name=name)
    amp = plan.amplification()
    neutral = FusedPrediction(
        pipeline=name, device=device.name,
        compute_us={d.output_name: 1.0 for d in descs},
        amplification={d.output_name: 1.0 for d in descs},
        traffic_us=0.0,
    )
    from ..runtime.executor import profile_kernel

    compute: dict[str, float] = {}
    for d in descs:
        try:
            compute[d.output_name] = profile_kernel(
                d, variant=Variant.NAIVE, block=block, device=device
            ).timing(device).time_us
        except (CompileError, ValueError, StopIteration):
            _FUSED_CACHE[key] = neutral
            return neutral

    readers: dict[str, int] = {}
    for d in descs:
        for acc in d.accessors:
            readers[acc.image.name] = readers.get(acc.image.name, 0) + 1
    area_bytes = plan.width * plan.height * ELEMENT_BYTES
    traffic_bytes = sum(
        (1 + readers.get(d.output_name, 0)) * area_bytes
        for d in descs[:-1]
    )
    traffic_us = traffic_bytes / (device.mem_bandwidth_gbs * 1e9) * 1e6

    # SIMT megakernel terms: scratchpad footprint -> occupancy charge, and
    # the on-chip staging traffic that replaces the DRAM round-trips. Zero
    # when the megakernel shape does not exist for this geometry (the
    # simulator falls back to staged NAIVE, so there is nothing to price).
    smem_bytes = 0
    occ_fused = 1.0
    smem_traffic_us = 0.0
    from ..compiler.fusion_simt import compile_fused_simt

    try:
        cfk = compile_fused_simt(plan, block=block, device=device)
    except CompileError:
        cfk = None
    if cfk is not None:
        from ..gpu.occupancy import compute_occupancy

        smem_bytes = cfk.layout.total_bytes
        occ_fused = compute_occupancy(
            device, block[0] * block[1],
            cfk.registers.allocated if cfk.registers else 0,
            shared_bytes=smem_bytes,
        ).occupancy
        n_blocks = cfk.launch_config.grid[0] * cfk.launch_config.grid[1]
        # Each window is stored once and read roughly once per consumer
        # tap; 2x total bytes is the round-trip floor. Shared memory runs
        # about an order of magnitude ahead of DRAM on every zoo part.
        smem_traffic_us = (
            n_blocks * smem_bytes * 2
            / (device.mem_bandwidth_gbs * 1e9 * SMEM_BANDWIDTH_RATIO) * 1e6
        )

    pred = FusedPrediction(
        pipeline=name,
        device=device.name,
        compute_us=compute,
        amplification=amp,
        traffic_us=traffic_us,
        smem_bytes_per_block=smem_bytes,
        occupancy_fused=occ_fused,
        smem_traffic_us=smem_traffic_us,
    )
    _FUSED_CACHE[key] = pred
    return pred


def _predict(
    desc: KernelDescription,
    width: int,
    height: int,
    block: tuple[int, int],
    device: DeviceSpec,
) -> Prediction:
    if not desc.needs_border_handling:
        occ = 1.0
        est = estimate_instructions(calibrate(desc, block), width, height, *block)
        return Prediction(
            kernel=desc.name, device=device.name,
            r_reduced=1.0, occupancy_naive=occ, occupancy_isp=occ, gain=1.0,
            instructions=est, regs_naive=0, regs_isp=0,
        )

    from ..compiler.regions import RegionGeometry

    hx, hy = desc.extent
    degenerate = RegionGeometry.compute(width, height, hx, hy, block).degenerate

    key = _artifact_key(desc, block, device, degenerate)
    cached = _ARTIFACT_CACHE.get(key)
    if cached is not None:
        cal, regs_naive, regs_isp = cached
    else:
        cal = calibrate(desc, block)
        ck_naive = compile_kernel(
            desc, variant=Variant.NAIVE, block=block, device=device
        )
        regs_naive = ck_naive.registers.allocated
        if degenerate:
            regs_isp = None
        else:
            try:
                ck_isp = compile_kernel(
                    desc, variant=Variant.ISP, block=block, device=device,
                    fallback_to_naive=False,
                )
                regs_isp = ck_isp.registers.allocated
            except CompileError:
                # The *traced* geometry is degenerate even though the target
                # size is not (predict_for with an enlarged size): no ISP
                # artifact exists to estimate registers from.
                regs_isp = None
        _ARTIFACT_CACHE[key] = (cal, regs_naive, regs_isp)

    est = estimate_instructions(cal, width, height, *block)

    threads = block[0] * block[1]
    if regs_isp is None:
        # Degenerate geometry: ISP is not even expressible; G = 0 forces naive.
        occ_n = compute_occupancy(device, threads, regs_naive).occupancy
        return Prediction(
            kernel=desc.name, device=device.name,
            r_reduced=0.0, occupancy_naive=occ_n, occupancy_isp=occ_n, gain=0.0,
            instructions=est,
            regs_naive=regs_naive,
            regs_isp=regs_naive,
        )

    occ_naive = compute_occupancy(device, threads, regs_naive)
    occ_isp = compute_occupancy(device, threads, regs_isp)

    r = est.r_reduced
    gain = r * (occ_isp.occupancy / occ_naive.occupancy)  # Eq. 10
    return Prediction(
        kernel=desc.name,
        device=device.name,
        r_reduced=r,
        occupancy_naive=occ_naive.occupancy,
        occupancy_isp=occ_isp.occupancy,
        gain=gain,
        instructions=est,
        regs_naive=regs_naive,
        regs_isp=regs_isp,
    )
