"""Unit tests for the fusion pass (repro.compiler.fusion).

The pass is pure geometry — traced kernels + tile shape in, a deterministic
overlapped-tile schedule out — so everything here is exact: pinned halos for
the corpus pipelines, coverage/partition invariants of the tile schedules,
and the dead-stage skip that distinguishes fused cost from staged cost.
"""

import numpy as np
import pytest

from repro.compiler import cumulative_halos, fuse_descs, trace_kernel
from repro.compiler.fusion import DEFAULT_TILE_ROWS, _axis_hull
from repro.dsl import Boundary, Image
from repro.sanitize import make_chain_pipeline
from repro.serve.plan import trace_app


def _chain_descs(size, extents, boundary=Boundary.CLAMP):
    rng = np.random.default_rng(0)
    masks = [
        rng.uniform(0.25, 1.0, (2 * e + 1, 2 * e + 1)).astype(np.float32)
        for e in extents
    ]
    pipe = make_chain_pipeline(size, size, boundary, masks)
    return [trace_kernel(k) for k in pipe]


class TestCumulativeHalos:
    def test_night_suffix_pattern(self):
        """The a-trous chain 1,2,4,8 + point tonemap: each image's halo is
        the sum of the extents *downstream* of it (paper-app pin)."""
        halos = cumulative_halos(list(trace_app("night", "mirror", 64, 64)))
        assert halos == {
            "out": (0, 0),
            "atrous3": (0, 0),
            "atrous2": (8, 8),
            "atrous1": (12, 12),
            "atrous0": (14, 14),
            "inp": (15, 15),
        }

    def test_sobel_diamond(self):
        """dx and dy are siblings feeding the point-op magnitude: both
        carry zero halo, the shared input carries the 3x3 extent."""
        halos = cumulative_halos(list(trace_app("sobel", "clamp", 64, 64)))
        assert halos == {
            "out": (0, 0), "dx": (0, 0), "dy": (0, 0), "inp": (1, 1),
        }

    def test_halos_independent_of_pattern(self):
        for pat in ("clamp", "mirror", "repeat", "constant"):
            assert cumulative_halos(
                list(trace_app("night", pat, 64, 64))
            )["inp"] == (15, 15)


class TestAxisHull:
    def test_in_range_is_identity(self):
        assert _axis_hull(2, 5, 10, Boundary.CLAMP) == (2, 5)

    def test_clamp_clips_to_edges(self):
        assert _axis_hull(-3, 4, 10, Boundary.CLAMP) == (0, 4)
        assert _axis_hull(7, 14, 10, Boundary.CLAMP) == (7, 10)

    def test_repeat_wraps_to_far_side(self):
        # reads [-2, 3) under REPEAT touch {8, 9} and {0, 1, 2}: the hull
        # is the whole axis — a clipped expansion would silently miss the
        # wrapped-far-side pixels.
        assert _axis_hull(-2, 3, 10, Boundary.REPEAT) == (0, 10)

    def test_deep_mirror_folds_back(self):
        # half-extent far beyond the axis: the mirror walk stays in range
        # but covers it entirely.
        assert _axis_hull(-25, 27, 3, Boundary.MIRROR) == (0, 3)

    def test_constant_hulls_to_clamped_edge(self):
        # CONSTANT reads still index the clamped coordinate before the mask
        # is applied (vectorized evaluator's np.maximum/np.minimum).
        assert _axis_hull(-5, 2, 10, Boundary.CONSTANT) == (0, 2)

    def test_empty_range(self):
        assert _axis_hull(4, 4, 10, Boundary.REPEAT) == (4, 4)


class TestFusePlan:
    def test_tile_grid_covers_output_exactly(self):
        descs = _chain_descs(10, (1, 2))
        plan = fuse_descs(descs, tile_rows=3, tile_cols=4)
        covered = np.zeros((10, 10), dtype=int)
        for tile in plan.tiles:
            x0, x1, y0, y1 = tile.rect
            covered[y0:y1, x0:x1] += 1
        assert (covered == 1).all()

    def test_subrects_partition_each_step_region(self):
        descs = _chain_descs(9, (2, 1), Boundary.MIRROR)
        plan = fuse_descs(descs, tile_rows=2, tile_cols=5)
        for tile in plan.tiles:
            for step in tile.steps:
                x0, x1, y0, y1 = step.region
                cells = np.zeros((y1 - y0, x1 - x0), dtype=int)
                for sx0, sx1, sy0, sy1, _checks in step.subrects:
                    assert x0 <= sx0 < sx1 <= x1
                    assert y0 <= sy0 < sy1 <= y1
                    cells[sy0 - y0:sy1 - y0, sx0 - x0:sx1 - x0] += 1
                assert (cells == 1).all(), (tile.rect, step.region)

    def test_interior_tile_is_check_free(self):
        descs = _chain_descs(64, (1,))
        plan = fuse_descs(descs, tile_rows=16, tile_cols=16)
        interior = [
            t for t in plan.tiles
            if t.rect == (16, 32, 16, 32)  # no image border in reach
        ]
        (tile,) = interior
        (step,) = tile.steps
        assert step.subrects == ((16, 32, 16, 32, frozenset()),)

    def test_corner_tile_carries_its_border_checks(self):
        descs = _chain_descs(64, (1,))
        plan = fuse_descs(descs, tile_rows=16, tile_cols=16)
        (step,) = plan.tiles[0].steps  # x[0:16) y[0:16)
        checks = {c for *_, c in step.subrects}
        assert frozenset({"left", "top"}) in checks
        assert frozenset() in checks  # the tile interior stays free

    def test_dead_stage_skipped(self):
        """A produced-but-never-read image gets no steps, amplification
        0.0, and is excluded from the live set — fused execution simply
        never computes it, while staged execution still pays for it."""
        from tests.conftest import ConvKernel
        from repro.dsl import (
            Accessor, BoundaryCondition, IterationSpace, Mask, Pipeline,
        )

        mask = Mask(np.ones((3, 3), np.float32) / 9)
        a, b, c, d = (Image(8, 8, n) for n in "abcd")

        def stage(src, dst):
            acc = Accessor(BoundaryCondition(src, Boundary.CLAMP))
            return ConvKernel(IterationSpace(dst), acc, mask,
                              kernel_name=f"k_{dst.name}")

        pipe = Pipeline("deadstage", [stage(a, b), stage(a, d), stage(b, c)])
        plan = fuse_descs([trace_kernel(k) for k in pipe])
        assert plan.live == frozenset({"b", "c"})
        assert "d" not in plan.halos
        amp = plan.amplification()
        assert amp["d"] == 0.0
        assert amp["c"] == 1.0
        staged_names = {plan.descs[s.stage].output_name
                        for t in plan.tiles for s in t.steps}
        assert staged_names == {"b", "c"}

    def test_tile_dims_clamped_to_image(self):
        descs = _chain_descs(6, (1,))
        plan = fuse_descs(descs, tile_rows=9999, tile_cols=0)
        assert plan.tile_rows == 6
        assert plan.tile_cols == 1

    def test_default_tile_rows(self):
        descs = _chain_descs(4, (1,))
        plan = fuse_descs(descs)
        assert plan.tile_rows == min(DEFAULT_TILE_ROWS, 4)
        assert plan.tile_cols == 4

    def test_geometry_mismatch_rejected(self):
        descs = _chain_descs(8, (1,)) + _chain_descs(6, (1,))
        with pytest.raises(ValueError, match="geometry"):
            fuse_descs(descs)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one stage"):
            fuse_descs([])

    def test_describe_deterministic_and_complete(self):
        descs = trace_app("sobel", "repeat", 32, 32)
        a = fuse_descs(list(descs), tile_rows=8, name="sobel").describe()
        b = fuse_descs(list(descs), tile_rows=8, name="sobel").describe()
        assert a == b
        assert "fused-plan sobel" in a
        assert "halo inp=(1,1)" in a
        assert a.count("tile x[") == 4

    def test_external_inputs_in_read_order(self):
        plan = fuse_descs(list(trace_app("sobel", "clamp", 16, 16)))
        assert plan.external_inputs == ("inp",)
        assert plan.output_name == "out"
