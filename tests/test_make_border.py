"""The raw-speed tier's foundations: make_border, the shared degenerate
predicate, the element-size single source, and the prepad cost prior.

The differential/property coverage of prepad *execution* lives in
``test_differential_random.py`` and ``test_border_properties.py``; this file
pins the module contracts around it:

* :func:`make_border` input validation, zero-extent identity, caching
  semantics of :func:`padded_for` (identity-validated, never stale);
* the satellite-1 bugfix: :func:`degenerate_geometry` is the *one*
  pixel-granularity fallback predicate, its ``w == 2*hx`` boundary is not
  degenerate (empty Body, all strips single-sided — still sound), and it
  agrees exactly with the compiler's :class:`RegionGeometry` at block
  granularity ``(1, 1)`` over a full sweep;
* the satellite-2 bugfix: ``pad_copy_time_us`` derives its element size
  from :mod:`repro.runtime.make_border` and a zero-extent window is charged
  neither copy nor launch overhead;
* :func:`repro.model.prediction.predict_prepad` shapes (neutral for point
  operators and degenerate geometries).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compiler.frontend import trace_kernel
from repro.compiler.regions import RegionGeometry
from repro.dsl import Boundary
from repro.runtime.make_border import (
    ELEMENT_BYTES,
    ELEMENT_DTYPE,
    make_border,
    pad_key,
    padded_bytes,
    padded_for,
    padded_shape,
)
from repro.runtime.vectorized import (
    VECTORIZED_VARIANTS,
    degenerate_geometry,
    run_kernel_vectorized,
)

from .conftest import make_conv_kernel


class TestMakeBorderContract:
    def test_zero_extent_returns_input_object(self):
        src = np.ones((4, 5), dtype=np.float32)
        assert make_border(src, 0, 0, Boundary.CLAMP) is src

    def test_rejects_1d_input(self):
        with pytest.raises(ValueError, match=r"\(\.\.\., H, W\)"):
            make_border(np.ones(5, dtype=np.float32), 1, 1, Boundary.CLAMP)

    def test_rejects_negative_extent(self):
        src = np.ones((4, 4), dtype=np.float32)
        with pytest.raises(ValueError, match="negative half-extent"):
            make_border(src, -1, 0, Boundary.CLAMP)

    def test_rejects_undefined_boundary(self):
        src = np.ones((4, 4), dtype=np.float32)
        with pytest.raises(ValueError, match="UNDEFINED"):
            make_border(src, 1, 1, Boundary.UNDEFINED)

    def test_output_is_contiguous_float32(self):
        src = np.arange(20, dtype=np.float64).reshape(4, 5)
        out = make_border(src, 2, 1, Boundary.MIRROR)
        assert out.dtype == ELEMENT_DTYPE
        assert out.flags["C_CONTIGUOUS"]
        assert out.shape == padded_shape((4, 5), 2, 1)

    def test_padded_shape_and_bytes_agree(self):
        shape = padded_shape((7, 9), 3, 2)
        assert shape == (7 + 4, 9 + 6)
        assert padded_bytes(9, 7, 3, 2) == shape[0] * shape[1] * ELEMENT_BYTES


class TestPaddedForCache:
    def test_cache_hit_requires_source_identity(self):
        cache: dict = {}
        a = np.random.default_rng(0).random((6, 6)).astype(np.float32)
        images = {"inp": a}
        first = padded_for(images, "inp", 2, 2, Boundary.CLAMP, cache=cache)
        again = padded_for(images, "inp", 2, 2, Boundary.CLAMP, cache=cache)
        assert again is first  # same source object: reused

        # Rebinding the name to a *different* array must re-pad even though
        # the cache key (name, pattern, extent) is identical — a stale apron
        # would silently serve the old image's border.
        images["inp"] = a + 1.0
        fresh = padded_for(images, "inp", 2, 2, Boundary.CLAMP, cache=cache)
        assert fresh is not first
        assert np.array_equal(
            fresh, make_border(images["inp"], 2, 2, Boundary.CLAMP)
        )

    def test_distinct_patterns_get_distinct_entries(self):
        cache: dict = {}
        images = {"inp": np.random.default_rng(1).random((5, 5))
                  .astype(np.float32)}
        padded_for(images, "inp", 1, 1, Boundary.CLAMP, cache=cache)
        padded_for(images, "inp", 1, 1, Boundary.MIRROR, cache=cache)
        padded_for(images, "inp", 2, 1, Boundary.CLAMP, cache=cache)
        assert len(cache) == 3
        assert pad_key("inp", Boundary.CLAMP, 0.0, 1, 1) in cache

    def test_no_cache_always_pads(self):
        images = {"inp": np.ones((4, 4), dtype=np.float32)}
        a = padded_for(images, "inp", 1, 1, Boundary.REPEAT)
        b = padded_for(images, "inp", 1, 1, Boundary.REPEAT)
        assert a is not b


class TestDegenerateGeometryPredicate:
    """Satellite-1 bugfix: one shared fallback predicate, exact thresholds."""

    def test_edge_pins_around_twice_extent(self):
        # w == 2*hx - 1: the T/B strips would straddle both edges -> degenerate
        # w == 2*hx    : empty Body, single-sided strips exactly tile -> fine
        # w == 2*hx + 1: one-column Body -> fine
        for hx in (1, 2, 4):
            h = 32
            assert degenerate_geometry(2 * hx - 1, h, hx, 0)
            assert not degenerate_geometry(2 * hx, h, hx, 0)
            assert not degenerate_geometry(2 * hx + 1, h, hx, 0)
        for hy in (1, 2, 4):
            w = 32
            assert degenerate_geometry(w, 2 * hy - 1, 0, hy)
            assert not degenerate_geometry(w, 2 * hy, 0, hy)
            assert not degenerate_geometry(w, 2 * hy + 1, 0, hy)

    def test_zero_extent_never_degenerate(self):
        assert not degenerate_geometry(1, 1, 0, 0)

    def test_agrees_with_compiler_geometry_at_pixel_granularity(self):
        """The executor's pixel-granularity predicate IS the compiler's
        RegionGeometry.degenerate at block (1, 1) — the two layers cannot
        disagree about when ISP falls back."""
        for w in range(1, 13):
            for h in range(1, 13):
                for hx in range(0, 5):
                    for hy in range(0, 5):
                        geom = RegionGeometry.compute(w, h, hx, hy, (1, 1))
                        assert degenerate_geometry(w, h, hx, hy) == \
                            geom.degenerate, (w, h, hx, hy)

    def test_executor_correct_across_the_boundary(self):
        """w in {2hx-1, 2hx, 2hx+1}: isp (falling back or partitioning) and
        prepad all match naive bit-exactly."""
        rng = np.random.default_rng(3)
        coeffs = rng.uniform(-1, 1, size=(5, 5)).astype(np.float32)
        hx = 2
        for w in (2 * hx - 1, 2 * hx, 2 * hx + 1):
            for pattern in (Boundary.CLAMP, Boundary.MIRROR,
                            Boundary.REPEAT, Boundary.CONSTANT):
                src = rng.random((9, w)).astype(np.float32)
                desc = trace_kernel(
                    make_conv_kernel(w, 9, pattern, coeffs, 0.25)
                )
                naive = run_kernel_vectorized(desc, {"inp": src},
                                              variant="naive")
                for variant in VECTORIZED_VARIANTS:
                    out = run_kernel_vectorized(desc, {"inp": src},
                                                variant=variant)
                    assert np.array_equal(out, naive), (variant, pattern, w)


class TestPadCopyCost:
    """Satellite-2 bugfix: one element-size source, no phantom launch."""

    def test_element_size_comes_from_make_border(self):
        from repro.gpu.device import GTX680

        from repro.runtime.padding import pad_copy_time_us

        w, h, hx, hy = 64, 32, 3, 2
        _, padded = pad_copy_time_us(GTX680, w, h, hx, hy)
        assert padded == padded_bytes(w, h, hx, hy)

    def test_zero_extent_charges_nothing(self):
        from repro.gpu.device import GTX680

        from repro.runtime.padding import pad_copy_time_us

        us, padded = pad_copy_time_us(GTX680, 128, 128, 0, 0)
        assert us == 0.0  # no pad kernel: no copy, no launch overhead
        assert padded == 128 * 128 * ELEMENT_BYTES

    def test_point_operator_estimate_has_zero_copy(self):
        from repro.runtime.padding import measure_padding_kernel
        from repro.serve.plan import trace_app

        descs = trace_app("sobel", "clamp", 64, 64)
        point = [d for d in descs if d.is_point_operator]
        assert point
        est = measure_padding_kernel(point[0])
        assert est.copy_us == 0.0
        assert est.kernel_us > 0.0


class TestPredictPrepad:
    def test_bordered_kernel_has_positive_costs(self):
        from repro.model.prediction import predict_prepad
        from repro.serve.plan import trace_app

        desc = trace_app("gaussian", "clamp", 512, 512)[0]
        pred = predict_prepad(desc)
        assert pred.copy_us > 0.0
        assert pred.kernel_us > 0.0
        assert pred.naive_us > 0.0
        assert pred.total_us == pred.copy_us + pred.kernel_us
        assert pred.gain == pred.naive_us / pred.total_us

    def test_point_operator_is_neutral(self):
        from repro.model.prediction import predict_prepad
        from repro.serve.plan import trace_app

        descs = trace_app("sobel", "clamp", 64, 64)
        point = [d for d in descs if d.is_point_operator][0]
        assert predict_prepad(point).gain == 1.0

    def test_degenerate_geometry_is_neutral(self):
        from repro.model.prediction import predict_prepad

        rng = np.random.default_rng(0)
        coeffs = rng.uniform(-1, 1, (5, 5)).astype(np.float32)
        desc = trace_kernel(make_conv_kernel(3, 3, Boundary.CLAMP, coeffs))
        assert predict_prepad(desc).gain == 1.0
