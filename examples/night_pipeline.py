#!/usr/bin/env python3
"""Night filter — the paper's five-kernel pipeline (Section VI).

Four a-trous (with holes) smoothing stages with window sizes 3x3, 5x5, 9x9
and 17x17 — each only 9 real taps, but with a border extent that grows with
the dilation — followed by Reinhard tone mapping (a point operator).

The interesting ISP angle: the later a-trous stages have *wide* border
regions (hx = hy = 8 blocks of margin for the 17x17 stage), so the border/
body trade-off shifts stage by stage. This example prints the per-stage
geometry, validates the pipeline functionally, and reports per-stage
speedups.

Run:  python examples/night_pipeline.py
"""

import numpy as np

from repro import Boundary, GTX680, Variant
from repro.compiler import RegionGeometry, trace_kernel
from repro.filters import night
from repro.filters.reference import night_reference
from repro.runtime import measure_pipeline, run_pipeline_simt


def low_light_scene(size: int, rng) -> np.ndarray:
    """Dim gradient + bright spots + heavy shot noise."""
    y, x = np.mgrid[0:size, 0:size].astype(np.float32)
    base = 0.08 + 0.05 * (x / size)
    for cx, cy in [(size // 4, size // 3), (3 * size // 4, 2 * size // 3)]:
        base += 0.5 * np.exp(-(((x - cx) ** 2 + (y - cy) ** 2)
                               / (2 * (size / 12) ** 2))).astype(np.float32)
    noisy = base + rng.normal(0, 0.03, base.shape)
    return np.clip(noisy, 0, 1).astype(np.float32)


def main():
    rng = np.random.default_rng(7)
    size = 64
    src = low_light_scene(size, rng)

    pipe = night.build_pipeline(size, size, Boundary.MIRROR)
    result = run_pipeline_simt(pipe, variant=Variant.ISP, block=(16, 4),
                               inputs={"inp": src})
    ref = night_reference(src, Boundary.MIRROR)
    print(f"pipeline output vs reference: max |err| = "
          f"{np.abs(result.output - ref).max():.2e}")
    print(f"dynamic range after tone mapping: "
          f"[{result.output.min():.3f}, {result.output.max():.3f}]\n")

    # --- per-stage geometry: border width grows with the dilation ----------
    perf_size = 1024
    perf_pipe = night.build_pipeline(perf_size, perf_size, Boundary.MIRROR)
    print(f"per-stage ISP geometry at {perf_size}x{perf_size}, block 32x4:")
    for kernel in perf_pipe:
        desc = trace_kernel(kernel)
        hx, hy = desc.extent
        if desc.is_point_operator:
            print(f"  {desc.name:10s}: point operator — no border handling")
            continue
        geom = RegionGeometry.compute(perf_size, perf_size, hx, hy, (32, 4))
        print(f"  {desc.name:10s}: window {desc.window_size[0]}x"
              f"{desc.window_size[1]}, {len(desc.accesses[next(iter(desc.accesses))])}"
              f" taps, body blocks {100 * geom.body_fraction():.1f}%")

    # --- per-stage timing ----------------------------------------------------
    print("\nper-kernel speedups (GTX680, Mirror):")
    mn = measure_pipeline(perf_pipe, variant=Variant.NAIVE, device=GTX680)
    mi = measure_pipeline(perf_pipe, variant=Variant.ISP, device=GTX680)
    for kn, ki in zip(mn.kernels, mi.kernels):
        print(f"  {kn.name:10s}: naive {kn.timing.time_us:9.1f} "
              f"-> isp {ki.timing.time_us:9.1f} pseudo-us  "
              f"({kn.timing.time_us / ki.timing.time_us:.3f}x)")
    print(f"  {'TOTAL':10s}: {mn.total_us:9.1f} -> {mi.total_us:9.1f} "
          f"({mn.total_us / mi.total_us:.3f}x)")


if __name__ == "__main__":
    main()
