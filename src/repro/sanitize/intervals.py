"""Integer interval domain for the static bounds sanitizer.

A tiny abstract domain over signed integers extended with ``±inf``.  The
analyzer (:mod:`repro.sanitize.static`) interprets the virtual ISA's integer
arithmetic over this domain to bound every load/store address; everything
here is deliberately closed-form — no widening is needed because the only
loops in generated kernels (the Repeat pattern's ``while`` loops) are
summarized by a bounded local fixpoint.

All transfer functions are *sound over-approximations*: the concrete result
of the operation on any members of the input intervals is contained in the
returned interval.  ``rem`` models the C/PTX truncating remainder that the
SIMT simulator implements (sign follows the dividend).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Union

Num = Union[int, float]  # int or ±math.inf

_INF = math.inf


def _mul(a: Num, b: Num) -> Num:
    """Product with the convention 0 * inf = 0 (sound for interval corners
    where the zero factor is exact)."""
    if a == 0 or b == 0:
        return 0
    return a * b


@dataclasses.dataclass(frozen=True)
class Interval:
    """Closed interval [lo, hi]; ``lo > hi`` encodes the empty interval."""

    lo: Num
    hi: Num

    # ------------------------------------------------------------- predicates

    @property
    def empty(self) -> bool:
        return self.lo > self.hi

    @property
    def is_const(self) -> bool:
        return self.lo == self.hi and not isinstance(self.lo, float)

    @property
    def bounded(self) -> bool:
        return not self.empty and self.lo > -_INF and self.hi < _INF

    def __contains__(self, value: Num) -> bool:
        return self.lo <= value <= self.hi

    def __str__(self) -> str:
        if self.empty:
            return "[]"
        return f"[{self.lo}, {self.hi}]"

    # ------------------------------------------------------------ lattice ops

    def union(self, other: "Interval") -> "Interval":
        if self.empty:
            return other
        if other.empty:
            return self
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def intersect(self, other: "Interval") -> "Interval":
        return Interval(max(self.lo, other.lo), min(self.hi, other.hi))

    # -------------------------------------------------------------- transfer

    def add(self, other: "Interval") -> "Interval":
        if self.empty or other.empty:
            return EMPTY
        return Interval(self.lo + other.lo, self.hi + other.hi)

    def sub(self, other: "Interval") -> "Interval":
        if self.empty or other.empty:
            return EMPTY
        return Interval(self.lo - other.hi, self.hi - other.lo)

    def neg(self) -> "Interval":
        if self.empty:
            return EMPTY
        return Interval(-self.hi, -self.lo)

    def abs_(self) -> "Interval":
        if self.empty:
            return EMPTY
        if self.lo >= 0:
            return self
        if self.hi <= 0:
            return self.neg()
        return Interval(0, max(-self.lo, self.hi))

    def mul(self, other: "Interval") -> "Interval":
        if self.empty or other.empty:
            return EMPTY
        corners = [
            _mul(self.lo, other.lo),
            _mul(self.lo, other.hi),
            _mul(self.hi, other.lo),
            _mul(self.hi, other.hi),
        ]
        return Interval(min(corners), max(corners))

    def min_(self, other: "Interval") -> "Interval":
        if self.empty or other.empty:
            return EMPTY
        return Interval(min(self.lo, other.lo), min(self.hi, other.hi))

    def max_(self, other: "Interval") -> "Interval":
        if self.empty or other.empty:
            return EMPTY
        return Interval(max(self.lo, other.lo), max(self.hi, other.hi))

    def shl(self, bits: "Interval") -> "Interval":
        if self.empty or bits.empty:
            return EMPTY
        if not bits.is_const or bits.lo < 0:
            return TOP
        k = 1 << int(bits.lo)
        return Interval(_mul(self.lo, k), _mul(self.hi, k))

    def shr(self, bits: "Interval") -> "Interval":
        """Arithmetic right shift = floor division by 2**k (matches both the
        simulator's ``>>`` on int64 and Python's floor semantics)."""
        if self.empty or bits.empty:
            return EMPTY
        if not bits.is_const or bits.lo < 0:
            return TOP
        k = 1 << int(bits.lo)
        lo = self.lo if self.lo == -_INF else math.floor(self.lo / k)
        hi = self.hi if self.hi == _INF else math.floor(self.hi / k)
        return Interval(lo, hi)

    def rem_trunc(self, divisor: "Interval") -> "Interval":
        """C/PTX truncating remainder: result sign follows the dividend and
        ``|result| < |divisor|``."""
        if self.empty or divisor.empty:
            return EMPTY
        d_mag = max(abs(divisor.lo), abs(divisor.hi))
        if d_mag == 0:
            return Interval(0, 0)  # simulator defines x % 0 == 0
        if d_mag == _INF:
            return TOP
        bound = d_mag - 1
        # A dividend interval entirely inside (-|d|, |d|) is untouched by the
        # remainder (|x| < |d|  =>  x % d == x), for any divisor of that
        # minimum magnitude.
        if divisor.lo <= 0 <= divisor.hi:
            d_min = 0  # divisor interval spans zero
        else:
            d_min = min(abs(divisor.lo), abs(divisor.hi))
        if d_min > 0 and self.lo >= -(d_min - 1) and self.hi <= d_min - 1:
            return self
        lo = 0 if self.lo >= 0 else -bound
        hi = 0 if self.hi <= 0 else bound
        return Interval(lo, hi)

    def div_trunc(self, divisor: "Interval") -> "Interval":
        if self.empty or divisor.empty:
            return EMPTY
        if not divisor.is_const or divisor.lo == 0:
            return TOP
        d = int(divisor.lo)
        corners = []
        for v in (self.lo, self.hi):
            if isinstance(v, float) and math.isinf(v):
                corners.append(v if d > 0 else -v)
            else:
                corners.append(math.trunc(v / d))
        return Interval(min(corners), max(corners))


TOP = Interval(-_INF, _INF)
EMPTY = Interval(1, 0)


def const(value: int) -> Interval:
    return Interval(value, value)


def at_most(hi: Num) -> Interval:
    return Interval(-_INF, hi)


def at_least(lo: Num) -> Interval:
    return Interval(lo, _INF)
