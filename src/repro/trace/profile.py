"""Per-ISP-region dynamic profiles and the measured-vs-predicted report.

The paper's claim is *regional*: ISP removes border-check instructions from
the Body region (Table I) and the analytic model (Eqs. 1-10) predicts the
aggregate effect as ``R_reduced`` and ``G``. This module closes the loop in
production:

* :class:`RegionProfile` — measured dynamic instructions of one kernel,
  broken down by ISP region tag and accounting role (``check`` / ``switch``
  / ``kernel`` / ``addr``), either lifted from a live
  :class:`~repro.gpu.profiler.Profiler` (SIMT executions) or scaled up from
  representative-block profiles (cheap, size-independent — paper Eq. 8);
* :class:`RegionComparison` / :func:`measured_vs_predicted` — the measured
  ``R_reduced = N_naive / N_ISP`` of the simulator next to
  :func:`repro.model.prediction.predict_for`'s prediction, per kernel, with
  the relative error the acceptance gate checks (within 10%).
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from ..compiler.frontend import KernelDescription
from ..compiler.isp import Variant
from ..gpu.device import DeviceSpec, GTX680
from ..gpu.profiler import Profiler


@dataclasses.dataclass(frozen=True)
class RegionProfile:
    """Measured dynamic warp instructions of one kernel execution, by
    ISP region tag and by accounting role (whole grid)."""

    kernel: str
    variant: str
    warp_instructions: int
    by_region: dict[str, int]
    by_role: dict[str, int]
    #: architectural event counters (branch divergence, replays, coalesced
    #: vs scattered accesses, watchdog stalls) — whole grid and per region
    events: dict[str, int] = dataclasses.field(default_factory=dict)
    events_by_region: dict[str, dict[str, int]] = dataclasses.field(
        default_factory=dict
    )

    def to_dict(self) -> dict:
        """JSON/span-attribute friendly form."""
        return {
            "kernel": self.kernel,
            "variant": self.variant,
            "warp_instructions": self.warp_instructions,
            "by_region": dict(self.by_region),
            "by_role": dict(self.by_role),
            "events": dict(self.events),
            "events_by_region": {
                r: dict(c) for r, c in self.events_by_region.items()
            },
        }

    @classmethod
    def from_profiler(cls, kernel: str, variant: str,
                      profiler: Profiler) -> "RegionProfile":
        """Lift a live (full functional simulation) profiler's counters."""
        return cls(
            kernel=kernel,
            variant=variant,
            warp_instructions=profiler.warp_instructions,
            by_region={r: sum(c.values())
                       for r, c in sorted(profiler.by_region.items())},
            by_role={r: sum(c.values())
                     for r, c in sorted(profiler.by_role.items())},
            events=profiler.event_totals(),
            events_by_region={
                r: dict(c)
                for r, c in sorted(profiler.events_by_region.items())
            },
        )


def profile_regions(
    desc: KernelDescription,
    *,
    variant: str = "isp",
    block: tuple[int, int] = (32, 4),
    device: DeviceSpec = GTX680,
) -> RegionProfile:
    """Whole-grid region profile from representative-block profiling.

    One block per fine class is simulated and its counters are scaled by the
    class's block count (paper Eq. 8 made exact) — tractable even at 2048²,
    where full simulation is not.
    """
    from ..runtime.executor import profile_kernel

    prof = profile_kernel(desc, variant=Variant(variant), block=block,
                          device=device)
    total = 0
    by_region: dict[str, int] = {}
    by_role: dict[str, int] = {}
    events: dict[str, int] = {}
    for cls_ in prof.classes:
        bp = prof.profiles[cls_.name]
        total += cls_.count * bp.warp_instructions
        for region, n in bp.by_region.items():
            by_region[region] = by_region.get(region, 0) + cls_.count * n
        for role, n in bp.by_role.items():
            by_role[role] = by_role.get(role, 0) + cls_.count * n
        for name, n in bp.events.items():
            events[name] = events.get(name, 0) + cls_.count * n
    return RegionProfile(
        kernel=desc.name,
        variant=variant,
        warp_instructions=total,
        by_region=dict(sorted(by_region.items())),
        by_role=dict(sorted(by_role.items())),
        events=dict(sorted(events.items())),
    )


@dataclasses.dataclass(frozen=True)
class RegionComparison:
    """Measured vs predicted ISP effect for one kernel (paper Eqs. 9-10)."""

    kernel: str
    width: int
    height: int
    measured_naive: int
    measured_isp: int
    predicted_r: float
    predicted_gain: float
    #: the ISP run's Body-region share of measured instructions
    body_fraction: float

    @property
    def measured_r(self) -> float:
        """Measured ``R_reduced = N_naive / N_ISP`` (paper Eq. 9)."""
        if self.measured_isp <= 0:
            return float("inf")
        return self.measured_naive / self.measured_isp

    @property
    def rel_error(self) -> float:
        """|measured - predicted| / predicted (the 10% acceptance gate)."""
        if self.predicted_r <= 0:
            return float("inf")
        return abs(self.measured_r - self.predicted_r) / self.predicted_r

    def within(self, tolerance: float = 0.10) -> bool:
        return self.rel_error <= tolerance


def measured_vs_predicted(
    descs: Sequence[KernelDescription],
    *,
    variant: str = "isp",
    block: tuple[int, int] = (32, 4),
    device: DeviceSpec = GTX680,
) -> list[RegionComparison]:
    """Compare measured and predicted ``R_reduced`` per bordered kernel.

    Kernels without border handling (point operators) have nothing to
    partition and are skipped; degenerate geometries (image too small for
    the block) cannot be profiled regionally and are skipped too.
    """
    from ..compiler.regions import RegionGeometry
    from ..model.prediction import predict_for

    out: list[RegionComparison] = []
    for desc in descs:
        if not desc.needs_border_handling:
            continue
        hx, hy = desc.extent
        geom = RegionGeometry.compute(desc.width, desc.height, hx, hy, block)
        if geom.degenerate:
            continue
        naive = profile_regions(desc, variant="naive", block=block,
                                device=device)
        isp = profile_regions(desc, variant=variant, block=block,
                              device=device)
        pred = predict_for(desc, block=block, device=device)
        body = isp.by_region.get("Body", 0)
        out.append(RegionComparison(
            kernel=desc.name,
            width=desc.width,
            height=desc.height,
            measured_naive=naive.warp_instructions,
            measured_isp=isp.warp_instructions,
            predicted_r=pred.r_reduced,
            predicted_gain=pred.gain,
            body_fraction=(body / isp.warp_instructions
                           if isp.warp_instructions else 0.0),
        ))
    return out


def format_region_profile(profile: RegionProfile) -> str:
    """One region profile as the repo's standard ASCII table."""
    from ..reporting import format_table

    rows = [[region, count,
             f"{100 * count / profile.warp_instructions:.1f}%"
             if profile.warp_instructions else "-"]
            for region, count in profile.by_region.items()]
    roles = ", ".join(f"{r}={n}" for r, n in profile.by_role.items())
    table = format_table(
        ["region", "warp instrs", "share"], rows,
        title=f"{profile.kernel} [{profile.variant}]: measured dynamic "
              f"instructions by ISP region",
    )
    return table + f"\nby role: {roles}"


def format_comparison_report(
    comparisons: Sequence[RegionComparison], *, tolerance: float = 0.10
) -> str:
    """The measured-vs-predicted report (live paper Table I / Eq. 9-10)."""
    from ..reporting import format_table

    rows = []
    for c in comparisons:
        rows.append([
            c.kernel,
            f"{c.width}x{c.height}",
            c.measured_naive,
            c.measured_isp,
            f"{c.measured_r:.4f}",
            f"{c.predicted_r:.4f}",
            f"{100 * c.rel_error:.1f}%",
            f"{c.predicted_gain:.3f}",
            f"{100 * c.body_fraction:.1f}%",
            "ok" if c.within(tolerance) else "DRIFT",
        ])
    return format_table(
        ["kernel", "size", "N_naive", "N_isp", "R measured", "R model",
         "err", "model G", "body", f"<= {100 * tolerance:.0f}%"],
        rows,
        title="measured vs predicted R_reduced (paper Eqs. 9-10, Table I "
              "accounting)",
    )
