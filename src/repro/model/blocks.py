"""Block-count model — paper Eqs. 2, 7, 8 and Figure 3.

These are the *model's* (closed-form, paper-style) block counts, kept
deliberately separate from the exact geometry in
:mod:`repro.compiler.regions`: the compiler and simulator use the exact
version; the analytic model uses this one, as the paper's model does.
For non-degenerate geometries the two coincide (tested).
"""

from __future__ import annotations

import dataclasses
import math

from ..compiler.regions import Region


@dataclasses.dataclass(frozen=True)
class ModelBlockCounts:
    """Eq. 7/8 quantities for one configuration."""

    n_block_x: int
    n_block_y: int
    bh_l: int
    bh_r: int
    bh_t: int
    bh_b: int
    counts: dict[Region, int]

    @property
    def total(self) -> int:
        return self.n_block_x * self.n_block_y

    @property
    def body_fraction(self) -> float:
        """Percentage basis of paper Figure 3."""
        return self.counts[Region.BODY] / max(1, self.total)


def index_bounds(
    sx: int, sy: int, m: int, n: int, tx: int, ty: int
) -> tuple[int, int, int, int]:
    """Paper Eq. 2: (BH_L, BH_R, BH_T, BH_B).

    ``m x n`` is the window size; a window reaches ``m//2`` pixels beyond the
    output pixel on each side. ``BH_L``/``BH_T`` are exclusive upper bounds of
    the left/top border block indices; ``BH_R``/``BH_B`` are inclusive lower
    bounds of the right/bottom ones.
    """
    if m % 2 == 0 or n % 2 == 0:
        raise ValueError("window sizes must be odd")
    hx, hy = m // 2, n // 2
    gx = math.ceil(sx / tx)
    gy = math.ceil(sy / ty)
    bh_l = min(gx, math.ceil(hx / tx))
    bh_t = min(gy, math.ceil(hy / ty))
    # First block column whose window can cross the right edge: the last
    # block always can (for hx > 0); a full block i can iff
    # (i+1)*tx - 1 + hx >= sx.
    if hx > 0:
        bh_r = min(gx - 1, max(0, math.ceil((sx + 1 - hx) / tx) - 1))
    else:
        bh_r = gx
    if hy > 0:
        bh_b = min(gy - 1, max(0, math.ceil((sy + 1 - hy) / ty) - 1))
    else:
        bh_b = gy
    return bh_l, bh_r, bh_t, bh_b


def block_counts(
    sx: int, sy: int, m: int, n: int, tx: int, ty: int
) -> ModelBlockCounts:
    """Paper Eqs. 7 and 8: blocks per region."""
    bh_l, bh_r, bh_t, bh_b = index_bounds(sx, sy, m, n, tx, ty)
    gx = math.ceil(sx / tx)
    gy = math.ceil(sy / ty)

    def axis_split(low: int, high: int, total: int) -> tuple[int, int, int]:
        """(n_low, n_mid, n_high) block columns/rows on one axis.

        A degenerate axis (low > high: some block needs checks on *both*
        sides) has no check-free middle; the nine-region model degrades to
        all-border, matching the compiler's fallback-to-naive behaviour.
        """
        if low > high:
            return total, 0, 0
        n_low = low
        n_high = total - high
        return n_low, total - n_low - n_high, n_high

    nxl, nxm, nxr = axis_split(bh_l, bh_r, gx)
    nyt, nym, nyb = axis_split(bh_t, bh_b, gy)

    counts = {
        Region.TL: nxl * nyt,
        Region.T: nxm * nyt,
        Region.TR: nxr * nyt,
        Region.L: nxl * nym,
        Region.R: nxr * nym,
        Region.BL: nxl * nyb,
        Region.B: nxm * nyb,
        Region.BR: nxr * nyb,
    }
    counts[Region.BODY] = gx * gy - sum(counts.values())  # Eq. 8b
    assert counts[Region.BODY] >= 0
    return ModelBlockCounts(
        n_block_x=gx, n_block_y=gy,
        bh_l=bh_l, bh_r=bh_r, bh_t=bh_t, bh_b=bh_b,
        counts=counts,
    )


def body_fraction_series(
    sizes: list[int], m: int, n: int, tx: int, ty: int
) -> list[tuple[int, float]]:
    """The (image size, body-block percentage) series of paper Figure 3."""
    out = []
    for s in sizes:
        counts = block_counts(s, s, m, n, tx, ty)
        out.append((s, 100.0 * counts.body_fraction))
    return out
