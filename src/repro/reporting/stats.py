"""Statistics helpers for the benchmark harness.

Self-contained implementations (geometric mean, Pearson correlation) so the
core library does not depend on SciPy; the tests cross-check them against
SciPy where available.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (paper Table IV aggregates)."""
    vals = list(values)
    if not vals:
        raise ValueError("geometric mean of empty sequence")
    if any(v <= 0 for v in vals):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def pearson(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient (paper Table III's last column)."""
    if len(xs) != len(ys):
        raise ValueError("sequences must have equal length")
    n = len(xs)
    if n < 2:
        raise ValueError("need at least two points")
    mx = sum(xs) / n
    my = sum(ys) / n
    cov = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    vx = sum((x - mx) ** 2 for x in xs)
    vy = sum((y - my) ** 2 for y in ys)
    if vx == 0 or vy == 0:
        raise ValueError("zero variance")
    # sqrt(vx) * sqrt(vy), not sqrt(vx * vy): the product of two tiny
    # variances can underflow to 0.0 even when both are representable.
    return cov / (math.sqrt(vx) * math.sqrt(vy))


def speedup(baseline: float, improved: float) -> float:
    """baseline_time / improved_time (>1 means 'improved' is faster)."""
    if improved <= 0:
        raise ValueError("non-positive time")
    return baseline / improved
