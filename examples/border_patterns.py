#!/usr/bin/env python3
"""Visualize the four border handling patterns (paper Figure 2).

Runs a 9x9 box blur over a small labelled image under each pattern on the
simulated GPU and prints how the out-of-bounds reads resolve, making the
differences between Clamp / Mirror / Repeat / Constant visible at a glance.

Run:  python examples/border_patterns.py
"""

import numpy as np

from repro import Boundary, Variant
from repro.dsl import reference_index
from repro.filters import gaussian
from repro.runtime import run_pipeline_simt


def main():
    size = 12

    # --- index mapping table (the essence of Figure 2) ----------------------
    print("index mapping for a row of 8 pixels (columns are the requested")
    print("coordinate; cells show which source pixel each pattern returns):\n")
    coords = list(range(-4, 12))
    header = "pattern   | " + " ".join(f"{c:3d}" for c in coords)
    print(header)
    print("-" * len(header))
    for pattern in (Boundary.CLAMP, Boundary.MIRROR, Boundary.REPEAT,
                    Boundary.CONSTANT):
        cells = []
        for c in coords:
            idx = reference_index(c, 8, pattern)
            cells.append("  c" if idx is None else f"{idx:3d}")
        print(f"{pattern.value:9s} | " + " ".join(cells))
    print("\n('c' = the user-supplied constant)\n")

    # --- visible effect on an image -----------------------------------------
    # A gradient image: each border pattern extrapolates it differently, so
    # the blurred border rows diverge measurably.
    src = np.tile(np.linspace(0.0, 1.0, size, dtype=np.float32), (size, 1))

    print(f"top-left corner of a 3x3-blurred {size}x{size} ramp image:")
    for pattern in (Boundary.CLAMP, Boundary.MIRROR, Boundary.REPEAT,
                    Boundary.CONSTANT):
        pipe = gaussian.build_pipeline(size, size, pattern, constant=0.0)
        res = run_pipeline_simt(pipe, variant=Variant.ISP, block=(4, 4),
                                inputs={"inp": src})
        row = res.output[0, :6]
        print(f"  {pattern.value:9s}: " + " ".join(f"{v:.3f}" for v in row))
    print("\nClamp extends the ramp, Mirror reflects it, Repeat wraps the "
          "far edge around\n(note the elevated first value), Constant pulls "
          "the border toward 0.")


if __name__ == "__main__":
    main()
