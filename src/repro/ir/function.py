"""Kernel functions and basic blocks of the virtual ISA."""

from __future__ import annotations

import dataclasses
from typing import Iterator, Optional

from .instructions import Instruction, Opcode
from .types import DataType


@dataclasses.dataclass(frozen=True)
class Param:
    """A kernel parameter.

    ``is_pointer`` marks parameters that hold global-memory base addresses
    (image buffers). Pointer params are typed ``U32`` word addresses in our
    simulated flat memory; ``elem_dtype`` records what they point at.
    """

    name: str
    dtype: DataType
    is_pointer: bool = False
    elem_dtype: Optional[DataType] = None


class BasicBlock:
    """A labelled straight-line instruction sequence ending in a terminator."""

    def __init__(self, label: str):
        self.label = label
        self.instructions: list[Instruction] = []

    @property
    def terminator(self) -> Optional[Instruction]:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    @property
    def is_terminated(self) -> bool:
        return self.terminator is not None

    def append(self, instr: Instruction) -> Instruction:
        if self.is_terminated:
            raise ValueError(f"block {self.label!r} already terminated")
        self.instructions.append(instr)
        return instr

    def successor_labels(self) -> list[str]:
        term = self.terminator
        if term is None or term.op is Opcode.EXIT:
            return []
        assert term.op is Opcode.BRA
        if term.pred is None:
            return [term.target]
        return [term.target, term.target_else]

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BasicBlock({self.label!r}, {len(self.instructions)} instrs)"


class KernelFunction:
    """A compiled kernel: ordered basic blocks + parameter list.

    Block order is the emission order; the first block is the entry. The
    printer emits blocks in this order, so fall-through chains read naturally
    in the CUDA-like output (paper Listing 3's ``goto`` chain becomes explicit
    branches here).
    """

    def __init__(self, name: str, params: list[Param]):
        self.name = name
        self.params = list(params)
        self.blocks: list[BasicBlock] = []
        self._by_label: dict[str, BasicBlock] = {}
        #: free-form metadata filled by the compiler (variant, bounds, ...)
        self.metadata: dict = {}

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise ValueError("function has no blocks")
        return self.blocks[0]

    def new_block(self, label: str) -> BasicBlock:
        if label in self._by_label:
            raise ValueError(f"duplicate block label {label!r}")
        block = BasicBlock(label)
        self.blocks.append(block)
        self._by_label[label] = block
        return block

    def block(self, label: str) -> BasicBlock:
        return self._by_label[label]

    def has_block(self, label: str) -> bool:
        return label in self._by_label

    def param(self, name: str) -> Param:
        for p in self.params:
            if p.name == name:
                return p
        raise KeyError(f"no parameter named {name!r}")

    def instructions(self) -> Iterator[Instruction]:
        for block in self.blocks:
            yield from block

    def static_size(self) -> int:
        """Static instruction count across all blocks."""
        return sum(len(b) for b in self.blocks)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"KernelFunction({self.name!r}, {len(self.blocks)} blocks, "
            f"{self.static_size()} instrs)"
        )
