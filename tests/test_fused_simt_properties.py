"""Property and audit tests for the fused SIMT megakernel.

Three nets over :mod:`repro.compiler.fusion_simt`:

* a Hypothesis property: for random border patterns, warp widths and block
  shapes — including tiles smaller than the pipeline halo, where every
  staging window is all-border — the megakernel is **bit-identical** to the
  staged NAIVE reference;
* a degenerate-geometry audit: wherever the host-side
  :func:`repro.runtime.degenerate_geometry` predicate says the nine-region
  scheme is inexpressible (1x1 images, over-wide windows), the fused
  generator must refuse and the serving plan must fall back to staged
  execution, bit-exactly;
* the shared-memory accounting agreement pin (the ``ELEMENT_BYTES`` fix):
  the staging footprint, the kernel metadata, the occupancy charge and the
  static prover's ``smem_base`` extent are one number, for both the staged
  SHARED variant and the fused megakernel layout.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import (
    CompileError,
    CompiledFusedKernel,
    Variant,
    compile_fused_simt,
    compile_kernel,
    cumulative_halos,
    fuse_descs,
    fused_smem_bytes,
    plan_fused_smem,
    shared_tile_bytes,
    trace_kernel,
)
from repro.dsl import Boundary
from repro.filters import PIPELINES
from repro.gpu import GTX680, VEGA64
from repro.gpu.occupancy import compute_occupancy
from repro.model.prediction import predict_fused
from repro.runtime import degenerate_geometry, run_pipeline_vectorized
from repro.runtime.make_border import ELEMENT_BYTES
from repro.sanitize.static import sanitize_fused
from repro.serve.plan import build_plan

PATTERNS = [Boundary.CLAMP, Boundary.MIRROR, Boundary.REPEAT,
            Boundary.CONSTANT]
DEVICES = [GTX680, VEGA64]


def _staged(app: str, image: np.ndarray, pattern: Boundary,
            size: int) -> np.ndarray:
    pipe = PIPELINES[app](size, size, pattern)
    images = run_pipeline_vectorized(pipe, {pipe.inputs[0].name: image},
                                     variant="naive")
    return images[pipe.output.name]


class TestFusedEquivalenceProperty:
    @settings(max_examples=12, deadline=None)
    @given(
        pattern=st.sampled_from(PATTERNS),
        device=st.sampled_from(DEVICES),
        block=st.sampled_from([(8, 4), (4, 4), (4, 2), (2, 2)]),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_fused_simt_equals_staged_naive(self, pattern, device, block,
                                            seed):
        size = 16
        image = np.random.default_rng(seed).uniform(
            -1.0, 1.0, (size, size)
        ).astype(np.float32)
        plan = build_plan("sobel", pattern.value, size, size,
                          variant="fused", block=block, device=device)
        compiled = plan._compiled_simt()
        assert len(compiled) == 1
        assert isinstance(compiled[0], CompiledFusedKernel)
        out = plan.execute_simt(image)
        assert np.array_equal(out, _staged("sobel", image, pattern, size))

    @pytest.mark.parametrize(
        "device,pattern",
        [(GTX680, Boundary.MIRROR), (VEGA64, Boundary.CONSTANT)],
        ids=["GTX680-mirror", "VEGA64-constant"],
    )
    def test_sub_halo_tiles(self, rng, pattern, device):
        """night's cumulative halo (15) dwarfs an 8x4 tile: every staging
        window is all-border, the hardest shape for the check splits."""
        size = 32
        image = rng.random((size, size), dtype=np.float32)
        plan = build_plan("night", pattern.value, size, size,
                          variant="fused", block=(8, 4), device=device)
        compiled = plan._compiled_simt()
        assert len(compiled) == 1
        assert isinstance(compiled[0], CompiledFusedKernel)
        out = plan.execute_simt(image)
        assert np.array_equal(out, _staged("night", image, pattern, size))


class TestDegenerateGeometryAudit:
    """The fused gate must refuse at least wherever the host predicate does
    (its block-granular condition is strictly more conservative), and the
    fallback must be invisible in the bits."""

    CASES = [
        # (app, size, block) — host-degenerate for the pipeline's halo.
        ("sobel", 1, (1, 1)),      # 1x1 image
        ("night", 16, (4, 4)),     # over-wide window: halo 15 vs 16px
        ("night", 28, (4, 4)),     # still < 2 * halo
    ]

    @pytest.mark.parametrize("app,size,block", CASES)
    def test_host_degenerate_shapes_are_refused(self, app, size, block):
        pipe = PIPELINES[app](size, size, Boundary.MIRROR)
        descs = [trace_kernel(k) for k in pipe]
        halos = cumulative_halos(descs)
        hx = max(h[0] for h in halos.values())
        hy = max(h[1] for h in halos.values())
        assert degenerate_geometry(size, size, hx, hy)
        plan = fuse_descs(descs, name=app)
        with pytest.raises(CompileError):
            compile_fused_simt(plan, block=block)

    @pytest.mark.parametrize("app,size,block", CASES)
    def test_degenerate_fallback_is_bit_exact(self, rng, app, size, block):
        image = rng.random((size, size), dtype=np.float32)
        plan = build_plan(app, "mirror", size, size, variant="fused",
                          block=block)
        compiled = plan._compiled_simt()
        assert len(compiled) == len(plan.descs)
        for ck in compiled:
            assert ck.effective_variant is Variant.NAIVE
        out = plan.execute_simt(image)
        assert np.array_equal(out, _staged(app, image, Boundary.MIRROR,
                                           size))


class TestSmemAccountingAgreement:
    """One element size, one footprint — everywhere (the satellite fix)."""

    def test_element_bytes_is_f32(self):
        assert ELEMENT_BYTES == 4

    def test_shared_variant_footprint_agreement(self):
        pipe = PIPELINES["gaussian"](64, 64, Boundary.MIRROR)
        desc = trace_kernel(next(iter(pipe)))
        block = (32, 4)
        footprint = shared_tile_bytes(desc, block)
        hx, hy = desc.extent
        assert footprint == (block[0] + 2 * hx) * (block[1] + 2 * hy) * \
            ELEMENT_BYTES
        ck = compile_kernel(desc, variant=Variant.SHARED, block=block)
        # metadata drives both the occupancy charge and the prover extent.
        assert int(ck.func.metadata["shared_bytes"]) == footprint

    def test_fused_layout_footprint_agreement(self):
        size, block = 48, (16, 4)
        pipe = PIPELINES["sobel"](size, size, Boundary.CLAMP)
        plan = fuse_descs([trace_kernel(k) for k in pipe], name="sobel")
        layout = plan_fused_smem(plan, block)
        assert layout.total_bytes == fused_smem_bytes(plan, block)
        # Every buffer's window is priced at ELEMENT_BYTES, rows padded to
        # the bank-conflict-free stride.
        total = 0
        for buf in layout.buffers.values():
            w, h = buf.window
            assert buf.stride >= w
            total += buf.stride * h * ELEMENT_BYTES
        assert total == layout.total_bytes
        cfk = compile_fused_simt(plan, block=block)
        assert int(cfk.func.metadata["shared_bytes"]) == layout.total_bytes
        # The static prover walks the megakernel against this exact extent.
        report = sanitize_fused(cfk)
        assert not report.findings
        # The occupancy model charges the same bytes per block.
        pred = predict_fused([trace_kernel(k) for k in pipe],
                             block=block, device=GTX680, name="sobel")
        assert pred.smem_bytes_per_block == layout.total_bytes
        occ = compute_occupancy(
            GTX680, block[0] * block[1],
            cfk.registers.allocated if cfk.registers else 0,
            shared_bytes=layout.total_bytes,
        )
        assert pred.occupancy_fused == pytest.approx(occ.occupancy)
