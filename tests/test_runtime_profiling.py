"""Representative-block profiling tests.

The central soundness claim (DESIGN.md decision 2): simulating one block per
fine class and scaling by class counts must reproduce the counters of a full
launch exactly — for every border pattern, including Repeat's loops.
"""

import numpy as np
import pytest

from repro.compiler import Variant, trace_kernel
from repro.dsl import Boundary
from repro.gpu import GTX680, RTX2080, GlobalMemory, Profiler, cost_table_for, launch
from repro.runtime import (
    clear_profile_cache,
    fine_block_classes,
    measure_pipeline,
    profile_kernel,
    select_variants,
)
from tests.conftest import make_conv_kernel

PATTERNS = [Boundary.CLAMP, Boundary.MIRROR, Boundary.REPEAT, Boundary.CONSTANT]


def full_launch_counters(desc, variant, block, device):
    """Ground truth: run every block and profile."""
    from repro.compiler import compile_kernel

    ck = compile_kernel(desc, variant=variant, block=block, device=device)
    mem = GlobalMemory(1 << 22)
    bases = {}
    for acc in desc.accessors:
        if acc.image.name not in bases:
            bases[acc.image.name] = mem.alloc(acc.image.width * acc.image.height * 4)
    bases[desc.output_name] = mem.alloc(desc.width * desc.height * 4)
    prof = Profiler(cost_table_for(device))
    launch(ck.func, ck.launch_config, mem, ck.param_values(bases), prof)
    return prof


class TestRepresentativeSampling:
    @pytest.mark.parametrize("boundary", PATTERNS)
    @pytest.mark.parametrize("variant", [Variant.NAIVE, Variant.ISP])
    def test_exactly_matches_full_launch(self, boundary, variant):
        desc = trace_kernel(make_conv_kernel(
            64, 48, boundary, np.ones((5, 5), np.float32)))
        block = (16, 4)
        full = full_launch_counters(desc, variant, block, GTX680)
        prof = profile_kernel(desc, variant=variant, block=block,
                              device=GTX680, use_cache=False)
        scaled_warp_instrs = sum(
            prof.profiles[c.name].warp_instructions * c.count
            for c in prof.classes
        )
        scaled_cycles = sum(
            prof.profiles[c.name].cycles_on(cost_table_for(GTX680)) * c.count
            for c in prof.classes
        )
        assert scaled_warp_instrs == full.warp_instructions
        assert scaled_cycles == pytest.approx(full.issue_cycles)

    def test_warp_isp_also_exact(self):
        desc = trace_kernel(make_conv_kernel(
            128, 32, Boundary.REPEAT, np.ones((3, 3), np.float32)))
        block = (64, 2)
        full = full_launch_counters(desc, Variant.ISP_WARP, block, GTX680)
        prof = profile_kernel(desc, variant=Variant.ISP_WARP, block=block,
                              device=GTX680, use_cache=False)
        scaled = sum(prof.profiles[c.name].warp_instructions * c.count
                     for c in prof.classes)
        assert scaled == full.warp_instructions


class TestFineClasses:
    def test_counts_cover_grid(self):
        from repro.compiler import RegionGeometry

        geom = RegionGeometry.compute(512, 512, 6, 6, (32, 4))
        classes = fine_block_classes(geom)
        assert sum(c.count for c in classes) == geom.grid[0] * geom.grid[1]

    def test_class_count_small(self):
        """Fine classes stay O(border depth), not O(grid)."""
        from repro.compiler import RegionGeometry

        geom = RegionGeometry.compute(4096, 4096, 8, 8, (32, 4))
        classes = fine_block_classes(geom)
        assert len(classes) <= 25

    def test_representatives_unique_and_in_class(self):
        from repro.compiler import RegionGeometry

        geom = RegionGeometry.compute(256, 256, 6, 6, (32, 4))
        classes = fine_block_classes(geom)
        reps = [c.representative for c in classes]
        assert len(set(reps)) == len(reps)
        for c in classes:
            assert geom.classify(*c.representative) is c.region


class TestProfileCache:
    def test_cache_reused_across_sizes(self):
        clear_profile_cache()
        desc1 = trace_kernel(make_conv_kernel(
            128, 128, Boundary.CLAMP, np.ones((5, 5), np.float32)))
        desc2 = trace_kernel(make_conv_kernel(
            256, 256, Boundary.CLAMP, np.ones((5, 5), np.float32)))
        p1 = profile_kernel(desc1, variant=Variant.ISP, block=(16, 4))
        p2 = profile_kernel(desc2, variant=Variant.ISP, block=(16, 4))
        # Same fine-class profiles object reused.
        shared = set(p1.profiles) & set(p2.profiles)
        assert shared
        for name in shared:
            assert p1.profiles[name] is p2.profiles[name]

    def test_cached_equals_uncached(self):
        clear_profile_cache()
        desc_small = trace_kernel(make_conv_kernel(
            96, 96, Boundary.REPEAT, np.ones((5, 5), np.float32)))
        profile_kernel(desc_small, variant=Variant.ISP, block=(16, 4))
        desc_big = trace_kernel(make_conv_kernel(
            192, 192, Boundary.REPEAT, np.ones((5, 5), np.float32)))
        cached = profile_kernel(desc_big, variant=Variant.ISP, block=(16, 4))
        fresh = profile_kernel(desc_big, variant=Variant.ISP, block=(16, 4),
                               use_cache=False)
        t = cost_table_for(GTX680)
        assert cached.total_issue_cycles(GTX680) == pytest.approx(
            fresh.total_issue_cycles(GTX680)
        )
        del t


class TestMeasurement:
    def test_pipeline_times_positive_and_summed(self):
        from repro.filters import sobel

        pipe = sobel.build_pipeline(256, 256, Boundary.CLAMP)
        m = measure_pipeline(pipe, variant=Variant.NAIVE, block=(32, 4),
                             device=GTX680)
        assert len(m.kernels) == 3
        assert all(k.timing.time_us > 0 for k in m.kernels)
        assert m.total_us == pytest.approx(sum(k.timing.time_us for k in m.kernels))

    def test_point_kernel_variant_collapses(self):
        from repro.filters import sobel

        pipe = sobel.build_pipeline(256, 256, Boundary.CLAMP)
        m = measure_pipeline(pipe, variant=Variant.ISP, device=GTX680)
        mag = m.kernels[2]
        assert mag.effective_variant is Variant.NAIVE

    def test_select_variants_returns_per_kernel_choice(self):
        from repro.filters import sobel

        pipe = sobel.build_pipeline(512, 512, Boundary.REPEAT)
        choices = select_variants(pipe, block=(32, 4), device=GTX680)
        assert set(choices) == {"sobel_dx", "sobel_dy", "sobel_mag"}
        assert choices["sobel_mag"] is Variant.NAIVE  # point op
        # Repeat on cheap kernels: the model should want ISP.
        assert choices["sobel_dx"] is Variant.ISP

    def test_isp_model_policy_runs(self):
        from repro.filters import gaussian

        pipe = gaussian.build_pipeline(512, 512, Boundary.REPEAT)
        choices = select_variants(pipe, block=(32, 4), device=GTX680)
        m = measure_pipeline(pipe, variant=Variant.ISP_MODEL, block=(32, 4),
                             device=GTX680, per_kernel_variants=choices)
        assert m.total_us > 0

    def test_repeat_speedup_exceeds_clamp(self):
        """Paper Fig. 6: 'the Repeat border handling pattern benefits more
        from the ISP approach than the other three patterns'."""
        from repro.filters import gaussian

        speedups = {}
        for b in (Boundary.CLAMP, Boundary.REPEAT):
            pipe = gaussian.build_pipeline(1024, 1024, b)
            mn = measure_pipeline(pipe, variant=Variant.NAIVE, device=GTX680)
            mi = measure_pipeline(pipe, variant=Variant.ISP, device=GTX680)
            speedups[b] = mn.total_us / mi.total_us
        assert speedups[Boundary.REPEAT] > speedups[Boundary.CLAMP]

    def test_turing_speedups_at_least_kepler_for_bilateral(self):
        """No occupancy loss on Turing -> ISP looks relatively better there
        (paper Section VI-A)."""
        from repro.filters import bilateral

        pipe = bilateral.build_pipeline(512, 512, Boundary.CLAMP)
        ratios = {}
        for dev in (GTX680, RTX2080):
            mn = measure_pipeline(pipe, variant=Variant.NAIVE, device=dev)
            mi = measure_pipeline(pipe, variant=Variant.ISP, device=dev)
            ratios[dev.name] = mn.total_us / mi.total_us
        assert ratios["RTX2080"] > ratios["GTX680"]
