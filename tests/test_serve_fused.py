"""Serving the fused variant: transparency, caching, tuning, routing.

The engine contract (test_serve_engine docstring) extends to fusion: a
``variant="fused"`` request must return bits identical to staged execution,
the geometry-only fused plan must be built once per content digest and
replayed across requests and batch sizes, the autotuner must trial the
fused arm and seed it from ``predict_fused``, and the cluster's digest
routing must be independent of the chosen variant.
"""

import numpy as np
import pytest

from repro.dsl import Boundary
from repro.filters import PIPELINES
from repro.gpu import GTX680
from repro.runtime import run_pipeline_vectorized
from repro.serve import Request, ServeEngine
from repro.serve.autotune import TUNE_CANDIDATES, pipeline_priors
from repro.serve.plan import PLAN_VARIANTS, build_plan, trace_app


def _staged(app: str, image, pattern: str):
    pipe = PIPELINES[app](image.shape[1], image.shape[0], Boundary(pattern))
    images = run_pipeline_vectorized(pipe, {pipe.inputs[0].name: image},
                                     variant="isp")
    return images[pipe.output.name]


@pytest.fixture
def image(rng):
    return rng.random((64, 64), dtype=np.float32)


class TestFusedRequests:
    def test_fused_is_a_plan_and_tune_candidate(self):
        assert "fused" in PLAN_VARIANTS
        assert "fused" in TUNE_CANDIDATES

    @pytest.mark.parametrize("app", ["sobel", "night"])
    @pytest.mark.parametrize("pattern", ["clamp", "mirror", "repeat",
                                         "constant"])
    def test_served_fused_bit_identical_to_staged(self, app, pattern, image):
        with ServeEngine(workers=2) as engine:
            resp = engine.run([Request(app=app, image=image,
                                       pattern=pattern, variant="fused")])[0]
        assert resp.ok, resp.error
        assert np.array_equal(resp.output, _staged(app, image, pattern))

    def test_single_kernel_app_serves_fused_too(self, image):
        """Fusing a one-stage pipeline is legal — it degenerates to tiled
        execution of that stage."""
        with ServeEngine(workers=1) as engine:
            resp = engine.run([Request(app="gaussian", image=image,
                                       pattern="mirror", variant="fused")])[0]
        assert resp.ok, resp.error
        assert np.array_equal(resp.output,
                              _staged("gaussian", image, "mirror"))

    def test_fused_plan_cached_once_per_digest(self, image):
        with ServeEngine(workers=2) as engine:
            engine.run([Request(app="night", image=image, variant="fused")
                        for _ in range(8)])
            stats = engine.stats()
        assert stats["engine"]["engine.plan_cache_misses"] == 1
        assert stats["engine"]["engine.plan_cache_hits"] == 7

    def test_fused_and_staged_plans_are_distinct_cache_entries(self, image):
        with ServeEngine(workers=1) as engine:
            engine.run([
                Request(app="sobel", image=image, variant="fused"),
                Request(app="sobel", image=image, variant="isp"),
                Request(app="sobel", image=image, variant="fused"),
            ])
            stats = engine.stats()
        assert stats["engine"]["engine.plan_cache_misses"] == 2
        assert stats["engine"]["engine.plan_cache_hits"] == 1

    def test_batched_fused_execution_matches_per_image(self, rng):
        """The fused schedule is geometry-only: one plan serves (N, H, W)
        micro-batches bit-identically to per-image staged execution."""
        batch = rng.random((3, 32, 32), dtype=np.float32)
        plan = build_plan("sobel", "repeat", 32, 32, variant="fused")
        out = plan.execute_batch(batch)
        assert out.shape == batch.shape
        for i in range(batch.shape[0]):
            assert np.array_equal(out[i], _staged("sobel", batch[i], "repeat"))
            assert np.array_equal(out[i], plan.execute(batch[i]))


class TestFusedPlanObject:
    def test_fused_plan_attached_only_for_fused_variant(self):
        fused = build_plan("sobel", "clamp", 64, 64, variant="fused")
        staged = build_plan("sobel", "clamp", 64, 64, variant="naive")
        assert fused.fused_plan is not None
        assert fused.fused_plan.output_name == "out"
        assert staged.fused_plan is None

    def test_point_ops_stay_naive_in_fused_choices(self):
        plan = build_plan("sobel", "clamp", 64, 64, variant="fused")
        assert plan.kernel_variants["dx"] == "fused"
        assert plan.kernel_variants["out"] == "naive"


class TestFusedPrior:
    def test_priors_include_fused_gain(self):
        descs = trace_app("sobel", "clamp", 512, 512)
        priors = pipeline_priors(descs, block=(32, 4), device=GTX680)
        assert set(priors) == {"gain", "prepad_gain", "fused_gain"}
        assert priors["fused_gain"] > 1.0  # sobel fuses profitably

    def test_night_repeat_prior_disfavors_fusion(self):
        descs = trace_app("night", "repeat", 512, 512)
        priors = pipeline_priors(descs, block=(32, 4), device=GTX680)
        assert priors["fused_gain"] < 1.0


class TestClusterRouting:
    def test_variant_does_not_change_routing_digest(self, image):
        """The cluster routes by workload content digest; asking for the
        fused variant must not re-route the workload to another shard."""
        from repro.serve.plan import plan_key

        descs = trace_app("night", "mirror", 64, 64)
        k_fused = plan_key(descs, variant="fused", pattern="mirror")
        k_isp = plan_key(descs, variant="isp", pattern="mirror")
        assert k_fused.digest == k_isp.digest
        assert k_fused != k_isp
