"""The padding baseline — the paper's other software alternative.

Paper Section I: "padding the image border is used in most OpenCV functions.
One disadvantage of this approach is the required additional memory copy,
which is costly, particularly for architectures such as graphics processing
units." This module prices that approach on the simulated devices:

1. a device-side pad kernel copies the image into a (w+2hx) x (h+2hy)
   buffer with the border pattern materialized — costed at peak-bandwidth
   streaming of both buffers plus a launch;
2. the filter kernel then runs with *no border checks at all* — its cost is
   the ISP Body-region block cost applied to every block (a slightly
   optimistic stand-in for the padded-stride kernel, which we note rather
   than model).

All four border patterns are expressible by padding (unlike texture
hardware), at the price of the copy and the extra memory footprint.
"""

from __future__ import annotations

import dataclasses

from ..compiler.frontend import KernelDescription
from ..compiler.isp import Variant
from ..gpu.device import DeviceSpec, GTX680
from ..gpu.timing import LAUNCH_OVERHEAD_US, TimingEstimate, estimate_time
from .executor import profile_kernel
from .make_border import ELEMENT_BYTES


@dataclasses.dataclass(frozen=True)
class PaddingEstimate:
    """Cost breakdown of the padding approach for one kernel."""

    copy_us: float
    kernel_us: float
    padded_bytes: int

    @property
    def total_us(self) -> float:
        return self.copy_us + self.kernel_us


def pad_copy_time_us(
    device: DeviceSpec, width: int, height: int, hx: int, hy: int
) -> tuple[float, int]:
    """Time to materialize the padded copy on-device.

    The pad kernel streams the source once and writes the padded buffer
    once; we price it at peak bandwidth (a best case for the baseline).
    Element size comes from :mod:`repro.runtime.make_border` — the same
    constant the measured prepad path computes in — not a hardcoded 4.
    A zero-extent window needs no pad kernel at all, so it is charged
    neither the copy nor the launch overhead.
    """
    padded = (width + 2 * hx) * (height + 2 * hy) * ELEMENT_BYTES
    if hx == 0 and hy == 0:
        return 0.0, padded
    src = width * height * ELEMENT_BYTES
    seconds = (padded + src) / (device.mem_bandwidth_gbs * 1e9)
    return seconds * 1e6 + LAUNCH_OVERHEAD_US, padded


def measure_padding_kernel(
    desc: KernelDescription,
    *,
    block: tuple[int, int] = (32, 4),
    device: DeviceSpec = GTX680,
) -> PaddingEstimate:
    """Estimate the padding approach's time for one kernel.

    Raises ``ValueError`` for degenerate geometries (where the check-free
    Body profile does not exist).
    """
    hx, hy = desc.extent
    copy_us, padded_bytes = pad_copy_time_us(
        device, desc.width, desc.height, hx, hy
    )
    prof = profile_kernel(desc, variant=Variant.ISP, block=block, device=device)
    body = next(c for c in prof.classes if c.name == "xM|yM")
    from ..gpu.cost import cost_table_for

    table = cost_table_for(device)
    body_profile = prof.profiles[body.name]
    body_cycles = body_profile.cycles_on(table)
    total_blocks = prof.total_blocks()
    ck = prof.compiled
    # The padded kernel has no checks and no dispatch chain; its register
    # footprint resembles the naive variant's (minus checks), not the fat
    # kernel's — use the naive estimate for occupancy.
    from ..compiler.driver import compile_kernel

    regs = compile_kernel(
        desc, variant=Variant.NAIVE, block=block, device=device
    ).registers
    timing: TimingEstimate = estimate_time(
        device,
        total_blocks=total_blocks,
        block_threads=ck.launch_config.threads_per_block,
        regs_per_thread=regs.allocated if regs else 32,
        class_block_cycles={"body": body_cycles},
        class_block_counts={"body": total_blocks},
        mem_issue_fraction=(
            body_profile.mem_cycles_on(table) / body_cycles if body_cycles else 0.0
        ),
        spill_factor=regs.spill_factor if regs else 1.0,
    )
    return PaddingEstimate(
        copy_us=copy_us,
        kernel_us=timing.time_us,
        padded_bytes=padded_bytes,
    )
