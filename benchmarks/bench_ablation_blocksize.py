"""Ablation — block-size sensitivity of ISP.

DESIGN.md calls out the block size as a first-class input of the analytic
model (paper Eq. 2/8: the bounds and body fraction depend on ``tx x ty``).
This ablation sweeps block shapes at a fixed image size and reports the
body-block fraction, the model gain G, and the simulated speedup.

Expected: wide/large blocks shrink the body fraction (paper Fig. 3's second
configuration), reducing — and eventually erasing — ISP's advantage.
"""

from __future__ import annotations

from repro.compiler import RegionGeometry, Variant, trace_kernel
from repro.dsl import Boundary
from repro.filters import gaussian
from repro.gpu import GTX680
from repro.model import predict_kernel
from repro.reporting import format_table
from repro.runtime import measure_pipeline

SIZE = 512
BLOCKS = [(32, 4), (64, 4), (128, 2), (256, 2), (128, 8)]
BOUNDARY = Boundary.REPEAT


def build():
    rows = []
    data = []
    for block in BLOCKS:
        pipe = gaussian.build_pipeline(SIZE, SIZE, BOUNDARY)
        desc = trace_kernel(pipe.kernels[0])
        hx, hy = desc.extent
        geom = RegionGeometry.compute(SIZE, SIZE, hx, hy, block)
        body = geom.body_fraction()
        p = predict_kernel(desc, block=block, device=GTX680)
        mn = measure_pipeline(pipe, variant=Variant.NAIVE, block=block,
                              device=GTX680)
        mi = measure_pipeline(pipe, variant=Variant.ISP, block=block,
                              device=GTX680)
        speed = mn.total_us / mi.total_us
        rows.append([f"{block[0]}x{block[1]}", f"{100 * body:.1f}%",
                     p.gain, speed])
        data.append((block, body, p.gain, speed))
    table = format_table(
        ["block", "body blocks", "model G", "measured speedup"],
        rows,
        title=f"Ablation: block size vs ISP benefit (gaussian/{BOUNDARY.value}, "
              f"{SIZE}x{SIZE}, GTX680)",
    )
    return data, table


def test_ablation_blocksize(benchmark, report):
    data, table = benchmark.pedantic(build, rounds=1, iterations=1)
    report("ablation_blocksize", table)

    by_block = {block: (body, gain, speed) for block, body, gain, speed in data}
    # Body fraction shrinks as blocks grow in either dimension.
    assert by_block[(32, 4)][0] > by_block[(128, 8)][0]
    # And the measured ISP speedup shrinks with it.
    assert by_block[(32, 4)][2] > by_block[(128, 8)][2]
