"""Golden NumPy reference implementations.

Every filter and border pattern has a vectorized NumPy reference here, built
on :func:`pad_image`. These are the ground truth the SIMT simulation and the
vectorized host executor are tested against (DESIGN.md key decision 1).

Pattern -> ``np.pad`` mode mapping (verified against
:func:`repro.dsl.boundary.reference_index` in the tests):

* CLAMP    -> ``edge``
* MIRROR   -> ``symmetric``  (Listing 1's ``x = -x - 1`` reflection)
* REPEAT   -> ``wrap``
* CONSTANT -> ``constant``
"""

from __future__ import annotations

import numpy as np

from ..dsl.boundary import Boundary

_PAD_MODES = {
    Boundary.CLAMP: "edge",
    Boundary.MIRROR: "symmetric",
    Boundary.REPEAT: "wrap",
}


def pad_image(
    src: np.ndarray, hx: int, hy: int, boundary: Boundary, constant: float = 0.0
) -> np.ndarray:
    """Pad ``src`` by (hy, hx) on each side according to the border pattern."""
    src = np.asarray(src, dtype=np.float32)
    if hx == 0 and hy == 0:
        return src.copy()
    widths = ((hy, hy), (hx, hx))
    if boundary is Boundary.CONSTANT:
        return np.pad(src, widths, mode="constant",
                      constant_values=np.float32(constant))
    if boundary is Boundary.UNDEFINED:
        raise ValueError("cannot pad with UNDEFINED boundary")
    mode = _PAD_MODES[boundary]
    if boundary is Boundary.REPEAT or boundary is Boundary.MIRROR:
        # np.pad supports arbitrary pad widths for wrap/symmetric only in
        # recent NumPy; both patterns are periodic with period 2n (mirror)
        # or n (repeat), and our windows never exceed the image in tests.
        pass
    return np.pad(src, widths, mode=mode)


def correlate(
    src: np.ndarray,
    mask: np.ndarray,
    boundary: Boundary,
    constant: float = 0.0,
) -> np.ndarray:
    """Dense 2-D correlation with border handling (float32 accumulation).

    Matches the DSL's ``convolve``: taps with zero coefficients contribute
    nothing, and accumulation order is row-major over the mask — float32
    summation order matters for bit-exact comparison with the simulator.
    """
    src = np.asarray(src, dtype=np.float32)
    mask = np.asarray(mask, dtype=np.float32)
    mh, mw = mask.shape
    hy, hx = mh // 2, mw // 2
    padded = pad_image(src, hx, hy, boundary, constant)
    h, w = src.shape
    out = np.zeros((h, w), dtype=np.float32)
    for dy in range(mh):
        for dx in range(mw):
            c = np.float32(mask[dy, dx])
            if c == 0.0:
                continue
            out += c * padded[dy : dy + h, dx : dx + w]
    return out


def gaussian_reference(
    src: np.ndarray, boundary: Boundary, constant: float = 0.0
) -> np.ndarray:
    from .gaussian import GAUSSIAN_MASK

    return correlate(src, GAUSSIAN_MASK, boundary, constant)


def laplace_reference(
    src: np.ndarray, boundary: Boundary, constant: float = 0.0
) -> np.ndarray:
    from .laplace import LAPLACE_MASK

    return correlate(src, LAPLACE_MASK, boundary, constant)


def bilateral_reference(
    src: np.ndarray,
    boundary: Boundary,
    constant: float = 0.0,
    *,
    sigma_d: float = 3.0,
    sigma_r: float = 0.1,
    radius: int = 6,
) -> np.ndarray:
    """Bilateral filter: joint spatial/intensity weighting (paper IV-A.1).

    Accumulation follows the DSL kernel exactly: both sums iterate the window
    row-major in float32; weights use float32 exp.
    """
    src = np.asarray(src, dtype=np.float32)
    h, w = src.shape
    padded = pad_image(src, radius, radius, boundary, constant)
    d = np.zeros((h, w), dtype=np.float32)
    p = np.zeros((h, w), dtype=np.float32)
    center = src
    inv2sd = np.float32(1.0 / (2.0 * sigma_d * sigma_d))
    inv2sr = np.float32(1.0 / (2.0 * sigma_r * sigma_r))
    for dy in range(-radius, radius + 1):
        for dx in range(-radius, radius + 1):
            tap = padded[dy + radius : dy + radius + h, dx + radius : dx + radius + w]
            ws = np.float32(np.exp(np.float32(-(dx * dx + dy * dy) * inv2sd)))
            diff = tap - center
            wr = np.exp((-(diff * diff) * inv2sr).astype(np.float32)).astype(np.float32)
            weight = (ws * wr).astype(np.float32)
            d += weight * tap
            p += weight
    return d / p


def sobel_reference(
    src: np.ndarray, boundary: Boundary, constant: float = 0.0
) -> dict[str, np.ndarray]:
    """Sobel pipeline: x/y derivatives + magnitude (3 kernels, paper VI)."""
    from .sobel import SOBEL_X_MASK, SOBEL_Y_MASK

    dx = correlate(src, SOBEL_X_MASK, boundary, constant)
    dy = correlate(src, SOBEL_Y_MASK, boundary, constant)
    mag = np.sqrt(dx * dx + dy * dy, dtype=np.float32)
    return {"dx": dx, "dy": dy, "mag": mag}


def night_reference(
    src: np.ndarray, boundary: Boundary, constant: float = 0.0
) -> np.ndarray:
    """Night filter: 4 chained a-trous stages + Reinhard tone mapping."""
    from .night import ATROUS_DILATIONS, atrous_mask, tonemap_reference

    cur = np.asarray(src, dtype=np.float32)
    for dilation in ATROUS_DILATIONS:
        cur = correlate(cur, atrous_mask(dilation), boundary, constant)
    return tonemap_reference(cur)
