"""Register-usage estimation.

The ISP fat kernel's main cost is register pressure (paper Section IV-B,
Table II): the region-switch state and the larger scheduled code footprint
make NVCC allocate more registers, which can drop theoretical occupancy a
step on register-tight architectures like Kepler.

We estimate per-thread registers as::

    regs = max_live + BASE_MARGIN + SCHED_FACTOR * log2(static_instructions)
           + PATH_FACTOR * (code_paths - 1)

* ``max_live`` — exact maximum number of simultaneously live virtual
  registers, from a backward liveness dataflow over the CFG. This is the
  allocation floor a perfect allocator could reach.
* ``BASE_MARGIN`` — registers reserved by the ABI/driver (parameter shadow,
  special-register staging).
* ``SCHED_FACTOR * log2(size)`` — a documented heuristic for NVCC's
  instruction-scheduling lookahead: bigger kernels give the scheduler more
  independent work to hoist (loads issued early live longer), and measured
  SASS register counts grow roughly logarithmically with kernel size at
  fixed max-live.
* ``PATH_FACTOR * (code_paths - 1)`` — the fat kernel's many specialized
  region clones each contribute allocator state (the paper: "the additional
  region switching statements ... could potentially increase register usage
  on GPUs compared to a naive implementation", Section III-C); ``code_paths``
  is the number of distinct region tags in the function (1 for naive, up to
  9 for ISP).

The constants are calibrated once so the Bilateral/GTX680 configuration
reproduces the occupancy structure of the paper's Table II (naive 62.5% ->
ISP 50%); the same constants are then used unchanged for every other kernel,
pattern, and device.

Estimates above the architectural cap (63 on CC 3.0, 255 on CC 7.5) are
clamped and converted into a spill-traffic multiplier.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional

from ..ir.function import KernelFunction
from .. import ir as _ir  # noqa: F401  (re-exported for tests' convenience)
from ..gpu.device import DeviceSpec

BASE_MARGIN = 4
SCHED_FACTOR = 2.5
PATH_FACTOR = 0.6
#: Relative issue-cycle overhead per spilled register (local-memory traffic).
SPILL_PENALTY = 0.03


@dataclasses.dataclass(frozen=True)
class RegisterEstimate:
    """Estimated register footprint of one kernel variant."""

    max_live: int
    estimated: int
    #: value after applying the device cap (what occupancy sees)
    allocated: int
    spilled: int
    #: >= 1.0; multiplies issue cycles in the timing model
    spill_factor: float


def max_live_registers(func: KernelFunction) -> int:
    """Exact maximum live-register count via backward dataflow.

    Predicates occupy predicate registers on real hardware, not the general
    file; they are excluded from the pressure count (PTX ``%p`` registers).
    """
    blocks = func.blocks
    index = {b.label: i for i, b in enumerate(blocks)}
    succs: list[list[int]] = [
        [index[s] for s in b.successor_labels()] for b in blocks
    ]

    def counts(reg) -> bool:
        from ..ir.types import DataType

        return reg.dtype is not DataType.PRED

    # use[b]: read before written in b; defs[b]: written in b.
    use_sets: list[set[str]] = []
    def_sets: list[set[str]] = []
    for b in blocks:
        use: set[str] = set()
        defs: set[str] = set()
        for instr in b:
            for r in instr.used_registers():
                if counts(r) and r.name not in defs:
                    use.add(r.name)
            d = instr.defined_register()
            if d is not None and counts(d):
                defs.add(d.name)
        use_sets.append(use)
        def_sets.append(defs)

    live_in: list[set[str]] = [set() for _ in blocks]
    live_out: list[set[str]] = [set() for _ in blocks]
    changed = True
    while changed:
        changed = False
        for i in reversed(range(len(blocks))):
            out: set[str] = set()
            for s in succs[i]:
                out |= live_in[s]
            inn = use_sets[i] | (out - def_sets[i])
            if out != live_out[i] or inn != live_in[i]:
                live_out[i], live_in[i] = out, inn
                changed = True

    # Max pressure: walk each block backwards tracking the live set.
    peak = 0
    for i, b in enumerate(blocks):
        live = set(live_out[i])
        peak = max(peak, len(live))
        for instr in reversed(b.instructions):
            d = instr.defined_register()
            if d is not None and counts(d):
                live.discard(d.name)
            for r in instr.used_registers():
                if counts(r):
                    live.add(r.name)
            peak = max(peak, len(live))
    return peak


def estimate_registers(
    func: KernelFunction, device: Optional[DeviceSpec] = None
) -> RegisterEstimate:
    """Estimate the register footprint of ``func`` on ``device``."""
    live = max_live_registers(func)
    size = max(2, func.static_size())
    paths = len({i.region for i in func.instructions() if i.region is not None})
    estimated = int(
        round(
            live
            + BASE_MARGIN
            + SCHED_FACTOR * math.log2(size)
            + PATH_FACTOR * max(0, paths - 1)
        )
    )
    cap = device.max_registers_per_thread if device is not None else 255
    allocated = min(estimated, cap)
    spilled = max(0, estimated - cap)
    spill_factor = 1.0 + SPILL_PENALTY * spilled
    return RegisterEstimate(
        max_live=live,
        estimated=estimated,
        allocated=allocated,
        spilled=spilled,
        spill_factor=spill_factor,
    )
