"""Compiler driver: DSL kernel -> verified, optimized kernel variants.

This is the equivalent of the Hipacc ``Rewrite`` stage plus NVCC (paper
Figure 5): it traces the kernel, generates the requested variant, runs the
optimization passes, verifies the IR, and attaches register estimates and
launch geometry.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Union

from ..dsl.kernel import Kernel
from ..gpu.device import DeviceSpec
from ..gpu.launch import LaunchConfig
from ..ir.function import KernelFunction
from ..ir.verifier import verify
from .frontend import KernelDescription, trace_kernel
from .isp import CompileError, Variant, generate_isp, generate_naive, generate_texture
from .shared import generate_shared
from .passes import optimize as run_passes
from .regions import RegionGeometry
from .registers import RegisterEstimate, estimate_registers

DEFAULT_BLOCK = (32, 4)


@dataclasses.dataclass
class CompiledKernel:
    """A compiled kernel variant, ready to launch on the simulator."""

    desc: KernelDescription
    func: KernelFunction
    variant: Variant
    #: the variant actually generated (point operators and degenerate
    #: geometries silently collapse to NAIVE — recorded here)
    effective_variant: Variant
    block: tuple[int, int]
    launch_config: LaunchConfig
    geometry: Optional[RegionGeometry]
    registers: Optional[RegisterEstimate] = None

    @property
    def name(self) -> str:
        return self.func.name

    def param_values(self, image_bases: dict[str, int]) -> dict[str, int]:
        """Build the launch parameter dict given image base addresses."""
        values: dict[str, int] = {}
        seen: set[str] = set()
        for acc in self.desc.accessors:
            img = acc.image
            if img.name in seen:
                continue
            seen.add(img.name)
            values[f"{img.name}_ptr"] = image_bases[img.name]
            values[f"{img.name}_w"] = img.width
            values[f"{img.name}_h"] = img.height
        values["out_ptr"] = image_bases[self.desc.output_name]
        values["out_w"] = self.desc.width
        values["out_h"] = self.desc.height
        return values


def compile_kernel(
    kernel: Union[Kernel, KernelDescription],
    *,
    variant: Variant = Variant.NAIVE,
    block: tuple[int, int] = DEFAULT_BLOCK,
    device: Optional[DeviceSpec] = None,
    optimize: bool = True,
    fallback_to_naive: bool = True,
    sign_filter: bool = False,
) -> CompiledKernel:
    """Compile one kernel into the requested variant.

    ``Variant.ISP_MODEL`` is resolved by :mod:`repro.model.prediction` (it
    needs both compiled variants); requesting it here raises — use
    :func:`repro.runtime.executor.select_variant` instead.
    """
    if variant is Variant.ISP_MODEL:
        raise CompileError(
            "ISP_MODEL is a selection policy, not a code shape; compile NAIVE "
            "and ISP and let repro.model decide (see runtime.executor)"
        )
    desc = kernel if isinstance(kernel, KernelDescription) else trace_kernel(kernel)

    # The device's warp width shapes warp-grained codegen and the launch
    # decomposition; absent a device we keep the NVIDIA default.
    warp_size = device.warp_size if device is not None else 32

    effective = variant
    geometry: Optional[RegionGeometry] = None
    if variant in (Variant.ISP, Variant.ISP_WARP):
        if not desc.needs_border_handling:
            # Point operators have nothing to partition (paper: border
            # handling concerns local operators only).
            effective = Variant.NAIVE
        else:
            hx, hy = desc.extent
            geometry = RegionGeometry.compute(desc.width, desc.height, hx, hy, block)
            if geometry.degenerate:
                if not fallback_to_naive:
                    raise CompileError(
                        f"{desc.name}: degenerate ISP geometry for "
                        f"{desc.width}x{desc.height} with block {block}"
                    )
                effective = Variant.NAIVE
                geometry = None

    if effective is Variant.NAIVE:
        func = generate_naive(desc, block, sign_filter=sign_filter)
    elif effective is Variant.TEXTURE:
        func = generate_texture(desc, block)
    elif effective in (Variant.SHARED, Variant.SHARED_ISP):
        func = generate_shared(
            desc, block, isp_staging=effective is Variant.SHARED_ISP
        )
        geometry = func.metadata.get("geometry")
    else:
        func = generate_isp(
            desc, block,
            warp_grained=effective is Variant.ISP_WARP,
            sign_filter=sign_filter,
            warp_size=warp_size,
        )
        geometry = func.metadata["geometry"]

    if optimize:
        run_passes(func)
    verify(func)

    regs = estimate_registers(func, device)
    cfg = LaunchConfig.for_image(desc.width, desc.height, block,
                                 warp_size=warp_size)
    return CompiledKernel(
        desc=desc,
        func=func,
        variant=variant,
        effective_variant=effective,
        block=block,
        launch_config=cfg,
        geometry=geometry,
        registers=regs,
    )
