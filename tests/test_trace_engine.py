"""Trace-context propagation through the serve engine.

Spans cross two thread boundaries the engine owns — the submit->worker queue
handoff and the SIMT watchdog thread — and must survive retries, circuit
breaker reroutes, and degradation fallbacks. These tests drive real engine
runs (including under ``repro.faults`` chaos plans) and assert the span tree
stays connected: one ``request`` root per trace, every ``parent_id``
resolving inside the same trace, and the exported Chrome document valid.
"""

from __future__ import annotations

import collections

import numpy as np
import pytest

from repro import faults
from repro.faults import FaultPlan, FaultSpec
from repro.serve import Request, ServeEngine
from repro.trace import Tracer, chrome_trace, recording, validate_chrome_trace

SEEDS = (101, 202, 303)
WATCHDOG_S = 120.0


@pytest.fixture
def image():
    return np.random.default_rng(7).random((32, 32)).astype(np.float32)


def traced_run(requests, tracer, **engine_kwargs):
    with recording(tracer):
        with ServeEngine(**engine_kwargs) as engine:
            handles = [engine.submit(r, block=True) for r in requests]
            responses = [h.result(timeout=WATCHDOG_S) for h in handles]
    return responses


def spans_by_trace(tracer):
    out = collections.defaultdict(list)
    for s in tracer.spans():
        out[s.trace_id].append(s)
    return out


def assert_tree_connected(spans):
    """Exactly one root named 'request'; every parent link resolves."""
    ids = {s.span_id for s in spans}
    roots = [s for s in spans if s.parent_id is None]
    assert len(roots) == 1, [s.name for s in roots]
    assert roots[0].name == "request"
    for s in spans:
        if s.parent_id is not None:
            assert s.parent_id in ids, (
                f"span {s.name!r} has dangling parent {s.parent_id!r}"
            )
    return roots[0]


class TestPropagation:
    def test_every_response_gets_a_connected_trace(self, image):
        tracer = Tracer()
        requests = [Request(app="gaussian", image=image, variant="isp")
                    for _ in range(6)]
        responses = traced_run(requests, tracer, workers=3)
        assert all(r.ok for r in responses)
        assert all(r.trace_id is not None for r in responses)
        # distinct requests get distinct traces
        assert len({r.trace_id for r in responses}) == 6

        trees = spans_by_trace(tracer)
        for resp in responses:
            spans = trees[resp.trace_id]
            root = assert_tree_connected(spans)
            assert root.attributes["request_id"] == resp.request_id
            names = {s.name for s in spans}
            # the pipeline stages the tentpole promises
            assert {"queue", "plan", "execute"} <= names

    def test_spans_cross_the_worker_handoff(self, image):
        """The root is created on the submitting thread; queue/plan/execute
        spans are recorded from a worker thread — same trace, links intact."""
        tracer = Tracer()
        [resp] = traced_run(
            [Request(app="gaussian", image=image, variant="isp")],
            tracer, workers=1)
        spans = spans_by_trace(tracer)[resp.trace_id]
        threads = {s.thread for s in spans}
        assert len(threads) >= 2, threads  # submitter + worker at minimum
        assert_tree_connected(spans)

    def test_execute_span_records_degradations(self, image):
        """A simt request that times out degrades to vectorized; the trace's
        execute span carries the fallback, plus kernel spans from the
        vectorized path that actually served it."""
        plan = FaultPlan.make(101, [
            FaultSpec.make("serve.engine.execute", "latency", at=(0,),
                           seconds=0.3),
        ])
        tracer = Tracer()
        requests = [Request(app="gaussian", image=image, pattern="repeat",
                            variant="naive", exec_mode="simt", timeout_s=0.2)]
        with faults.armed(plan):
            responses = traced_run(requests, tracer, workers=1)
        [resp] = responses
        assert resp.ok
        assert "timeout:simt->vectorized" in resp.fallbacks
        spans = spans_by_trace(tracer)[resp.trace_id]
        assert_tree_connected(spans)
        execs = [s for s in spans if s.name == "execute"]
        assert len(execs) == 1
        assert "timeout:simt->vectorized" in execs[0].attributes["fallbacks"]
        assert any(s.name.startswith("kernel:") for s in spans)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_retry_yields_one_execute_span_per_attempt(self, image, seed):
        """An injected first-attempt failure forces a retry: the trace must
        show the failed attempt (status error) AND the successful one."""
        plan = FaultPlan.make(seed, [
            FaultSpec.make("serve.engine.execute", "error", at=(0,)),
        ])
        tracer = Tracer()
        requests = [Request(app="gaussian", image=image, variant="isp")
                    for _ in range(3)]
        with faults.armed(plan):
            responses = traced_run(requests, tracer, workers=1, retries=2)
        assert all(r.ok for r in responses)
        retried = [r for r in responses if r.retries > 0]
        assert retried, "fault plan fired on no request"
        trees = spans_by_trace(tracer)
        for resp in retried:
            spans = trees[resp.trace_id]
            assert_tree_connected(spans)
            execs = sorted((s for s in spans if s.name == "execute"),
                           key=lambda s: s.attributes["attempt"])
            assert len(execs) == resp.retries + 1
            assert execs[0].status.startswith("error")
            assert execs[-1].status == "ok"

    @pytest.mark.parametrize("seed", SEEDS)
    def test_chaos_run_exports_a_valid_chrome_trace(self, image, seed):
        """Under a mixed chaos plan (crashes + errors + evictions) the span
        buffer must still serialize to a valid, fully-linked document."""
        plan = FaultPlan.make(seed, [
            FaultSpec.make("serve.engine.worker", "crash", rate=0.15,
                           max_fires=2),
            FaultSpec.make("serve.engine.execute", "error", rate=0.3,
                           max_fires=4),
            FaultSpec.make("serve.cache.evict", "evict", rate=0.3),
        ])
        tracer = Tracer()
        requests = [Request(app=app, image=image, variant="isp")
                    for app in ("gaussian", "laplace", "sobel") * 3]
        with faults.armed(plan):
            responses = traced_run(requests, tracer, workers=3, retries=2)
        assert len(responses) == len(requests)
        for resp in responses:
            assert resp.trace_id is not None
            assert_tree_connected(spans_by_trace(tracer)[resp.trace_id])
        doc = chrome_trace(tracer)
        assert validate_chrome_trace(doc) == []


class TestSamplingInTheEngine:
    def test_no_tracer_means_no_trace_id(self, image):
        with ServeEngine(workers=1) as engine:
            resp = engine.run([Request(app="gaussian", image=image,
                                       variant="isp")])[0]
        assert resp.ok
        assert resp.trace_id is None
        assert resp.region_profiles is None

    def test_rate_zero_records_nothing(self, image):
        tracer = Tracer(sample_rate=0.0)
        responses = traced_run(
            [Request(app="gaussian", image=image, variant="isp")
             for _ in range(4)],
            tracer, workers=2)
        assert all(r.ok for r in responses)
        assert all(r.trace_id is None for r in responses)
        assert tracer.spans() == []

    def test_partial_sampling_matches_the_head_decision(self, image):
        """The engine keys sampling on ``r{request_id}``: the traced subset
        must equal what ``tracer.sampled`` predicts, deterministically."""
        tracer = Tracer(sample_rate=0.5, seed=11)
        requests = [Request(app="gaussian", image=image, variant="isp")
                    for _ in range(12)]
        responses = traced_run(requests, tracer, workers=2)
        assert all(r.ok for r in responses)
        for resp in responses:
            expected = tracer.sampled(f"r{resp.request_id}")
            assert (resp.trace_id is not None) == expected
        traced = {r.trace_id for r in responses if r.trace_id is not None}
        assert 0 < len(traced) < 12  # seed 11 splits this workload
        assert {s.trace_id for s in tracer.spans()} == traced

    def test_simt_success_attaches_region_profiles(self, image):
        small = image[:16, :16].copy()
        tracer = Tracer()
        [resp] = traced_run(
            [Request(app="gaussian", image=small, variant="naive",
                     exec_mode="simt")],
            tracer, workers=1)
        assert resp.ok
        assert resp.fallbacks == []
        assert resp.region_profiles
        prof = resp.region_profiles[0]
        assert prof.warp_instructions > 0
        assert prof.to_dict()["kernel"] == prof.kernel
        spans = spans_by_trace(tracer)[resp.trace_id]
        assert any(s.name.startswith("launch:") for s in spans)
