"""LRU cache of :class:`~repro.serve.plan.ExecutionPlan` objects.

Thread-safe, capacity-bounded, and *single-flight*: when several workers
miss on the same key at once, exactly one builds the plan and the others
wait for the result instead of duplicating the (expensive) build. A
capacity of 0 disables caching entirely — ``serve-bench`` uses that as the
cold-compile-per-request baseline.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Optional

from ..faults import core as _faults
from .plan import ExecutionPlan, PlanKey


class PlanCache:
    """LRU mapping ``PlanKey -> ExecutionPlan`` with hit/miss/eviction stats."""

    def __init__(self, capacity: int = 64):
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._plans: "OrderedDict[PlanKey, ExecutionPlan]" = OrderedDict()
        self._pending: dict[PlanKey, threading.Event] = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._forced_evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def __contains__(self, key: PlanKey) -> bool:
        with self._lock:
            return key in self._plans

    def keys(self) -> list[PlanKey]:
        """Current keys in LRU order (least recently used first)."""
        with self._lock:
            return list(self._plans)

    def get(self, key: PlanKey) -> Optional[ExecutionPlan]:
        """Plain lookup; counts a hit or a miss and refreshes recency."""
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self._plans.move_to_end(key)
                self._hits += 1
            else:
                self._misses += 1
            return plan

    def put(self, key: PlanKey, plan: ExecutionPlan) -> None:
        with self._lock:
            self._insert_locked(key, plan)

    def _insert_locked(self, key: PlanKey, plan: ExecutionPlan) -> None:
        if self.capacity == 0:
            return
        self._plans[key] = plan
        self._plans.move_to_end(key)
        while len(self._plans) > self.capacity:
            self._plans.popitem(last=False)
            self._evictions += 1

    def get_or_build(
        self, key: PlanKey, factory: Callable[[], ExecutionPlan]
    ) -> tuple[ExecutionPlan, bool]:
        """Return ``(plan, was_hit)``; on a miss, build via ``factory``.

        Concurrent misses on one key coalesce: the first caller builds, the
        rest block until the build lands and then count as hits. A factory
        that raises releases the waiters (one of them becomes the next
        builder), so failures do not wedge the key. With ``capacity == 0``
        every call builds its own plan (the uncached baseline).
        """
        if self.capacity == 0:
            plan = factory()
            with self._lock:
                self._misses += 1
            return plan, False

        if _faults._current is not None:
            # Fault point: an eviction storm (a co-tenant flooding the cache)
            # right before this lookup — every plan must survive rebuilding.
            act = _faults.fire("serve.cache.evict", key=key.short())
            if act is not None:
                with self._lock:
                    evicted = len(self._plans)
                    self._plans.clear()
                    self._evictions += evicted
                    self._forced_evictions += evicted

        while True:
            with self._lock:
                plan = self._plans.get(key)
                if plan is not None:
                    self._plans.move_to_end(key)
                    self._hits += 1
                    return plan, True
                event = self._pending.get(key)
                if event is None:
                    self._pending[key] = threading.Event()
                    break
            event.wait()

        try:
            plan = factory()
        except BaseException:
            self._release(key)
            raise
        with self._lock:
            self._misses += 1
            self._insert_locked(key, plan)
        self._release(key)
        return plan, False

    def _release(self, key: PlanKey) -> None:
        with self._lock:
            event = self._pending.pop(key, None)
        if event is not None:
            event.set()

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()

    def stats(self) -> dict:
        with self._lock:
            total = self._hits + self._misses
            return {
                "capacity": self.capacity,
                "size": len(self._plans),
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "forced_evictions": self._forced_evictions,
                "hit_rate": self._hits / total if total else 0.0,
            }
