"""Golden snapshots of fused pipeline plans (sobel + night, all patterns).

Same machinery as ``test_codegen_goldens`` — gzip with ``mtime=0``, content
digest in the filename, ``--update-goldens`` to regenerate — but the pinned
text is :meth:`FusedPlan.describe`: the per-stage cumulative halos, the
amplification factors, and every tile's back-propagated step regions with
their border-check subrects. Any change to the halo algebra, the hull
mapping, or the tile scheduler shows up as a readable diff of exactly the
regions that moved.

Stored under ``tests/goldens/fused/`` so the flat-IR suite's orphan check
stays oblivious to them.
"""

from __future__ import annotations

import difflib
import gzip
import hashlib
import pathlib

import pytest

from repro.compiler import fuse_descs
from repro.serve.plan import trace_app

GOLDEN_DIR = pathlib.Path(__file__).parent / "goldens" / "fused"

#: the two multi-kernel apps of the corpus — the only ones fusion changes
APPS = ("sobel", "night")
PATTERNS = ("clamp", "mirror", "repeat", "constant")
#: 64x64 with 16-row tiles: enough tiles that interior/border schedules
#: both appear, small enough that the night goldens stay reviewable
SIZE = 64
TILE_ROWS = 16

COMBOS = [(a, p) for a in APPS for p in PATTERNS]

MAX_DIFF_LINES = 120
DIGEST_LEN = 12


def golden_stem(app: str, pattern: str) -> str:
    return f"{app}-{pattern}"


def content_digest(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()[:DIGEST_LEN]


def find_golden(app: str, pattern: str) -> list[pathlib.Path]:
    return sorted(GOLDEN_DIR.glob(f"{golden_stem(app, pattern)}.*.ir.gz"))


def read_golden(path: pathlib.Path) -> str:
    return gzip.decompress(path.read_bytes()).decode()


def write_golden(app: str, pattern: str, text: str) -> pathlib.Path:
    path = GOLDEN_DIR / f"{golden_stem(app, pattern)}.{content_digest(text)}.ir.gz"
    for stale in find_golden(app, pattern):
        if stale != path:
            stale.unlink()
    path.write_bytes(gzip.compress(text.encode(), mtime=0))
    return path


def render(app: str, pattern: str) -> str:
    descs = trace_app(app, pattern, SIZE, SIZE)
    plan = fuse_descs(list(descs), tile_rows=TILE_ROWS, name=app)
    header = (
        "# golden fused-plan snapshot — regenerate with:\n"
        "#   pytest tests/test_fused_goldens.py --update-goldens\n"
        f"# app={app} pattern={pattern} size={SIZE}x{SIZE} "
        f"tile_rows={TILE_ROWS}\n"
    )
    return header + plan.describe() + "\n"


@pytest.mark.parametrize("app,pattern", COMBOS,
                         ids=[f"{a}-{p}" for a, p in COMBOS])
def test_fused_plan_matches_golden(app, pattern, update_goldens):
    actual = render(app, pattern)

    if update_goldens:
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        write_golden(app, pattern, actual)
        return

    stored = find_golden(app, pattern)
    if not stored:
        pytest.fail(
            f"missing golden fused/{golden_stem(app, pattern)}.*.ir.gz; "
            f"generate it with `pytest tests/test_fused_goldens.py "
            f"--update-goldens` and commit the result"
        )
    expected = read_golden(stored[-1])
    if actual == expected:
        return

    diff = list(difflib.unified_diff(
        expected.splitlines(keepends=True),
        actual.splitlines(keepends=True),
        fromfile=f"goldens/fused/{stored[-1].name}",
        tofile="generated",
    ))
    shown = "".join(diff[:MAX_DIFF_LINES])
    omitted = len(diff) - MAX_DIFF_LINES
    tail = f"\n... ({omitted} more diff lines)" if omitted > 0 else ""
    pytest.fail(
        f"fused plan for {app}/{pattern} diverges from its golden "
        f"({len(diff)} diff lines). If the change is intentional, rerun "
        f"with --update-goldens and commit.\n{shown}{tail}"
    )


def test_no_orphan_fused_goldens():
    valid_stems = {golden_stem(*combo) for combo in COMBOS}
    seen: dict[str, list[str]] = {}
    for p in GOLDEN_DIR.iterdir():
        if p.is_dir() or p.name in (".gitattributes",):
            continue
        assert p.suffixes[-2:] == [".ir", ".gz"], f"unexpected file: {p.name}"
        stem, digest = p.name.split(".")[0], p.name.split(".")[1]
        assert stem in valid_stems, f"orphan fused golden: {p.name}"
        assert len(digest) == DIGEST_LEN
        seen.setdefault(stem, []).append(digest)
    dupes = {s: d for s, d in seen.items() if len(d) > 1}
    assert not dupes, f"multiple digests stored for one combo: {dupes}"


def test_fused_golden_integrity():
    checked = 0
    for path in sorted(GOLDEN_DIR.glob("*.ir.gz")):
        digest = path.name.split(".")[1]
        assert content_digest(read_golden(path)) == digest, (
            f"{path.name}: content does not match its filename digest"
        )
        checked += 1
    assert checked == len(COMBOS)
