"""Runtime: functional simulation, profiling/timing, vectorized host path."""

from ..compiler.isp import Variant
from .executor import (
    FineClass,
    KernelMeasurement,
    KernelProfile,
    PipelineMeasurement,
    SimulationResult,
    clear_profile_cache,
    fine_block_classes,
    measure_pipeline,
    profile_kernel,
    run_pipeline_simt,
    select_variants,
)
from .make_border import (
    ELEMENT_BYTES,
    ELEMENT_DTYPE,
    make_border,
    pad_key,
    padded_bytes,
    padded_for,
    padded_shape,
)
from .fused import run_fused, run_pipeline_fused
from .padding import PaddingEstimate, measure_padding_kernel, pad_copy_time_us
from .vectorized import (
    VECTORIZED_VARIANTS,
    degenerate_geometry,
    run_kernel_vectorized,
    run_pipeline_vectorized,
)

__all__ = [
    "ELEMENT_BYTES",
    "ELEMENT_DTYPE",
    "FineClass",
    "KernelMeasurement",
    "KernelProfile",
    "PipelineMeasurement",
    "SimulationResult",
    "VECTORIZED_VARIANTS",
    "Variant",
    "clear_profile_cache",
    "degenerate_geometry",
    "fine_block_classes",
    "make_border",
    "measure_padding_kernel",
    "measure_pipeline",
    "pad_copy_time_us",
    "pad_key",
    "padded_bytes",
    "padded_for",
    "padded_shape",
    "PaddingEstimate",
    "profile_kernel",
    "run_fused",
    "run_kernel_vectorized",
    "run_pipeline_fused",
    "run_pipeline_simt",
    "run_pipeline_vectorized",
    "select_variants",
]
