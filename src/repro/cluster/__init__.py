"""``repro.cluster`` — sharded multi-process serving over ``repro.serve``.

One :class:`~repro.serve.engine.ServeEngine` is bounded by one process's
cores and one plan cache. The cluster shards the serve stack across worker
processes without giving up any of its guarantees (see docs/cluster.md):

* :mod:`~repro.cluster.protocol` — length-prefixed JSON/binary frames,
  rendezvous hashing, span wire form, the cluster's typed error kinds;
* :mod:`~repro.cluster.worker` — a shard: one full ServeEngine behind a
  TCP port (``python -m repro.cluster.worker``);
* :mod:`~repro.cluster.router` — content-digest routing with a stable
  per-key failover order (same identity the plan caches key on);
* :mod:`~repro.cluster.manager` — :class:`LocalCluster`: spawn, monitor,
  kill, warm-respawn;
* :mod:`~repro.cluster.gateway` — asyncio front door: admission control,
  per-tenant quotas, priority classes, failover, cross-process trace
  stitching, merged Prometheus metrics;
* :mod:`~repro.cluster.warmstart` — per-slot autotune snapshots that seed
  replacement shards;
* :mod:`~repro.cluster.loadgen` / :mod:`~repro.cluster.bench` — the
  digest-verified synthetic load and the 1 -> N scaling curve.
"""

from .bench import format_cluster_report, run_cluster_bench
from .gateway import (
    PRIORITIES,
    ClusterRequest,
    ClusterResponse,
    Gateway,
    SyncGateway,
)
from .loadgen import (
    build_cluster_workload,
    format_load_report,
    reference_digests,
    run_load,
)
from .manager import LocalCluster, ShardProcess
from .protocol import (
    CLUSTER_ERROR_KINDS,
    MAX_FRAME,
    PROTOCOL_VERSION,
    ProtocolError,
    array_digest,
    decode_array,
    encode_array,
    pack_frame,
    recv_frame,
    rendezvous_order,
    route_key,
    send_frame,
    spans_from_wire,
    spans_to_wire,
)
from .router import NoLiveShards, Router, RoutingTable
from .warmstart import WarmStartStore
from .worker import SelectiveTracer, ShardServer

__all__ = [
    "CLUSTER_ERROR_KINDS",
    "MAX_FRAME",
    "PRIORITIES",
    "PROTOCOL_VERSION",
    "ClusterRequest",
    "ClusterResponse",
    "Gateway",
    "LocalCluster",
    "NoLiveShards",
    "ProtocolError",
    "Router",
    "RoutingTable",
    "SelectiveTracer",
    "ShardProcess",
    "ShardServer",
    "SyncGateway",
    "WarmStartStore",
    "array_digest",
    "build_cluster_workload",
    "decode_array",
    "encode_array",
    "format_cluster_report",
    "format_load_report",
    "pack_frame",
    "recv_frame",
    "reference_digests",
    "rendezvous_order",
    "route_key",
    "run_cluster_bench",
    "run_load",
    "send_frame",
    "spans_from_wire",
    "spans_to_wire",
]
