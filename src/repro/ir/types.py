"""Data types of the virtual PTX-like ISA.

The paper analyzes instruction counts at PTX level (Section IV-A). Our virtual
ISA keeps the PTX type discipline small but faithful: 32-bit signed/unsigned
integers, 32-bit IEEE floats, and 1-bit predicates. All memory traffic in the
evaluated kernels is 4 bytes per element, which matches the single-channel
``float``/``uchar``-promoted-to-``float`` images used by Hipacc-generated code.
"""

from __future__ import annotations

import enum

import numpy as np


class DataType(enum.Enum):
    """Register/operand types, mirroring PTX ``.pred/.s32/.u32/.f32``."""

    PRED = "pred"
    S32 = "s32"
    U32 = "u32"
    F32 = "f32"

    @property
    def suffix(self) -> str:
        """PTX-style type suffix used by the printer (e.g. ``add.s32``)."""
        return self.value

    @property
    def numpy_dtype(self) -> np.dtype:
        """The NumPy dtype used by the SIMT simulator to hold lane values."""
        return _NUMPY_DTYPES[self]

    @property
    def is_integer(self) -> bool:
        return self in (DataType.S32, DataType.U32)

    @property
    def is_float(self) -> bool:
        return self is DataType.F32

    @property
    def is_predicate(self) -> bool:
        return self is DataType.PRED

    @property
    def size_bytes(self) -> int:
        """Storage footprint in global memory (predicates never hit memory)."""
        if self is DataType.PRED:
            raise ValueError("predicates are not addressable")
        return 4

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DataType.{self.name}"


_NUMPY_DTYPES = {
    DataType.PRED: np.dtype(np.bool_),
    DataType.S32: np.dtype(np.int32),
    DataType.U32: np.dtype(np.uint32),
    DataType.F32: np.dtype(np.float32),
}

#: Types that may appear as kernel parameters.
PARAM_TYPES = (DataType.S32, DataType.U32, DataType.F32)

#: Types that may be loaded from / stored to global memory.
MEMORY_TYPES = (DataType.S32, DataType.U32, DataType.F32)


def coerce_immediate(value: float | int | bool, dtype: DataType):
    """Clamp/convert a Python literal to the exact lattice of ``dtype``.

    Keeping immediates pre-coerced means the simulator never has to guess about
    overflow semantics: ``s32`` wraps like int32, ``f32`` rounds to float32.
    """
    if dtype is DataType.PRED:
        return bool(value)
    if dtype is DataType.F32:
        return float(np.float32(value))
    if dtype is DataType.S32:
        return int(np.int32(np.int64(value) & 0xFFFFFFFF))
    if dtype is DataType.U32:
        return int(np.uint32(np.int64(value) & 0xFFFFFFFF))
    raise ValueError(f"unsupported immediate type {dtype}")
