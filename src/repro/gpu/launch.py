"""Kernel launch: grid/block decomposition and parameter binding.

Mirrors the CUDA execution model pieces the paper's analysis relies on: the
image is divided into threadblocks of a user-defined size (paper Section
III-C), blocks are identified by ``blockIdx`` and decompose into warps of
``warp_size`` threads linearized x-major (so a 32x4 block holds 4 warps of
one row each on a warp32 device — the layout warp-grained ISP exploits).
The warp width comes from the launch config, which takes it from the active
:class:`~repro.gpu.device.DeviceSpec` (32 NVIDIA, 64 AMD wavefronts).
"""

from __future__ import annotations

import dataclasses
import math
import threading
from typing import Iterable, Optional

import numpy as np

from ..ir.cfg import immediate_postdominators
from ..ir.function import KernelFunction
from ..ir.verifier import verify
from .memory import GlobalMemory
from .profiler import Profiler
from .simt import SimtAbort, WarpContext, WarpExecutor


@dataclasses.dataclass(frozen=True)
class LaunchConfig:
    """Grid geometry for one kernel launch."""

    grid: tuple[int, int]  # blocks in (x, y)
    block: tuple[int, int]  # threads per block in (x, y)
    #: SIMT width the block decomposes into — the device's warp/wavefront size
    warp_size: int = 32

    def __post_init__(self):
        gx, gy = self.grid
        bx, by = self.block
        if min(gx, gy, bx, by) <= 0:
            raise ValueError("grid/block dimensions must be positive")
        if self.warp_size <= 0 or self.warp_size & (self.warp_size - 1):
            raise ValueError(
                f"warp_size must be a positive power of two, got {self.warp_size}"
            )

    @property
    def threads_per_block(self) -> int:
        return self.block[0] * self.block[1]

    @property
    def warps_per_block(self) -> int:
        return math.ceil(self.threads_per_block / self.warp_size)

    @property
    def total_blocks(self) -> int:
        return self.grid[0] * self.grid[1]

    @staticmethod
    def for_image(
        width: int, height: int, block: tuple[int, int], warp_size: int = 32
    ) -> "LaunchConfig":
        """Grid that covers a width x height iteration space."""
        bx, by = block
        return LaunchConfig(
            grid=(math.ceil(width / bx), math.ceil(height / by)), block=block,
            warp_size=warp_size,
        )


def _warp_contexts(cfg: LaunchConfig, bx_idx: int, by_idx: int) -> Iterable[WarpContext]:
    """Yield the warp contexts of one block (x-major thread linearization)."""
    bx, by = cfg.block
    nthreads = bx * by
    gx, gy = cfg.grid
    width = cfg.warp_size
    linear = np.arange(width, dtype=np.int64)
    n_warps = math.ceil(nthreads / width)
    for w in range(n_warps):
        lin = w * width + linear
        lane_mask = lin < nthreads
        lin_clipped = np.minimum(lin, nthreads - 1)
        yield WarpContext(
            tid_x=(lin_clipped % bx).astype(np.int32),
            tid_y=(lin_clipped // bx).astype(np.int32),
            ctaid_x=bx_idx,
            ctaid_y=by_idx,
            ntid_x=bx,
            ntid_y=by,
            nctaid_x=gx,
            nctaid_y=gy,
            warp_id=w,
            lane_mask=lane_mask,
        )


def execute_block(
    func: KernelFunction,
    cfg: LaunchConfig,
    block_idx: tuple[int, int],
    memory: GlobalMemory,
    params: dict,
    profiler: Optional[Profiler] = None,
    ipdoms: Optional[dict] = None,
    block_class: Optional[str] = None,
    abort: Optional[threading.Event] = None,
) -> None:
    """Run every warp of one threadblock to completion.

    Kernels whose metadata declares ``shared_bytes`` get a per-block shared
    scratchpad (its base injected as the ``smem_base`` parameter) and their
    warps advance in barrier-synchronized phases: every live warp must reach
    each ``bar.sync`` before any proceeds — the ``__syncthreads`` contract.
    """
    if ipdoms is None:
        ipdoms = immediate_postdominators(func)
    if profiler is not None:
        profiler.begin_block(block_idx, block_class)

    shared_bytes = int(func.metadata.get("shared_bytes", 0))
    shared = None
    if shared_bytes > 0:
        size = 1 << max(10, (shared_bytes + 256).bit_length())
        shared = GlobalMemory(size)
        params = dict(params)
        params["smem_base"] = shared.alloc(shared_bytes)

    contexts = list(_warp_contexts(cfg, *block_idx))
    executors = [
        WarpExecutor(func, memory, params, profiler, ipdoms, shared=shared,
                     abort=abort, warp_size=cfg.warp_size)
        for _ in contexts
    ]
    if shared is None:
        for ex, ctx in zip(executors, contexts):
            ex.run(ctx)
    else:
        generators = [ex.run_phases(ctx) for ex, ctx in zip(executors, contexts)]
        alive = list(generators)
        while alive:
            arrived = []
            for gen in alive:
                try:
                    next(gen)
                    arrived.append(gen)
                except StopIteration:
                    pass  # warp ran to completion (exited before/after bars)
            alive = arrived

    if profiler is not None:
        profiler.end_block()


def launch(
    func: KernelFunction,
    cfg: LaunchConfig,
    memory: GlobalMemory,
    params: dict,
    profiler: Optional[Profiler] = None,
    blocks: Optional[Iterable[tuple[tuple[int, int], Optional[str]]]] = None,
    abort: Optional[threading.Event] = None,
) -> None:
    """Execute a kernel launch.

    Parameters
    ----------
    blocks:
        When ``None``, the full grid executes (functional simulation). For
        representative-block profiling, pass an iterable of
        ``((bx, by), block_class)`` pairs and only those blocks run — the
        caller scales their counters by the per-region block counts
        (paper Eq. 8).
    """
    verify(func)
    missing = [
        p.name for p in func.params
        if p.name not in params and p.name != "smem_base"  # injected per block
    ]
    if missing:
        raise ValueError(f"launch of {func.name}: missing parameters {missing}")
    ipdoms = immediate_postdominators(func)
    if blocks is None:
        gx, gy = cfg.grid
        blocks = (((ix, iy), None) for iy in range(gy) for ix in range(gx))
    for block_idx, block_class in blocks:
        ix, iy = block_idx
        if not (0 <= ix < cfg.grid[0] and 0 <= iy < cfg.grid[1]):
            raise ValueError(f"block index {block_idx} outside grid {cfg.grid}")
        if abort is not None and abort.is_set():
            raise SimtAbort(f"{func.name}: launch aborted before block {block_idx}")
        execute_block(
            func, cfg, block_idx, memory, params, profiler, ipdoms, block_class,
            abort=abort,
        )
