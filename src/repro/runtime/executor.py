"""End-to-end runtime: functional simulation, profiling, and timing.

Three services on top of the compiler and the GPU simulator:

* :func:`run_pipeline_simt` — full functional SIMT simulation of a pipeline
  (every block of every kernel); used by the correctness tests against the
  NumPy references. Feasible for small images.
* :func:`profile_pipeline` / :func:`measure_pipeline` — *representative-block
  profiling*: the grid is partitioned into fine block classes (one class per
  distinct border row/column combination, interior collapsed), exactly one
  block per class is simulated, and its counters are scaled by the class's
  block count (paper Eq. 8 made exact). The resulting per-class cycle costs
  feed :func:`repro.gpu.timing.estimate_time`. Because the per-class counts
  are independent of the image size (for non-degenerate geometry), profiles
  are cached and reused across image sizes and across devices that share a
  warp width (the cache key carries ``device.warp_size``).
* :func:`select_variants` — the paper's ``isp+m``: per kernel, ask the
  analytic model (:mod:`repro.model`) whether ISP pays off and pick the
  predicted-faster variant.
"""

from __future__ import annotations

import dataclasses
import math
import time
from typing import Optional

import numpy as np

from ..compiler.driver import CompiledKernel, compile_kernel
from ..compiler.frontend import KernelDescription, trace_kernel
from ..compiler.isp import Variant
from ..compiler.regions import Region, RegionGeometry
from ..dsl.pipeline import Pipeline
from ..faults import core as _faults
from ..faults.core import FaultError
from ..gpu.cost import cost_table_for
from ..gpu.device import DeviceSpec, GTX680
from ..gpu.memory import GlobalMemory
from ..gpu.profiler import BlockProfile, Profiler
from ..gpu.launch import LaunchConfig, launch
from ..gpu.timing import TimingEstimate, estimate_time
from ..ir.types import DataType
from ..trace import core as _trace_core

# ---------------------------------------------------------------------------
# Functional SIMT simulation
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class SimulationResult:
    """Outcome of a functional pipeline simulation."""

    images: dict[str, np.ndarray]
    compiled: list[CompiledKernel]
    profilers: list[Profiler]

    @property
    def output(self) -> np.ndarray:
        return self.images["out"]


def run_pipeline_simt(
    pipeline: Pipeline,
    *,
    variant: Variant = Variant.NAIVE,
    block: tuple[int, int] = (32, 4),
    device: DeviceSpec = GTX680,
    inputs: Optional[dict[str, np.ndarray]] = None,
    memory_bytes: Optional[int] = None,
    shadow_oob: bool = False,
) -> SimulationResult:
    """Functionally simulate every stage of ``pipeline`` on the GPU model.

    ``shadow_oob`` runs the simulated memory in shadow mode: allocations get
    redzones and every lane address must hit a live allocation, so an
    out-of-bounds border access traps even when it would land inside another
    image's buffer (see :class:`repro.gpu.memory.GlobalMemory`).
    """
    images: dict[str, np.ndarray] = {}
    for img in pipeline.inputs:
        if inputs is not None and img.name in inputs:
            images[img.name] = np.asarray(inputs[img.name], dtype=np.float32)
        else:
            images[img.name] = img.host

    descs = [trace_kernel(k) for k in pipeline]
    if memory_bytes is None:
        n_images = len(descs) + len(images)
        px = max(d.width * d.height for d in descs)
        slack = (n_images + 2) * 256 + 4096  # alignment + shadow redzones
        memory_bytes = 1 << max(
            16, math.ceil(math.log2((n_images + 2) * px * 4 + slack))
        )
    mem = GlobalMemory(memory_bytes, shadow=shadow_oob)

    bases: dict[str, int] = {}
    for name, arr in images.items():
        bases[name] = mem.alloc(arr.size * 4)
        mem.write_array(bases[name], arr)

    compiled: list[CompiledKernel] = []
    profilers: list[Profiler] = []
    for desc in descs:
        if _faults._current is not None:
            # Fault point: per-kernel SIMT launch — "latency" models a
            # co-tenant stall, "error" a failed launch.
            act = _faults.fire("runtime.executor.kernel", kernel=desc.name)
            if act is not None:
                if act.kind == "latency":
                    act.sleep()
                else:
                    raise FaultError("runtime.executor.kernel", act.kind)
        ck = compile_kernel(desc, variant=variant, block=block, device=device)
        out_base = mem.alloc(desc.width * desc.height * 4)
        bases[desc.output_name] = out_base
        prof = Profiler(cost_table_for(device))
        t_launch = time.perf_counter()
        launch(ck.func, ck.launch_config, mem, ck.param_values(bases), prof)
        if _trace_core._current is not None:
            ctx = _trace_core.current_context()
            if ctx is not None:
                tracer, parent = ctx
                tracer.record_span(
                    f"launch:{desc.name}", parent,
                    t_launch, time.perf_counter(),
                    variant=ck.effective_variant.value,
                    warp_instructions=prof.warp_instructions,
                    regions=prof.region_totals(),
                    events=prof.event_totals(),
                )
        images[desc.output_name] = mem.read_array(
            out_base, (desc.height, desc.width), DataType.F32
        )
        compiled.append(ck)
        profilers.append(prof)
    return SimulationResult(images=images, compiled=compiled, profilers=profilers)


# ---------------------------------------------------------------------------
# Fine block classes for representative profiling
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class FineClass:
    """One equivalence class of blocks with identical dynamic behaviour.

    Border block rows/columns are distinguished individually (their distance
    to the border differs, which matters for Repeat's loop trip counts); all
    interior rows/columns collapse into one "M" class.
    """

    name: str
    representative: tuple[int, int]
    count: int
    region: Region


def fine_block_classes(geom: RegionGeometry) -> list[FineClass]:
    """Partition the grid into fine classes (exact, size-independent)."""
    gx, gy = geom.grid

    def axis_classes(low: int, high: int, total: int, axis: str):
        # (key, example index, column/row count)
        out = []
        for i in range(low):
            out.append((f"{axis}L{i}", i, 1))
        if high > low:
            out.append((f"{axis}M", low, high - low))
        for j in range(high, total):
            out.append((f"{axis}R{total - j}", j, 1))
        return out

    cols = axis_classes(geom.bh_l, geom.bh_r, gx, "x")
    rows = axis_classes(geom.bh_t, geom.bh_b, gy, "y")
    classes = []
    for rkey, rex, rcount in rows:
        for ckey, cex, ccount in cols:
            name = f"{ckey}|{rkey}"
            rep = (cex, rex)
            classes.append(
                FineClass(
                    name=name,
                    representative=rep,
                    count=ccount * rcount,
                    region=geom.classify(*rep),
                )
            )
    assert sum(c.count for c in classes) == gx * gy
    return classes


# ---------------------------------------------------------------------------
# Representative-block profiling (cached)
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class KernelProfile:
    """Per-class block profiles + class counts for one compiled kernel."""

    compiled: CompiledKernel
    classes: list[FineClass]
    profiles: dict[str, BlockProfile]

    def total_blocks(self) -> int:
        return sum(c.count for c in self.classes)

    def class_cycles(self, device: DeviceSpec) -> dict[str, float]:
        table = cost_table_for(device)
        return {c.name: self.profiles[c.name].cycles_on(table) for c in self.classes}

    def class_counts(self) -> dict[str, int]:
        return {c.name: c.count for c in self.classes}

    def mem_issue_fraction(self, device: DeviceSpec) -> float:
        table = cost_table_for(device)
        total = mem = 0.0
        for c in self.classes:
            p = self.profiles[c.name]
            total += c.count * p.cycles_on(table)
            mem += c.count * p.mem_cycles_on(table)
        return min(1.0, mem / total) if total else 0.0

    def total_issue_cycles(self, device: DeviceSpec) -> float:
        cycles = self.class_cycles(device)
        return sum(cycles[c.name] * c.count for c in self.classes)

    def region_keyword_counts(self) -> dict[Region, dict[str, int]]:
        """Dynamic keyword counts of one representative block per *paper*
        region (Table I's unit of reporting). When several fine classes map
        to one region, the first (outermost) is reported."""
        out: dict[Region, dict[str, int]] = {}
        for c in self.classes:
            if c.region not in out:
                out[c.region] = dict(self.profiles[c.name].by_keyword)
        return out

    def timing(self, device: DeviceSpec) -> TimingEstimate:
        regs = self.compiled.registers
        return estimate_time(
            device,
            total_blocks=self.total_blocks(),
            block_threads=self.compiled.launch_config.threads_per_block,
            regs_per_thread=regs.allocated if regs else 32,
            class_block_cycles=self.class_cycles(device),
            class_block_counts=self.class_counts(),
            mem_issue_fraction=self.mem_issue_fraction(device),
            spill_factor=regs.spill_factor if regs else 1.0,
            shared_bytes=int(self.compiled.func.metadata.get("shared_bytes", 0)),
        )


def _profile_cache_key(desc: KernelDescription, variant: Variant,
                       block: tuple[int, int], warp_size: int) -> tuple:
    boundaries = tuple(
        sorted((a.image.name, a.boundary.value) for a in desc.accessors)
    )
    n_nodes = sum(1 for _ in _walk_expr(desc))
    from ..compiler.lowering import needs_bounds_guard

    return (
        desc.name,
        boundaries,
        desc.extent,
        n_nodes,
        variant.value,
        block,
        # Warp width changes both the generated code (warp-grained dispatch)
        # and the block's warp decomposition, so a warp32 profile must never
        # be reused for a wave64 device.
        warp_size,
        needs_bounds_guard(desc.width, desc.height, block),
    )


def _walk_expr(desc: KernelDescription):
    from ..dsl.expr import walk

    return walk(desc.expr)


_PROFILE_CACHE: dict[tuple, dict[str, BlockProfile]] = {}


def clear_profile_cache() -> None:
    _PROFILE_CACHE.clear()


def profile_kernel(
    desc: KernelDescription,
    *,
    variant: Variant = Variant.NAIVE,
    block: tuple[int, int] = (32, 4),
    device: DeviceSpec = GTX680,
    use_cache: bool = True,
) -> KernelProfile:
    """Representative-block profile of one kernel variant.

    The compiled kernel is always produced for the *requested* geometry; only
    the per-class block counters are cached/reused across image sizes, which
    is sound because a block's dynamic behaviour depends only on its position
    relative to the borders (its fine class), not on the image size.
    """
    ck = compile_kernel(desc, variant=variant, block=block, device=device)

    hx, hy = desc.extent
    geom = ck.geometry
    if geom is None:
        geom = RegionGeometry.compute(desc.width, desc.height, hx, hy, block)
    if geom.degenerate:
        raise ValueError(
            f"{desc.name}: degenerate geometry at {desc.width}x{desc.height} "
            f"block {block} — representative profiling unsupported"
        )
    classes = fine_block_classes(geom)

    key = _profile_cache_key(desc, ck.effective_variant, block,
                             device.warp_size)
    cached = _PROFILE_CACHE.get(key) if use_cache else None
    if cached is not None and all(c.name in cached for c in classes):
        return KernelProfile(compiled=ck, classes=classes, profiles=cached)

    # Execute one block per class against zero-filled images (counts do not
    # depend on pixel values: the kernels have no data-dependent branches on
    # image content).
    mem = GlobalMemory(_memory_size_for(desc))
    bases: dict[str, int] = {}
    for acc in desc.accessors:
        img = acc.image
        if img.name not in bases:
            bases[img.name] = mem.alloc(img.width * img.height * 4)
    bases[desc.output_name] = mem.alloc(desc.width * desc.height * 4)
    params = ck.param_values(bases)

    prof = Profiler(cost_table_for(device))
    blocks = [(c.representative, c.name) for c in classes]
    launch(ck.func, ck.launch_config, mem, params, prof, blocks=blocks)
    profiles = {bp.block_class: bp for bp in prof.block_profiles}
    if use_cache:
        _PROFILE_CACHE[key] = profiles
    return KernelProfile(compiled=ck, classes=classes, profiles=profiles)


def _memory_size_for(desc: KernelDescription) -> int:
    names = {a.image.name for a in desc.accessors} | {desc.output_name}
    need = (len(names) + 1) * desc.width * desc.height * 4 + 8192
    return 1 << max(16, math.ceil(math.log2(need)))


# ---------------------------------------------------------------------------
# Pipeline measurement (the simulator's NVProf numbers)
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class KernelMeasurement:
    name: str
    requested_variant: Variant
    effective_variant: Variant
    timing: TimingEstimate
    profile: KernelProfile


@dataclasses.dataclass
class PipelineMeasurement:
    pipeline: str
    device: str
    variant: Variant
    kernels: list[KernelMeasurement]

    @property
    def total_us(self) -> float:
        return sum(k.timing.time_us for k in self.kernels)


def measure_pipeline(
    pipeline: Pipeline,
    *,
    variant: Variant = Variant.NAIVE,
    block: tuple[int, int] = (32, 4),
    device: DeviceSpec = GTX680,
    per_kernel_variants: Optional[dict[str, Variant]] = None,
) -> PipelineMeasurement:
    """Estimate execution time of every stage under one variant policy.

    ``per_kernel_variants`` overrides the variant per kernel name — used by
    the ``isp+m`` policy where the model picks naive or ISP per kernel.
    """
    measurements = []
    for kernel in pipeline:
        desc = trace_kernel(kernel)
        v = variant
        if per_kernel_variants and desc.name in per_kernel_variants:
            v = per_kernel_variants[desc.name]
        prof = profile_kernel(desc, variant=v, block=block, device=device)
        measurements.append(
            KernelMeasurement(
                name=desc.name,
                requested_variant=v,
                effective_variant=prof.compiled.effective_variant,
                timing=prof.timing(device),
                profile=prof,
            )
        )
    return PipelineMeasurement(
        pipeline=pipeline.name,
        device=device.name,
        variant=variant,
        kernels=measurements,
    )


def select_variants(
    pipeline: Pipeline,
    *,
    block: tuple[int, int] = (32, 4),
    device: DeviceSpec = GTX680,
) -> dict[str, Variant]:
    """The paper's ``isp+m`` policy: per kernel, use the analytic model's
    prediction ``G`` (Eq. 10) to choose between NAIVE and ISP."""
    from ..model.prediction import predict_kernel

    choices: dict[str, Variant] = {}
    for kernel in pipeline:
        desc = trace_kernel(kernel)
        if not desc.needs_border_handling:
            choices[desc.name] = Variant.NAIVE
            continue
        prediction = predict_kernel(desc, block=block, device=device)
        choices[desc.name] = Variant.ISP if prediction.use_isp else Variant.NAIVE
    return choices
