"""Region geometry for iteration space partitioning.

Implements Section III-C of the paper: given image size ``sx x sy``, window
half-extents ``(hx, hy)`` and block size ``tx x ty``, derive the block-index
bounds ``BH_L, BH_R, BH_T, BH_B`` (paper Eq. 2) that split the grid into the
nine regions of paper Figure 1::

        TL |  T  | TR
        ---+-----+---
        L  | Body|  R
        ---+-----+---
        BL |  B  | BR

A block needs *left* checks iff some thread in it can read ``x < 0``, i.e.
its leftmost output column is ``< hx``; analogously for the other sides. The
bounds below are exact (property-tested against a brute-force per-block
window analysis), which makes the representative-block profiling sound.
"""

from __future__ import annotations

import dataclasses
import enum
import math


class Region(enum.Enum):
    """The nine regions, in the switch order of paper Listing 3."""

    TL = "TL"
    TR = "TR"
    T = "T"
    BL = "BL"
    BR = "BR"
    B = "B"
    R = "R"
    L = "L"
    BODY = "Body"

    def __str__(self) -> str:
        return self.value


#: Which border sides each region checks (subset of {"left","right","top","bottom"}).
REGION_CHECKS: dict[Region, frozenset[str]] = {
    Region.TL: frozenset({"left", "top"}),
    Region.T: frozenset({"top"}),
    Region.TR: frozenset({"right", "top"}),
    Region.L: frozenset({"left"}),
    Region.BODY: frozenset(),
    Region.R: frozenset({"right"}),
    Region.BL: frozenset({"left", "bottom"}),
    Region.B: frozenset({"bottom"}),
    Region.BR: frozenset({"right", "bottom"}),
}

#: Listing 3 evaluates region tests in this order; the position determines
#: how many switch comparisons a block executes before dispatch.
SWITCH_ORDER = [
    Region.TL,
    Region.TR,
    Region.T,
    Region.BL,
    Region.BR,
    Region.B,
    Region.R,
    Region.L,
    Region.BODY,
]


@dataclasses.dataclass(frozen=True)
class RegionGeometry:
    """Partitioning of a grid into the nine ISP regions."""

    width: int
    height: int
    hx: int
    hy: int
    block: tuple[int, int]
    grid: tuple[int, int]
    bh_l: int  # block columns [0, bh_l) need left checks
    bh_r: int  # block columns [bh_r, gx) need right checks
    bh_t: int  # block rows [0, bh_t) need top checks
    bh_b: int  # block rows [bh_b, gy) need bottom checks

    @classmethod
    def compute(
        cls, width: int, height: int, hx: int, hy: int, block: tuple[int, int]
    ) -> "RegionGeometry":
        tx, ty = block
        if min(width, height, tx, ty) <= 0 or hx < 0 or hy < 0:
            raise ValueError("invalid geometry parameters")
        gx = math.ceil(width / tx)
        gy = math.ceil(height / ty)
        # Left: block column i covers output x >= i*tx; needs left checks iff
        # i*tx - hx < 0.
        bh_l = min(gx, math.ceil(hx / tx)) if hx > 0 else 0
        # Top analogously.
        bh_t = min(gy, math.ceil(hy / ty)) if hy > 0 else 0
        # Right: block column i's largest in-image output x is
        # min((i+1)*tx, width) - 1; needs right checks iff that + hx >= width.
        if hx > 0:
            bh_r = next(
                (
                    i
                    for i in range(gx)
                    if min((i + 1) * tx, width) - 1 + hx >= width
                ),
                gx,
            )
        else:
            bh_r = gx
        if hy > 0:
            bh_b = next(
                (
                    j
                    for j in range(gy)
                    if min((j + 1) * ty, height) - 1 + hy >= height
                ),
                gy,
            )
        else:
            bh_b = gy
        return cls(width, height, hx, hy, (tx, ty), (gx, gy), bh_l, bh_r, bh_t, bh_b)

    # ------------------------------------------------------------ properties

    @property
    def degenerate(self) -> bool:
        """True when some block needs checks on both opposite sides of an
        axis (image too small for the window/block combination) — the nine-
        region scheme cannot express that block, so ISP must fall back."""
        overlap_x = self.hx > 0 and self.bh_l > self.bh_r
        overlap_y = self.hy > 0 and self.bh_t > self.bh_b
        return overlap_x or overlap_y

    def classify(self, bx: int, by: int) -> Region:
        """Region of block (bx, by) — the runtime switch of Listing 3."""
        gx, gy = self.grid
        if not (0 <= bx < gx and 0 <= by < gy):
            raise ValueError(f"block ({bx}, {by}) outside grid {self.grid}")
        left = bx < self.bh_l
        right = bx >= self.bh_r
        top = by < self.bh_t
        bottom = by >= self.bh_b
        if left and top:
            return Region.TL
        if right and top:
            return Region.TR
        if top:
            return Region.T
        if left and bottom:
            return Region.BL
        if right and bottom:
            return Region.BR
        if bottom:
            return Region.B
        if right:
            return Region.R
        if left:
            return Region.L
        return Region.BODY

    def block_counts(self) -> dict[Region, int]:
        """Exact number of blocks per region (paper Eq. 8)."""
        gx, gy = self.grid
        nxl = self.bh_l
        nxr = gx - self.bh_r
        nxm = gx - nxl - nxr
        nyt = self.bh_t
        nyb = gy - self.bh_b
        nym = gy - nyt - nyb
        counts = {
            Region.TL: nxl * nyt,
            Region.T: nxm * nyt,
            Region.TR: nxr * nyt,
            Region.L: nxl * nym,
            Region.BODY: nxm * nym,
            Region.R: nxr * nym,
            Region.BL: nxl * nyb,
            Region.B: nxm * nyb,
            Region.BR: nxr * nyb,
        }
        assert sum(counts.values()) == gx * gy
        return counts

    def body_fraction(self) -> float:
        """Fraction of blocks executing the Body region (paper Figure 3)."""
        counts = self.block_counts()
        return counts[Region.BODY] / max(1, self.grid[0] * self.grid[1])

    def representative(self, region: Region) -> tuple[int, int] | None:
        """A block index belonging to ``region``, or None if the region is
        empty. Used for representative-block profiling."""
        gx, gy = self.grid
        if self.degenerate:
            raise ValueError("degenerate geometry has no 9-region decomposition")
        x_for = {
            "left": 0 if self.bh_l > 0 else None,
            "mid": self.bh_l if self.bh_l < self.bh_r else None,
            "right": self.bh_r if self.bh_r < gx else None,
        }
        y_for = {
            "top": 0 if self.bh_t > 0 else None,
            "mid": self.bh_t if self.bh_t < self.bh_b else None,
            "bottom": self.bh_b if self.bh_b < gy else None,
        }
        picks = {
            Region.TL: ("left", "top"),
            Region.T: ("mid", "top"),
            Region.TR: ("right", "top"),
            Region.L: ("left", "mid"),
            Region.BODY: ("mid", "mid"),
            Region.R: ("right", "mid"),
            Region.BL: ("left", "bottom"),
            Region.B: ("mid", "bottom"),
            Region.BR: ("right", "bottom"),
        }
        xk, yk = picks[region]
        x, y = x_for[xk], y_for[yk]
        if x is None or y is None:
            return None
        assert self.classify(x, y) is region
        return (x, y)

    def feasible_regions(self) -> list[Region]:
        """Regions with at least one block, in switch order."""
        counts = self.block_counts()
        return [r for r in SWITCH_ORDER if counts[r] > 0]
