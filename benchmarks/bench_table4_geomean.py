"""Table IV — geometric mean speedup of isp+m over naive, per application.

Paper Section VI-A.3: "For each application, we computed the geometric mean
of the speedups of the isp+m implementation over the naive implementation
across all benchmarks on both GPUs." The paper's row:

    Gaussian 1.438 | Laplace 1.422 | Bilateral 1.355 | Sobel 1.877 | Night 1.102

Our simulated substrate compresses the absolute numbers, but the claims that
must survive are: every app's geomean > 1 (isp+m never loses on average) and
the cheap-kernel apps (Gaussian/Laplace/Sobel) gain more than the expensive
Bilateral.
"""

from __future__ import annotations

from repro.reporting import format_table, geometric_mean

from harness import APPS, PATTERNS, SIZES, Config, speedup_over_naive

DEVICES = ["GTX680", "RTX2080"]


def build():
    geo = {}
    for app in APPS:
        speedups = [
            speedup_over_naive(Config(app, pattern, size, device), "isp+m")
            for device in DEVICES
            for pattern in PATTERNS
            for size in SIZES
        ]
        geo[app] = geometric_mean(speedups)
    table = format_table(
        APPS,
        [[geo[a] for a in APPS]],
        title="Table IV (reproduced): geometric mean isp+m speedup over naive "
              "(all patterns x sizes x both GPUs)",
    )
    return geo, table


def test_table4(benchmark, report):
    geo, table = benchmark.pedantic(build, rounds=1, iterations=1)
    report("table4_geomean", table)

    # isp+m is a net win for every application.
    for app, value in geo.items():
        assert value > 1.0, app
    # Cheap kernels benefit more than the expensive bilateral (paper: "the
    # less expensive the kernel computation is, the more speedup").
    assert geo["gaussian"] > geo["bilateral"]
    assert geo["laplace"] > geo["bilateral"]
