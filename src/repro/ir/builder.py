"""Convenience builder for constructing virtual-ISA kernel functions.

The compiler's lowering passes use this builder exclusively; hand-written
kernels in the tests use it too. It provides typed helpers for every opcode,
automatic fresh-register naming, Python-literal auto-immediates, and tagging
contexts (``region`` / ``role``) that thread the paper's accounting categories
(n_check / n_switch / n_kernel, per-region attribution) through the emitted
instructions.
"""

from __future__ import annotations

import contextlib
from typing import Optional, Union

from .function import BasicBlock, KernelFunction, Param
from .instructions import (
    CmpOp,
    Immediate,
    Instruction,
    Opcode,
    Operand,
    Register,
    SpecialReg,
)
from .instructions import Opcode as _Op  # noqa: F401 (re-export convenience)
from .types import DataType

Value = Union[Register, Immediate, int, float, bool]


class IRBuilder:
    """Builds a :class:`KernelFunction` block by block."""

    def __init__(self, name: str, params: Optional[list[Param]] = None):
        self.function = KernelFunction(name, params or [])
        self._block: Optional[BasicBlock] = None
        self._reg_counter = 0
        self._label_counter = 0
        self._region: Optional[str] = None
        self._role: Optional[str] = None

    # ------------------------------------------------------------------ state

    @property
    def block(self) -> BasicBlock:
        if self._block is None:
            raise ValueError("no current block; call new_block()/set_block() first")
        return self._block

    def new_block(self, label: Optional[str] = None, *, switch: bool = True) -> BasicBlock:
        if label is None:
            label = self.fresh_label("bb")
        blk = self.function.new_block(label)
        if switch:
            self._block = blk
        return blk

    def set_block(self, block: Union[BasicBlock, str]) -> None:
        if isinstance(block, str):
            block = self.function.block(block)
        self._block = block

    def fresh_label(self, stem: str = "bb") -> str:
        while True:
            self._label_counter += 1
            label = f"{stem}_{self._label_counter}"
            if not self.function.has_block(label):
                return label

    def fresh_reg(self, dtype: DataType, stem: str = "r") -> Register:
        self._reg_counter += 1
        return Register(f"{stem}{self._reg_counter}", dtype)

    @contextlib.contextmanager
    def region(self, name: Optional[str]):
        """Tag all instructions emitted inside with an ISP region name."""
        prev, self._region = self._region, name
        try:
            yield
        finally:
            self._region = prev

    @contextlib.contextmanager
    def role(self, name: Optional[str]):
        """Tag all instructions emitted inside with an accounting role."""
        prev, self._role = self._role, name
        try:
            yield
        finally:
            self._role = prev

    # --------------------------------------------------------------- operands

    @staticmethod
    def imm(value: Union[int, float, bool], dtype: DataType) -> Immediate:
        return Immediate(value, dtype)

    def _coerce(self, value: Value, dtype: DataType) -> Operand:
        if isinstance(value, (Register, Immediate)):
            return value
        return Immediate(value, dtype)

    @staticmethod
    def _infer_dtype(*values: Value) -> DataType:
        for v in values:
            if isinstance(v, (Register, Immediate)):
                return v.dtype
        raise ValueError("cannot infer dtype from literals only; pass dtype explicitly")

    # ------------------------------------------------------------------- emit

    def _emit(self, instr: Instruction) -> Instruction:
        if instr.region is None:
            instr.region = self._region
        if instr.role is None:
            instr.role = self._role
        return self.block.append(instr)

    def _binary(
        self, op: Opcode, a: Value, b: Value, dtype: Optional[DataType] = None
    ) -> Register:
        dtype = dtype or self._infer_dtype(a, b)
        dst = self.fresh_reg(dtype)
        self._emit(
            Instruction(op, dtype, dst, [self._coerce(a, dtype), self._coerce(b, dtype)])
        )
        return dst

    def _unary(self, op: Opcode, a: Value, dtype: Optional[DataType] = None) -> Register:
        dtype = dtype or self._infer_dtype(a)
        dst = self.fresh_reg(dtype)
        self._emit(Instruction(op, dtype, dst, [self._coerce(a, dtype)]))
        return dst

    # Arithmetic -----------------------------------------------------------

    def add(self, a: Value, b: Value, dtype: Optional[DataType] = None) -> Register:
        return self._binary(Opcode.ADD, a, b, dtype)

    def sub(self, a: Value, b: Value, dtype: Optional[DataType] = None) -> Register:
        return self._binary(Opcode.SUB, a, b, dtype)

    def mul(self, a: Value, b: Value, dtype: Optional[DataType] = None) -> Register:
        return self._binary(Opcode.MUL, a, b, dtype)

    def div(self, a: Value, b: Value, dtype: Optional[DataType] = None) -> Register:
        return self._binary(Opcode.DIV, a, b, dtype)

    def rem(self, a: Value, b: Value, dtype: Optional[DataType] = None) -> Register:
        return self._binary(Opcode.REM, a, b, dtype)

    def min(self, a: Value, b: Value, dtype: Optional[DataType] = None) -> Register:
        return self._binary(Opcode.MIN, a, b, dtype)

    def max(self, a: Value, b: Value, dtype: Optional[DataType] = None) -> Register:
        return self._binary(Opcode.MAX, a, b, dtype)

    def and_(self, a: Value, b: Value, dtype: Optional[DataType] = None) -> Register:
        return self._binary(Opcode.AND, a, b, dtype)

    def or_(self, a: Value, b: Value, dtype: Optional[DataType] = None) -> Register:
        return self._binary(Opcode.OR, a, b, dtype)

    def xor(self, a: Value, b: Value, dtype: Optional[DataType] = None) -> Register:
        return self._binary(Opcode.XOR, a, b, dtype)

    def shl(self, a: Value, b: Value, dtype: Optional[DataType] = None) -> Register:
        return self._binary(Opcode.SHL, a, b, dtype)

    def shr(self, a: Value, b: Value, dtype: Optional[DataType] = None) -> Register:
        return self._binary(Opcode.SHR, a, b, dtype)

    def abs(self, a: Value, dtype: Optional[DataType] = None) -> Register:
        return self._unary(Opcode.ABS, a, dtype)

    def neg(self, a: Value, dtype: Optional[DataType] = None) -> Register:
        return self._unary(Opcode.NEG, a, dtype)

    def not_(self, a: Value, dtype: Optional[DataType] = None) -> Register:
        return self._unary(Opcode.NOT, a, dtype)

    def mad(
        self, a: Value, b: Value, c: Value, dtype: Optional[DataType] = None
    ) -> Register:
        """d = a * b + c (PTX ``mad`` / ``fma``)."""
        dtype = dtype or self._infer_dtype(a, b, c)
        dst = self.fresh_reg(dtype)
        self._emit(
            Instruction(
                Opcode.MAD,
                dtype,
                dst,
                [self._coerce(a, dtype), self._coerce(b, dtype), self._coerce(c, dtype)],
            )
        )
        return dst

    # SFU -------------------------------------------------------------------

    def ex2(self, a: Value) -> Register:
        return self._unary(Opcode.EX2, a, DataType.F32)

    def lg2(self, a: Value) -> Register:
        return self._unary(Opcode.LG2, a, DataType.F32)

    def rcp(self, a: Value) -> Register:
        return self._unary(Opcode.RCP, a, DataType.F32)

    def sqrt(self, a: Value) -> Register:
        return self._unary(Opcode.SQRT, a, DataType.F32)

    def rsqrt(self, a: Value) -> Register:
        return self._unary(Opcode.RSQRT, a, DataType.F32)

    def sin(self, a: Value) -> Register:
        return self._unary(Opcode.SIN, a, DataType.F32)

    def cos(self, a: Value) -> Register:
        return self._unary(Opcode.COS, a, DataType.F32)

    # Moves / conversions ----------------------------------------------------

    def mov(self, a: Value, dtype: Optional[DataType] = None) -> Register:
        return self._unary(Opcode.MOV, a, dtype)

    def mov_to(self, dst: Register, a: Value) -> Register:
        """Move into an existing register (used for loop-carried values)."""
        self._emit(Instruction(Opcode.MOV, dst.dtype, dst, [self._coerce(a, dst.dtype)]))
        return dst

    def special(self, sreg: SpecialReg) -> Register:
        dst = self.fresh_reg(DataType.S32, stem=sreg.name.lower().replace(".", "_"))
        self._emit(Instruction(Opcode.MOV, DataType.S32, dst, [], special=sreg))
        return dst

    def cvt(self, a: Value, to: DataType, frm: Optional[DataType] = None) -> Register:
        frm = frm or self._infer_dtype(a)
        dst = self.fresh_reg(to)
        self._emit(
            Instruction(Opcode.CVT, to, dst, [self._coerce(a, frm)], src_dtype=frm)
        )
        return dst

    # Parameters / memory ------------------------------------------------------

    def ld_param(self, name: str) -> Register:
        p = self.function.param(name)
        dst = self.fresh_reg(p.dtype, stem=f"p_{name}_")
        self._emit(Instruction(Opcode.LDPARAM, p.dtype, dst, [], param=name))
        return dst

    def ld(self, addr: Value, dtype: DataType) -> Register:
        dst = self.fresh_reg(dtype)
        self._emit(Instruction(Opcode.LD, dtype, dst, [self._coerce(addr, DataType.U32)]))
        return dst

    def tex(
        self,
        image: str,
        x: Value,
        y: Value,
        *,
        mode: str = "clamp",
        border_value: float = 0.0,
    ) -> Register:
        """Textured 2-D read with hardware address-mode border handling.

        ``image`` names the sampled image (the launch must provide
        ``{image}_ptr``/``{image}_w``/``{image}_h`` parameters); ``mode`` is
        "clamp" (clamp-to-edge) or "border" (return ``border_value`` when out
        of range), the two modes CUDA offers for unnormalized coordinates.
        """
        if mode not in ("clamp", "border"):
            raise ValueError(f"unsupported texture address mode {mode!r}")
        dst = self.fresh_reg(DataType.F32)
        self._emit(
            Instruction(
                Opcode.TEX,
                DataType.F32,
                dst,
                [self._coerce(x, DataType.S32), self._coerce(y, DataType.S32)],
                param=image,
                tex_mode=mode,
                tex_border_value=border_value,
            )
        )
        return dst

    def st(self, addr: Value, value: Value, dtype: Optional[DataType] = None) -> None:
        dtype = dtype or self._infer_dtype(value)
        self._emit(
            Instruction(
                Opcode.ST,
                dtype,
                None,
                [self._coerce(addr, DataType.U32), self._coerce(value, dtype)],
            )
        )

    def lds(self, addr: Value, dtype: DataType) -> Register:
        """Load from the block's shared scratchpad (byte address)."""
        dst = self.fresh_reg(dtype)
        self._emit(Instruction(Opcode.LDS, dtype, dst,
                               [self._coerce(addr, DataType.U32)]))
        return dst

    def sts(self, addr: Value, value: Value,
            dtype: Optional[DataType] = None) -> None:
        """Store to the block's shared scratchpad (byte address)."""
        dtype = dtype or self._infer_dtype(value)
        self._emit(
            Instruction(
                Opcode.STS, dtype, None,
                [self._coerce(addr, DataType.U32), self._coerce(value, dtype)],
            )
        )

    def bar(self) -> None:
        """Block-wide barrier (PTX bar.sync 0)."""
        self._emit(Instruction(Opcode.BAR, DataType.S32))

    # Comparison / select -------------------------------------------------------

    def setp(
        self, cmp: CmpOp, a: Value, b: Value, dtype: Optional[DataType] = None
    ) -> Register:
        dtype = dtype or self._infer_dtype(a, b)
        dst = self.fresh_reg(DataType.PRED, stem="p")
        self._emit(
            Instruction(
                Opcode.SETP,
                dtype,
                dst,
                [self._coerce(a, dtype), self._coerce(b, dtype)],
                cmp=cmp,
            )
        )
        return dst

    def selp(
        self, pred: Register, if_true: Value, if_false: Value,
        dtype: Optional[DataType] = None,
    ) -> Register:
        dtype = dtype or self._infer_dtype(if_true, if_false)
        dst = self.fresh_reg(dtype)
        self._emit(
            Instruction(
                Opcode.SELP,
                dtype,
                dst,
                [self._coerce(if_true, dtype), self._coerce(if_false, dtype), pred],
            )
        )
        return dst

    # Control flow ----------------------------------------------------------------

    def br(self, target: Union[str, BasicBlock]) -> None:
        label = target.label if isinstance(target, BasicBlock) else target
        self._emit(Instruction(Opcode.BRA, DataType.S32, target=label))

    def cbr(
        self,
        pred: Register,
        if_true: Union[str, BasicBlock],
        if_false: Union[str, BasicBlock],
        *,
        negated: bool = False,
    ) -> None:
        t = if_true.label if isinstance(if_true, BasicBlock) else if_true
        f = if_false.label if isinstance(if_false, BasicBlock) else if_false
        self._emit(
            Instruction(
                Opcode.BRA,
                DataType.S32,
                pred=pred,
                pred_negated=negated,
                target=t,
                target_else=f,
            )
        )

    def exit(self) -> None:
        self._emit(Instruction(Opcode.EXIT, DataType.S32))

    # ------------------------------------------------------------------ finish

    def finish(self) -> KernelFunction:
        """Return the built function (verification is the caller's choice)."""
        return self.function
