"""Compilation determinism and idempotence.

A reproduction's numbers are only trustworthy if the toolchain is
deterministic: compiling the same kernel twice must produce byte-identical
IR (no dict-ordering or id()-dependent artifacts), and the optimization
pipeline must be idempotent.
"""

import numpy as np

from repro.compiler import Variant, compile_kernel, optimize, trace_kernel
from repro.dsl import Boundary
from repro.filters import bilateral, night
from repro.ir import print_function
from tests.conftest import make_conv_kernel

MASK = np.ones((5, 5), np.float32) / 25.0


def _text(variant, boundary=Boundary.MIRROR, block=(32, 4)):
    # A fresh kernel object each time: determinism must not depend on
    # object identities surviving between compilations.
    desc = trace_kernel(make_conv_kernel(128, 128, boundary, MASK))
    ck = compile_kernel(desc, variant=variant, block=block)
    return print_function(ck.func, annotate=True)


class TestDeterminism:
    def test_naive_stable_across_compilations(self):
        assert _text(Variant.NAIVE) == _text(Variant.NAIVE)

    def test_isp_stable_across_compilations(self):
        assert _text(Variant.ISP) == _text(Variant.ISP)

    def test_shared_isp_stable(self):
        assert _text(Variant.SHARED_ISP) == _text(Variant.SHARED_ISP)

    def test_bilateral_stable(self):
        def text():
            pipe = bilateral.build_pipeline(512, 512, Boundary.CLAMP)
            desc = trace_kernel(pipe.kernels[0])
            ck = compile_kernel(desc, variant=Variant.ISP)
            return print_function(ck.func)

        assert text() == text()

    def test_pipeline_tracing_stable(self):
        def extents():
            pipe = night.build_pipeline(256, 256, Boundary.REPEAT)
            return [trace_kernel(k).extent for k in pipe]

        assert extents() == extents()


class TestStableDigest:
    """The KernelDescription content hash that keys the serve plan cache."""

    def test_digest_stable_across_independent_traces(self):
        # Fresh kernel/accessor/mask objects each time: the digest must hash
        # content, not object identity.
        a = trace_kernel(make_conv_kernel(128, 128, Boundary.MIRROR, MASK))
        b = trace_kernel(make_conv_kernel(128, 128, Boundary.MIRROR, MASK))
        assert a.stable_digest() == b.stable_digest()
        assert len(a.stable_digest()) == 32
        assert int(a.stable_digest(), 16) >= 0  # hex string

    def test_digest_distinguishes_boundary(self):
        a = trace_kernel(make_conv_kernel(128, 128, Boundary.CLAMP, MASK))
        b = trace_kernel(make_conv_kernel(128, 128, Boundary.REPEAT, MASK))
        assert a.stable_digest() != b.stable_digest()

    def test_digest_distinguishes_constant_value(self):
        a = trace_kernel(make_conv_kernel(64, 64, Boundary.CONSTANT, MASK, 0.0))
        b = trace_kernel(make_conv_kernel(64, 64, Boundary.CONSTANT, MASK, 1.0))
        assert a.stable_digest() != b.stable_digest()

    def test_digest_distinguishes_size_and_mask(self):
        a = trace_kernel(make_conv_kernel(128, 128, Boundary.MIRROR, MASK))
        b = trace_kernel(make_conv_kernel(256, 256, Boundary.MIRROR, MASK))
        other = np.ones((3, 3), np.float32) / 9.0
        c = trace_kernel(make_conv_kernel(128, 128, Boundary.MIRROR, other))
        assert len({a.stable_digest(), b.stable_digest(), c.stable_digest()}) == 3

    def test_digest_sees_sharing_structure(self):
        # Pipelines with several kernels: every stage digests differently.
        pipe = night.build_pipeline(128, 128, Boundary.CLAMP)
        digests = [trace_kernel(k).stable_digest() for k in pipe]
        assert len(set(digests)) == len(digests)
        again = [trace_kernel(k).stable_digest()
                 for k in night.build_pipeline(128, 128, Boundary.CLAMP)]
        assert digests == again


class TestOptimizeIdempotent:
    def test_second_pass_is_noop(self):
        for variant in (Variant.NAIVE, Variant.ISP, Variant.SHARED):
            desc = trace_kernel(make_conv_kernel(64, 64, Boundary.REPEAT, MASK))
            ck = compile_kernel(desc, variant=variant, block=(16, 4))
            before = print_function(ck.func)
            optimize(ck.func)
            assert print_function(ck.func) == before, variant

    def test_unoptimized_compile_larger_but_equivalent(self, rng):
        from repro.dsl import Pipeline
        from repro.runtime import run_pipeline_simt

        src = rng.random((32, 32)).astype(np.float32)

        desc_opt = trace_kernel(make_conv_kernel(32, 32, Boundary.CLAMP, MASK))
        opt = compile_kernel(desc_opt, variant=Variant.ISP, block=(16, 4),
                             optimize=True)
        desc_raw = trace_kernel(make_conv_kernel(32, 32, Boundary.CLAMP, MASK))
        raw = compile_kernel(desc_raw, variant=Variant.ISP, block=(16, 4),
                             optimize=False)
        assert raw.func.static_size() >= opt.func.static_size()

        k = make_conv_kernel(32, 32, Boundary.CLAMP, MASK)
        out_a = run_pipeline_simt(Pipeline("p", [k]), variant=Variant.ISP,
                                  block=(16, 4), inputs={"inp": src}).output
        from repro.filters.reference import correlate

        ref = correlate(src, MASK, Boundary.CLAMP)
        assert np.abs(out_a - ref).max() < 1e-5
