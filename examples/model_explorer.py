#!/usr/bin/env python3
"""Explore the analytic model's decision surface (paper Section IV).

Sweeps image sizes and block shapes for a chosen filter/pattern and prints:

* the body-block fraction (paper Figure 3),
* the instruction-reduction ratio R (Eq. 9),
* the occupancy pair and the final gain G (Eq. 10),
* the model's verdict and — optionally — the simulator's measured speedup,

so you can see where the naive/ISP crossover falls and how the model tracks
it.

Run:  python examples/model_explorer.py [app] [pattern] [--measure]
      app in {gaussian, laplace, bilateral}; default bilateral
"""

import sys

from repro import Boundary, GTX680, Variant
from repro.compiler import trace_kernel
from repro.filters import PIPELINES
from repro.model import predict_kernel
from repro.reporting import format_table
from repro.runtime import measure_pipeline

SIZES = [256, 512, 1024, 2048, 4096]
BLOCKS = [(32, 4), (64, 4), (128, 2)]


def main():
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    measure = "--measure" in sys.argv
    app = args[0] if args else "bilateral"
    pattern = Boundary(args[1]) if len(args) > 1 else Boundary.CLAMP

    headers = ["size", "block", "body%", "R (Eq.9)", "occ n->i", "G (Eq.10)",
               "verdict"]
    if measure:
        headers.append("measured")

    rows = []
    for size in SIZES:
        for block in BLOCKS:
            pipe = PIPELINES[app](size, size, pattern)
            desc = trace_kernel(pipe.kernels[0])
            p = predict_kernel(desc, block=block, device=GTX680)
            row = [
                size,
                f"{block[0]}x{block[1]}",
                f"{100 * p.instructions.blocks.body_fraction:.1f}",
                f"{p.r_reduced:.3f}",
                f"{p.occupancy_naive:.0%}->{p.occupancy_isp:.0%}",
                f"{p.gain:.3f}",
                p.choice.value,
            ]
            if measure:
                t_n = measure_pipeline(pipe, variant=Variant.NAIVE,
                                       block=block, device=GTX680).total_us
                t_i = measure_pipeline(pipe, variant=Variant.ISP,
                                       block=block, device=GTX680).total_us
                row.append(f"{t_n / t_i:.3f}")
            rows.append(row)

    print(format_table(
        headers, rows,
        title=f"Model decision surface: {app} / {pattern.value} on GTX680",
    ))
    print("\nG > 1 -> the model picks ISP; the isp+m policy of the paper is "
          "exactly this decision per kernel.")


if __name__ == "__main__":
    main()
