"""Figure 3 — percentage of blocks executing the Body region vs image size.

Paper Section IV-A.3: for a 5x5 local operator and two block-size
configurations, plot the Body-block percentage over the image size. Smaller
images and larger blocks leave fewer blocks in the check-free Body region,
which is why ISP can lose on small images.
"""

from __future__ import annotations

from repro.model import body_fraction_series
from repro.reporting import format_table

SIZES = [128, 256, 384, 512, 768, 1024, 1536, 2048, 3072, 4096]
CONFIG_A = (32, 4)   # narrow blocks
CONFIG_B = (128, 2)  # wide blocks ("large block size")
WINDOW = (5, 5)


def build():
    a = dict(body_fraction_series(SIZES, *WINDOW, *CONFIG_A))
    b = dict(body_fraction_series(SIZES, *WINDOW, *CONFIG_B))
    rows = [[s, f"{a[s]:.2f}%", f"{b[s]:.2f}%"] for s in SIZES]
    return a, b, format_table(
        ["image size", f"block {CONFIG_A[0]}x{CONFIG_A[1]}",
         f"block {CONFIG_B[0]}x{CONFIG_B[1]}"],
        rows,
        title="Figure 3 (reproduced): % of blocks executing the Body region "
              "(5x5 operator)",
    )


def test_fig3(benchmark, report):
    a, b, table = benchmark.pedantic(build, rounds=1, iterations=1)
    report("fig3_body_fraction", table)

    values_a = [a[s] for s in SIZES]
    values_b = [b[s] for s in SIZES]
    # Monotone growth with image size for both configs.
    assert all(y >= x for x, y in zip(values_a, values_a[1:]))
    assert all(y >= x for x, y in zip(values_b, values_b[1:]))
    # Larger blocks -> lower body percentage at every size.
    assert all(b[s] <= a[s] for s in SIZES)
    # Asymptotics: big images approach 100%.
    assert values_a[-1] > 97.0
    # Small image with large blocks: clearly reduced body share.
    assert b[128] < 60.0
