"""Table III — measured-best implementation vs model prediction + Pearson r.

Paper Section IV-B.2: for the bilateral filter on the GTX680, over a sweep
of image sizes and all four border patterns, compare

* the *measured* best implementation (simulated naive vs ISP time), and
* the *model-predicted* best (G from Eq. 10, > 1 -> ISP),

marking agreements/disagreements, plus the Pearson correlation between the
model's G and the measured speedup per pattern. The paper reports "only a
few mispredictions around the switching point"; the same is expected here —
the simulator knows about wave tails, coalescing and divergence, while the
model only knows instruction counts and occupancy.
"""

from __future__ import annotations

from repro.dsl import Boundary
from repro.reporting import format_table, pearson

from harness import Config, measured_time_us, model_gain

SIZES = list(range(512, 4097, 512))
PATTERNS = [Boundary.CLAMP, Boundary.CONSTANT, Boundary.MIRROR, Boundary.REPEAT]
DEVICE = "GTX680"


def build():
    rows = []
    gains: dict[Boundary, list[float]] = {p: [] for p in PATTERNS}
    speeds: dict[Boundary, list[float]] = {p: [] for p in PATTERNS}
    agreements = 0
    cells_total = 0
    for size in SIZES:
        row = [size]
        for pattern in PATTERNS:
            cfg = Config("bilateral", pattern, size, DEVICE)
            t_naive = measured_time_us(cfg, "naive")
            t_isp = measured_time_us(cfg, "isp")
            speedup = t_naive / t_isp
            g = model_gain(cfg)
            measured_best = "isp" if speedup > 1.0 else "naive"
            predicted_best = "isp" if g > 1.0 else "naive"
            ok = measured_best == predicted_best
            agreements += ok
            cells_total += 1
            gains[pattern].append(g)
            speeds[pattern].append(speedup)
            row.append(f"{measured_best}/{predicted_best}{'' if ok else ' *'}")
        rows.append(row)

    corr_row = ["Pearson r"]
    for pattern in PATTERNS:
        try:
            corr_row.append(f"{pearson(gains[pattern], speeds[pattern]):.3f}")
        except ValueError:
            corr_row.append("n/a")
    rows.append(corr_row)

    # Pooled correlation across all cells: within one pattern our simulated
    # speedups vary only a few percent over sizes (the real hardware's
    # size-dependence comes from cache effects outside the simulator — see
    # EXPERIMENTS.md), so the per-pattern r is dominated by that residual;
    # the model's predictive power shows in the pooled statistic.
    all_g = [g for p in PATTERNS for g in gains[p]]
    all_s = [s for p in PATTERNS for s in speeds[p]]
    pooled = pearson(all_g, all_s)

    table = format_table(
        ["size"] + [p.value for p in PATTERNS],
        rows,
        title=(
            "Table III (reproduced): Bilateral on GTX680 — measured-best/"
            "model-predicted per cell ('*' marks a misprediction)"
        ),
    )
    table += f"\n\nagreement: {agreements}/{cells_total} cells"
    table += f"\npooled Pearson r (all patterns x sizes): {pooled:.3f}"
    return table, agreements, cells_total, gains, speeds, pooled


def test_table3(benchmark, report):
    table, agreements, total, gains, speeds, pooled = benchmark.pedantic(
        build, rounds=1, iterations=1
    )
    report("table3_prediction", table)

    # The model must be usefully predictive (paper: mostly green cells)...
    assert agreements >= 0.6 * total
    assert pooled > 0.8
    # ...and Repeat must be a unanimous ISP win for both model & measurement.
    assert all(g > 1 for g in gains[Boundary.REPEAT])
    assert all(s > 1 for s in speeds[Boundary.REPEAT])
