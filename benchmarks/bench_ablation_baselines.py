"""Ablation — ISP against the paper's alternative border strategies.

Paper Section I surveys the design space before settling on ISP:

* **padding** (OpenCV's default): all patterns expressible, but pays a full
  device-side memory copy per image — "costly, particularly for
  architectures such as GPUs";
* **texture hardware**: free border handling and no address arithmetic, but
  "bound to the image size", "not supported for sub-regions", and limited to
  clamp/border address modes — Mirror and Repeat are inexpressible;
* **naive checks** and **ISP** — the software approaches the paper studies.

This ablation prices all four (where expressible) on both simulated GPUs.
"""

from __future__ import annotations

from repro.compiler import CompileError, Variant, trace_kernel
from repro.dsl import Boundary
from repro.filters import PIPELINES
from repro.gpu import DEVICES
from repro.reporting import format_table
from repro.runtime import measure_padding_kernel, measure_pipeline

CASES = [
    ("gaussian", Boundary.CLAMP, 1024),
    ("gaussian", Boundary.REPEAT, 1024),
    ("bilateral", Boundary.CLAMP, 1024),
]
DEVICE_NAMES = ["GTX680", "RTX2080"]


def build():
    rows = []
    data = {}
    for device_name in DEVICE_NAMES:
        device = DEVICES[device_name]
        for app, pattern, size in CASES:
            pipe = PIPELINES[app](size, size, pattern)
            desc = trace_kernel(pipe.kernels[0])
            t = {}
            t["naive"] = measure_pipeline(
                pipe, variant=Variant.NAIVE, device=device
            ).total_us
            t["isp"] = measure_pipeline(
                pipe, variant=Variant.ISP, device=device
            ).total_us
            try:
                t["texture"] = measure_pipeline(
                    pipe, variant=Variant.TEXTURE, device=device
                ).total_us
            except CompileError:
                t["texture"] = None  # pattern not expressible in hardware
            t["padding"] = measure_padding_kernel(
                desc, device=device
            ).total_us
            rows.append([
                device_name, app, pattern.value,
                f"{t['naive']:.1f}", f"{t['isp']:.1f}",
                "n/a" if t["texture"] is None else f"{t['texture']:.1f}",
                f"{t['padding']:.1f}",
            ])
            data[(device_name, app, pattern)] = t
    table = format_table(
        ["device", "app", "pattern", "naive us", "isp us", "texture us",
         "padding us"],
        rows,
        title="Ablation: border strategies (single kernel, pseudo-us)",
    )
    return data, table


def test_ablation_baselines(benchmark, report):
    data, table = benchmark.pedantic(build, rounds=1, iterations=1)
    report("ablation_baselines", table)

    for (device, app, pattern), t in data.items():
        # Padding always pays the copy: it must cost more than its own
        # check-free kernel alone, and more than the best software variant
        # for cheap kernels where the copy cannot amortize.
        assert t["padding"] > 0
        if app == "gaussian":
            assert t["padding"] > min(t["naive"], t["isp"]), (device, app)
        # Texture is only expressible for clamp here; repeat must be n/a.
        if pattern is Boundary.REPEAT:
            assert t["texture"] is None
        elif t["texture"] is not None:
            # No checks and no address arithmetic: texture beats naive.
            assert t["texture"] < t["naive"], (device, app)
