"""Static instruction statistics with the paper's keyword-level grouping.

Section IV-A: "The instructions have been categorized based on keywords for
simplicity purposes. For example, add.s32 and add.i32 are both counted as an
add instruction." These helpers produce exactly that kind of census, both for
whole functions and filtered by ISP region or accounting role.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Iterable, Optional

from .function import KernelFunction
from .instructions import Instruction

#: Order in which Table-I-style reports list categories. Instructions whose
#: keyword is absent here are appended alphabetically.
CATEGORY_ORDER = [
    "add", "sub", "mul", "mad", "div", "rem", "min", "max", "abs", "neg",
    "and", "or", "xor", "not", "shl", "shr",
    "setp", "selp", "cvt", "mov",
    "ld", "st", "bra", "exit",
    "ex2", "lg2", "rcp", "sqrt", "rsqrt", "sin", "cos",
]


def count_instructions(
    instructions: Iterable[Instruction],
    *,
    predicate: Optional[Callable[[Instruction], bool]] = None,
) -> Counter:
    """Histogram of instruction keywords, optionally filtered."""
    counter: Counter = Counter()
    for instr in instructions:
        if predicate is not None and not predicate(instr):
            continue
        counter[instr.keyword] += 1
    return counter


def count_function(func: KernelFunction) -> Counter:
    return count_instructions(func.instructions())


def count_by_region(func: KernelFunction) -> dict[str, Counter]:
    """Keyword histogram per ISP region tag (untagged -> ``"(shared)"``)."""
    result: dict[str, Counter] = {}
    for instr in func.instructions():
        region = instr.region or "(shared)"
        result.setdefault(region, Counter())[instr.keyword] += 1
    return result


def count_by_role(func: KernelFunction) -> dict[str, Counter]:
    """Keyword histogram per accounting role (check/switch/kernel/addr)."""
    result: dict[str, Counter] = {}
    for instr in func.instructions():
        role = instr.role or "(untagged)"
        result.setdefault(role, Counter())[instr.keyword] += 1
    return result


def ordered_categories(counters: Iterable[Counter]) -> list[str]:
    """Union of keys across counters, in Table-I presentation order."""
    seen: set[str] = set()
    for c in counters:
        seen.update(c.keys())
    ordered = [k for k in CATEGORY_ORDER if k in seen]
    ordered += sorted(seen - set(CATEGORY_ORDER))
    return ordered


def total(counter: Counter) -> int:
    return sum(counter.values())
