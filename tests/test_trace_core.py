"""repro.trace core: spans, sampling, ambient install, exporters."""

import json
import threading

import pytest

from repro.serve import MetricsRegistry
from repro.trace import (
    Tracer,
    active,
    chrome_trace,
    context,
    current_context,
    install,
    metric_name,
    parse_prometheus_text,
    prometheus_text,
    recording,
    uninstall,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.trace.core import _sample_draw


class TestSpanTree:
    def test_root_and_children_share_trace_id(self):
        tr = Tracer()
        root = tr.start_trace("request", key="r1", app="gaussian")
        child = tr.start_span("plan", root)
        grand = tr.start_span("autotune", child)
        tr.finish(grand)
        tr.finish(child)
        tr.finish(root)
        assert {s.trace_id for s in tr.spans()} == {root.trace_id}
        assert child.parent_id == root.span_id
        assert grand.parent_id == child.span_id
        assert root.parent_id is None

    def test_finish_stamps_duration_and_attrs(self):
        tr = Tracer()
        root = tr.start_trace("request")
        tr.finish(root, status="error:execution", retries=2)
        assert root.finished
        assert root.duration_s >= 0.0
        assert root.status == "error:execution"
        assert root.attributes["retries"] == 2

    def test_record_span_is_retroactive(self):
        import time

        tr = Tracer()
        root = tr.start_trace("request")
        t0 = time.perf_counter()
        t1 = t0 + 0.5
        span = tr.record_span("queue", root, t0, t1)
        assert span.duration_s == pytest.approx(0.5)
        assert span.parent_id == root.span_id

    def test_trace_query_orders_by_start(self):
        tr = Tracer()
        root = tr.start_trace("request")
        a = tr.start_span("a", root)
        tr.finish(a)
        tr.finish(root)
        spans = tr.trace(root.trace_id)
        assert [s.name for s in spans] == ["request", "a"] or \
               spans[0].start_s <= spans[1].start_s

    def test_summary_aggregates_by_name(self):
        tr = Tracer()
        for _ in range(3):
            root = tr.start_trace("request")
            tr.finish(root)
        bad = tr.start_trace("request")
        tr.finish(bad, status="error:x")
        summary = tr.summary()
        assert summary["request"]["count"] == 4
        assert summary["request"]["errors"] == 1


class TestSampling:
    def test_rate_one_samples_everything(self):
        tr = Tracer(sample_rate=1.0)
        assert all(tr.sampled(f"r{i}") for i in range(50))

    def test_rate_zero_samples_nothing(self):
        tr = Tracer(sample_rate=0.0)
        assert not any(tr.sampled(f"r{i}") for i in range(50))
        assert tr.start_trace("request", key="r1") is None

    def test_sampling_is_deterministic_per_seed_and_key(self):
        a = Tracer(sample_rate=0.5, seed=7)
        b = Tracer(sample_rate=0.5, seed=7)
        keys = [f"r{i}" for i in range(200)]
        assert [a.sampled(k) for k in keys] == [b.sampled(k) for k in keys]
        # and a different seed gives a different (but valid) subset
        c = Tracer(sample_rate=0.5, seed=8)
        assert [a.sampled(k) for k in keys] != [c.sampled(k) for k in keys]

    def test_rate_approximates_fraction(self):
        tr = Tracer(sample_rate=0.25, seed=0)
        hits = sum(tr.sampled(f"r{i}") for i in range(2000))
        assert 0.18 < hits / 2000 < 0.32

    def test_draw_is_uniform_range(self):
        draws = [_sample_draw(0, f"k{i}") for i in range(100)]
        assert all(0.0 <= d < 1.0 for d in draws)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            Tracer(sample_rate=1.5)
        with pytest.raises(ValueError):
            Tracer(sample_rate=-0.1)


class TestBoundedBuffer:
    def test_overflow_drops_and_counts(self):
        tr = Tracer(max_spans=3)
        root = tr.start_trace("request")
        for i in range(5):
            tr.finish(tr.start_span(f"s{i}", root))
        assert len(tr.spans()) == 3
        assert tr.dropped == 2


class TestAmbientInstall:
    def test_recording_installs_and_uninstalls(self):
        assert active() is None
        tr = Tracer()
        with recording(tr):
            assert active() is tr
        assert active() is None

    def test_double_install_rejected(self):
        tr = Tracer()
        install(tr)
        try:
            with pytest.raises(RuntimeError):
                install(Tracer())
        finally:
            uninstall()

    def test_context_binds_per_thread(self):
        tr = Tracer()
        root = tr.start_trace("request")
        seen = {}

        def worker():
            seen["inner"] = current_context()

        assert current_context() is None
        with context(tr, root):
            assert current_context() == (tr, root)
            # a fresh thread does NOT inherit the context implicitly
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert seen["inner"] is None
        assert current_context() is None


class TestChromeExport:
    def _tracer_with_tree(self):
        tr = Tracer()
        root = tr.start_trace("request", key="r1", app="gaussian")
        child = tr.start_span("execute", root)
        tr.finish(child)
        tr.finish(root)
        return tr

    def test_export_is_valid(self):
        doc = chrome_trace(self._tracer_with_tree())
        assert validate_chrome_trace(doc) == []
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(events) == 2
        names = {e["name"] for e in events}
        assert names == {"request", "execute"}

    def test_export_roundtrips_through_json(self, tmp_path):
        tr = self._tracer_with_tree()
        path = write_chrome_trace(tr, tmp_path / "sub" / "trace.json")
        doc = json.loads(path.read_text())
        assert validate_chrome_trace(doc) == []
        assert doc["otherData"]["span_count"] == 2

    def test_validator_catches_broken_documents(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({}) != []
        assert validate_chrome_trace({"traceEvents": [{"ph": "Q"}]}) != []
        # dangling parent pointer
        doc = {"traceEvents": [{
            "name": "x", "ph": "X", "ts": 0, "dur": 1, "pid": 1, "tid": 1,
            "args": {"trace_id": "t1", "span_id": "s2", "parent_id": "s1"},
        }]}
        problems = validate_chrome_trace(doc)
        assert any("parent_id" in p for p in problems)

    def test_non_json_attributes_are_stringified(self):
        tr = Tracer()
        root = tr.start_trace("request", obj=object(), nested={"k": (1, 2)})
        tr.finish(root)
        doc = chrome_trace(tr)
        assert validate_chrome_trace(doc) == []
        json.dumps(doc)  # must not raise


class TestPrometheusExport:
    def test_metric_name_sanitization(self):
        assert metric_name("engine.queue_seconds") == "repro_engine_queue_seconds"
        assert metric_name("a-b c") == "repro_a_b_c"

    def test_exposition_parses_and_matches_values(self):
        reg = MetricsRegistry()
        reg.counter("engine.requests", "total requests").inc(5)
        reg.gauge("tuner.agreement_rate").set(0.75)
        h = reg.histogram("engine.queue_seconds", "queue wait", unit="s")
        for v in range(1, 11):
            h.observe(v / 10.0)
        text = prometheus_text(reg)
        samples = parse_prometheus_text(text)
        assert samples["repro_engine_requests_total"] == 5.0
        assert samples["repro_tuner_agreement_rate"] == 0.75
        assert samples["repro_engine_queue_seconds_count"] == 10.0
        assert samples["repro_engine_queue_seconds_sum"] == pytest.approx(5.5)
        assert samples['repro_engine_queue_seconds{quantile="0.5"}'] == 0.5

    def test_parser_rejects_malformed_lines(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("not a metric line\n")
        with pytest.raises(ValueError):
            parse_prometheus_text("m 1\nm 2\n")  # duplicate sample
        with pytest.raises(ValueError):
            parse_prometheus_text("# TYPE m bogus\n")
