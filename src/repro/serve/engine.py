"""The serve engine: bounded queue -> micro-batcher -> worker pool.

Request lifecycle::

    submit() --[bounded deque, backpressure]--> worker dequeues a batch of
    requests sharing one workload signature --> plan cache (build on miss)
    --> kernel-level batched execution (one (N, H, W) vectorized call for
    the whole micro-batch) when eligible, else per-request execution
    (vectorized host path, tiled for large images; or SIMT simulation under
    a timeout with vectorized fallback) --> Response.

Robustness decisions, per DESIGN "production-shaped" goals:

* **Backpressure** — ``submit`` raises :class:`EngineSaturated` when the
  queue is full instead of buffering unboundedly (callers can also opt into
  blocking submits).
* **Timeouts** — a request carries a wall-clock budget measured from
  enqueue. A request that exceeds it while still queued fails fast; a SIMT
  execution that exceeds it is abandoned and degrades to the vectorized
  path (recorded in ``Response.fallbacks`` and the fallback counters).
* **Graceful degradation** — a plan that fails to build with
  ``variant="isp"`` (degenerate geometry raises ``CompileError``) is rebuilt
  as ``"naive"`` rather than failing the request.
* **Plan sanitization** — every newly built plan runs the static bounds
  sanitizer (:mod:`repro.sanitize`) on its compiled kernels before entering
  the cache; a finding rejects the plan and fails its requests loudly
  (``engine.plans_sanitize_rejected``), because an unprovable memory access
  is a compiler bug, not something to degrade around.
* **Bounded retry with backoff** — a failed execution gets ``retries`` more
  attempts with exponential backoff before failing typed
  (``Response.error_kind``); deadlines still rule.
* **Per-variant circuit breaker** — a variant whose executions keep failing
  trips :class:`~repro.serve.breaker.VariantBreaker` and is rerouted to
  ``naive`` for a cooldown (a trip also feeds the autotuner's penalty path).
* **Crash containment** — a worker that dies mid-batch fails its remaining
  requests with ``error_kind="worker_crash"`` and keeps serving; no request
  is ever lost.

All of these degradation paths are exercised *systematically* (not just
incidentally) by the deterministic fault-injection layer (:mod:`repro.faults`)
and the chaos suite in ``tests/test_faults_chaos.py``.

Every stage records metrics; ``stats()`` returns one merged snapshot.
"""

from __future__ import annotations

import dataclasses
import itertools
import threading
import time
from collections import deque
from typing import Callable, Optional

import numpy as np

from typing import Union

from ..compiler.isp import CompileError
from ..faults import core as _faults
from ..faults.core import FaultError
from ..trace import core as _trace_core
from ..gpu.device import DeviceSpec, GTX680
from ..gpu.profiler import EVENT_NAMES
from ..sanitize.static import SanitizeError
from .autotune import AutoTuner, TunerKey, pipeline_priors, tuner_key
from .breaker import VariantBreaker
from .cache import PlanCache
from .metrics import MetricsRegistry
from .plan import (
    EXEC_MODES,
    PLAN_VARIANTS,
    REQUEST_VARIANTS,
    ExecutionPlan,
    build_plan,
    plan_key,
    trace_app,
)


class EngineSaturated(RuntimeError):
    """The bounded request queue is full (backpressure signal)."""


class EngineClosed(RuntimeError):
    """submit() after close()."""


_REQUEST_IDS = itertools.count(1)

#: Every way a request is allowed to fail. Anything outside this set is an
#: engine bug; the chaos suite enforces membership for all non-ok responses.
ERROR_KINDS = (
    "plan_build",      # tracing/compilation of the plan failed
    "sanitize",        # the static bounds sanitizer rejected the plan
    "timeout_queue",   # deadline passed while the request was still queued
    "timeout_execute", # deadline passed while the request was executing
    "execution",       # execution failed after the retry budget was exhausted
    "worker_crash",    # the worker processing the batch died mid-flight
)


@dataclasses.dataclass
class Request:
    """One unit of work: run ``app`` over ``image`` under a border pattern."""

    app: str
    image: np.ndarray
    pattern: str = "clamp"
    variant: str = "isp+m"
    exec_mode: str = "vectorized"
    constant: float = 0.0
    #: wall-clock budget in seconds, measured from enqueue; None = unlimited
    timeout_s: Optional[float] = None
    #: row-band height for tiled evaluation; None = engine decides
    tile_rows: Optional[int] = None
    request_id: int = dataclasses.field(default_factory=lambda: next(_REQUEST_IDS))

    def __post_init__(self):
        if self.variant not in REQUEST_VARIANTS:
            raise ValueError(
                f"unknown variant {self.variant!r}; have {REQUEST_VARIANTS}"
            )
        if self.exec_mode not in EXEC_MODES:
            raise ValueError(
                f"unknown exec_mode {self.exec_mode!r}; have {EXEC_MODES}"
            )
        self.image = np.asarray(self.image, dtype=np.float32)
        if self.image.ndim != 2:
            raise ValueError(f"expected a 2-D image, got shape {self.image.shape}")

    @property
    def signature(self) -> tuple:
        """Cheap grouping key for micro-batching (no tracing needed): two
        requests with equal signatures are guaranteed to resolve to the same
        plan key."""
        h, w = self.image.shape
        return (self.app, self.pattern, self.variant, w, h, self.constant,
                self.exec_mode)


@dataclasses.dataclass
class Response:
    """Outcome of one request."""

    request_id: int
    app: str
    output: Optional[np.ndarray] = None
    plan_key: Optional[object] = None
    #: the concrete plan variant that served this request (an ``"auto"``
    #: request learns what the tuner resolved it to from here)
    variant: Optional[str] = None
    cache_hit: bool = False
    #: degradations applied, e.g. "compile:isp->naive", "timeout:simt->vectorized"
    fallbacks: list[str] = dataclasses.field(default_factory=list)
    error: Optional[str] = None
    #: machine-readable failure class when ``error`` is set — one of
    #: :data:`ERROR_KINDS` (the chaos suite asserts failures are typed)
    error_kind: Optional[str] = None
    #: execution attempts beyond the first that this request consumed
    retries: int = 0
    queue_seconds: float = 0.0
    build_seconds: float = 0.0
    execute_seconds: float = 0.0
    worker: str = ""
    #: trace id when a tracer was installed and this request was sampled
    trace_id: Optional[str] = None
    #: per-kernel :class:`~repro.trace.profile.RegionProfile` list when a
    #: sampled SIMT execution served this request
    region_profiles: Optional[list] = None

    @property
    def ok(self) -> bool:
        return self.error is None


def _injected_sanitize_report(variant: str):
    """A synthetic one-finding report for the injected-rejection fault point."""
    from ..sanitize.static import Finding, SanitizeReport

    return SanitizeReport(
        kernel="<injected>", variant=variant,
        findings=[Finding(
            kernel="<injected>", variant=variant, region=None,
            context="fault-injection", kind="analysis",
            message="injected fault: sanitizer rejection "
                    "(serve.engine.sanitize)",
        )],
    )


class _Pending:
    """A submitted request plus its completion latch.

    A pending request is resolved exactly once: the worker that serves it
    and a caller whose :meth:`ResponseHandle.result` wait expired past the
    request deadline can race, and :meth:`claim` makes the race safe —
    first claimer wins, the loser reads the winner's response.
    """

    __slots__ = ("request", "enqueued_at", "event", "response",
                 "tracer", "span", "phase", "claimed", "_claim_lock")

    def __init__(self, request: Request):
        self.request = request
        self.enqueued_at = time.perf_counter()
        self.event = threading.Event()
        self.response: Optional[Response] = None
        #: trace context riding along the queue handoff (None = unsampled)
        self.tracer = None
        self.span = None
        #: lifecycle phase, for typing a caller-side expiry:
        #: "queued" until execution begins, then "executing"
        self.phase = "queued"
        self.claimed = False
        self._claim_lock = threading.Lock()

    def claim(self) -> bool:
        """Atomically take the right to resolve this request (first wins)."""
        with self._claim_lock:
            if self.claimed:
                return False
            self.claimed = True
            return True

    def deadline(self) -> Optional[float]:
        if self.request.timeout_s is None:
            return None
        return self.enqueued_at + self.request.timeout_s


class ResponseHandle:
    """Future-like handle returned by :meth:`ServeEngine.submit`."""

    def __init__(self, pending: _Pending, engine: Optional["ServeEngine"] = None):
        self._pending = pending
        self._engine = engine

    def done(self) -> bool:
        return self._pending.event.is_set()

    def result(self, timeout: Optional[float] = None) -> Response:
        """Wait for the response (``timeout`` bounds *this call's* wait).

        When the wait expires and the request's own deadline has also
        passed, the request is resolved here and now as a typed timeout
        :class:`Response` (``timeout_queue`` or ``timeout_execute``) instead
        of raising — previously the caller could observe an expired request
        as ``TimeoutError`` while the engine never typed the failure. A
        caller whose wait expires *before* the request deadline still gets
        ``TimeoutError``: the request is merely in flight.
        """
        if self._pending.event.wait(timeout):
            assert self._pending.response is not None
            return self._pending.response
        p = self._pending
        deadline = p.deadline()
        if (self._engine is not None and deadline is not None
                and time.perf_counter() >= deadline):
            return self._engine._expire(p)
        raise TimeoutError(
            f"request {p.request.request_id} still in flight"
        )


class ServeEngine:
    """Batched execution service over the compiler/runtime stack."""

    def __init__(
        self,
        *,
        workers: int = 4,
        queue_depth: int = 64,
        batch_size: int = 8,
        plan_cache_size: int = 64,
        device: DeviceSpec = GTX680,
        block: tuple[int, int] = (32, 4),
        default_timeout_s: Optional[float] = None,
        tile_threshold_rows: int = 1024,
        tile_rows: int = 256,
        sanitize_plans: bool = True,
        kernel_batching: bool = True,
        metrics: Optional[MetricsRegistry] = None,
        autotune: Union[bool, AutoTuner] = False,
        autotune_path: Optional[str] = None,
        retries: int = 2,
        retry_backoff_s: float = 0.002,
        breaker_threshold: int = 3,
        breaker_cooldown: int = 8,
    ):
        if workers < 1:
            raise ValueError("need at least one worker")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.device = device
        self.block = tuple(block)
        self.batch_size = batch_size
        self.queue_depth = queue_depth
        self.default_timeout_s = default_timeout_s
        self.tile_threshold_rows = tile_threshold_rows
        self.tile_rows = tile_rows
        self.sanitize_plans = sanitize_plans
        self.kernel_batching = kernel_batching
        self.retries = retries
        self.retry_backoff_s = retry_backoff_s

        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.cache = PlanCache(plan_cache_size)
        self.breaker = VariantBreaker(
            threshold=breaker_threshold, cooldown=breaker_cooldown,
            metrics=self.metrics,
        )
        # Model-guided adaptive variant selection for "auto" requests. A
        # shared AutoTuner may be passed in (its own metrics registry stays);
        # `autotune=True` / a cache path builds one onto this engine's
        # registry, loading any previously learned table from the path.
        if isinstance(autotune, AutoTuner):
            self.tuner: Optional[AutoTuner] = autotune
        elif autotune or autotune_path is not None:
            self.tuner = AutoTuner(metrics=self.metrics, path=autotune_path)
        else:
            self.tuner = None

        m = self.metrics
        self._c_submitted = m.counter("engine.requests_submitted")
        self._c_rejected = m.counter("engine.requests_rejected",
                                     "backpressure: queue was full")
        self._c_ok = m.counter("engine.responses_ok")
        self._c_error = m.counter("engine.responses_error")
        self._c_queue_timeout = m.counter("engine.timeouts_queue",
                                          "deadline passed while queued")
        self._c_exec_timeout = m.counter("engine.timeouts_execute",
                                         "deadline passed during execution")
        self._c_fb_timeout = m.counter("engine.fallbacks_timeout",
                                       "simt -> vectorized on exec timeout")
        self._c_fb_compile = m.counter("engine.fallbacks_compile",
                                       "isp -> naive on CompileError")
        self._c_fb_error = m.counter("engine.fallbacks_error",
                                     "simt -> vectorized on execution error")
        self._c_retries = m.counter("engine.retries",
                                    "execution attempts beyond the first")
        self._c_worker_crashes = m.counter(
            "engine.worker_crashes",
            "batches whose worker died mid-flight (requests failed typed)")
        self._c_faults_observed = m.counter(
            "engine.faults_observed",
            "injected faults observed at engine-level fault points")
        self._c_sanitized = m.counter("engine.plans_sanitized",
                                      "plans bounds-checked on first build")
        self._c_sanitize_rejected = m.counter(
            "engine.plans_sanitize_rejected",
            "plans rejected by the static bounds sanitizer")
        self._c_batches = m.counter("engine.batches")
        self._c_kernel_batches = m.counter(
            "engine.kernel_batches",
            "micro-batches executed as a single (N,H,W) kernel call")
        self._c_kernel_batched = m.counter(
            "engine.kernel_batched_requests",
            "requests served by kernel-level batched execution")
        self._c_cache_hits = m.counter("engine.plan_cache_hits")
        self._c_cache_misses = m.counter("engine.plan_cache_misses")
        # Architectural event counters of the SIMT simulator, aggregated
        # across every completed SIMT execution (per-region breakdowns ride
        # the trace spans; these are the fleet-level Prometheus series).
        self._c_simt_events = {
            name: m.counter(f"engine.simt_events_{name}",
                            f"simulator {name.replace('_', ' ')} events")
            for name in EVENT_NAMES
        }
        self._h_queue = m.histogram("engine.queue_seconds", unit="s")
        self._h_build = m.histogram("engine.plan_build_seconds", unit="s")
        self._h_execute = m.histogram("engine.execute_seconds", unit="s")

        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._space_free = threading.Condition(self._lock)
        self._queue: deque[_Pending] = deque()
        self._closed = False
        self._close_lock = threading.Lock()
        self._tuner_saved = False
        self._threads = [
            threading.Thread(target=self._worker_loop, name=f"serve-{i}",
                             daemon=True)
            for i in range(workers)
        ]
        for t in self._threads:
            t.start()

    # ----------------------------------------------------------- submission

    def submit(self, request: Request, *, block: bool = False) -> ResponseHandle:
        """Enqueue one request; raises :class:`EngineSaturated` when the
        queue is full (or waits for space with ``block=True``)."""
        if request.timeout_s is None and self.default_timeout_s is not None:
            request.timeout_s = self.default_timeout_s
        pending = _Pending(request)
        tracer = _trace_core._current
        if tracer is not None:
            span = tracer.start_trace(
                "request", key=f"r{request.request_id}",
                request_id=request.request_id, app=request.app,
                pattern=request.pattern, variant=request.variant,
                exec_mode=request.exec_mode,
            )
            if span is not None:  # None = head sampling skipped this request
                pending.tracer = tracer
                pending.span = span
        with self._lock:
            if self._closed:
                raise EngineClosed("engine is closed")
            while len(self._queue) >= self.queue_depth:
                if not block:
                    self._c_rejected.inc()
                    raise EngineSaturated(
                        f"queue full ({self.queue_depth} requests waiting)"
                    )
                self._space_free.wait()
                if self._closed:
                    raise EngineClosed("engine is closed")
            pending.enqueued_at = time.perf_counter()
            self._queue.append(pending)
            self._c_submitted.inc()
            self._not_empty.notify()
        return ResponseHandle(pending, self)

    def run(self, requests: list[Request]) -> list[Response]:
        """Submit a list (blocking on backpressure) and wait for all results,
        returned in submission order."""
        handles = [self.submit(r, block=True) for r in requests]
        return [h.result() for h in handles]

    # -------------------------------------------------------------- workers

    def _take_batch(self) -> Optional[list[_Pending]]:
        """Block for the next request, then greedily drain queued requests
        sharing its workload signature (micro-batching)."""
        with self._lock:
            while not self._queue and not self._closed:
                self._not_empty.wait()
            if not self._queue:
                return None  # closed and drained
            head = self._queue.popleft()
            batch = [head]
            sig = head.request.signature
            if self.batch_size > 1:
                rest = deque()
                while self._queue and len(batch) < self.batch_size:
                    cand = self._queue.popleft()
                    if cand.request.signature == sig:
                        batch.append(cand)
                    else:
                        rest.append(cand)
                rest.extend(self._queue)
                self._queue = rest
            self._space_free.notify(len(batch))
            return batch

    def _worker_loop(self) -> None:
        name = threading.current_thread().name
        while True:
            batch = self._take_batch()
            if batch is None:
                return
            self._c_batches.inc()
            try:
                self._process_batch(batch, name)
            except BaseException as exc:
                # Containment: a worker must never take unfinished requests
                # down with it (the no-lost-requests invariant). Whatever
                # escaped _process_batch — an injected crash or a real bug —
                # fails the batch's remaining requests with a typed error and
                # the worker goes back to the queue.
                self._c_worker_crashes.inc()
                for p in batch:
                    if not p.event.is_set():
                        r = Response(
                            request_id=p.request.request_id,
                            app=p.request.app, worker=name,
                            error=f"worker crashed mid-batch: {exc}",
                            error_kind="worker_crash",
                        )
                        self._finish(p, r)

    # ------------------------------------------------------------- planning

    def _resolve_plan(
        self, request: Request
    ) -> tuple[ExecutionPlan, bool, list[str], float,
               Optional[tuple[TunerKey, str]], list[tuple]]:
        """Plan for one workload signature: trace (cheap), resolve ``"auto"``
        through the tuner, look up the cache by content digest, build on
        miss; degrade isp/isp_warp -> naive on CompileError. Returns
        (plan, was_hit, fallbacks, build_seconds, tuner_context,
        trace_events) where tuner_context is ``(key, decided_variant)`` for
        tuned requests and trace_events is a list of
        ``(name, start, end, attrs)`` perf_counter stamps for sub-steps
        (populated only while a tracer is installed)."""
        t0 = time.perf_counter()
        events: list[tuple] = []
        h, w = request.image.shape
        descs = trace_app(request.app, request.pattern, w, h, request.constant)
        fallbacks: list[str] = []
        variant = request.variant
        tuner_ctx: Optional[tuple[TunerKey, str]] = None

        if variant == "auto":
            if self.tuner is None:
                # No tuner attached: the model-only policy is the closest
                # static stand-in for "decide for me".
                variant = "isp+m"
                fallbacks.append("auto:no-tuner->isp+m")
            else:
                key_t = tuner_key(descs, request.pattern, self.device)
                t_tune = time.perf_counter()
                variant, phase = self.tuner.decide(
                    key_t,
                    lambda: pipeline_priors(
                        descs, block=self.block, device=self.device
                    ),
                )
                tuner_ctx = (key_t, variant)
                if _trace_core._current is not None:
                    attrs = {"variant": variant, "phase": phase}
                    attrs.update(self.tuner.explain(key_t))
                    events.append(("autotune", t_tune, time.perf_counter(),
                                   attrs))

        if variant != "naive" and self.breaker.should_reroute(variant):
            # The circuit for this shape is open: serve naive instead of
            # burning a retry budget on a variant that keeps failing.
            fallbacks.append(f"breaker:{variant}->naive")
            if tuner_ctx is not None:
                tuner_ctx = (tuner_ctx[0], "naive")
            variant = "naive"

        def factory_for(v: str) -> Callable[[], ExecutionPlan]:
            def build() -> ExecutionPlan:
                plan = build_plan(
                    request.app, request.pattern, w, h, variant=v,
                    device=self.device, block=self.block,
                    constant=request.constant, descs=descs,
                )
                if self.sanitize_plans:
                    # Sanitize inside the single-flight build so every plan
                    # is bounds-checked exactly once, before it is cached.
                    reports = plan.sanitize()
                    if any(not r.ok for r in reports):
                        raise SanitizeError(reports)
                    self._c_sanitized.inc()
                if _faults._current is not None:
                    # Fault point: the sanitizer rejects this plan. Uses a
                    # synthetic finding so the failure is exactly as typed
                    # as a real rejection.
                    act = _faults.fire("serve.engine.sanitize",
                                       key=plan.key.short(), app=request.app)
                    if act is not None:
                        self._c_faults_observed.inc()
                        raise SanitizeError([_injected_sanitize_report(v)])
                return plan

            return build

        key = plan_key(descs, variant=variant, pattern=request.pattern,
                       device=self.device, block=self.block)
        try:
            plan, hit = self.cache.get_or_build(key, factory_for(variant))
        except SanitizeError:
            # A bounds finding is a compiler bug, not a workload property:
            # degrading to another variant would serve potentially corrupt
            # pixels, so the request fails loudly instead.
            self._c_sanitize_rejected.inc()
            raise
        except CompileError:
            # Graceful degradation: the requested code shape is not
            # expressible for this geometry — serve the naive plan instead.
            self._c_fb_compile.inc()
            fallbacks.append(f"compile:{variant}->naive")
            if tuner_ctx is not None:
                # The tuner must learn that this shape cannot be built here,
                # or it will keep proposing it.
                self.tuner.penalize(tuner_ctx[0], tuner_ctx[1])
                tuner_ctx = (tuner_ctx[0], "naive")
            key = plan_key(descs, variant="naive", pattern=request.pattern,
                           device=self.device, block=self.block)
            try:
                plan, hit = self.cache.get_or_build(key, factory_for("naive"))
            except SanitizeError:
                self._c_sanitize_rejected.inc()
                raise
        return (plan, hit, fallbacks, time.perf_counter() - t0, tuner_ctx,
                events)

    # ------------------------------------------------------------ execution

    def _tile_rows_for(self, request: Request) -> Optional[int]:
        if request.tile_rows is not None:
            return request.tile_rows
        if request.image.shape[0] >= self.tile_threshold_rows:
            return self.tile_rows
        return None

    def _execute(
        self, plan: ExecutionPlan, pending: _Pending, response: Response
    ) -> np.ndarray:
        request = pending.request
        deadline = pending.deadline()
        if _faults._current is not None:
            # Fault point: per-request execution, keyed by request id so each
            # request's fate is deterministic regardless of which worker
            # serves it. Transient specs (max_fires) are what retries outlive.
            act = _faults.fire("serve.engine.execute",
                               key=f"r{request.request_id}",
                               variant=plan.variant, app=request.app)
            if act is not None:
                self._c_faults_observed.inc()
                if act.kind == "latency":
                    act.sleep()
                else:
                    raise FaultError("serve.engine.execute", act.kind)
        if request.exec_mode == "simt":
            remaining = None if deadline is None else deadline - time.perf_counter()
            # Per-kernel profilers are always collected: their event totals
            # feed the engine's simulator event counters. Sampled (traced)
            # requests additionally get region profiles on the Response.
            sampled = _trace_core.current_context() is not None
            collect: Optional[list] = []
            try:
                output = self._execute_simt_with_timeout(
                    plan, request, remaining, collect=collect
                )
            except Exception:
                # A failed simulation (e.g. a redzone trap) degrades to the
                # vectorized path, which computes independently — same rule
                # as a timeout: the simulator's problems are not the
                # request's problems.
                self._c_fb_error.inc()
                response.fallbacks.append("error:simt->vectorized")
                output = None
            else:
                if output is None:
                    # Timed out: degrade to the vectorized path, which
                    # always answers.
                    self._c_fb_timeout.inc()
                    response.fallbacks.append("timeout:simt->vectorized")
            if output is not None:
                if collect:
                    for _name, _var, prof in collect:
                        for ev, n in prof.event_totals().items():
                            if n:
                                self._c_simt_events[ev].inc(n)
                if sampled and collect:
                    from ..trace.profile import RegionProfile

                    response.region_profiles = [
                        RegionProfile.from_profiler(name, var, prof)
                        for name, var, prof in collect
                    ]
                return output
        return plan.execute(request.image, tile_rows=self._tile_rows_for(request))

    def _execute_simt_with_timeout(
        self,
        plan: ExecutionPlan,
        request: Request,
        budget_s: Optional[float],
        collect: Optional[list] = None,
    ) -> Optional[np.ndarray]:
        """Run the SIMT simulation; ``None`` means the budget expired.

        Python threads cannot be killed, so an over-budget simulation is
        *abandoned* — but not left running to completion: the warp
        interpreter polls the ``abort`` event and bails out cooperatively,
        so the zombie thread stops burning CPU within a few thousand
        instructions instead of finishing a result nobody will read.
        """
        if budget_s is not None and budget_s <= 0:
            return None
        box: dict[str, object] = {}
        abort = threading.Event()
        # The simulation runs on its own watchdogged thread; re-bind the
        # trace context explicitly (thread-locals do not cross threads).
        ctx = _trace_core.current_context()

        def run():
            try:
                if ctx is not None:
                    with _trace_core.context(*ctx):
                        box["output"] = plan.execute_simt(
                            request.image, abort=abort, collect=collect
                        )
                else:
                    box["output"] = plan.execute_simt(
                        request.image, abort=abort, collect=collect
                    )
            except Exception as exc:  # surfaced by the caller below
                box["error"] = exc

        t = threading.Thread(target=run, daemon=True,
                             name=f"simt-{request.request_id}")
        t.start()
        t.join(budget_s)
        if t.is_alive():
            abort.set()
            return None
        if "error" in box:
            raise box["error"]  # type: ignore[misc]
        return box["output"]  # type: ignore[return-value]

    def _process_batch(self, batch: list[_Pending], worker: str) -> None:
        if _faults._current is not None:
            # Fault point: the worker dies before touching its batch — the
            # containment net in _worker_loop must fail every request typed.
            act = _faults.fire("serve.engine.worker", worker=worker)
            if act is not None:
                self._c_faults_observed.inc()
                raise FaultError("serve.engine.worker", act.kind)
        leader = batch[0]
        responses = [
            Response(request_id=p.request.request_id, app=p.request.app,
                     worker=worker)
            for p in batch
        ]
        now = time.perf_counter()
        for p, r in zip(batch, responses):
            r.queue_seconds = now - p.enqueued_at
            self._h_queue.observe(r.queue_seconds)
            if p.span is not None:
                # Retroactive: the wait was measured anyway, no live span
                # had to ride the queue.
                p.tracer.record_span("queue", p.span, p.enqueued_at, now)

        t_plan0 = time.perf_counter()
        try:
            plan, hit, fallbacks, build_s, tuner_ctx, plan_events = (
                self._resolve_plan(leader.request)
            )
        except Exception as exc:
            kind = "sanitize" if isinstance(exc, SanitizeError) else "plan_build"
            for p, r in zip(batch, responses):
                if p.span is not None:
                    p.tracer.record_span("plan", p.span, t_plan0,
                                         time.perf_counter(),
                                         status="error", error=str(exc))
                r.error = f"plan build failed: {exc}"
                r.error_kind = kind
                self._finish(p, r)
            return
        t_plan1 = time.perf_counter()

        self._h_build.observe(build_s)
        # The leader's resolution outcome; followers were served without a
        # build of their own, so they count as hits.
        self._c_cache_hits.inc(len(batch) - 1 + (1 if hit else 0))
        if not hit:
            self._c_cache_misses.inc()

        runnable: list[tuple[_Pending, Response]] = []
        for p, r in zip(batch, responses):
            r.plan_key = plan.key
            r.variant = plan.variant
            r.cache_hit = hit if p is leader else True
            r.build_seconds = build_s if p is leader else 0.0
            r.fallbacks.extend(fallbacks)
            if p.span is not None:
                pspan = p.tracer.record_span(
                    "plan", p.span, t_plan0, t_plan1,
                    cache_hit=r.cache_hit, variant=plan.variant,
                    leader=p is leader, build_seconds=r.build_seconds,
                )
                for ev_name, ev_s, ev_e, ev_attrs in plan_events:
                    p.tracer.record_span(ev_name, pspan, ev_s, ev_e,
                                         **ev_attrs)
            deadline = p.deadline()
            # Deadline comparisons are uniformly inclusive (``>=``): a
            # request *at* its deadline is expired, matching the retry
            # loop's check below (the queue check used to say ``>``).
            if (deadline is not None and time.perf_counter() >= deadline
                    and p.request.exec_mode != "simt"):
                r.error = (f"timed out after {p.request.timeout_s:.3f}s "
                           "while queued")
                r.error_kind = "timeout_queue"
                if self._finish(p, r):
                    self._c_queue_timeout.inc()
                continue
            p.phase = "executing"
            runnable.append((p, r))

        # Kernel-level batching: same-signature requests that survived the
        # queue-deadline check collapse into one (N, H, W) evaluation — the
        # Python/plan overhead of every stage is paid once for the whole
        # micro-batch. Disabled under fault injection (fault points are
        # keyed per request id; collapsing requests would change which
        # requests a replayed plan hits) and for per-request tiling asks.
        # Any batched failure falls back to the per-request retry path
        # below, so batching can only ever speed requests up, not change
        # their outcome.
        if (self.kernel_batching
                and len(runnable) > 1
                and leader.request.exec_mode == "vectorized"
                and _faults._current is None
                and all(p.request.tile_rows is None for p, _ in runnable)
                and self._execute_kernel_batch(plan, runnable, tuner_ctx)):
            return

        for p, r in runnable:
            t0 = time.perf_counter()
            # Bounded retry with exponential backoff: transient failures
            # (injected faults, co-tenant hiccups) get self.retries more
            # chances; the deadline still rules, and a request that exhausts
            # its budget fails with a typed error — never silently.
            attempt = 0
            while True:
                espan = None
                if p.span is not None:
                    espan = p.tracer.start_span(
                        "execute", p.span, attempt=attempt,
                        exec_mode=p.request.exec_mode, variant=plan.variant,
                    )
                try:
                    if espan is not None:
                        with _trace_core.context(p.tracer, espan):
                            r.output = self._execute(plan, p, r)
                    else:
                        r.output = self._execute(plan, p, r)
                    r.error = None
                    r.error_kind = None
                    if espan is not None:
                        p.tracer.finish(espan, fallbacks=list(r.fallbacks))
                    break
                except Exception as exc:
                    if espan is not None:
                        p.tracer.finish(espan, status="error",
                                        error=str(exc))
                    r.error = f"execution failed: {exc}"
                    r.error_kind = "execution"
                    deadline = p.deadline()
                    out_of_time = (deadline is not None
                                   and time.perf_counter() >= deadline)
                    if out_of_time and attempt < self.retries:
                        # The deadline — not the retry budget — is what
                        # stopped us; type the failure as a timeout.
                        r.error = (f"timed out after "
                                   f"{p.request.timeout_s:.3f}s during "
                                   f"execution (last error: {exc})")
                        r.error_kind = "timeout_execute"
                        break
                    if attempt >= self.retries or out_of_time:
                        break
                    attempt += 1
                    r.retries = attempt
                    self._c_retries.inc()
                    time.sleep(self.retry_backoff_s * (2 ** (attempt - 1)))
            r.execute_seconds = time.perf_counter() - t0
            self._h_execute.observe(r.execute_seconds)
            # Feed the per-variant circuit breaker; a trip also lands a
            # penalty in the tuner's table so tuned configs avoid the shape.
            if r.ok:
                self.breaker.record_success(plan.variant)
            elif self.breaker.record_failure(plan.variant):
                if self.tuner is not None and tuner_ctx is not None:
                    self.tuner.penalize(tuner_ctx[0], plan.variant)
            # Feed measurements back: the plan tracks its own cost EMA, and
            # tuned requests refine the learned table. Only the vectorized
            # path is comparable across variants (SIMT timings measure the
            # simulator, and a timed-out SIMT run degrades mid-request).
            if p.request.exec_mode == "vectorized" and not r.fallbacks:
                if r.ok:
                    plan.note_execution(r.execute_seconds)
                if tuner_ctx is not None:
                    key_t, decided = tuner_ctx
                    if r.ok:
                        self.tuner.observe(key_t, decided, r.execute_seconds)
                    else:
                        self.tuner.penalize(key_t, decided)
            if self._finish(p, r) and r.error_kind == "timeout_execute":
                self._c_exec_timeout.inc()

    def _execute_kernel_batch(
        self,
        plan: ExecutionPlan,
        pairs: list[tuple[_Pending, Response]],
        tuner_ctx: Optional[tuple[TunerKey, str]],
    ) -> bool:
        """Serve ``pairs`` with one batched plan execution.

        Returns False (having resolved nothing) when the batched call
        fails for any reason — the caller's per-request path then serves
        every request individually, with its full retry budget. On success
        each request is charged the amortized wall time (elapsed / N): that
        is the figure the autotuner and the plan EMA must learn, because it
        is what a request actually costs under this policy.
        """
        t0 = time.perf_counter()
        try:
            stack = np.stack([p.request.image for p, _ in pairs])
            outputs = plan.execute_batch(stack)
        except Exception:
            return False
        t1 = time.perf_counter()
        per_request = (t1 - t0) / len(pairs)
        self._c_kernel_batches.inc()
        self._c_kernel_batched.inc(len(pairs))
        for i, (p, r) in enumerate(pairs):
            r.output = outputs[i]
            r.execute_seconds = per_request
            self._h_execute.observe(per_request)
            if p.span is not None:
                p.tracer.record_span(
                    "execute", p.span, t0, t1,
                    exec_mode=p.request.exec_mode, variant=plan.variant,
                    kernel_batch=len(pairs),
                )
            self.breaker.record_success(plan.variant)
            if not r.fallbacks:
                plan.note_execution(per_request)
                if tuner_ctx is not None:
                    self.tuner.observe(tuner_ctx[0], tuner_ctx[1],
                                       per_request)
            self._finish(p, r)
        return True

    def _finish(self, pending: _Pending, response: Response) -> bool:
        """Resolve a request (first-claim-wins); returns whether *this*
        response won. Outcome counters must only be incremented by the
        winner — a worker completing a request the caller already expired
        must not double-count."""
        if not pending.claim():
            return False
        (self._c_ok if response.ok else self._c_error).inc()
        if pending.span is not None:
            response.trace_id = pending.span.trace_id
            pending.tracer.finish(
                pending.span,
                status="ok" if response.ok else f"error:{response.error_kind}",
                error_kind=response.error_kind,
                retries=response.retries,
                fallbacks=list(response.fallbacks),
                cache_hit=response.cache_hit,
                worker=response.worker,
            )
        pending.response = response
        pending.event.set()
        return True

    def _expire(self, pending: _Pending) -> Response:
        """Caller-side deadline expiry (from :meth:`ResponseHandle.result`):
        resolve the request as a typed timeout now, racing the worker.
        The loser of the race returns the winner's response."""
        request = pending.request
        if pending.phase == "queued":
            kind, where = "timeout_queue", "while queued"
        else:
            kind, where = "timeout_execute", "during execution"
        response = Response(
            request_id=request.request_id, app=request.app,
            error=f"timed out after {request.timeout_s:.3f}s {where}",
            error_kind=kind,
        )
        if self._finish(pending, response):
            (self._c_queue_timeout if kind == "timeout_queue"
             else self._c_exec_timeout).inc()
            return response
        # The worker claimed first; its response is (about to be) set.
        pending.event.wait()
        assert pending.response is not None
        return pending.response

    # ------------------------------------------------------------ lifecycle

    def stats(self) -> dict:
        """Merged snapshot: engine counters/latencies + plan-cache stats."""
        snap = self.metrics.snapshot()
        stats = {
            "engine": snap["counters"],
            "gauges": snap["gauges"],
            "latency": snap["histograms"],
            "plan_cache": self.cache.stats(),
            "breaker": self.breaker.stats(),
        }
        if self.tuner is not None:
            stats["tuner"] = self.tuner.stats()
        injector = _faults.active()
        if injector is not None:
            stats["faults"] = injector.counts()
        return stats

    def close(self, *, timeout: Optional[float] = 30.0) -> None:
        """Stop accepting work, drain the queue, join the workers; persist
        the tuner's learned table when it has a cache path.

        Idempotent and thread-safe: a second (or concurrent) close also
        waits for the drain instead of returning while workers are still
        running, a submitter blocked on backpressure is woken (and raises
        :class:`EngineClosed`, typed, rather than hanging), and the tuner
        table is persisted exactly once. Shard lifecycle management calls
        close from signal handlers and monitor threads concurrently, so
        none of these paths may raise or deadlock.
        """
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._space_free.notify_all()
        me = threading.current_thread()
        for t in self._threads:
            if t is not me:  # close() from a worker must not self-join
                t.join(timeout)
        with self._close_lock:
            if self._tuner_saved:
                return
            self._tuner_saved = True
        if self.tuner is not None and self.tuner.path is not None:
            try:
                self.tuner.save()
            except OSError:
                # Losing the learned table costs a cold start next boot;
                # failing close() would cost the caller its shutdown path.
                pass

    def __enter__(self) -> "ServeEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
