"""Wall-clock grounding: the ISP effect measured for real on the host.

The simulated GPU gives the paper's tables; this benchmark demonstrates the
same mechanism with *actual measured time*: the vectorized host executor
evaluates the identical kernel description either with full border-index
mapping on every tap (naive) or region-sliced with a mapping-free Body
(ISP). Because the border strips are O(perimeter) and the body O(area), the
region-sliced variant wins, and wins more at larger sizes — the paper's
Figure 3 argument, observable on any machine this test runs on.

These are genuine pytest-benchmark timings (multiple rounds, statistics).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compiler import trace_kernel
from repro.dsl import Boundary
from repro.filters import PIPELINES
from repro.runtime import run_kernel_vectorized

from harness import stable_seed

CASES = [
    ("gaussian", Boundary.CLAMP, 1024),
    ("gaussian", Boundary.REPEAT, 1024),
    ("laplace", Boundary.MIRROR, 1024),
    ("bilateral", Boundary.CLAMP, 512),
]


def _setup(app: str, boundary: Boundary, size: int):
    rng = np.random.default_rng(
        stable_seed("bench_wallclock", app, boundary.value, size)
    )
    src = rng.random((size, size)).astype(np.float32)
    pipe = PIPELINES[app](size, size, boundary)
    desc = trace_kernel(pipe.kernels[0])
    return desc, {"inp": src}


@pytest.mark.parametrize("app,boundary,size", CASES,
                         ids=[f"{a}-{b.value}-{s}" for a, b, s in CASES])
@pytest.mark.parametrize("variant", ["naive", "isp"])
def test_wallclock(benchmark, app, boundary, size, variant):
    desc, images = _setup(app, boundary, size)
    out = benchmark(run_kernel_vectorized, desc, images, variant=variant)
    assert out.shape == (size, size)


def test_wallclock_isp_beats_naive(benchmark):
    """Direct A/B: region-sliced beats full-mapping on the same kernel.

    (The per-variant numbers above are for the report; this test asserts the
    relationship in one process to avoid cross-run noise.)
    """
    import time

    desc, images = _setup("gaussian", Boundary.REPEAT, 1536)

    def best_of(n, fn):
        times = []
        for _ in range(n):
            t0 = time.perf_counter()
            fn()
            times.append(time.perf_counter() - t0)
        return min(times)

    # Warm up (allocations, cache effects).
    run_kernel_vectorized(desc, images, variant="naive")
    run_kernel_vectorized(desc, images, variant="isp")

    t_naive = best_of(3, lambda: run_kernel_vectorized(desc, images, variant="naive"))
    t_isp = best_of(3, lambda: run_kernel_vectorized(desc, images, variant="isp"))
    benchmark.pedantic(
        lambda: run_kernel_vectorized(desc, images, variant="isp"),
        rounds=3, iterations=1,
    )
    speedup = t_naive / t_isp
    print(f"\nhost wall-clock ISP speedup (gaussian/repeat/1536): {speedup:.2f}x")
    assert speedup > 1.1, f"expected region slicing to win, got {speedup:.3f}x"
