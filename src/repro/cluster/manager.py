"""LocalCluster: spawn, monitor, kill, and warm-respawn shard processes.

The manager owns the *processes*; routing state lives in the
:class:`~repro.cluster.router.RoutingTable` it keeps updated. One
:class:`LocalCluster` boots N ``python -m repro.cluster.worker`` subprocesses
(one per slot), reads each worker's READY handshake line to learn its port,
and then:

* a monitor thread polls for dead processes; a dead slot is marked dead in
  the table immediately (so the gateway fails over now) and respawned into
  the *same slot* — same keyspace, and, because every spawn's
  ``--autotune-path`` points at the slot's :class:`~repro.cluster.warmstart.
  WarmStartStore` file, the replacement boots from the dead shard's last
  snapshot rather than cold priors;
* a snapshot thread periodically sends ``snapshot`` to every live shard, so
  the warm-start file is never older than one interval even though a
  crashed shard skips its clean close();
* :meth:`kill` SIGKILLs one slot — the chaos suite's "shard dies
  mid-flight" lever (abrupt, no drain, exactly what the failover and
  warm-start paths must absorb).

Control traffic (stats, snapshot, ping) uses short-lived blocking
connections; request traffic never flows through the manager — that is the
gateway's job.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import Optional, Union

from .protocol import recv_frame, send_frame
from .router import Router, RoutingTable
from .warmstart import WarmStartStore


def _worker_env() -> dict:
    """Subprocess environment with ``repro`` importable (the package lives
    in a src/ layout; the spawned interpreter needs it on PYTHONPATH)."""
    import repro

    src_dir = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    parts = [src_dir] + [p for p in env.get("PYTHONPATH", "").split(os.pathsep)
                         if p and p != src_dir]
    env["PYTHONPATH"] = os.pathsep.join(parts)
    return env


class ShardProcess:
    """One spawned worker and what the manager knows about it."""

    def __init__(self, slot: str, proc: subprocess.Popen, host: str,
                 port: int, boot_configs: int):
        self.slot = slot
        self.proc = proc
        self.host = host
        self.port = port
        self.boot_configs = boot_configs
        self.spawned_at = time.monotonic()

    @property
    def pid(self) -> int:
        return self.proc.pid

    def alive(self) -> bool:
        return self.proc.poll() is None


class LocalCluster:
    """N shard workers on localhost, one routing table, warm-start wiring."""

    def __init__(
        self,
        *,
        shards: int = 3,
        warmstart_dir: Optional[Union[str, Path]] = None,
        engine_workers: int = 2,
        default_timeout_s: Optional[float] = None,
        autotune: bool = True,
        faults_json: Optional[dict] = None,
        snapshot_interval_s: float = 2.0,
        respawn: bool = True,
        ready_timeout_s: float = 30.0,
        extra_worker_args: Optional[list[str]] = None,
    ):
        if shards < 1:
            raise ValueError("need at least one shard")
        self.slots = [f"shard-{i}" for i in range(shards)]
        self.table = RoutingTable()
        self.router = Router(self.table)
        self.warmstart = (
            WarmStartStore(warmstart_dir) if warmstart_dir is not None else None
        )
        self.engine_workers = engine_workers
        self.default_timeout_s = default_timeout_s
        self.autotune = autotune
        self.faults_json = faults_json
        self.snapshot_interval_s = snapshot_interval_s
        self.respawn = respawn
        self.ready_timeout_s = ready_timeout_s
        self.extra_worker_args = list(extra_worker_args or [])

        self._procs: dict[str, ShardProcess] = {}
        self._lock = threading.Lock()
        self._closed = threading.Event()
        self.respawns = 0

        for slot in self.slots:
            self._spawn(slot)
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="cluster-monitor", daemon=True
        )
        self._monitor.start()
        self._snapshotter: Optional[threading.Thread] = None
        if self.warmstart is not None and snapshot_interval_s > 0:
            self._snapshotter = threading.Thread(
                target=self._snapshot_loop, name="cluster-snapshot",
                daemon=True,
            )
            self._snapshotter.start()

    # ------------------------------------------------------------- spawning

    def _spawn(self, slot: str) -> ShardProcess:
        cmd = [
            sys.executable, "-m", "repro.cluster.worker",
            "--slot", slot, "--port", "0",
            "--workers", str(self.engine_workers),
        ]
        if self.default_timeout_s is not None:
            cmd += ["--default-timeout-s", str(self.default_timeout_s)]
        # The tuner rides the warm-start wiring: each slot's --autotune-path
        # IS its snapshot file, so enabling one without the other has no
        # cross-process story. No warmstart_dir => shards run untuned.
        if self.warmstart is not None and self.autotune:
            cmd += ["--autotune-path", str(self.warmstart.path_for(slot))]
        if self.faults_json is not None:
            cmd += ["--faults", json.dumps(self.faults_json)]
        cmd += self.extra_worker_args

        proc = subprocess.Popen(
            cmd, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
            env=_worker_env(), text=True,
        )
        ready = self._read_ready(proc, slot)
        shard = ShardProcess(slot, proc, ready["host"], ready["port"],
                             int(ready.get("boot_configs", 0)))
        with self._lock:
            self._procs[slot] = shard
        self.table.set_addr(slot, (shard.host, shard.port))
        return shard

    def _read_ready(self, proc: subprocess.Popen, slot: str) -> dict:
        """Block (bounded) for the worker's READY line on stdout."""
        deadline = time.monotonic() + self.ready_timeout_s
        line = ""
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                raise RuntimeError(
                    f"shard {slot} exited with {proc.returncode} before READY"
                )
            line = proc.stdout.readline()
            if line.strip():
                break
        if not line.strip():
            proc.kill()
            raise RuntimeError(f"shard {slot} produced no READY line")
        try:
            ready = json.loads(line)
        except json.JSONDecodeError as exc:
            proc.kill()
            raise RuntimeError(
                f"shard {slot} READY line is not JSON: {line!r}"
            ) from exc
        if not ready.get("ready"):
            proc.kill()
            raise RuntimeError(f"shard {slot} refused to start: {ready}")
        return ready

    # ----------------------------------------------------------- monitoring

    def _monitor_loop(self) -> None:
        while not self._closed.wait(0.05):
            with self._lock:
                dead = [s for s, p in self._procs.items() if not p.alive()]
                suspect = [s for s, p in self._procs.items()
                           if p.alive() and not self.table.is_live(s)]
            for slot in dead:
                # Mark first: the gateway must start failing over before the
                # (comparatively slow) respawn completes.
                self.table.mark_dead(slot)
                if self.respawn and not self._closed.is_set():
                    try:
                        self._spawn(slot)
                        self.respawns += 1
                    except RuntimeError:
                        # Next monitor tick retries; the slot stays dead.
                        pass
            for slot in suspect:
                # The gateway marked this slot dead (a connection failure /
                # injected partition) but the process is alive — probe it
                # and put it back in rotation if it answers. Transient
                # partitions heal here; real corpses fall to the branch
                # above on a later tick.
                try:
                    if self.ping(slot).get("ok"):
                        self.table.mark_live(slot)
                except (ConnectionError, OSError):
                    pass

    def _snapshot_loop(self) -> None:
        while not self._closed.wait(self.snapshot_interval_s):
            self.snapshot_all()

    # -------------------------------------------------------------- control

    def _control(self, slot: str, header: dict,
                 timeout: float = 10.0) -> dict:
        """One request/response on a fresh control connection."""
        addr = self.table.addr(slot)
        with socket.create_connection(addr, timeout=timeout) as sock:
            send_frame(sock, header)
            reply, _ = recv_frame(sock)
        return reply

    def ping(self, slot: str) -> dict:
        return self._control(slot, {"op": "ping"})

    def stats_all(self, *, samples: bool = True) -> dict[str, dict]:
        """{slot: stats reply} for every live slot (dead slots skipped)."""
        out: dict[str, dict] = {}
        for slot in self.table.live_slots():
            try:
                out[slot] = self._control(slot, {"op": "stats",
                                                 "samples": samples})
            except (ConnectionError, OSError):
                self.table.mark_dead(slot)
        return out

    def metrics_snapshots(self) -> dict[str, dict]:
        """{slot: MetricsRegistry.snapshot()} for the merged exporter."""
        return {
            slot: reply["metrics"]
            for slot, reply in self.stats_all(samples=True).items()
            if reply.get("ok")
        }

    def snapshot_all(self) -> dict[str, bool]:
        """Ask every live shard to persist its tuner table now."""
        out: dict[str, bool] = {}
        for slot in self.table.live_slots():
            try:
                reply = self._control(slot, {"op": "snapshot"})
                out[slot] = bool(reply.get("saved"))
            except (ConnectionError, OSError):
                self.table.mark_dead(slot)
                out[slot] = False
        return out

    # ---------------------------------------------------------------- chaos

    def kill(self, slot: str, *, sig: int = signal.SIGKILL) -> int:
        """Abruptly kill one shard (no drain, no flush); returns the pid.

        The monitor notices the corpse, marks the slot dead (failover), and
        respawns a warm-started replacement into the same slot.
        """
        with self._lock:
            shard = self._procs[slot]
        pid = shard.pid
        shard.proc.send_signal(sig)
        shard.proc.wait(timeout=10)
        # Mark dead here rather than waiting for the monitor tick: callers
        # that immediately wait_live() must not observe the stale mark.
        self.table.mark_dead(slot)
        return pid

    def shard(self, slot: str) -> ShardProcess:
        with self._lock:
            return self._procs[slot]

    def wait_live(self, slot: str, timeout: float = 30.0) -> bool:
        """Block until ``slot`` is live again (respawn completed)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.table.is_live(slot):
                return True
            time.sleep(0.02)
        return False

    # ------------------------------------------------------------ lifecycle

    def close(self) -> None:
        self._closed.set()
        self._monitor.join(timeout=5)
        if self._snapshotter is not None:
            self._snapshotter.join(timeout=5)
        with self._lock:
            procs = list(self._procs.values())
        for shard in procs:
            if shard.alive():
                try:
                    self._control(shard.slot, {"op": "shutdown"}, timeout=2.0)
                except (ConnectionError, OSError, KeyError):
                    pass
        deadline = time.monotonic() + 5.0
        for shard in procs:
            remaining = max(0.1, deadline - time.monotonic())
            try:
                shard.proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                shard.proc.kill()
                shard.proc.wait(timeout=5)

    def __enter__(self) -> "LocalCluster":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
