"""Built-in metrics for the serve engine: counters and latency histograms.

Deliberately tiny and dependency-free (the container has no prometheus
client): a :class:`Counter` is a locked integer, a :class:`Histogram` keeps a
bounded sample window and reports count/mean/percentiles, and the
:class:`MetricsRegistry` names them and renders one snapshot dict that
``ServeEngine.stats()`` and ``serve-bench`` consume. For scraping,
:func:`repro.trace.prometheus_text` renders a registry in the Prometheus
text exposition format.

All operations are thread-safe; workers record from many threads at once.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from typing import Optional, Sequence


class Counter:
    """Monotonically increasing event count."""

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """Last-written value (e.g. learned-table size, agreement rate)."""

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


def _nearest_rank(samples: list[float], q: float) -> float:
    """Nearest-rank percentile (ceiling convention): the smallest sample
    such that at least ``q``% of the window is <= it.

    The previous ``round(q/100*n) - 1`` indexing was biased low for small
    windows (Python's round-half-to-even put the p50 of 5 samples at the
    2nd-smallest); ``ceil`` is the textbook nearest-rank definition.
    """
    if not samples:
        return 0.0
    rank = min(len(samples), max(1, math.ceil(q / 100.0 * len(samples))))
    return samples[rank - 1]


class Histogram:
    """Latency distribution over a bounded window of recent observations.

    Keeps the most recent ``window`` samples. ``count``/``sum``/``max`` are
    exact over the whole lifetime; percentiles are over the window only —
    snapshots report ``window_count`` alongside so consumers can tell how
    much of the lifetime the percentiles describe. ``unit`` names the
    observed quantity's unit (``"s"`` for seconds — rendered as
    milliseconds — empty for unitless values, rendered raw).
    """

    def __init__(self, name: str, help: str = "", window: int = 8192,
                 unit: str = ""):
        self.name = name
        self.help = help
        self.unit = unit
        self._lock = threading.Lock()
        self._samples: deque[float] = deque(maxlen=window)
        self._count = 0
        self._sum = 0.0
        self._max: Optional[float] = None

    def observe(self, value: float) -> None:
        with self._lock:
            self._samples.append(float(value))
            self._count += 1
            self._sum += float(value)
            if self._max is None or value > self._max:
                self._max = float(value)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile of the sample window, q in [0, 100]."""
        with self._lock:
            samples = sorted(self._samples)
        return _nearest_rank(samples, q)

    def snapshot(self, include_samples: bool = False) -> dict:
        """Point-in-time summary; ``include_samples=True`` additionally
        carries the (sorted) sample window, which is what makes snapshots
        mergeable across shards (:meth:`MetricsRegistry.merge` pools the
        windows so merged percentiles are computed over real observations,
        not averaged percentiles)."""
        with self._lock:
            samples = sorted(self._samples)
            count, total, peak = self._count, self._sum, self._max
        snap = {
            "count": count,
            "window_count": len(samples),
            "mean": total / count if count else 0.0,
            "p50": _nearest_rank(samples, 50.0),
            "p90": _nearest_rank(samples, 90.0),
            "p99": _nearest_rank(samples, 99.0),
            "max": peak if peak is not None else 0.0,
            "sum": total,
            "unit": self.unit,
        }
        if include_samples:
            snap["samples"] = samples
        return snap


class MetricsRegistry:
    """Named collection of counters and histograms."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str, help: str = "") -> Counter:
        with self._lock:
            if name not in self._counters:
                self._counters[name] = Counter(name, help)
            return self._counters[name]

    def gauge(self, name: str, help: str = "") -> Gauge:
        with self._lock:
            if name not in self._gauges:
                self._gauges[name] = Gauge(name, help)
            return self._gauges[name]

    def histogram(self, name: str, help: str = "", window: int = 8192,
                  unit: str = "") -> Histogram:
        with self._lock:
            if name not in self._histograms:
                self._histograms[name] = Histogram(name, help, window, unit)
            return self._histograms[name]

    def instruments(self) -> tuple[dict[str, Counter], dict[str, Gauge],
                                   dict[str, Histogram]]:
        """Live instrument maps (copies), for exporters that need help
        strings and units, not just values."""
        with self._lock:
            return dict(self._counters), dict(self._gauges), dict(self._histograms)

    def snapshot(self, include_samples: bool = False) -> dict:
        """One nested dict: {"counters": {...}, "gauges": {...}, "histograms": {...}}.

        ``include_samples=True`` produces a *mergeable* snapshot: histograms
        carry their sample windows so :meth:`merge` can pool them. This is
        the form shard workers ship to the cluster gateway (it is plain
        JSON-serializable data, safe to send over the wire).
        """
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {n: c.value for n, c in sorted(counters.items())},
            "gauges": {n: g.value for n, g in sorted(gauges.items())},
            "histograms": {n: h.snapshot(include_samples)
                           for n, h in sorted(histograms.items())},
        }

    @staticmethod
    def merge(snapshots: Sequence[dict]) -> dict:
        """Merge per-shard :meth:`snapshot` dicts into one aggregate view.

        Semantics, per instrument kind:

        * **counters** — summed (each shard counts disjoint events);
        * **gauges** — last write wins (later snapshots in the sequence
          override earlier ones; callers order the sequence by recency);
        * **histograms** — pooled: lifetime ``count``/``sum``/``max`` are
          combined exactly, and percentiles are recomputed over the union of
          the shards' sample windows when the snapshots carry samples
          (``snapshot(include_samples=True)``). Snapshots without samples
          still merge — counts and sums stay exact — but the merged
          percentiles then only describe the windows that *did* ship
          samples.

        Returns a dict in the same shape ``snapshot(include_samples=True)``
        produces, so a merge is itself mergeable (associativity lets a
        gateway fold shard snapshots incrementally).
        """
        counters: dict[str, int] = {}
        gauges: dict[str, float] = {}
        pooled: dict[str, dict] = {}
        for snap in snapshots:
            for name, value in snap.get("counters", {}).items():
                counters[name] = counters.get(name, 0) + value
            for name, value in snap.get("gauges", {}).items():
                gauges[name] = value
            for name, h in snap.get("histograms", {}).items():
                agg = pooled.setdefault(name, {
                    "count": 0, "window_count": 0, "sum": 0.0, "max": 0.0,
                    "samples": [], "unit": h.get("unit", ""),
                })
                agg["count"] += h.get("count", 0)
                agg["window_count"] += h.get("window_count", 0)
                agg["sum"] += h.get("sum", 0.0)
                agg["max"] = max(agg["max"], h.get("max", 0.0))
                agg["samples"].extend(h.get("samples", ()))
        histograms: dict[str, dict] = {}
        for name, agg in pooled.items():
            samples = sorted(agg["samples"])
            histograms[name] = {
                "count": agg["count"],
                "window_count": agg["window_count"],
                "mean": agg["sum"] / agg["count"] if agg["count"] else 0.0,
                "p50": _nearest_rank(samples, 50.0),
                "p90": _nearest_rank(samples, 90.0),
                "p99": _nearest_rank(samples, 99.0),
                "max": agg["max"],
                "sum": agg["sum"],
                "unit": agg["unit"],
                "samples": samples,
            }
        return {
            "counters": dict(sorted(counters.items())),
            "gauges": dict(sorted(gauges.items())),
            "histograms": dict(sorted(histograms.items())),
        }

    def render(self) -> str:
        """Human-readable multi-line dump (used by ``serve-bench``)."""
        snap = self.snapshot()
        lines = []
        for name, value in snap["counters"].items():
            lines.append(f"{name} = {value}")
        for name, value in snap["gauges"].items():
            lines.append(f"{name} = {value:g}")
        for name, h in snap["histograms"].items():
            # Only histograms that declare seconds render scaled to ms; a
            # unitless histogram prints its raw values (the old code
            # assumed seconds for everything and mislabelled them).
            if h.get("unit") == "s":
                fmt = lambda v: f"{v * 1e3:.2f}ms"
            else:
                fmt = lambda v: f"{v:g}"
            lines.append(
                f"{name}: n={h['count']} mean={fmt(h['mean'])} "
                f"p50={fmt(h['p50'])} p90={fmt(h['p90'])} "
                f"max={fmt(h['max'])}"
            )
        return "\n".join(lines)
