"""Virtual PTX-like ISA: types, instructions, functions, builder, analyses.

This is the substrate the paper's instruction-level analysis (Section IV,
Table I) runs on. The compiler lowers DSL kernels to this IR; the SIMT
simulator in :mod:`repro.gpu` executes it.
"""

from .builder import IRBuilder
from .cfg import build_cfg, has_loops, immediate_postdominators
from .function import BasicBlock, KernelFunction, Param
from .instructions import (
    CmpOp,
    Immediate,
    Instruction,
    Opcode,
    Register,
    SpecialReg,
)
from .printer import format_instruction, print_function
from .stats import count_by_region, count_by_role, count_function, count_instructions
from .types import DataType
from .verifier import IRVerificationError, verify

__all__ = [
    "BasicBlock",
    "CmpOp",
    "DataType",
    "IRBuilder",
    "IRVerificationError",
    "Immediate",
    "Instruction",
    "KernelFunction",
    "Opcode",
    "Param",
    "Register",
    "SpecialReg",
    "build_cfg",
    "count_by_region",
    "count_by_role",
    "count_function",
    "count_instructions",
    "format_instruction",
    "has_loops",
    "immediate_postdominators",
    "print_function",
    "verify",
]
