"""Metrics registry: counters, histogram percentiles, snapshots."""

import threading

import pytest

from repro.serve import Counter, Histogram, MetricsRegistry


class TestCounter:
    def test_increments(self):
        c = Counter("c")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_thread_safety(self):
        c = Counter("c")

        def bump():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000


class TestHistogram:
    def test_empty_snapshot(self):
        snap = Histogram("h").snapshot()
        assert snap == {"count": 0, "window_count": 0, "mean": 0.0,
                        "p50": 0.0, "p90": 0.0, "p99": 0.0, "max": 0.0,
                        "sum": 0.0, "unit": ""}

    def test_snapshot_samples_only_on_request(self):
        h = Histogram("h")
        h.observe(2.0)
        h.observe(1.0)
        assert "samples" not in h.snapshot()
        assert h.snapshot(include_samples=True)["samples"] == [1.0, 2.0]

    def test_percentiles_and_mean(self):
        h = Histogram("h")
        for v in range(1, 101):  # 1..100
            h.observe(float(v))
        snap = h.snapshot()
        assert snap["count"] == 100
        assert snap["mean"] == pytest.approx(50.5)
        assert snap["p50"] == pytest.approx(50.0)
        assert snap["p90"] == pytest.approx(90.0)
        assert snap["max"] == 100.0
        assert h.percentile(99) == pytest.approx(99.0)

    def test_window_bounds_memory_but_count_is_exact(self):
        h = Histogram("h", window=16)
        for v in range(100):
            h.observe(float(v))
        snap = h.snapshot()
        assert snap["count"] == 100          # lifetime count
        assert snap["max"] == 99.0           # lifetime max
        assert snap["p50"] >= 84.0           # window holds the last 16 only
        # window_count distinguishes "percentiles over 16 samples" from the
        # lifetime count the old snapshot silently mixed them with
        assert snap["window_count"] == 16

    def test_small_window_percentiles_use_ceiling_rank(self):
        # Regression: round()-based ranks put the p50 of 5 samples at the
        # 2nd-smallest (banker's rounding of 2.5); nearest-rank says 3rd.
        h = Histogram("h")
        for v in (1.0, 2.0, 3.0, 4.0, 5.0):
            h.observe(v)
        assert h.percentile(50) == 3.0
        assert h.percentile(90) == 5.0
        assert h.percentile(99) == 5.0
        # And a single sample is every percentile.
        h1 = Histogram("h1")
        h1.observe(7.0)
        for q in (1, 50, 90, 99, 100):
            assert h1.percentile(q) == 7.0

    def test_lifetime_sum(self):
        h = Histogram("h", window=4)
        for v in range(10):
            h.observe(float(v))
        assert h.sum == sum(range(10))  # not window-bounded


class TestRegistry:
    def test_same_name_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.histogram("y") is reg.histogram("y")

    def test_snapshot_and_render(self):
        reg = MetricsRegistry()
        reg.counter("requests").inc(3)
        reg.histogram("lat").observe(0.25)
        snap = reg.snapshot()
        assert snap["counters"] == {"requests": 3}
        assert snap["histograms"]["lat"]["count"] == 1
        text = reg.render()
        assert "requests = 3" in text
        assert "lat:" in text

    def test_render_scales_only_seconds_histograms(self):
        # Regression: render() used to assume every histogram held seconds
        # and printed e.g. a 40-instruction count as "40000.00ms".
        reg = MetricsRegistry()
        reg.histogram("lat_seconds", unit="s").observe(0.25)
        reg.histogram("batch_size").observe(40.0)
        text = reg.render()
        assert "250.00ms" in text       # seconds histogram -> ms
        assert "40000" not in text      # unitless histogram stays raw
        assert "mean=40" in text

    def test_instruments_exposes_help_and_units(self):
        reg = MetricsRegistry()
        reg.counter("c", "counts things")
        reg.histogram("h", "times things", unit="s")
        counters, gauges, histograms = reg.instruments()
        assert counters["c"].help == "counts things"
        assert histograms["h"].unit == "s"
        assert gauges == {}


class TestMerge:
    """Cross-shard snapshot merging (the cluster gateway's aggregation)."""

    def _registry(self, *, requests: int, gauge: float,
                  latencies: list[float]) -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.counter("engine.requests").inc(requests)
        reg.gauge("tuner.configs").set(gauge)
        h = reg.histogram("engine.execute_seconds", unit="s")
        for v in latencies:
            h.observe(v)
        return reg

    def test_counters_sum(self):
        a = self._registry(requests=3, gauge=1, latencies=[0.1])
        b = self._registry(requests=5, gauge=2, latencies=[0.2])
        merged = MetricsRegistry.merge(
            [a.snapshot(include_samples=True), b.snapshot(include_samples=True)]
        )
        assert merged["counters"]["engine.requests"] == 8

    def test_gauges_last_write_wins(self):
        a = self._registry(requests=0, gauge=1.0, latencies=[])
        b = self._registry(requests=0, gauge=7.0, latencies=[])
        merged = MetricsRegistry.merge([a.snapshot(), b.snapshot()])
        assert merged["gauges"]["tuner.configs"] == 7.0

    def test_histograms_pool_samples(self):
        a = self._registry(requests=0, gauge=0, latencies=[0.1, 0.2, 0.3])
        b = self._registry(requests=0, gauge=0, latencies=[0.4, 0.5])
        merged = MetricsRegistry.merge(
            [a.snapshot(include_samples=True), b.snapshot(include_samples=True)]
        )
        h = merged["histograms"]["engine.execute_seconds"]
        assert h["count"] == 5
        assert h["sum"] == pytest.approx(1.5)
        assert h["max"] == pytest.approx(0.5)
        # p50 over the pooled window, not an average of per-shard p50s
        assert h["p50"] == pytest.approx(0.3)
        assert h["unit"] == "s"
        assert h["samples"] == pytest.approx([0.1, 0.2, 0.3, 0.4, 0.5])

    def test_merge_is_foldable(self):
        # merge(merge(a, b), c) == merge(a, b, c): a gateway can fold shard
        # snapshots incrementally.
        snaps = [
            self._registry(requests=i, gauge=i,
                           latencies=[0.1 * i]).snapshot(include_samples=True)
            for i in (1, 2, 3)
        ]
        once = MetricsRegistry.merge(snaps)
        folded = MetricsRegistry.merge([MetricsRegistry.merge(snaps[:2]),
                                        snaps[2]])
        assert once == folded

    def test_merge_without_samples_keeps_counts_exact(self):
        a = self._registry(requests=2, gauge=0, latencies=[0.1, 0.2])
        merged = MetricsRegistry.merge([a.snapshot(), a.snapshot()])
        h = merged["histograms"]["engine.execute_seconds"]
        assert h["count"] == 4
        assert h["sum"] == pytest.approx(0.6)
        assert h["samples"] == []
