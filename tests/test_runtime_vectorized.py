"""Vectorized host executor tests: correctness and ISP structure."""

import numpy as np
import pytest

from repro.compiler import trace_kernel
from repro.dsl import Boundary
from repro.filters import PIPELINES, REFERENCES
from repro.runtime import run_kernel_vectorized, run_pipeline_vectorized
from repro.runtime.vectorized import _map_axis, _pixel_regions
from tests.conftest import make_conv_kernel

PATTERNS = [Boundary.CLAMP, Boundary.MIRROR, Boundary.REPEAT, Boundary.CONSTANT]
APPS = ["gaussian", "laplace", "bilateral", "sobel", "night"]


@pytest.fixture(scope="module")
def src96():
    return np.random.default_rng(12).random((96, 96)).astype(np.float32)


class TestAgainstReferences:
    @pytest.mark.parametrize("app", APPS)
    @pytest.mark.parametrize("boundary", PATTERNS)
    def test_isp_variant(self, app, boundary, src96):
        pipe = PIPELINES[app](96, 96, boundary, 0.3)
        res = run_pipeline_vectorized(pipe, {"inp": src96}, variant="isp")
        ref = REFERENCES[app](src96, boundary, 0.3)
        tol = 2e-4 if app in ("bilateral", "laplace") else 2e-6
        assert np.abs(res["out"] - ref).max() < tol

    @pytest.mark.parametrize("app", APPS)
    def test_naive_equals_isp(self, app, src96):
        """The two host variants compute the same function."""
        pipe = PIPELINES[app](96, 96, Boundary.MIRROR)
        a = run_pipeline_vectorized(pipe, {"inp": src96}, variant="naive")
        b = run_pipeline_vectorized(pipe, {"inp": src96}, variant="isp")
        assert np.array_equal(a["out"], b["out"])


class TestRegionDecomposition:
    def test_nine_regions_tile_exactly(self):
        rects = _pixel_regions(100, 80, 6, 6)
        covered = np.zeros((80, 100), dtype=int)
        for r in rects:
            covered[r.y0:r.y1, r.x0:r.x1] += 1
        assert np.all(covered == 1)

    def test_body_region_is_largest_and_checkfree(self):
        rects = _pixel_regions(100, 80, 6, 6)
        body = [r for r in rects if not r.checks]
        assert len(body) == 1
        areas = {(r.x1 - r.x0) * (r.y1 - r.y0) for r in rects}
        assert (body[0].x1 - body[0].x0) * (body[0].y1 - body[0].y0) == max(areas)

    def test_1d_extent_gives_three_regions(self):
        rects = _pixel_regions(100, 80, 6, 0)
        assert len(rects) == 3
        assert all("top" not in r.checks and "bottom" not in r.checks
                   for r in rects)

    def test_degenerate_raises(self):
        with pytest.raises(ValueError):
            _pixel_regions(10, 10, 6, 6)

    def test_degenerate_kernel_falls_back(self):
        src = np.random.default_rng(3).random((10, 10)).astype(np.float32)
        desc = trace_kernel(make_conv_kernel(
            10, 10, Boundary.CLAMP, np.ones((13, 13), np.float32)))
        out = run_kernel_vectorized(desc, {"inp": src}, variant="isp")
        ref = run_kernel_vectorized(desc, {"inp": src}, variant="naive")
        assert np.array_equal(out, ref)

    def test_unknown_variant_rejected(self, src96):
        desc = trace_kernel(make_conv_kernel(
            96, 96, Boundary.CLAMP, np.ones((3, 3), np.float32)))
        with pytest.raises(ValueError, match="unknown vectorized variant"):
            run_kernel_vectorized(desc, {"inp": src96}, variant="turbo")


class TestAxisMapping:
    """_map_axis must agree with the scalar reference model."""

    @pytest.mark.parametrize("boundary", PATTERNS)
    def test_both_sides(self, boundary):
        from repro.dsl import reference_index

        size = 16
        coords = np.arange(-size, 2 * size)  # within mirror's contract
        mapped, valid = _map_axis(coords, size, boundary, True, True)
        for i, c in enumerate(coords):
            ref = reference_index(int(c), size, boundary)
            if ref is None:
                assert valid is not None and not valid[i]
            else:
                assert mapped[i] == ref

    def test_no_checks_identity(self):
        coords = np.arange(-5, 25)
        mapped, valid = _map_axis(coords, 16, Boundary.CLAMP, False, False)
        assert mapped is coords and valid is None

    def test_one_sided_clamp(self):
        coords = np.arange(-5, 25)
        lo, _ = _map_axis(coords, 16, Boundary.CLAMP, True, False)
        assert lo.min() == 0 and lo.max() == 24
        hi, _ = _map_axis(coords, 16, Boundary.CLAMP, False, True)
        assert hi.min() == -5 and hi.max() == 15
