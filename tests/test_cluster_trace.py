"""Cross-process trace propagation: gateway -> router -> shard -> back.

One traced request must yield ONE stitched span tree on the gateway's
tracer: the gateway's root span, its ``shard_call`` child, and under that
the shard engine's own subtree (queue/plan/execute spans), shipped over
the wire unix-anchored, rebased into the gateway tracer's epoch, and
grafted with slot-prefixed span ids. No orphan spans, no second root, and
the whole thing exports as a valid Chrome trace.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cluster import (
    ClusterRequest,
    Gateway,
    LocalCluster,
    SyncGateway,
)
from repro.trace import chrome_trace, validate_chrome_trace


@pytest.fixture(scope="module")
def cluster(tmp_path_factory):
    warm = tmp_path_factory.mktemp("warmstart")
    with LocalCluster(shards=2, warmstart_dir=warm,
                      snapshot_interval_s=0) as c:
        yield c


@pytest.fixture
def gateway(cluster):
    gw = SyncGateway(Gateway(cluster.router, sample_rate=1.0,
                             trace_seed=123,
                             metrics_source=cluster.metrics_snapshots))
    yield gw
    gw.close()


IMG = np.random.default_rng(3).random((64, 64)).astype(np.float32)


def _submit_traced(gateway, **kwargs):
    kwargs.setdefault("image", IMG)
    resp = gateway.submit(ClusterRequest("gaussian", **kwargs))
    assert resp.ok, resp.error
    assert resp.trace_id, "sample_rate=1.0 must trace every request"
    return resp


class TestStitchedTree:
    def test_single_tree_no_orphans(self, gateway):
        resp = _submit_traced(gateway)
        spans = [s for s in gateway.gateway.tracer.spans()
                 if s.trace_id == resp.trace_id]
        assert spans, "traced request produced no spans"

        ids = {s.span_id for s in spans}
        orphans = [s for s in spans
                   if s.parent_id is not None and s.parent_id not in ids]
        roots = [s for s in spans if s.parent_id is None]
        assert not orphans, [s.name for s in orphans]
        assert len(roots) == 1
        assert roots[0].name == "gateway.request"

    def test_shard_subtree_hangs_under_shard_call(self, gateway):
        resp = _submit_traced(gateway, pattern="mirror")
        spans = [s for s in gateway.gateway.tracer.spans()
                 if s.trace_id == resp.trace_id]
        by_id = {s.span_id: s for s in spans}

        calls = [s for s in spans if s.name == "shard_call"]
        assert len(calls) == 1  # no failover: exactly one attempt
        call = calls[0]
        assert call.attributes["slot"] == resp.slot

        # The shard's spans arrive slot-prefixed and parented (directly or
        # transitively) under the shard_call span.
        remote = [s for s in spans if s.span_id.startswith(f"{resp.slot}.")]
        assert remote, "no shard spans were grafted"
        assert {"request"} <= {s.name for s in remote}
        for s in remote:
            cur = s
            while cur.parent_id is not None:
                cur = by_id[cur.parent_id]
            assert cur.span_id == call.parent_id or cur.name == \
                "gateway.request"
        # The shard-side root is a direct child of shard_call.
        remote_roots = [s for s in remote
                        if not by_id[s.parent_id].span_id.startswith(
                            f"{resp.slot}.")]
        assert all(s.parent_id == call.span_id for s in remote_roots)

    def test_remote_times_nest_inside_call_span(self, gateway):
        resp = _submit_traced(gateway, pattern="repeat")
        spans = [s for s in gateway.gateway.tracer.spans()
                 if s.trace_id == resp.trace_id]
        call = next(s for s in spans if s.name == "shard_call")
        remote = [s for s in spans if s.span_id.startswith(f"{resp.slot}.")]
        # Clock rebasing: the shard's work happened while the gateway's
        # shard_call span was open (generous slack for clock fuzz).
        for s in remote:
            assert s.start_s >= call.start_s - 0.050
            assert s.end_s <= call.end_s + 0.050

    def test_untraced_requests_ship_no_spans(self, cluster):
        gw = SyncGateway(Gateway(cluster.router, sample_rate=0.0,
                                 metrics_source=cluster.metrics_snapshots))
        try:
            resp = gw.submit(ClusterRequest("gaussian", image=IMG))
            assert resp.ok
            assert resp.trace_id is None
            tracer = gw.gateway.tracer
            assert tracer is None or tracer.spans() == []
        finally:
            gw.close()

    def test_chrome_export_of_stitched_trace_is_valid(self, gateway):
        for pattern in ("clamp", "mirror", "constant"):
            _submit_traced(gateway, pattern=pattern)
        doc = chrome_trace(gateway.gateway.tracer)
        problems = validate_chrome_trace(doc)
        assert not problems, problems
        json.dumps(doc)  # serializable end to end
        names = {e.get("name") for e in doc["traceEvents"]}
        assert "gateway.request" in names
        assert "shard_call" in names
        assert "request" in names  # the shard engine's own root span
