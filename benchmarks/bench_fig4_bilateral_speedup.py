"""Figure 4 — Bilateral ISP-over-naive speedups per pattern and image size.

Paper Section IV-B: on the GTX680, the speedup of the ISP implementation
over the naive implementation for all four border-handling patterns across
image sizes. The expected shape: Repeat benefits most; for the cheaper
patterns the speedup can dip below 1.0 (the occupancy cost exceeds the
instruction savings for this expensive kernel on register-tight Kepler).
"""

from __future__ import annotations

from repro.dsl import Boundary
from repro.reporting import format_table

from harness import Config, speedup_over_naive

SIZES = [512, 1024, 2048, 4096]
PATTERNS = [Boundary.CLAMP, Boundary.CONSTANT, Boundary.MIRROR, Boundary.REPEAT]
DEVICE = "GTX680"


def build():
    data: dict[Boundary, dict[int, float]] = {}
    for pattern in PATTERNS:
        data[pattern] = {}
        for size in SIZES:
            cfg = Config("bilateral", pattern, size, DEVICE)
            data[pattern][size] = speedup_over_naive(cfg, "isp")
    rows = [
        [p.value] + [data[p][s] for s in SIZES]
        for p in PATTERNS
    ]
    table = format_table(
        ["pattern"] + [str(s) for s in SIZES],
        rows,
        title="Figure 4 (reproduced): Bilateral ISP speedup over naive, GTX680",
    )
    return data, table


def test_fig4(benchmark, report):
    data, table = benchmark.pedantic(build, rounds=1, iterations=1)
    report("fig4_bilateral_speedup", table)

    # Repeat dominates the other patterns at every size (paper Fig. 4/6).
    for size in SIZES:
        others = [data[p][size] for p in PATTERNS if p is not Boundary.REPEAT]
        assert data[Boundary.REPEAT][size] > max(others)
        assert data[Boundary.REPEAT][size] > 1.0
    # At least one cheap-pattern cell shows ISP losing to naive on Kepler —
    # the case the paper's model exists to catch (Fig. 4: 512 Clamp/Mirror).
    cheap = [data[p][s] for s in SIZES
             for p in (Boundary.CLAMP, Boundary.MIRROR, Boundary.CONSTANT)]
    assert min(cheap) < 1.0
