"""Serving demo: plan-cache amortization of model-based variant selection.

Submits a small mixed workload to :class:`repro.serve.ServeEngine` twice —
first fully cold (plan cache disabled, no micro-batching, and the process
model/profile caches cleared before every plan build, i.e. every request
pays the paper's isp+m planning cost), then with the plan cache on — and
prints the throughput difference plus the engine's metrics.

Run:  PYTHONPATH=src python examples/serve_throughput.py [requests] [size]
"""

import sys
import time

import numpy as np

from repro.serve import Request, ServeEngine
from repro.serve.bench import _clear_process_caches


class ColdEngine(ServeEngine):
    """ServeEngine that re-plans from scratch on every resolution."""

    def _resolve_plan(self, request):
        _clear_process_caches()
        return super()._resolve_plan(request)


def drive(engine: ServeEngine, requests) -> float:
    t0 = time.perf_counter()
    responses = engine.run(requests)
    elapsed = time.perf_counter() - t0
    assert all(r.ok for r in responses), [r.error for r in responses if not r.ok]
    return len(requests) / elapsed


def workload(n: int, size: int) -> list:
    rng = np.random.default_rng(7)
    image = rng.random((size, size), dtype=np.float32)
    kinds = [("gaussian", "clamp"), ("sobel", "mirror"), ("laplace", "repeat"),
             ("night", "clamp")]
    return [
        Request(app=kinds[i % len(kinds)][0], image=image,
                pattern=kinds[i % len(kinds)][1], variant="isp+m")
        for i in range(n)
    ]


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 24
    size = int(sys.argv[2]) if len(sys.argv) > 2 else 96
    requests = workload(n, size)

    with ColdEngine(workers=2, plan_cache_size=0, batch_size=1,
                    queue_depth=max(64, n)) as cold:
        cold_rps = drive(cold, requests)

    _clear_process_caches()
    with ServeEngine(workers=2, plan_cache_size=64,
                     queue_depth=max(64, n)) as warm:
        warm_rps = drive(warm, requests)
        stats = warm.stats()

    print(f"{n} requests, {size}x{size} images, 2 workers")
    print(f"  cold (re-plan every request): {cold_rps:6.1f} req/s")
    print(f"  warm (plan cache on)        : {warm_rps:6.1f} req/s "
          f"({warm_rps / cold_rps:.1f}x)")
    hits = stats["engine"]["engine.plan_cache_hits"]
    misses = stats["engine"]["engine.plan_cache_misses"]
    print(f"  plans: {hits} served from cache / {misses} built "
          f"(hit rate {hits / (hits + misses):.0%})")
    lat = stats["latency"]["engine.execute_seconds"]
    print(f"  exec latency: p50 {lat['p50'] * 1e3:.2f} ms, "
          f"p90 {lat['p90'] * 1e3:.2f} ms")


if __name__ == "__main__":
    main()
