"""Kernel base class and the ``iterate``/``convolve`` primitives.

Users subclass :class:`Kernel` and implement :meth:`Kernel.kernel`, returning
the expression for the output pixel — the Python analogue of paper Listing 4's

.. code-block:: c++

    void kernel() {
        float d = 0.f, p = 0.f;
        iterate(dom, [&] () { ... });
        output() = d / p;
    }

Because window offsets are static, ``iterate`` simply unrolls the domain at
trace time, exactly like Hipacc's compiler unrolls ``iterate`` over ``dom``.
"""

from __future__ import annotations

from typing import Callable, Optional

from .accessor import Accessor
from .expr import Expr, ExprLike, wrap
from .iterationspace import IterationSpace
from .mask import Domain, Mask


class Kernel:
    """Base class for user-defined local and point operators."""

    def __init__(self, iter_space: IterationSpace):
        self.iter_space = iter_space
        self.accessors: list[Accessor] = []

    def add_accessor(self, acc: Accessor) -> Accessor:
        """Register an input accessor (Hipacc's constructor ``add_accessor``)."""
        if acc not in self.accessors:
            self.accessors.append(acc)
        return acc

    # ------------------------------------------------------------------ hooks

    def kernel(self) -> ExprLike:
        """Return the output-pixel expression. Subclasses must implement."""
        raise NotImplementedError

    @property
    def name(self) -> str:
        return type(self).__name__.lower()

    # ------------------------------------------------------------- primitives

    @staticmethod
    def iterate(
        dom: Domain,
        body: Callable[[int, int], ExprLike],
        *,
        init: ExprLike = 0.0,
        combine: Callable[[Expr, Expr], Expr] = lambda a, b: a + b,
    ) -> Expr:
        """Fold ``body(dx, dy)`` over the domain's offsets.

        The default combine is summation (Hipacc's ``iterate`` with ``+=``).
        """
        acc = wrap(init)
        for dx, dy in dom:
            acc = combine(acc, wrap(body(dx, dy)))
        return acc

    @staticmethod
    def convolve(
        mask: Mask,
        acc: Accessor,
        *,
        domain: Optional[Domain] = None,
    ) -> Expr:
        """Weighted-sum convolution: sum(mask[dy,dx] * acc(dx,dy)).

        Zero coefficients are skipped (sparse/dilated masks), while the
        border-handling extent remains the full mask window.
        """
        dom = domain if domain is not None else mask.domain()
        return Kernel.iterate(dom, lambda dx, dy: mask.coeff(dx, dy) * acc(dx, dy))
