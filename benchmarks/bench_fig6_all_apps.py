"""Figure 6 — speedups of isp and isp+m over naive for the full grid.

Paper Section VI: five applications x four border patterns x four image
sizes x two GPUs; for each configuration, the speedup of the always-ISP
policy and of the model-guided isp+m policy over the naive baseline.

Expected shape (paper's discussion):
  * isp wins in most configurations, more at large image sizes;
  * Repeat gains the most of the four patterns;
  * where isp dips below 1.0 (bilateral on Kepler), isp+m recovers most of
    the loss by falling back to naive;
  * RTX2080 gains are at least as large as GTX680's for the expensive
    kernels (no occupancy penalty on Turing).
"""

from __future__ import annotations

from repro.dsl import Boundary
from repro.reporting import format_table, geometric_mean

from harness import APPS, PATTERNS, SIZES, Config, speedup_over_naive

DEVICES = ["GTX680", "RTX2080"]


def build():
    results: dict[tuple, dict[str, float]] = {}
    for device in DEVICES:
        for app in APPS:
            for pattern in PATTERNS:
                for size in SIZES:
                    cfg = Config(app, pattern, size, device)
                    results[(device, app, pattern, size)] = {
                        "isp": speedup_over_naive(cfg, "isp"),
                        "isp+m": speedup_over_naive(cfg, "isp+m"),
                    }

    tables = []
    for device in DEVICES:
        rows = []
        for app in APPS:
            for pattern in PATTERNS:
                row = [app, pattern.value]
                for size in SIZES:
                    r = results[(device, app, pattern, size)]
                    row.append(f"{r['isp']:.3f}/{r['isp+m']:.3f}")
                rows.append(row)
        tables.append(format_table(
            ["app", "pattern"] + [str(s) for s in SIZES],
            rows,
            title=f"Figure 6 (reproduced): isp/isp+m speedup over naive — {device}",
        ))
    return results, "\n\n".join(tables)


def test_fig6(benchmark, report):
    results, table = benchmark.pedantic(build, rounds=1, iterations=1)
    report("fig6_all_apps", table)

    # isp+m never loses badly: it may mispredict near the crossover, but must
    # stay within a few percent of max(naive, isp) everywhere.
    for key, r in results.items():
        assert r["isp+m"] >= min(1.0, r["isp"]) - 1e-9, key
        assert r["isp+m"] >= 0.93, key

    # Repeat gains most, per device/app/size (paper Section VI-A.1).
    for device in DEVICES:
        for app in APPS:
            for size in SIZES:
                rep = results[(device, app, Boundary.REPEAT, size)]["isp"]
                clamp = results[(device, app, Boundary.CLAMP, size)]["isp"]
                assert rep >= clamp - 1e-9, (device, app, size)

    # Overall: isp+m is a net win on both devices.
    for device in DEVICES:
        overall = geometric_mean(
            [r["isp+m"] for k, r in results.items() if k[0] == device]
        )
        assert overall > 1.0, device
