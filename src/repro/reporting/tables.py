"""Plain-text table rendering for the benchmark harness.

Renders the reproduced tables/figures in the same row/column layout as the
paper, so EXPERIMENTS.md can juxtapose paper values and measured values.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: Optional[str] = None,
    float_fmt: str = "{:.3f}",
) -> str:
    """ASCII table with right-aligned numeric columns."""
    str_rows: list[list[str]] = []
    for row in rows:
        out = []
        for cell in row:
            if isinstance(cell, float):
                out.append(float_fmt.format(cell))
            else:
                out.append(str(cell))
        str_rows.append(out)

    ncols = len(headers)
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != ncols:
            raise ValueError(f"row has {len(row)} cells, expected {ncols}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(c.rjust(widths[i]) for i, c in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_row(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(fmt_row(row))
    return "\n".join(lines)


def format_series(
    name: str, points: Iterable[tuple[object, float]], *, value_fmt: str = "{:.3f}"
) -> str:
    """One-line-per-point rendering for figure series."""
    lines = [name]
    for x, y in points:
        lines.append(f"  {x}: {value_fmt.format(y)}")
    return "\n".join(lines)
