"""Edge cases and invariants across the library surface."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import Variant, compile_kernel, trace_kernel
from repro.dsl import Boundary
from repro.gpu import GTX680, LaunchConfig, Profiler
from repro.ir import (
    CmpOp,
    DataType,
    IRBuilder,
    Opcode,
    Param,
    format_instruction,
    print_function,
)
from tests.conftest import make_conv_kernel


class TestLaunchConfig:
    def test_for_image_rounds_up(self):
        cfg = LaunchConfig.for_image(100, 50, (32, 4))
        assert cfg.grid == (4, 13)
        assert cfg.threads_per_block == 128
        assert cfg.warps_per_block == 4
        assert cfg.total_blocks == 52

    def test_partial_warp_counted(self):
        cfg = LaunchConfig(grid=(1, 1), block=(20, 1))
        assert cfg.warps_per_block == 1

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            LaunchConfig(grid=(0, 1), block=(32, 1))

    @given(w=st.integers(1, 5000), h=st.integers(1, 5000),
           bx=st.sampled_from([8, 16, 32, 64]), by=st.sampled_from([1, 2, 4, 8]))
    def test_grid_covers_image(self, w, h, bx, by):
        cfg = LaunchConfig.for_image(w, h, (bx, by))
        assert cfg.grid[0] * bx >= w
        assert cfg.grid[1] * by >= h
        assert (cfg.grid[0] - 1) * bx < w
        assert (cfg.grid[1] - 1) * by < h


class TestProfilerInvariants:
    def _run_profiled(self, boundary=Boundary.REPEAT):
        from repro.gpu import GlobalMemory, cost_table_for, launch

        desc = trace_kernel(make_conv_kernel(
            32, 32, boundary, np.ones((3, 3), np.float32)))
        ck = compile_kernel(desc, variant=Variant.ISP, block=(16, 4))
        mem = GlobalMemory(1 << 16)
        bases = {"inp": mem.alloc(32 * 32 * 4), "out": mem.alloc(32 * 32 * 4)}
        prof = Profiler(cost_table_for(GTX680))
        launch(ck.func, ck.launch_config, mem, ck.param_values(bases), prof)
        return prof

    def test_thread_instructions_bounded_by_lanes(self):
        prof = self._run_profiled()
        assert prof.thread_instructions <= 32 * prof.warp_instructions
        assert prof.thread_instructions > 0

    def test_keyword_totals_match(self):
        prof = self._run_profiled()
        assert sum(prof.by_keyword.values()) == prof.warp_instructions

    def test_region_totals_match(self):
        prof = self._run_profiled()
        assert sum(prof.region_totals().values()) == prof.warp_instructions

    def test_mem_fraction_in_unit_interval(self):
        prof = self._run_profiled()
        assert 0.0 < prof.mem_issue_fraction < 1.0

    def test_block_profiles_sum_to_totals(self):
        prof = self._run_profiled()
        assert sum(b.warp_instructions for b in prof.block_profiles) == (
            prof.warp_instructions
        )
        assert sum(b.issue_cycles for b in prof.block_profiles) == pytest.approx(
            prof.issue_cycles
        )

    def test_end_block_without_begin(self):
        with pytest.raises(RuntimeError):
            Profiler().end_block()


class TestPrinterTotality:
    """Every constructible instruction must print without error."""

    def test_all_compiled_variants_print(self):
        desc = trace_kernel(make_conv_kernel(
            64, 64, Boundary.REPEAT, np.ones((3, 3), np.float32)))
        for variant in (Variant.NAIVE, Variant.ISP, Variant.SHARED,
                        Variant.SHARED_ISP):
            ck = compile_kernel(desc, variant=variant, block=(16, 4))
            text = print_function(ck.func, annotate=True)
            assert ck.func.name in text
            for instr in ck.func.instructions():
                assert format_instruction(instr)

    def test_texture_prints(self):
        desc = trace_kernel(make_conv_kernel(
            64, 64, Boundary.CLAMP, np.ones((3, 3), np.float32)))
        ck = compile_kernel(desc, variant=Variant.TEXTURE)
        text = print_function(ck.func)
        assert "tex.2d.v1.f32" in text

    def test_shared_prints(self):
        desc = trace_kernel(make_conv_kernel(
            64, 64, Boundary.CLAMP, np.ones((3, 3), np.float32)))
        ck = compile_kernel(desc, variant=Variant.SHARED, block=(16, 4))
        text = print_function(ck.func)
        assert "st.shared" in text and "ld.shared" in text and "bar.sync" in text


class TestKernelFunctionApi:
    def test_param_lookup(self):
        b = IRBuilder("k", [Param("n", DataType.S32)])
        b.new_block("entry")
        b.exit()
        f = b.finish()
        assert f.param("n").dtype is DataType.S32
        with pytest.raises(KeyError):
            f.param("missing")

    def test_entry_of_empty_function(self):
        b = IRBuilder("k", [])
        with pytest.raises(ValueError):
            _ = b.function.entry

    def test_static_size(self):
        b = IRBuilder("k", [Param("n", DataType.S32)])
        b.new_block("entry")
        n = b.ld_param("n")
        b.add(n, 1)
        b.exit()
        assert b.finish().static_size() == 3


class TestCompiledKernelApi:
    def test_param_values_complete(self):
        desc = trace_kernel(make_conv_kernel(
            64, 48, Boundary.MIRROR, np.ones((3, 3), np.float32)))
        ck = compile_kernel(desc, variant=Variant.NAIVE)
        values = ck.param_values({"inp": 1024, "out": 2048})
        assert values == {
            "inp_ptr": 1024, "inp_w": 64, "inp_h": 48,
            "out_ptr": 2048, "out_w": 64, "out_h": 48,
        }
        declared = {p.name for p in ck.func.params}
        assert set(values) == declared

    def test_name_property(self):
        desc = trace_kernel(make_conv_kernel(
            64, 64, Boundary.CLAMP, np.ones((3, 3), np.float32), name="myconv"))
        ck = compile_kernel(desc, variant=Variant.ISP)
        assert ck.name == "myconv_isp"


class TestRegisterEstimatorEdge:
    @settings(max_examples=25, deadline=None)
    @given(
        boundary=st.sampled_from([Boundary.CLAMP, Boundary.MIRROR,
                                  Boundary.REPEAT, Boundary.CONSTANT]),
        mask_size=st.sampled_from([1, 3, 5]),
    )
    def test_estimates_are_positive_and_capped(self, boundary, mask_size):
        desc = trace_kernel(make_conv_kernel(
            128, 128, boundary, np.ones((mask_size, mask_size), np.float32)))
        for variant in (Variant.NAIVE, Variant.ISP):
            ck = compile_kernel(desc, variant=variant, device=GTX680)
            est = ck.registers
            assert 0 < est.max_live <= est.estimated
            assert est.allocated <= GTX680.max_registers_per_thread
            assert est.spill_factor >= 1.0


class TestVariantEnumConsistency:
    def test_values_unique(self):
        values = [v.value for v in Variant]
        assert len(values) == len(set(values))

    def test_every_codegen_variant_compiles_gaussian(self):
        from repro.compiler import CompileError

        desc = trace_kernel(make_conv_kernel(
            64, 64, Boundary.CLAMP, np.ones((3, 3), np.float32)))
        for variant in Variant:
            if variant is Variant.ISP_MODEL:
                with pytest.raises(CompileError):
                    compile_kernel(desc, variant=variant, block=(16, 4))
                continue
            ck = compile_kernel(desc, variant=variant, block=(16, 4))
            assert ck.func.static_size() > 0


class TestSetpCmpSemantics:
    @given(a=st.integers(-100, 100), b=st.integers(-100, 100),
           cmp=st.sampled_from(list(CmpOp)))
    def test_all_comparators(self, a, b, cmp):
        from repro.gpu.simt import _CMP

        expected = {
            CmpOp.EQ: a == b, CmpOp.NE: a != b, CmpOp.LT: a < b,
            CmpOp.LE: a <= b, CmpOp.GT: a > b, CmpOp.GE: a >= b,
        }[cmp]
        av = np.array([a], dtype=np.int32)
        bv = np.array([b], dtype=np.int32)
        assert bool(_CMP[cmp](av, bv)[0]) == expected
