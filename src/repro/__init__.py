"""repro — reproduction of "An Efficient Approach for Image Border Handling
on GPUs via Iteration Space Partitioning" (Qiao, Teich, Hannig; IPPS 2021).

Public API tour
---------------

* :mod:`repro.dsl` — the Hipacc-like embedded DSL (images, masks, boundary
  conditions, kernels).
* :mod:`repro.compiler` — the source-to-source compiler producing naive /
  ISP / warp-ISP kernel variants in a PTX-like virtual ISA.
* :mod:`repro.gpu` — the SIMT GPU simulator (GTX680 / RTX2080 device models,
  occupancy, profiling, timing).
* :mod:`repro.model` — the paper's analytic performance model (Eqs. 1-10).
* :mod:`repro.filters` — the five evaluated applications.
* :mod:`repro.runtime` — functional simulation, representative-block
  profiling, and the vectorized host executor.
* :mod:`repro.serve` — the batched execution service: plan cache, worker
  pool, timeouts/backpressure, and metrics (docs/serving.md).
* :mod:`repro.reporting` — stats/tables used by the benchmark harness.

Quickstart
----------

>>> import numpy as np
>>> from repro import Boundary, Variant, filters, run_pipeline_simt
>>> pipe = filters.gaussian.build_pipeline(64, 64, Boundary.CLAMP)
>>> pipe.inputs[0].bind(np.random.default_rng(0).random((64, 64)))  # doctest: +ELLIPSIS
Image(...)
>>> result = run_pipeline_simt(pipe, variant=Variant.ISP)
>>> result.output.shape
(64, 64)
"""

from . import compiler, dsl, filters, gpu, model, reporting, runtime, serve
from .compiler import CompiledKernel, Region, RegionGeometry, Variant, compile_kernel
from .dsl import (
    Accessor,
    Boundary,
    BoundaryCondition,
    Domain,
    Image,
    IterationSpace,
    Kernel,
    Mask,
    Pipeline,
)
from .gpu import DEVICES, GTX680, RTX2080, DeviceSpec
from .model import predict_kernel
from .runtime import (
    measure_pipeline,
    run_pipeline_simt,
    run_pipeline_vectorized,
    select_variants,
)

__version__ = "1.0.0"

__all__ = [
    "Accessor",
    "Boundary",
    "BoundaryCondition",
    "CompiledKernel",
    "DEVICES",
    "DeviceSpec",
    "Domain",
    "GTX680",
    "Image",
    "IterationSpace",
    "Kernel",
    "Mask",
    "Pipeline",
    "RTX2080",
    "Region",
    "RegionGeometry",
    "Variant",
    "compile_kernel",
    "compiler",
    "dsl",
    "filters",
    "gpu",
    "measure_pipeline",
    "model",
    "predict_kernel",
    "reporting",
    "run_pipeline_simt",
    "run_pipeline_vectorized",
    "runtime",
    "select_variants",
    "serve",
]
