"""Gateway integration: a real 3-shard LocalCluster plus pure-policy units.

The cluster fixture is module-scoped (spawning three interpreter processes
is the dominant cost); every test drives the same cluster through its own
SyncGateway, so gateway state never leaks between tests while the shard
pool stays warm.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import (
    CLUSTER_ERROR_KINDS,
    ClusterRequest,
    Gateway,
    LocalCluster,
    Router,
    RoutingTable,
    SyncGateway,
    array_digest,
    build_cluster_workload,
    run_load,
)
from repro.serve.plan import build_plan
from repro.trace import parse_prometheus_text


@pytest.fixture(scope="module")
def cluster(tmp_path_factory):
    warm = tmp_path_factory.mktemp("warmstart")
    with LocalCluster(shards=3, warmstart_dir=warm,
                      snapshot_interval_s=0) as c:
        yield c


@pytest.fixture
def gateway(cluster):
    gw = SyncGateway(Gateway(cluster.router,
                             metrics_source=cluster.metrics_snapshots))
    yield gw
    gw.close()


RNG = np.random.default_rng(7)
IMG = RNG.random((64, 64), dtype=np.float32)


class TestBasicServing:
    def test_inline_image_roundtrip_bit_exact(self, gateway):
        resp = gateway.submit(ClusterRequest("gaussian", image=IMG))
        assert resp.ok, resp.error
        assert resp.slot is not None
        ref = build_plan("gaussian", "clamp", 64, 64,
                         variant="isp+m").execute(IMG)
        assert np.array_equal(resp.output, ref)

    def test_digest_return_mode(self, gateway):
        resp = gateway.submit(ClusterRequest(
            "sobel", image=IMG, pattern="mirror", return_mode="digest"))
        assert resp.ok and resp.output is None
        ref = build_plan("sobel", "mirror", 64, 64,
                         variant="isp+m").execute(IMG)
        assert resp.digest == array_digest(ref)

    def test_same_signature_routes_to_same_shard(self, gateway):
        slots = {
            gateway.submit(ClusterRequest("laplace", image=IMG,
                                          return_mode="digest")).slot
            for _ in range(6)
        }
        assert len(slots) == 1

    def test_put_image_then_reference(self, cluster, gateway):
        gateway.put_image(cluster.table.slots(), "shared-img", IMG)
        resp = gateway.submit(ClusterRequest(
            "gaussian", image_ref="shared-img", shape=IMG.shape,
            return_mode="digest"))
        assert resp.ok, resp.error

    def test_unknown_image_ref_is_typed_bad_request(self, gateway):
        resp = gateway.submit(ClusterRequest(
            "gaussian", image_ref="no-such-ref", shape=(64, 64)))
        assert not resp.ok
        assert resp.error_kind == "bad_request"
        assert "unknown image ref" in resp.error

    def test_engine_errors_stay_typed(self, gateway):
        # A degenerate geometry that the shard's engine rejects or degrades
        # must come back as an engine-typed kind, never a raw traceback.
        resp = gateway.submit(ClusterRequest(
            "gaussian", image=np.zeros((2, 2), dtype=np.float32)))
        assert resp.ok or resp.error_kind in CLUSTER_ERROR_KINDS


class TestLoadRun:
    def test_load_run_verified(self, gateway):
        workload, pool = build_cluster_workload(40, size=64, seed=11)
        report = run_load(gateway, workload, pool, concurrency=8)
        assert report["ok"] == 40
        assert not report["errors"]
        assert report["verified"]
        # content-hash routing: the 10 kinds spread over more than 1 shard
        assert len(report["by_slot"]) >= 2
        assert report["throughput_rps"] > 0

    def test_merged_metrics_text_parses_and_labels_shards(self, gateway):
        workload, pool = build_cluster_workload(10, size=64, seed=12)
        run_load(gateway, workload, pool, concurrency=4)
        text = gateway.metrics_text()
        samples = parse_prometheus_text(text)  # strict; raises on malformed
        shards = {k.split('shard="')[1].split('"')[0]
                  for k in samples if 'shard="' in k}
        assert {"shard-0", "shard-1", "shard-2", "gateway",
                "merged"} <= shards
        # The merged counter equals the sum of the shard counters.
        name = "repro_engine_requests_submitted_total"
        total = sum(samples[f'{name}{{shard="shard-{i}"}}'] for i in range(3))
        assert samples[f'{name}{{shard="merged"}}'] == total


class TestAdmissionPolicy:
    """Pure policy units — no shards needed (admission precedes routing)."""

    def _gw(self, **kwargs):
        table = RoutingTable()
        table.set_addr("shard-0", ("127.0.0.1", 1))  # never dialed here
        return Gateway(Router(table), **kwargs)

    def _req(self, **kwargs):
        kwargs.setdefault("image_ref", "x")
        kwargs.setdefault("shape", (8, 8))
        return ClusterRequest("gaussian", **kwargs)

    def test_admission_cap(self):
        gw = self._gw(max_inflight=2)
        assert gw._admit(self._req()) is None
        assert gw._admit(self._req()) is None
        assert gw._admit(self._req()) == "admission"

    def test_release_frees_capacity(self):
        gw = self._gw(max_inflight=1)
        r = self._req()
        assert gw._admit(r) is None
        assert gw._admit(self._req()) == "admission"
        gw._release(r)
        assert gw._admit(self._req()) is None

    def test_batch_priority_watermark(self):
        # batch admits only below the watermark; interactive up to the cap.
        gw = self._gw(max_inflight=4, batch_watermark=0.5)
        a, b = self._req(priority="batch"), self._req(priority="batch")
        assert gw._admit(a) is None
        assert gw._admit(b) is None
        assert gw._admit(self._req(priority="batch")) == "admission"
        assert gw._admit(self._req(priority="interactive")) is None

    def test_tenant_quota(self):
        gw = self._gw(max_inflight=10, tenant_quota=2)
        assert gw._admit(self._req(tenant="t1")) is None
        assert gw._admit(self._req(tenant="t1")) is None
        assert gw._admit(self._req(tenant="t1")) == "quota"
        assert gw._admit(self._req(tenant="t2")) is None  # others unaffected

    def test_rejections_are_typed_through_submit(self):
        import asyncio

        gw = self._gw(max_inflight=1, tenant_quota=1)
        held = self._req()
        assert gw._admit(held) is None
        resp = asyncio.run(gw.submit(self._req()))
        assert not resp.ok and resp.error_kind == "admission"
        gw._release(held)
        counters = gw.metrics.snapshot()["counters"]
        assert counters["gateway.rejected_admission"] == 1

    def test_request_validation(self):
        with pytest.raises(ValueError, match="exactly one"):
            ClusterRequest("gaussian")
        with pytest.raises(ValueError, match="shape"):
            ClusterRequest("gaussian", image_ref="x")
        with pytest.raises(ValueError, match="priority"):
            self._req(priority="background")

    def test_no_live_shards_is_typed(self):
        import asyncio

        table = RoutingTable()
        table.set_addr("shard-0", ("127.0.0.1", 1))
        table.mark_dead("shard-0")
        gw = Gateway(Router(table))
        resp = asyncio.run(gw.submit(self._req()))
        assert not resp.ok and resp.error_kind == "shard_unavailable"
