"""Table II — register usage and theoretical occupancy, naive vs ISP.

Paper Section IV-B.1: for the bilateral filter on the GTX680 (block 32x4),
ISP increases register usage under all four border patterns, and for most
patterns that drops the theoretical occupancy by one step (62.5% -> 50%).
"""

from __future__ import annotations

from repro.compiler import Variant, compile_kernel, trace_kernel
from repro.dsl import Boundary
from repro.filters import bilateral
from repro.gpu import GTX680, compute_occupancy
from repro.reporting import format_table

BLOCK = (32, 4)
PATTERNS = [Boundary.CLAMP, Boundary.CONSTANT, Boundary.MIRROR, Boundary.REPEAT]


def build_rows():
    rows = []
    for boundary in PATTERNS:
        pipe = bilateral.build_pipeline(512, 512, boundary)
        desc = trace_kernel(pipe.kernels[0])
        cells = [boundary.value]
        for variant in (Variant.NAIVE, Variant.ISP):
            ck = compile_kernel(desc, variant=variant, block=BLOCK, device=GTX680)
            occ = compute_occupancy(GTX680, 128, ck.registers.allocated)
            cells += [ck.registers.allocated, f"{occ.percent:.1f}%"]
        rows.append(cells)
    return rows


def test_table2(benchmark, report):
    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    table = format_table(
        ["pattern", "naive regs", "naive occ", "isp regs", "isp occ"],
        rows,
        title="Table II (reproduced): Bilateral 13x13 on GTX680, block 32x4",
    )
    report("table2_occupancy", table)

    # Paper shape: ISP always uses more registers; occupancy drops for the
    # patterns (paper: three of four; here all four land on the same step).
    for cells in rows:
        naive_regs, naive_occ, isp_regs, isp_occ = cells[1:]
        assert isp_regs > naive_regs
        assert float(isp_occ.rstrip("%")) <= float(naive_occ.rstrip("%"))
    # The headline numbers: 62.5% naive, 50% ISP.
    assert rows[0][2] == "62.5%"
    assert rows[0][4] == "50.0%"
