"""Fusion pass: lower a multi-kernel pipeline onto overlapped tiles.

Staged execution (``run_pipeline_vectorized``) materializes every
intermediate image in full before the next stage reads it — exactly the
memory-traffic regime the paper's ISP partitioning avoids *within* a kernel.
This pass extends the idea *across* kernels, following the overlapped-tiling
formulation of Jangda & Guha (arXiv:1909.07190): the final output is tiled,
and for each tile every producer stage computes just the region its
consumers read — the tile plus a halo that accumulates back-to-front
through the pipeline. Interior tiles run check-free; tiles whose reads
cross a true image border reuse the ISP region machinery (per-axis strips
with check sets, paper Eq. 1) at tile granularity.

The schedule is pure geometry: it depends on the traced kernels and the
tile shape, never on pixel values or batch size, so it is computed once at
plan-build time and replayed by the executor
(:mod:`repro.runtime.fused`) on every request.

Halo propagation must be *mapping-aware*: REPEAT and deep MIRROR
excursions send an out-of-range read to the far side of the image, so a
producer's required region is the interval hull of the border-mapped read
coordinates (via :func:`repro.dsl.boundary.reference_index`, the repo's
scalar golden mapping), not a naive clipped expansion.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..dsl.boundary import Boundary, reference_index
from .frontend import KernelDescription

#: Default row-band height for fused tiles. Chosen so a handful of live
#: stage buffers (band + halo, full width) stay cache-resident at the
#: paper's image sizes while the redundant halo recompute stays ~10-20%
#: for the Night pipeline's cumulative extents.
DEFAULT_TILE_ROWS = 128


@dataclasses.dataclass(frozen=True)
class FusedStep:
    """One stage evaluation inside one tile."""

    #: index into ``FusedPlan.descs``
    stage: int
    #: produced buffer region (x0, x1, y0, y1) in image coordinates
    region: tuple[int, int, int, int]
    #: ISP split of the region: (x0, x1, y0, y1, checks) sub-rectangles;
    #: empty checks = check-free interior evaluation
    subrects: tuple[tuple[int, int, int, int, frozenset[str]], ...]


@dataclasses.dataclass(frozen=True)
class TileSchedule:
    """All stage evaluations needed to produce one output tile."""

    #: output tile (x0, x1, y0, y1)
    rect: tuple[int, int, int, int]
    #: steps in execution (front-to-back) order
    steps: tuple[FusedStep, ...]


@dataclasses.dataclass(frozen=True)
class FusedPlan:
    """A pipeline lowered onto overlapped tiles — geometry only."""

    name: str
    descs: tuple[KernelDescription, ...]
    width: int
    height: int
    tile_rows: int
    tile_cols: int
    #: cumulative halo per image name (stage outputs and external inputs):
    #: how far beyond an output tile that image is read, per axis
    halos: dict[str, tuple[int, int]]
    #: stage output names that feed the final output (dead stages excluded)
    live: frozenset[str]
    #: external input image names
    external_inputs: tuple[str, ...]
    tiles: tuple[TileSchedule, ...]

    @property
    def output_name(self) -> str:
        return self.descs[-1].output_name

    def amplification(self) -> dict[str, float]:
        """Computed-area / image-area per stage (the fusion overhead).

        1.0 means the stage computes exactly its staged footprint; >1.0 is
        redundant halo recompute; 0.0 is a dead stage fusion skips (staged
        execution still pays for it).
        """
        # Sum integer pixel counts first, divide once: a stage whose tile
        # regions exactly cover the image reports 1.0 with no float drift.
        pixels = {d.output_name: 0 for d in self.descs}
        for tile in self.tiles:
            for step in tile.steps:
                x0, x1, y0, y1 = step.region
                pixels[self.descs[step.stage].output_name] += (
                    (x1 - x0) * (y1 - y0)
                )
        area = self.width * self.height
        return {name: n / area for name, n in pixels.items()}

    def describe(self) -> str:
        """Deterministic textual form of the fused plan (golden-able)."""
        lines = [
            f"fused-plan {self.name} geom={self.width}x{self.height} "
            f"tile={self.tile_cols}x{self.tile_rows} "
            f"tiles={len(self.tiles)}",
        ]
        for d in self.descs:
            tag = "live" if d.output_name in self.live else "dead"
            reads = ", ".join(
                f"{a.image.name}[{_acc_extent(d, a)}]:{a.boundary.value}"
                for a in d.accessors
            )
            lines.append(
                f"stage {d.name} -> {d.output_name} "
                f"extent=({d.extent[0]},{d.extent[1]}) {tag} reads {reads}"
            )
        for name in sorted(self.halos):
            hx, hy = self.halos[name]
            lines.append(f"halo {name}=({hx},{hy})")
        for name, a in sorted(self.amplification().items()):
            lines.append(f"amplification {name}={a:.4f}")
        for tile in self.tiles:
            x0, x1, y0, y1 = tile.rect
            lines.append(f"tile x[{x0}:{x1}) y[{y0}:{y1})")
            for step in tile.steps:
                d = self.descs[step.stage]
                rx0, rx1, ry0, ry1 = step.region
                lines.append(
                    f"  stage {d.output_name} region "
                    f"x[{rx0}:{rx1}) y[{ry0}:{ry1})"
                )
                for sx0, sx1, sy0, sy1, checks in step.subrects:
                    tag = "+".join(sorted(checks)) if checks else "free"
                    lines.append(
                        f"    sub x[{sx0}:{sx1}) y[{sy0}:{sy1}) "
                        f"checks={tag}"
                    )
        return "\n".join(lines) + "\n"


def _acc_extent(desc: KernelDescription, acc) -> str:
    nodes = desc.accesses.get(id(acc), [])
    if not nodes:
        return "0,0"
    hx = max(abs(n.dx) for n in nodes)
    hy = max(abs(n.dy) for n in nodes)
    return f"{hx},{hy}"


def _axis_strips(
    lo_cut: int, hi_cut: int, size: int, lo_check: str, hi_check: str
) -> list[tuple[int, int, frozenset[str]]]:
    """Mirror of ``runtime.vectorized._axis_strips`` (kept compiler-local so
    the compiler never imports the runtime): three strips with their check
    sides; an over-wide window (``lo_cut > hi_cut``) collapses the axis to a
    single both-checked strip, which is always safe because checking a side
    a coordinate never crosses is the identity mapping."""
    if lo_cut > hi_cut:
        return [(0, size, frozenset({lo_check, hi_check}))]
    return [
        (0, lo_cut, frozenset({lo_check})),
        (lo_cut, hi_cut, frozenset()),
        (hi_cut, size, frozenset({hi_check})),
    ]


def _check_subrects(
    region: tuple[int, int, int, int], width: int, height: int,
    hx: int, hy: int,
) -> tuple[tuple[int, int, int, int, frozenset[str]], ...]:
    """Split a stage region by the image-level ISP cuts for extent (hx, hy).

    A sub-rectangle's check set says which true image borders its reads may
    cross; the evaluator refines it per access by offset sign, exactly as
    the staged nine-region executor does.
    """
    x0, x1, y0, y1 = region
    xs = (_axis_strips(hx, width - hx, width, "left", "right")
          if hx > 0 else [(0, width, frozenset())])
    ys = (_axis_strips(hy, height - hy, height, "top", "bottom")
          if hy > 0 else [(0, height, frozenset())])
    out = []
    for sy0, sy1, cy in ys:
        iy0, iy1 = max(y0, sy0), min(y1, sy1)
        if iy0 >= iy1:
            continue
        for sx0, sx1, cx in xs:
            ix0, ix1 = max(x0, sx0), min(x1, sx1)
            if ix0 >= ix1:
                continue
            out.append((ix0, ix1, iy0, iy1, cx | cy))
    return tuple(out)


def _axis_hull(
    lo: int, hi: int, size: int, boundary: Boundary
) -> tuple[int, int]:
    """Interval hull [a, b) of the border-mapped read range [lo, hi).

    In-range reads map to themselves; out-of-range reads map per pattern —
    non-locally for REPEAT and deep MIRROR, which is why this walks the
    scalar golden mapping instead of clipping. CONSTANT out-of-range reads
    still *index* the clamped coordinate before masking (the vectorized
    evaluator's np.maximum/np.minimum), so they hull to the clamped edge.
    """
    if lo >= hi:
        return lo, hi
    if 0 <= lo and hi <= size:
        return lo, hi
    a, b = size, -1
    for c in range(lo, hi):
        if boundary is Boundary.UNDEFINED or boundary is Boundary.CONSTANT:
            m = min(max(c, 0), size - 1)
        else:
            m = reference_index(c, size, boundary)
        a, b = min(a, m), max(b, m)
    return a, b + 1


def _required_region(
    region: tuple[int, int, int, int],
    desc: KernelDescription,
    acc,
    width: int,
    height: int,
) -> Optional[tuple[int, int, int, int]]:
    """The producer region one accessor's reads of ``region`` require."""
    nodes = desc.accesses.get(id(acc), [])
    if not nodes:
        return None
    x0, x1, y0, y1 = region
    min_dx = min(n.dx for n in nodes)
    max_dx = max(n.dx for n in nodes)
    min_dy = min(n.dy for n in nodes)
    max_dy = max(n.dy for n in nodes)
    rx0, rx1 = _axis_hull(x0 + min_dx, x1 + max_dx, width, acc.boundary)
    ry0, ry1 = _axis_hull(y0 + min_dy, y1 + max_dy, height, acc.boundary)
    return rx0, rx1, ry0, ry1


def _union(
    a: Optional[tuple[int, int, int, int]], b: tuple[int, int, int, int]
) -> tuple[int, int, int, int]:
    if a is None:
        return b
    return min(a[0], b[0]), max(a[1], b[1]), min(a[2], b[2]), max(a[3], b[3])


def cumulative_halos(
    descs: list[KernelDescription] | tuple[KernelDescription, ...],
) -> dict[str, tuple[int, int]]:
    """Per-image cumulative halo, propagated back-to-front.

    ``halos[name]`` is how far beyond an output tile the image ``name`` is
    read when every downstream stage recomputes its halo: 0 for the final
    output; for anything else the max over consumers of the consumer's own
    cumulative halo plus that accessor's read extent. For a simple chain
    this is exactly the suffix sum of per-stage extents (pinned by the
    hypothesis property suite).
    """
    produced = [d.output_name for d in descs]
    cum: dict[str, Optional[tuple[int, int]]] = {n: None for n in produced}
    cum[produced[-1]] = (0, 0)
    halos: dict[str, tuple[int, int]] = {produced[-1]: (0, 0)}
    for d in reversed(list(descs)):
        my = cum.get(d.output_name)
        if my is None:
            continue  # dead stage: nothing downstream reads it
        halos[d.output_name] = my
        for acc in d.accessors:
            nodes = d.accesses.get(id(acc), [])
            if not nodes:
                continue
            ahx = max(abs(n.dx) for n in nodes)
            ahy = max(abs(n.dy) for n in nodes)
            reach = (my[0] + ahx, my[1] + ahy)
            name = acc.image.name
            prev = halos.get(name)
            best = (
                reach if prev is None
                else (max(prev[0], reach[0]), max(prev[1], reach[1]))
            )
            halos[name] = best
            if name in cum:
                cum[name] = best
    return halos


def fuse_descs(
    descs: list[KernelDescription] | tuple[KernelDescription, ...],
    *,
    tile_rows: Optional[int] = None,
    tile_cols: Optional[int] = None,
    name: str = "pipeline",
) -> FusedPlan:
    """Lower traced pipeline stages to a fused overlapped-tile plan.

    ``descs`` must be in producer-before-consumer order (the order a
    :class:`~repro.dsl.pipeline.Pipeline` validates). ``tile_rows`` /
    ``tile_cols`` default to :data:`DEFAULT_TILE_ROWS`-row full-width bands;
    tiles smaller than the cumulative halo are legal — the halo hull is
    clipped to the image by the border mapping itself.
    """
    descs = tuple(descs)
    if not descs:
        raise ValueError("fuse_descs needs at least one stage")
    width, height = descs[0].width, descs[0].height
    for d in descs:
        if (d.width, d.height) != (width, height):
            raise ValueError(
                f"stage {d.name!r} geometry {d.width}x{d.height} != "
                f"{width}x{height}"
            )
    produced = {d.output_name for d in descs}
    if tile_rows is None:
        tile_rows = DEFAULT_TILE_ROWS
    if tile_cols is None:
        tile_cols = width
    tile_rows = max(1, min(int(tile_rows), height))
    tile_cols = max(1, min(int(tile_cols), width))

    halos = cumulative_halos(descs)
    external = tuple(
        n for n in _read_order(descs) if n not in produced
    )
    live = frozenset(n for n in halos if n in produced)

    tiles = []
    for ty0 in range(0, height, tile_rows):
        ty1 = min(ty0 + tile_rows, height)
        for tx0 in range(0, width, tile_cols):
            tx1 = min(tx0 + tile_cols, width)
            tiles.append(
                _schedule_tile(descs, produced, (tx0, tx1, ty0, ty1),
                               width, height)
            )
    return FusedPlan(
        name=name,
        descs=descs,
        width=width,
        height=height,
        tile_rows=tile_rows,
        tile_cols=tile_cols,
        halos=halos,
        live=live,
        external_inputs=external,
        tiles=tuple(tiles),
    )


def _read_order(descs: tuple[KernelDescription, ...]) -> list[str]:
    seen: list[str] = []
    for d in descs:
        for acc in d.accessors:
            if acc.image.name not in seen:
                seen.append(acc.image.name)
    return seen


def _schedule_tile(
    descs: tuple[KernelDescription, ...],
    produced: set[str],
    tile: tuple[int, int, int, int],
    width: int,
    height: int,
) -> TileSchedule:
    """Back-to-front requirement propagation, then front-to-back steps."""
    req: dict[str, Optional[tuple[int, int, int, int]]] = {
        d.output_name: None for d in descs
    }
    req[descs[-1].output_name] = tile
    regions: list[Optional[tuple[int, int, int, int]]] = [None] * len(descs)
    for i in range(len(descs) - 1, -1, -1):
        d = descs[i]
        region = req[d.output_name]
        if region is None:
            continue  # dead stage — staged execution pays for it, fusion skips
        regions[i] = region
        for acc in d.accessors:
            if acc.image.name not in produced:
                continue
            need = _required_region(region, d, acc, width, height)
            if need is not None:
                req[acc.image.name] = _union(req[acc.image.name], need)
    steps = []
    for i, d in enumerate(descs):
        region = regions[i]
        if region is None:
            continue
        hx, hy = d.extent
        steps.append(
            FusedStep(
                stage=i,
                region=region,
                subrects=_check_subrects(region, width, height, hx, hy),
            )
        )
    return TileSchedule(rect=tile, steps=tuple(steps))


__all__ = [
    "DEFAULT_TILE_ROWS",
    "FusedPlan",
    "FusedStep",
    "TileSchedule",
    "cumulative_halos",
    "fuse_descs",
]
