"""Regression pins for the analytic model (paper Tables I and III).

These tests freeze the *numbers* the model pipeline produces — per-region
dynamic instruction counts (Table I's accounting) and the Eq. 10 gain G over
the five-filter corpus (Table III's decision grid). The whole stack under
them is deterministic: tracing, lowering, the optimizer, representative-
block profiling, and the closed-form occupancy/gain arithmetic. So exact
equality is the right tolerance for integer counts, and a tight relative
tolerance (1e-6, float round-trip headroom only) for gains.

If one of these fails, either (a) a compiler/model change unintentionally
drifted the reproduction — investigate, or (b) the change is intentional —
update the pins *in the same commit* and call out the new numbers in the PR
description, exactly like regenerating the IR goldens. The gain-sign grid
is the paper-level invariant: flipping a sign flips a Table III cell and
changes which variant ``isp+m`` and the autotuner prior pick.

Configuration pinned here: 512x512 (Table III's smallest size), block 32x4,
GTX680 — the paper's primary device.
"""

from __future__ import annotations

import pytest

from repro.compiler import Region, Variant, trace_kernel
from repro.dsl import Boundary
from repro.filters import bilateral
from repro.gpu import GTX680
from repro.model.prediction import clear_model_cache
from repro.runtime import profile_kernel
from repro.serve import pipeline_gain
from repro.serve.plan import trace_app

SIZE = 512
BLOCK = (32, 4)

# ---------------------------------------------------------------------------
# Table I: bilateral 13x13 / Clamp — per-block dynamic instruction totals.
# ---------------------------------------------------------------------------

#: dynamic warp instructions of one representative naive block
NAIVE_TOTAL = 14184

#: one representative block per ISP region (includes its dispatch share)
ISP_REGION_TOTALS = {
    Region.TL: 12848,
    Region.T: 12196,
    Region.TR: 12868,
    Region.L: 12252,
    Region.BODY: 11580,
    Region.R: 12248,
    Region.BL: 12892,
    Region.B: 12240,
    Region.BR: 12912,
}

#: Clamp emits min/max per checked side (Listing 1): the naive variant pays
#: 169 taps x 4 checks x 2 sides = 1352 of each per block; the ISP Body
#: pays none — that deletion IS the paper's Section IV-A.1 observation.
NAIVE_CLAMP_CHECKS = {"min": 1352, "max": 1352}
BODY_CLAMP_CHECKS = {"min": 0, "max": 0}
#: what the Body pays instead: the region-dispatch switch chain
BODY_DISPATCH = {"setp": 48, "bra": 40}


@pytest.fixture(scope="module")
def bilateral_profiles():
    pipe = bilateral.build_pipeline(SIZE, SIZE, Boundary.CLAMP)
    desc = trace_kernel(pipe.kernels[0])
    naive = profile_kernel(desc, variant=Variant.NAIVE, block=BLOCK,
                           device=GTX680).region_keyword_counts()
    isp = profile_kernel(desc, variant=Variant.ISP, block=BLOCK,
                         device=GTX680).region_keyword_counts()
    return naive[Region.BODY], isp


class TestTableOneInstructionCounts:
    def test_naive_block_total(self, bilateral_profiles):
        naive, _ = bilateral_profiles
        assert sum(naive.values()) == NAIVE_TOTAL

    def test_isp_region_totals(self, bilateral_profiles):
        _, isp = bilateral_profiles
        actual = {r: sum(c.values()) for r, c in isp.items()}
        assert actual == ISP_REGION_TOTALS

    def test_clamp_checks_vanish_from_the_body(self, bilateral_profiles):
        naive, isp = bilateral_profiles
        body = isp[Region.BODY]
        assert {k: naive.get(k, 0) for k in NAIVE_CLAMP_CHECKS} == \
            NAIVE_CLAMP_CHECKS
        assert {k: body.get(k, 0) for k in BODY_CLAMP_CHECKS} == \
            BODY_CLAMP_CHECKS
        assert {k: body.get(k, 0) for k in BODY_DISPATCH} == BODY_DISPATCH

    def test_arithmetic_pipeline_untouched_by_partitioning(
            self, bilateral_profiles):
        # The filter math itself (mul/mad/ex2 chain) must be identical in
        # both variants — ISP only removes border checks, never taps.
        naive, isp = bilateral_profiles
        body = isp[Region.BODY]
        for kw in ("mul", "mad", "ex2", "ld", "st"):
            assert body.get(kw, 0) == naive.get(kw, 0), kw


# ---------------------------------------------------------------------------
# Table III: Eq. 10 gains for the five-filter corpus, GTX680.
# ---------------------------------------------------------------------------

#: G = R_reduced * O_ISP / O_naive, geometric mean over bordered kernels.
PINNED_GAINS = {
    ("gaussian", "clamp"): 0.9179394536596047,
    ("gaussian", "mirror"): 1.5339874085200218,
    ("gaussian", "repeat"): 2.165854264336055,
    ("gaussian", "constant"): 1.2998759354864529,
    ("laplace", "clamp"): 1.068884202549568,
    ("laplace", "mirror"): 1.962566705713914,
    ("laplace", "repeat"): 2.3614558522418623,
    ("laplace", "constant"): 1.372601421775616,
    ("bilateral", "clamp"): 0.9719861261767975,
    ("bilateral", "mirror"): 1.5607998219126062,
    ("bilateral", "repeat"): 1.8967559223870698,
    ("bilateral", "constant"): 1.3894720038312647,
    ("sobel", "clamp"): 0.6282465540512905,
    ("sobel", "mirror"): 1.363969363969364,
    ("sobel", "repeat"): 1.8819365835252482,
    ("sobel", "constant"): 1.1652695065053296,
    ("night", "clamp"): 0.9179620681116614,
    ("night", "mirror"): 1.5328741516715936,
    ("night", "repeat"): 2.1626218495019613,
    ("night", "constant"): 1.2992913448449037,
}


@pytest.fixture(scope="module")
def gains():
    # Calibration artifacts are cached under a size-free key (calibration is
    # *meant* to be size-independent, and is to ~0.4%), so a same-process
    # module that traced these kernels at another size would otherwise leak
    # its artifacts into the 512-pinned numbers. The pins are defined
    # against a cold cache.
    clear_model_cache()
    return {
        (app, pat): pipeline_gain(trace_app(app, pat, SIZE, SIZE),
                                  block=BLOCK, device=GTX680)
        for (app, pat) in PINNED_GAINS
    }


class TestTableThreeGainGrid:
    def test_gain_values(self, gains):
        for combo, expected in PINNED_GAINS.items():
            assert gains[combo] == pytest.approx(expected, rel=1e-6), combo

    def test_gain_sign_grid(self, gains):
        """The decision grid itself — which side of G = 1 each cell is on.

        CLAMP sits near the switching point (only laplace crosses it); the
        three expensive patterns are partition-side for every filter. This
        is the paper's Table III shape and the autotuner's prior.
        """
        signs = {combo: g > 1.0 for combo, g in gains.items()}
        for app in ("gaussian", "laplace", "bilateral", "sobel", "night"):
            for pat in ("mirror", "repeat", "constant"):
                assert signs[(app, pat)], (app, pat)
        assert signs[("laplace", "clamp")]
        for app in ("gaussian", "bilateral", "sobel", "night"):
            assert not signs[(app, "clamp")], app

    def test_repeat_gains_largest_per_filter(self, gains):
        # Listing 1's while-loops make Repeat the costliest pattern, so ISP
        # saves the most there (paper Figure 6's ordering).
        for app in ("gaussian", "laplace", "bilateral", "sobel", "night"):
            per_pattern = {pat: gains[(app, pat)]
                           for pat in ("clamp", "mirror", "repeat", "constant")}
            assert max(per_pattern, key=per_pattern.get) == "repeat", app


# ---------------------------------------------------------------------------
# Table III across the device zoo: per-device Eq. 10 gains.
# ---------------------------------------------------------------------------

#: (device, app, pattern) -> G at 512x512, block 32x4. The per-device grid
#: pins the crossover windows the autotuner prior inherits: laplace/clamp is
#: partition-side on every NVIDIA part but flips naive-side on the wave64
#: parts (a 64-lane wave halves R_reduced's numerator savings while GCN's
#: occupancy granularity stays flat), and RTX2080's 32-warp SMs push even
#: gaussian/clamp over the line. Devices sharing warp width, occupancy
#: shape and calibration (GTX680/GTX1080/RTX3080 here) legitimately share
#: gains — G is a ratio, so uniform per-cycle rates divide out.
PINNED_DEVICE_GAINS = {
    "GTX680": {
        ("gaussian", "clamp"): 0.9179394536596047,
        ("gaussian", "mirror"): 1.5339874085200218,
        ("gaussian", "repeat"): 2.165854264336055,
        ("gaussian", "constant"): 1.2998759354864529,
        ("laplace", "clamp"): 1.068884202549568,
        ("laplace", "mirror"): 1.962566705713914,
        ("laplace", "repeat"): 2.3614558522418623,
        ("laplace", "constant"): 1.372601421775616,
    },
    "GTX1080": {
        ("gaussian", "clamp"): 0.9179394536596047,
        ("gaussian", "mirror"): 1.5339874085200218,
        ("gaussian", "repeat"): 2.165854264336055,
        ("gaussian", "constant"): 1.2998759354864529,
        ("laplace", "clamp"): 1.068884202549568,
        ("laplace", "mirror"): 1.962566705713914,
        ("laplace", "repeat"): 2.3614558522418623,
        ("laplace", "constant"): 1.372601421775616,
    },
    "RTX2080": {
        ("gaussian", "clamp"): 1.1015273443915257,
        ("gaussian", "mirror"): 1.840784890224026,
        ("gaussian", "repeat"): 2.5990251172032663,
        ("gaussian", "constant"): 1.5598511225837435,
        ("laplace", "clamp"): 1.2826610430594816,
        ("laplace", "mirror"): 2.18062967301546,
        ("laplace", "repeat"): 3.1486078029891496,
        ("laplace", "constant"): 1.8301352290341546,
    },
    "RTX3080": {
        ("gaussian", "clamp"): 0.9179394536596047,
        ("gaussian", "mirror"): 1.5339874085200218,
        ("gaussian", "repeat"): 2.165854264336055,
        ("gaussian", "constant"): 1.2998759354864529,
        ("laplace", "clamp"): 1.068884202549568,
        ("laplace", "mirror"): 1.9625667057139138,
        ("laplace", "repeat"): 2.3614558522418623,
        ("laplace", "constant"): 1.372601421775616,
    },
    "VEGA64": {
        ("gaussian", "clamp"): 0.8654857705933418,
        ("gaussian", "mirror"): 1.5339874085200218,
        ("gaussian", "repeat"): 1.8564465122880474,
        ("gaussian", "constant"): 1.1141793732741025,
        ("laplace", "clamp"): 0.9161864593282012,
        ("laplace", "mirror"): 1.7841515506490127,
        ("laplace", "repeat"): 2.3614558522418623,
        ("laplace", "constant"): 1.372601421775616,
    },
    "MI100": {
        ("gaussian", "clamp"): 0.8654857705933418,
        ("gaussian", "mirror"): 1.5339874085200218,
        ("gaussian", "repeat"): 1.8564465122880474,
        ("gaussian", "constant"): 1.1141793732741025,
        ("laplace", "clamp"): 0.9161864593282012,
        ("laplace", "mirror"): 1.7841515506490127,
        ("laplace", "repeat"): 2.3614558522418623,
        ("laplace", "constant"): 1.372601421775616,
    },
}


@pytest.fixture(scope="module")
def device_gains():
    from repro.gpu import DEVICES

    clear_model_cache()
    return {
        dev: {
            combo: pipeline_gain(trace_app(combo[0], combo[1], SIZE, SIZE),
                                 block=BLOCK, device=DEVICES[dev])
            for combo in PINNED_DEVICE_GAINS[dev]
        }
        for dev in PINNED_DEVICE_GAINS
    }


class TestDeviceZooGainGrid:
    def test_zoo_is_fully_pinned(self):
        from repro.gpu import DEVICES

        assert set(PINNED_DEVICE_GAINS) == set(DEVICES)

    def test_gain_values(self, device_gains):
        for dev, combos in PINNED_DEVICE_GAINS.items():
            for combo, expected in combos.items():
                assert device_gains[dev][combo] == pytest.approx(
                    expected, rel=1e-6
                ), (dev, combo)

    def test_clamp_crossover_window_per_device(self, device_gains):
        """Which devices cross G = 1 under Clamp — the zoo's whole point."""
        signs = {dev: {app: device_gains[dev][(app, "clamp")] > 1.0
                       for app in ("gaussian", "laplace")}
                 for dev in PINNED_DEVICE_GAINS}
        # gaussian/clamp: only Turing's 32-warp SMs flip it partition-side.
        assert [d for d, s in sorted(signs.items()) if s["gaussian"]] == \
            ["RTX2080"]
        # laplace/clamp: partition-side on every NVIDIA part, naive-side on
        # both wave64 parts.
        assert {d for d, s in signs.items() if not s["laplace"]} == \
            {"VEGA64", "MI100"}

    def test_repeat_beats_mirror_on_every_device(self, device_gains):
        """Repeat's while-loop border mapping stays the costliest pattern —
        and so the biggest ISP win — on every architecture (the Fig. 6
        ordering is device-invariant even where absolute gains are not)."""
        for dev, combos in device_gains.items():
            for app in ("gaussian", "laplace"):
                assert combos[(app, "repeat")] > combos[(app, "mirror")] \
                    > 1.0, (dev, app)

    def test_gtx680_grid_embeds_in_device_grid(self, gains, device_gains):
        """The original single-device pins and the zoo pins must agree —
        one source of truth for the paper's primary device."""
        for combo, value in device_gains["GTX680"].items():
            assert gains[combo] == pytest.approx(value, rel=1e-9), combo


# ---------------------------------------------------------------------------
# Fusion model: predict_fused gains for the multi-kernel apps, GTX680.
# ---------------------------------------------------------------------------

#: gain = staged_us / fused_us at the Table III configuration. The grid
#: pins the redundant-compute vs saved-memory-traffic crossover: fusion
#: wins for sobel everywhere (cheap 3x3 halos, three intermediates saved)
#: and for night under cheap patterns, but *loses* on night/repeat — the
#: while-loop Repeat mapping makes the deep a-trous halo recompute cost
#: more than the intermediate traffic it saves.
PINNED_FUSED_GAINS = {
    ("sobel", "clamp"): 1.2821428745091468,
    ("sobel", "mirror"): 1.1399199731394176,
    ("sobel", "repeat"): 1.1727018068402764,
    ("sobel", "constant"): 1.2278362029842949,
    ("night", "clamp"): 1.1387821576725425,
    ("night", "mirror"): 1.0095026246986107,
    ("night", "repeat"): 0.5301643154827085,
    ("night", "constant"): 1.0881146483838822,
}


@pytest.fixture(scope="module")
def fused_gains():
    from repro.model import predict_fused

    clear_model_cache()
    return {
        (app, pat): predict_fused(
            list(trace_app(app, pat, SIZE, SIZE)),
            block=BLOCK, device=GTX680, name=app,
        )
        for (app, pat) in PINNED_FUSED_GAINS
    }


class TestFusedGainGrid:
    def test_gain_values(self, fused_gains):
        for combo, expected in PINNED_FUSED_GAINS.items():
            assert fused_gains[combo].gain == pytest.approx(
                expected, rel=1e-6
            ), combo

    def test_crossover_shape(self, fused_gains):
        """The decision the autotuner prior seeds from: fuse sobel always,
        fuse night except under Repeat's expensive halo recompute."""
        for pat in ("clamp", "mirror", "repeat", "constant"):
            assert fused_gains[("sobel", pat)].use_fused, pat
        assert not fused_gains[("night", "repeat")].use_fused
        assert fused_gains[("night", "clamp")].use_fused

    def test_single_kernel_pipeline_is_neutral(self):
        """No intermediates to save, one kernel to fuse: gain is exactly
        1.0 by construction, so the prior never prefers 'fused' here."""
        from repro.model import predict_fused

        pred = predict_fused(
            list(trace_app("gaussian", "mirror", SIZE, SIZE)),
            block=BLOCK, device=GTX680, name="gaussian",
        )
        assert pred.gain == 1.0
        assert not pred.use_fused
