"""Structural and type verification of kernel functions.

The compiler verifies every function it emits; the SIMT simulator refuses to
launch unverified functions. Catching malformed IR here (rather than deep in a
masked NumPy gather) keeps compiler bugs cheap to debug.
"""

from __future__ import annotations

from .cfg import reachable_blocks
from .function import KernelFunction
from .instructions import CmpOp, Immediate, Opcode, Register
from .types import DataType


class IRVerificationError(Exception):
    """Raised when a kernel function violates the ISA's structural rules."""


def verify(func: KernelFunction) -> None:
    """Raise :class:`IRVerificationError` on the first violation found."""
    if not func.blocks:
        raise IRVerificationError(f"{func.name}: function has no blocks")

    labels = {b.label for b in func.blocks}
    reg_types: dict[str, DataType] = {}
    defined: set[str] = set()
    param_names = {p.name for p in func.params}

    for block in func.blocks:
        if not block.is_terminated:
            raise IRVerificationError(f"{func.name}:{block.label}: missing terminator")
        for i, instr in enumerate(block):
            where = f"{func.name}:{block.label}[{i}]"
            if instr.is_terminator and i != len(block.instructions) - 1:
                raise IRVerificationError(f"{where}: terminator not last in block")
            _check_types(instr, reg_types, where)
            if instr.op is Opcode.LDPARAM and instr.param not in param_names:
                raise IRVerificationError(f"{where}: unknown parameter {instr.param!r}")
            if instr.op is Opcode.TEX and f"{instr.param}_ptr" not in param_names:
                raise IRVerificationError(
                    f"{where}: tex samples unknown image {instr.param!r}"
                )
            if instr.op is Opcode.BRA:
                for t in (instr.target, instr.target_else):
                    if t is not None and t not in labels:
                        raise IRVerificationError(f"{where}: branch to unknown label {t!r}")
                if instr.pred is not None and instr.target_else is None:
                    raise IRVerificationError(f"{where}: conditional branch missing else target")
            if instr.dst is not None:
                defined.add(instr.dst.name)

    # Every used register must be defined somewhere in the function. (A full
    # dominance-based def-before-use check is intentionally out of scope; the
    # simulator additionally traps reads of never-written registers at run
    # time, which catches path-sensitive violations.)
    for block in func.blocks:
        for i, instr in enumerate(block):
            for reg in instr.used_registers():
                if reg.name not in defined:
                    raise IRVerificationError(
                        f"{func.name}:{block.label}[{i}]: use of undefined register {reg}"
                    )

    unreachable = labels - reachable_blocks(func)
    if unreachable:
        raise IRVerificationError(
            f"{func.name}: unreachable blocks: {sorted(unreachable)}"
        )


def _check_types(instr, reg_types: dict[str, DataType], where: str) -> None:
    def bind(reg: Register):
        prev = reg_types.get(reg.name)
        if prev is None:
            reg_types[reg.name] = reg.dtype
        elif prev is not reg.dtype:
            raise IRVerificationError(
                f"{where}: register %{reg.name} used as {reg.dtype.value}, "
                f"previously {prev.value}"
            )

    for opnd in instr.srcs:
        if isinstance(opnd, Register):
            bind(opnd)
    if instr.dst is not None:
        bind(instr.dst)
    if instr.pred is not None:
        bind(instr.pred)
        if instr.pred.dtype is not DataType.PRED:
            raise IRVerificationError(f"{where}: branch guard must be a predicate")

    op = instr.op
    if op is Opcode.SETP:
        if instr.dst is None or instr.dst.dtype is not DataType.PRED:
            raise IRVerificationError(f"{where}: setp destination must be a predicate")
        if not isinstance(instr.cmp, CmpOp):
            raise IRVerificationError(f"{where}: setp requires a CmpOp")
        for s in instr.srcs:
            if _operand_dtype(s) is not instr.dtype:
                raise IRVerificationError(f"{where}: setp operand type mismatch")
    elif op is Opcode.SELP:
        a, b, p = instr.srcs
        if _operand_dtype(p) is not DataType.PRED:
            raise IRVerificationError(f"{where}: selp selector must be a predicate")
        for s in (a, b):
            if _operand_dtype(s) is not instr.dtype:
                raise IRVerificationError(f"{where}: selp operand type mismatch")
    elif op is Opcode.CVT:
        if _operand_dtype(instr.srcs[0]) is not instr.src_dtype:
            raise IRVerificationError(f"{where}: cvt source type mismatch")
        if instr.dst is None or instr.dst.dtype is not instr.dtype:
            raise IRVerificationError(f"{where}: cvt destination type mismatch")
    elif op is Opcode.LD or op is Opcode.LDS:
        if _operand_dtype(instr.srcs[0]) is not DataType.U32:
            raise IRVerificationError(f"{where}: load address must be u32")
    elif op is Opcode.TEX:
        for src in instr.srcs:
            if _operand_dtype(src) is not DataType.S32:
                raise IRVerificationError(f"{where}: tex coordinates must be s32")
        if instr.dst is None or instr.dst.dtype is not DataType.F32:
            raise IRVerificationError(f"{where}: tex destination must be f32")
        if instr.tex_mode not in ("clamp", "border"):
            raise IRVerificationError(f"{where}: invalid tex address mode")
    elif op is Opcode.ST or op is Opcode.STS:
        if _operand_dtype(instr.srcs[0]) is not DataType.U32:
            raise IRVerificationError(f"{where}: store address must be u32")
        if _operand_dtype(instr.srcs[1]) is not instr.dtype:
            raise IRVerificationError(f"{where}: store value type mismatch")
    elif op in (Opcode.BRA, Opcode.EXIT, Opcode.LDPARAM, Opcode.MOV,
                Opcode.BAR):
        pass
    else:
        # homogeneous arithmetic: all operands and dst share instr.dtype
        for s in instr.srcs:
            if _operand_dtype(s) is not instr.dtype:
                raise IRVerificationError(
                    f"{where}: {op.value} operand type mismatch "
                    f"({_operand_dtype(s).value} vs {instr.dtype.value})"
                )
        if instr.dst is not None and instr.dst.dtype is not instr.dtype:
            raise IRVerificationError(f"{where}: {op.value} destination type mismatch")


def _operand_dtype(opnd) -> DataType:
    if isinstance(opnd, (Register, Immediate)):
        return opnd.dtype
    raise IRVerificationError(f"unexpected operand {opnd!r}")
