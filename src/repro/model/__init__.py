"""The paper's analytic performance model (Section IV, Eqs. 1-10)."""

from .blocks import ModelBlockCounts, block_counts, body_fraction_series, index_bounds
from .calibration import Calibration, calibrate, switch_cost
from .instructions import (
    InstructionEstimate,
    estimate_instructions,
    region_cost_per_pixel,
)
from .prediction import (
    FusedPrediction,
    Prediction,
    clear_model_cache,
    predict_for,
    predict_fused,
    predict_kernel,
)

__all__ = [
    "Calibration",
    "FusedPrediction",
    "InstructionEstimate",
    "ModelBlockCounts",
    "Prediction",
    "block_counts",
    "body_fraction_series",
    "calibrate",
    "clear_model_cache",
    "estimate_instructions",
    "index_bounds",
    "predict_for",
    "predict_fused",
    "predict_kernel",
    "region_cost_per_pixel",
    "switch_cost",
]
