"""Shared-memory tile staging — the other production border strategy.

Hipacc's generated stencil kernels can stage the input tile (block footprint
plus halo) into shared memory: each block cooperatively loads
``(tx + 2*hx) x (ty + 2*hy)`` pixels, synchronizes, and then every tap reads
the on-chip tile. Border handling then runs **once per staged halo pixel**
instead of once per tap — an orthogonal way of removing check cost that
composes with ISP:

* ``SHARED``      — staging with full border checks in every block,
* ``SHARED_ISP``  — a fat kernel whose region dispatch specializes the
  *staging loop*: only border blocks' staging applies checks, the Body
  region's staging is check-free. The compute phase is identical everywhere
  (it reads shared memory, which is always in bounds).

Because ``bar.sync`` must execute in uniform control flow, staging variants
require the grid to tile the image exactly (no early-exit bounds guard) and
are dispatched at block granularity only.
"""

from __future__ import annotations

import math

from ..ir.builder import IRBuilder
from ..ir.function import KernelFunction, Param
from ..ir.instructions import CmpOp, Register, SpecialReg
from ..ir.types import DataType
from .border import combine_valid, emit_axis_checks
from .frontend import KernelDescription
from .isp import (
    CompileError,
    Variant,
    _declare_params,
    _emit_switch_chain,
    _load_params,
)
from .lowering import KernelParams, RegionLowering, emit_coordinates, grid_for
from .regions import REGION_CHECKS, Region, RegionGeometry


def shared_tile_bytes(desc: KernelDescription, block: tuple[int, int]) -> int:
    """Per-block shared-memory footprint of the staged tile.

    Derives the element size from :data:`repro.runtime.make_border
    .ELEMENT_BYTES` — the single source of truth for buffer pricing — so the
    footprint, the occupancy charge and the static prover's ``smem_base``
    extent always agree (they all read this value via ``metadata``).
    """
    from ..runtime.make_border import ELEMENT_BYTES

    hx, hy = desc.extent
    tx, ty = block
    return (tx + 2 * hx) * (ty + 2 * hy) * ELEMENT_BYTES


def _staged_accessor(desc: KernelDescription):
    """The single windowed accessor staging supports (validated)."""
    windowed = [a for a in desc.accessors if a.boundary.needs_checks]
    if len(windowed) != 1:
        raise CompileError(
            f"{desc.name}: shared staging supports exactly one windowed "
            f"input, found {len(windowed)}"
        )
    return windowed[0]


class SharedLowering(RegionLowering):
    """Compute-phase lowering: the staged accessor reads the shared tile."""

    def __init__(self, *args, staged_accessor=None, smem_base=None,
                 tile_w=None, tid_x=None, tid_y=None, extent=None, **kwargs):
        super().__init__(*args, **kwargs)
        self.staged_accessor = staged_accessor
        self.smem_base = smem_base
        self.tile_w = tile_w
        self.tid_x = tid_x
        self.tid_y = tid_y
        self.hx, self.hy = extent

    def _lower_access(self, access):
        if access.accessor is not self.staged_accessor:
            return super()._lower_access(access)
        key = (id(access.accessor), access.dx, access.dy)
        memo = self._access_memo.get(key)
        if memo is not None:
            return memo
        b = self.b
        with b.role("addr"):
            sx = b.add(self.tid_x, self.hx + access.dx)
            sy = b.add(self.tid_y, self.hy + access.dy)
            idx = b.mad(sy, b.imm(self.tile_w, DataType.S32), sx)
            byte = b.cvt(b.shl(idx, 2), DataType.U32)
            addr = b.add(self.smem_base, byte, DataType.U32)
        with b.role("kernel"):
            value = b.lds(addr, DataType.F32)
        self._access_memo[key] = value
        return value


def _emit_staging(
    b: IRBuilder,
    desc: KernelDescription,
    params: KernelParams,
    acc,
    smem_base: Register,
    block: tuple[int, int],
    checks: frozenset[str],
    tid_x: Register,
    tid_y: Register,
    ctaid_x: Register,
    ctaid_y: Register,
    region_tag: str,
) -> None:
    """Cooperative tile load: each thread stages ceil(tile/threads) pixels
    in a row/column-strided pattern (no divide/modulo), applying only the
    region's border checks."""
    hx, hy = desc.extent
    tx, ty = block
    tile_w, tile_h = tx + 2 * hx, ty + 2 * hy
    img = acc.image

    with b.region(region_tag), b.role("addr"):
        # Block origin including the halo: ox = ctaid.x*tx - hx.
        ox = b.sub(b.mul(ctaid_x, tx), hx)
        oy = b.sub(b.mul(ctaid_y, ty), hy)

    consts: dict = {}
    for ry in range(math.ceil(tile_h / ty)):
        for rx in range(math.ceil(tile_w / tx)):
            with b.region(region_tag):
                with b.role("addr"):
                    sx = b.add(tid_x, rx * tx) if rx else tid_x
                    sy = b.add(tid_y, ry * ty) if ry else tid_y
                # Guard the ragged tile edge (static: only needed on the
                # last strip in each dimension).
                need_guard_x = (rx + 1) * tx > tile_w
                need_guard_y = (ry + 1) * ty > tile_h
                guard_done = None
                if need_guard_x or need_guard_y:
                    with b.role("addr"):
                        preds = []
                        if need_guard_x:
                            preds.append(b.setp(CmpOp.GE, sx, tile_w))
                        if need_guard_y:
                            preds.append(b.setp(CmpOp.GE, sy, tile_h))
                        p = preds[0]
                        if len(preds) == 2:
                            p = b.or_(preds[0], preds[1], DataType.PRED)
                        guard_done = b.fresh_label("stage_skip")
                        body_lbl = b.fresh_label("stage_body")
                        b.cbr(p, guard_done, body_lbl)
                        b.new_block(body_lbl)
                with b.role("addr"):
                    gx = b.add(ox, sx)
                    gy = b.add(oy, sy)
                bx = emit_axis_checks(
                    b, gx, params.widths[img.name], acc.boundary,
                    check_low="left" in checks, check_high="right" in checks,
                    consts=consts,
                )
                by = emit_axis_checks(
                    b, gy, params.heights[img.name], acc.boundary,
                    check_low="top" in checks, check_high="bottom" in checks,
                    consts=consts,
                )
                valid = combine_valid(b, bx.valid, by.valid)
                with b.role("addr"):
                    gidx = b.mad(by.coord, params.widths[img.name], bx.coord)
                    gaddr = b.add(
                        params.bases[img.name],
                        b.cvt(b.shl(gidx, 2), DataType.U32),
                        DataType.U32,
                    )
                with b.role("kernel"):
                    val = b.ld(gaddr, DataType.F32)
                    if valid is not None:
                        val = b.selp(valid, val,
                                     b.imm(acc.constant, DataType.F32))
                with b.role("addr"):
                    sidx = b.mad(sy, b.imm(tile_w, DataType.S32), sx)
                    saddr = b.add(
                        smem_base, b.cvt(b.shl(sidx, 2), DataType.U32),
                        DataType.U32,
                    )
                with b.role("kernel"):
                    b.sts(saddr, val, DataType.F32)
                if guard_done is not None:
                    b.br(guard_done)
                    b.new_block(guard_done)


def generate_shared(
    desc: KernelDescription,
    block: tuple[int, int],
    *,
    isp_staging: bool = False,
) -> KernelFunction:
    """Tile-staging kernel, optionally with ISP-specialized staging."""
    hx, hy = desc.extent
    tx, ty = block
    if desc.width % tx or desc.height % ty:
        raise CompileError(
            f"{desc.name}: shared staging requires the grid to tile the "
            f"image exactly ({desc.width}x{desc.height} vs block {tx}x{ty}) "
            "— bar.sync forbids early-exit guards"
        )
    if not desc.needs_border_handling:
        raise CompileError(f"{desc.name}: point operators gain nothing from staging")
    acc = _staged_accessor(desc)

    geom = RegionGeometry.compute(desc.width, desc.height, hx, hy, block)
    if isp_staging and geom.degenerate:
        raise CompileError(f"{desc.name}: degenerate geometry for SHARED_ISP")

    suffix = "shared_isp" if isp_staging else "shared"
    params_list = _declare_params(desc)
    params_list.append(Param("smem_base", DataType.U32, is_pointer=True,
                             elem_dtype=DataType.F32))
    b = IRBuilder(f"{desc.name}_{suffix}", params_list)
    b.new_block("entry")
    params = _load_params(b, desc)
    with b.role("addr"):
        smem_base = b.ld_param("smem_base")
    x, y = emit_coordinates(b)
    exit_label = "kernel_exit"

    with b.role("addr"):
        tid_x = b.special(SpecialReg.TID_X)
        tid_y = b.special(SpecialReg.TID_Y)
        ctaid_x = b.special(SpecialReg.CTAID_X)
        ctaid_y = b.special(SpecialReg.CTAID_Y)

    all_checks = set()
    if hx > 0:
        all_checks |= {"left", "right"}
    if hy > 0:
        all_checks |= {"top", "bottom"}

    def emit_stage_and_compute(region: Region, checks: frozenset[str], tag: str):
        _emit_staging(b, desc, params, acc, smem_base, block, checks,
                      tid_x, tid_y, ctaid_x, ctaid_y, tag)
        with b.region(tag), b.role("kernel"):
            b.bar()
        with b.region(tag):
            lowering = SharedLowering(
                b, desc, params, x, y, frozenset(),
                staged_accessor=acc, smem_base=smem_base,
                tile_w=tx + 2 * hx, tid_x=tid_x, tid_y=tid_y,
                extent=(hx, hy),
            )
            value = lowering.lower(desc.expr)
            lowering.store_output(value)
            b.br(exit_label)

    if not isp_staging:
        emit_stage_and_compute(Region.BODY, frozenset(all_checks), "naive")
    else:
        feasible = geom.feasible_regions()
        emit_set = set(feasible) | {Region.BODY}
        from .regions import SWITCH_ORDER

        emit_regions = [r for r in SWITCH_ORDER if r in emit_set]
        labels = {r: f"region_{r.value.lower()}" for r in emit_regions}
        with b.role("switch"):
            _emit_switch_chain(b, geom, labels, set(feasible), ctaid_x,
                               ctaid_y, None, block)
        for region in emit_regions:
            b.new_block(labels[region])
            sides = frozenset(set(REGION_CHECKS[region]) & all_checks)
            emit_stage_and_compute(region, sides, region.value)

    b.new_block(exit_label)
    b.exit()
    func = b.finish()
    func.metadata.update(
        variant=Variant.SHARED_ISP if isp_staging else Variant.SHARED,
        block=block,
        grid=grid_for(desc.width, desc.height, block),
        geometry=geom if isp_staging else None,
        shared_bytes=shared_tile_bytes(desc, block),
    )
    return func
