"""Execution plans: everything per-workload planning produces, made reusable.

A *plan* is the artifact the serve engine caches: the traced kernel
descriptions of one application pipeline plus the per-kernel variant decision
(the paper's ``isp+m`` model choice), bound to one geometry/pattern/device.
Building a plan is the expensive part of a request — tracing, geometry
validation, and for ``isp+m`` the analytic model (which compiles *both* the
naive and the ISP variants of every bordered kernel to get register counts,
Eq. 10) — while executing one is a handful of NumPy region evaluations.
The whole point of :mod:`repro.serve` is to pay the former once per distinct
workload and the latter once per request.

Plan keys are content hashes (:meth:`KernelDescription.stable_digest`), not
``id()``-derived: two requests that describe the same computation hit the
same cache line even though every trace builds fresh AST objects.
"""

from __future__ import annotations

import dataclasses
import hashlib
import math
import time
import threading
from typing import Optional

import numpy as np

from ..compiler.driver import CompiledKernel, compile_kernel
from ..compiler.frontend import KernelDescription, trace_kernel
from ..compiler.fusion import FusedPlan, fuse_descs
from ..compiler.fusion_simt import CompiledFusedKernel, compile_fused_simt
from ..compiler.isp import CompileError, Variant
from ..compiler.regions import RegionGeometry
from ..dsl.boundary import Boundary
from ..gpu.device import DeviceSpec, GTX680
from ..runtime.vectorized import run_kernel_vectorized

#: Variant policies a plan can be built with (mirrors the measurement
#: harness, plus the warp-grained shape of paper Listing 5, the raw-speed
#: pre-padded mode, and fused overlapped-tile pipeline execution).
PLAN_VARIANTS = ("naive", "isp", "isp_warp", "prepad", "fused", "isp+m")

#: What a *request* may ask for: any buildable plan variant, or ``"auto"`` —
#: let the engine's autotuner (model prior + measured trials) decide.
REQUEST_VARIANTS = PLAN_VARIANTS + ("auto",)

#: Execution backends the engine can dispatch to.
EXEC_MODES = ("vectorized", "simt")


@dataclasses.dataclass(frozen=True)
class PlanKey:
    """Cache key: kernel-description hash x variant x pattern x geometry x device."""

    digest: str
    variant: str
    pattern: str
    width: int
    height: int
    device: str
    block: tuple[int, int]

    def short(self) -> str:
        return (f"{self.digest[:10]}/{self.variant}/{self.pattern}/"
                f"{self.width}x{self.height}/{self.device}")


def combined_digest(descs: list[KernelDescription]) -> str:
    """Stable digest of a whole pipeline (order-sensitive)."""
    payload = "|".join(d.stable_digest() for d in descs)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]


def trace_app(
    app: str, pattern: str, width: int, height: int, constant: float = 0.0
) -> list[KernelDescription]:
    """Build + trace one registered application pipeline (the cheap step)."""
    from ..filters import PIPELINES

    if app not in PIPELINES:
        raise KeyError(f"unknown app {app!r}; have {sorted(PIPELINES)}")
    pipe = PIPELINES[app](width, height, Boundary(pattern), constant)
    return [trace_kernel(k) for k in pipe]


def plan_key(
    descs: list[KernelDescription],
    *,
    variant: str,
    pattern: str,
    device: DeviceSpec = GTX680,
    block: tuple[int, int] = (32, 4),
) -> PlanKey:
    if variant not in PLAN_VARIANTS:
        raise ValueError(f"unknown plan variant {variant!r}; have {PLAN_VARIANTS}")
    return PlanKey(
        digest=combined_digest(descs),
        variant=variant,
        pattern=pattern,
        width=descs[-1].width,
        height=descs[-1].height,
        device=device.name,
        block=tuple(block),
    )


@dataclasses.dataclass
class ExecutionPlan:
    """One cached unit of planning: traced descs + per-kernel variant choices.

    ``kernel_variants`` maps each stage's output name (unique within a
    pipeline) to the *vectorized* variant string ``"naive"`` or ``"isp"``.
    SIMT artifacts are compiled lazily on first SIMT execution and memoized
    on the plan (guarded by ``_simt_lock`` — plans are shared across worker
    threads).
    """

    key: PlanKey
    app: str
    descs: list[KernelDescription]
    kernel_variants: dict[str, str]
    build_seconds: float
    device: DeviceSpec
    #: EMA of measured vectorized execution seconds (None until first run);
    #: the autotuner and ``stats()`` read it, :meth:`note_execution` writes it.
    measured_seconds: Optional[float] = None
    _measure_lock: threading.Lock = dataclasses.field(
        default_factory=threading.Lock, repr=False
    )
    _simt_lock: threading.Lock = dataclasses.field(
        default_factory=threading.Lock, repr=False
    )
    _simt_compiled: Optional[list[CompiledKernel]] = dataclasses.field(
        default=None, repr=False
    )
    #: fused overlapped-tile schedule — present exactly when the plan was
    #: built with ``variant="fused"``; geometry-only, so one cached plan per
    #: pipeline digest serves every request and batch size
    fused_plan: Optional[FusedPlan] = dataclasses.field(
        default=None, repr=False
    )

    @property
    def variant(self) -> str:
        """The variant policy this plan was built under."""
        return self.key.variant

    def note_execution(self, seconds: float, *, alpha: float = 0.3) -> float:
        """Fold one measured vectorized execution into the plan's cost EMA."""
        with self._measure_lock:
            if self.measured_seconds is None:
                self.measured_seconds = float(seconds)
            else:
                self.measured_seconds += alpha * (
                    float(seconds) - self.measured_seconds
                )
            return self.measured_seconds

    @property
    def input_names(self) -> list[str]:
        """External input images: read by some stage, produced by none."""
        produced = {d.output_name for d in self.descs}
        seen: list[str] = []
        for d in self.descs:
            for acc in d.accessors:
                if acc.image.name not in produced and acc.image.name not in seen:
                    seen.append(acc.image.name)
        return seen

    @property
    def output_name(self) -> str:
        return self.descs[-1].output_name

    def stages(self) -> list[tuple[str, str]]:
        """(kernel name, chosen variant) per stage, for reporting."""
        return [(d.name, self.kernel_variants[d.output_name]) for d in self.descs]

    # ------------------------------------------------------------- execution

    def _bind_input(
        self, image: np.ndarray, *, batch: bool = False
    ) -> dict[str, np.ndarray]:
        names = self.input_names
        if len(names) != 1:
            raise ValueError(
                f"plan {self.key.short()} has inputs {names}; serve requests "
                "carry exactly one image"
            )
        arr = np.asarray(image, dtype=np.float32)
        expected = (self.key.height, self.key.width)
        if batch:
            if arr.ndim != 3 or arr.shape[-2:] != expected:
                raise ValueError(
                    f"batch image shape {arr.shape} != (N, *{expected})"
                )
        elif arr.shape != expected:
            raise ValueError(
                f"request image shape {arr.shape} != plan geometry {expected}"
            )
        return {names[0]: arr}

    def _run_stages(
        self,
        images: dict[str, np.ndarray],
        tile_rows: Optional[int],
    ) -> np.ndarray:
        if self.fused_plan is not None:
            # One fused execution for the whole pipeline. The fused schedule
            # carries its own (overlapped) tiling, which already bounds the
            # per-tile working set — the request-level ``tile_rows``
            # streaming knob does not apply.
            from ..runtime.fused import run_fused

            return run_fused(self.fused_plan, images)
        # One pad cache per execution: prepad stages reuse padded buffers
        # across taps and stages of this call (and only this call — the
        # cache dies with the call, so nothing can go stale).
        pad_cache: dict = {}
        for desc in self.descs:
            images[desc.output_name] = run_kernel_vectorized(
                desc,
                images,
                variant=self.kernel_variants[desc.output_name],
                tile_rows=tile_rows,
                pad_cache=pad_cache,
                warp_width=self.device.warp_size,
            )
        return images[self.output_name]

    def execute(
        self, image: np.ndarray, *, tile_rows: Optional[int] = None
    ) -> np.ndarray:
        """Vectorized host execution of every stage under the plan's choices."""
        return self._run_stages(self._bind_input(image), tile_rows)

    def execute_batch(
        self, images: np.ndarray, *, tile_rows: Optional[int] = None
    ) -> np.ndarray:
        """Kernel-level batched execution: one ``(N, H, W)`` stack, one call.

        Every stage evaluates the whole batch in a single NumPy expression
        (the leading axis rides through the region evaluators), so N
        same-signature requests pay the Python/plan overhead once instead
        of N times. Plans and their cache digests are batch-agnostic: the
        same cached plan serves N=1 and N=8 — batch size is an execution-
        time property, not part of plan identity.
        """
        return self._run_stages(
            self._bind_input(images, batch=True), tile_rows
        )

    def execute_simt(
        self,
        image: np.ndarray,
        *,
        abort: Optional[threading.Event] = None,
        collect: Optional[list] = None,
    ) -> np.ndarray:
        """Full functional SIMT simulation (slow; the engine guards it with a
        timeout and falls back to :meth:`execute`).

        ``abort`` is polled by the warp interpreter: setting it makes an
        abandoned over-deadline simulation stop instead of running to
        completion in a zombie thread. ``collect``, when given, receives one
        ``(kernel_name, variant, Profiler)`` triple per stage — the engine
        lifts these into per-region trace profiles for sampled requests.
        """
        from ..gpu.cost import cost_table_for
        from ..gpu.launch import launch
        from ..gpu.memory import GlobalMemory
        from ..gpu.profiler import Profiler
        from ..ir.types import DataType
        from ..trace import core as _trace_core

        images = self._bind_input(image)
        compiled = self._compiled_simt()

        n_images = len(self.descs) + len(images)
        px = max(d.width * d.height for d in self.descs)
        mem = GlobalMemory(
            1 << max(16, math.ceil(math.log2((n_images + 2) * px * 4 + 4096)))
        )
        bases: dict[str, int] = {}
        for name, arr in images.items():
            bases[name] = mem.alloc(arr.size * 4)
            mem.write_array(bases[name], arr)

        if len(compiled) == 1 and isinstance(compiled[0], CompiledFusedKernel):
            # One megakernel for the whole pipeline: intermediates live in
            # shared memory, so only the final output touches global.
            cfk = compiled[0]
            out_base = mem.alloc(cfk.plan.width * cfk.plan.height * 4)
            bases[cfk.plan.output_name] = out_base
            prof = Profiler(cost_table_for(self.device))
            t0 = time.perf_counter()
            launch(cfk.func, cfk.launch_config, mem, cfk.param_values(bases),
                   prof, abort=abort)
            if _trace_core._current is not None:
                ctx = _trace_core.current_context()
                if ctx is not None:
                    tracer, parent = ctx
                    tracer.record_span(
                        f"launch:{cfk.name}", parent,
                        t0, time.perf_counter(),
                        variant="fused",
                        warp_instructions=prof.warp_instructions,
                        regions=prof.region_totals(),
                        events=prof.event_totals(),
                    )
            if collect is not None:
                collect.append((cfk.name, "fused", prof))
            return mem.read_array(
                out_base, (cfk.plan.height, cfk.plan.width), DataType.F32
            )

        for desc, ck in zip(self.descs, compiled):
            out_base = mem.alloc(desc.width * desc.height * 4)
            bases[desc.output_name] = out_base
            prof = Profiler(cost_table_for(self.device))
            t0 = time.perf_counter()
            launch(ck.func, ck.launch_config, mem, ck.param_values(bases), prof,
                   abort=abort)
            if _trace_core._current is not None:
                ctx = _trace_core.current_context()
                if ctx is not None:
                    tracer, parent = ctx
                    tracer.record_span(
                        f"launch:{desc.name}", parent,
                        t0, time.perf_counter(),
                        variant=self.kernel_variants[desc.output_name],
                        warp_instructions=prof.warp_instructions,
                        regions=prof.region_totals(),
                        events=prof.event_totals(),
                    )
            if collect is not None:
                collect.append(
                    (desc.name, self.kernel_variants[desc.output_name], prof)
                )
            images[desc.output_name] = mem.read_array(
                out_base, (desc.height, desc.width), DataType.F32
            )
        return images[self.output_name]

    def sanitize(self) -> list:
        """Run the static bounds sanitizer over every stage's compiled SIMT
        kernel (the code shape the plan's variant choices would execute).

        Returns the per-kernel :class:`repro.sanitize.SanitizeReport` list;
        the engine rejects the plan if any report carries findings.  The
        compiled artifacts are memoized, so a later SIMT execution reuses
        exactly the kernels that were sanitized.
        """
        from ..sanitize.static import sanitize_compiled, sanitize_fused

        return [
            sanitize_fused(ck) if isinstance(ck, CompiledFusedKernel)
            else sanitize_compiled(ck)
            for ck in self._compiled_simt()
        ]

    def _compiled_simt(self) -> list:
        with self._simt_lock:
            if self._simt_compiled is None:
                if self.fused_plan is not None:
                    # Fused plans compile to one per-block halo-staging
                    # megakernel; shapes the generator refuses (degenerate
                    # geometry, non-exact tiling, uncommuting borders,
                    # scratchpad over the device limit) run staged NAIVE,
                    # mirroring the host path's degenerate fallback.
                    try:
                        self._simt_compiled = [compile_fused_simt(
                            self.fused_plan,
                            block=self.key.block,
                            device=self.device,
                        )]
                        return self._simt_compiled
                    except CompileError:
                        pass
                mapping = {
                    "naive": Variant.NAIVE,
                    "isp": Variant.ISP,
                    "isp_warp": Variant.ISP_WARP,
                    # prepad is a host-side execution strategy; its compiled
                    # SIMT shape (for sanitize / simulation) is the fully
                    # checked single-region kernel, which is semantically
                    # identical.
                    "prepad": Variant.NAIVE,
                    "fused": Variant.NAIVE,
                }
                self._simt_compiled = [
                    compile_kernel(
                        desc,
                        variant=mapping[self.kernel_variants[desc.output_name]],
                        block=self.key.block,
                        device=self.device,
                    )
                    for desc in self.descs
                ]
            return self._simt_compiled


def build_plan(
    app: str,
    pattern: str,
    width: int,
    height: int,
    *,
    variant: str = "isp+m",
    device: DeviceSpec = GTX680,
    block: tuple[int, int] = (32, 4),
    constant: float = 0.0,
    descs: Optional[list[KernelDescription]] = None,
) -> ExecutionPlan:
    """Trace, validate and variant-select one workload (the slow path).

    For ``variant="isp"`` a degenerate region geometry raises
    :class:`~repro.compiler.isp.CompileError` — the engine's graceful
    degradation catches it and rebuilds the plan as ``"naive"`` (the
    compiler's own silent fallback would hide the event from metrics).
    ``variant="isp+m"`` invokes the analytic model per bordered kernel.
    """
    t0 = time.perf_counter()
    if descs is None:
        descs = trace_app(app, pattern, width, height, constant)
    key = plan_key(descs, variant=variant, pattern=pattern, device=device,
                   block=block)

    choices: dict[str, str] = {}
    for desc in descs:
        if not desc.needs_border_handling:
            choices[desc.output_name] = "naive"
            continue
        if variant == "naive":
            choices[desc.output_name] = "naive"
        elif variant in ("isp", "isp_warp"):
            hx, hy = desc.extent
            geom = RegionGeometry.compute(desc.width, desc.height, hx, hy, block)
            if geom.degenerate:
                raise CompileError(
                    f"{desc.name}: degenerate ISP geometry for "
                    f"{desc.width}x{desc.height} with block {block[0]}x{block[1]}"
                )
            choices[desc.output_name] = variant
        elif variant == "prepad":
            # No degenerate gate: the total border mappings in make_border
            # cover any apron depth, over-wide windows included.
            choices[desc.output_name] = "prepad"
        elif variant == "fused":
            # No degenerate gate either: the fused schedule's halo hulls are
            # computed by the total border mapping, so over-wide windows and
            # 1x1 images are covered (pinned by the pipeline differential).
            choices[desc.output_name] = "fused"
        else:  # isp+m — the model decides per kernel (paper Eq. 10)
            from ..model.prediction import predict_kernel

            prediction = predict_kernel(desc, block=block, device=device)
            choices[desc.output_name] = "isp" if prediction.use_isp else "naive"

    fused_plan = None
    if variant == "fused":
        fused_plan = fuse_descs(descs, name=app)

    return ExecutionPlan(
        key=key,
        app=app,
        descs=descs,
        kernel_variants=choices,
        build_seconds=time.perf_counter() - t0,
        device=device,
        fused_plan=fused_plan,
    )
