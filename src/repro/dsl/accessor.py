"""Accessors: how kernels read images.

An :class:`Accessor` pairs an image with a boundary condition (paper Listing
4: ``Accessor<float> acc(bound)``). Inside ``Kernel.kernel()``, calling the
accessor with a static window offset — ``self.input(dx, dy)`` — produces a
:class:`~repro.dsl.expr.PixelAccess` AST node.
"""

from __future__ import annotations

from typing import Union

from .boundary import Boundary, BoundaryCondition
from .expr import PixelAccess
from .image import Image


class Accessor:
    """Read handle on an image, carrying the border pattern."""

    def __init__(self, source: Union[Image, BoundaryCondition]):
        if isinstance(source, Image):
            source = BoundaryCondition(source, Boundary.UNDEFINED)
        if not isinstance(source, BoundaryCondition):
            raise TypeError("Accessor takes an Image or a BoundaryCondition")
        self.condition = source

    @property
    def image(self) -> Image:
        return self.condition.image

    @property
    def boundary(self) -> Boundary:
        return self.condition.boundary

    @property
    def constant(self) -> float:
        return self.condition.constant

    def __call__(self, dx: int = 0, dy: int = 0) -> PixelAccess:
        """Read the pixel at window offset (dx, dy) from the output pixel."""
        return PixelAccess(self, dx, dy)

    def at(self, dx: int = 0, dy: int = 0) -> PixelAccess:
        """Alias of :meth:`__call__` for readability in long kernels."""
        return PixelAccess(self, dx, dy)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Accessor({self.image.name}, {self.boundary.value})"
