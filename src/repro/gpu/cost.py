"""Per-architecture instruction cost tables.

The timing model bills each executed warp-instruction a number of *issue
cycles*. The values are relative throughput costs in the spirit of the CUDA
programming guide's arithmetic-throughput tables (instructions per clock per
SM, inverted and normalised to a simple integer scale):

* simple ALU / compare / select / convert: 1 cycle,
* integer multiply/mad: full-rate on Kepler GK104, slightly slower on Turing's
  INT32 path for ``mad`` chains: kept at 1 for both (address arithmetic is
  issue-bound, not latency-bound),
* integer divide / remainder: expanded to many instructions by real compilers,
  billed as a fixed multi-cycle cost here,
* SFU ops (``ex2``, ``rcp``, ``sqrt`` ...): quarter rate,
* memory ops: an issue slot plus a per-transaction cost that scales with the
  number of 128-byte segments the warp touches (coalescing model).

Absolute times produced from these tables are *pseudo-seconds*; every result
we report is a ratio (speedup), which is what the paper reports too.
"""

from __future__ import annotations

import dataclasses

from ..ir.instructions import Instruction, Opcode, SFU_OPS
from .device import DeviceSpec


@dataclasses.dataclass(frozen=True)
class CostTable:
    """Issue-cycle costs for one architecture."""

    alu: float = 1.0
    imul: float = 1.0
    idiv: float = 12.0
    sfu: float = 4.0
    mem_issue: float = 2.0
    mem_transaction: float = 4.0
    #: textured loads: TMU issue cost; transactions are billed like global
    #: memory (the texture cache helps latency, not bandwidth, for streaming
    #: stencils)
    tex_issue: float = 2.0
    #: shared-memory accesses: on-chip, no DRAM transactions (bank conflicts
    #: are not modelled — our staging layout is conflict-light)
    shared_issue: float = 1.0
    #: bar.sync: pipeline drain per barrier
    barrier: float = 8.0
    #: branches cost more than ALU ops: they occupy the branch unit, flush
    #: the dual-issue pair, and inhibit scheduling across them — this is why
    #: Repeat's while-loops make it the costliest pattern (paper Fig. 6).
    branch: float = 2.0
    #: extra cycles billed when a warp diverges at a branch (both paths run)
    divergence_penalty: float = 4.0

    def rate(self, category: str) -> float:
        """Issue cycles per warp instruction of a cost category."""
        return {
            "alu": self.alu,
            "imul": self.imul,
            "idiv": self.idiv,
            "sfu": self.sfu,
            "mem": self.mem_issue,
            "tex": self.tex_issue,
            "shared": self.shared_issue,
            "barrier": self.barrier,
            "branch": self.branch,
        }[category]

    def issue_cost(self, instr: Instruction) -> float:
        """Issue cycles for one warp execution of ``instr`` (memory
        transaction costs are added separately by the profiler)."""
        return self.rate(category_of(instr))


def category_of(instr: Instruction) -> str:
    """Device-independent cost category of an instruction.

    Profiles store per-category counts so one profiling run can be priced on
    any device's cost table.
    """
    op = instr.op
    if op is Opcode.TEX:
        return "tex"
    if op in (Opcode.LDS, Opcode.STS):
        return "shared"
    if op is Opcode.BAR:
        return "barrier"
    if op in (Opcode.LD, Opcode.ST):
        return "mem"
    if op is Opcode.BRA or op is Opcode.EXIT:
        return "branch"
    if op in SFU_OPS:
        return "sfu"
    if op in (Opcode.DIV, Opcode.REM) and instr.dtype.is_integer:
        return "idiv"
    if op in (Opcode.MUL, Opcode.MAD) and instr.dtype.is_integer:
        return "imul"
    if op is Opcode.DIV:  # f32 division -> rcp+mul style cost
        return "sfu"
    return "alu"


_KEPLER = CostTable(imul=1.0, idiv=14.0, sfu=6.0, mem_issue=2.0,
                    mem_transaction=4.0, branch=2.5, divergence_penalty=5.0)
# Pascal keeps Kepler's SFU ratio but a faster memory path and cheaper
# divide expansion (dedicated INT path arrived with Volta; GP10x sits
# between the two evaluated parts on every rate).
_PASCAL = CostTable(imul=1.0, idiv=12.0, sfu=5.0, mem_issue=1.5,
                    mem_transaction=3.5, branch=2.0, divergence_penalty=4.0)
_TURING = CostTable(imul=1.0, idiv=10.0, sfu=4.0, mem_issue=1.0,
                    mem_transaction=3.0, branch=2.0, divergence_penalty=4.0)
# Ampere: Turing-like issue rates with a wider L2/DRAM path, so the
# per-transaction charge drops; divergence cost matches Turing's
# independent-thread-scheduling reconvergence.
_AMPERE = CostTable(imul=1.0, idiv=10.0, sfu=4.0, mem_issue=1.0,
                    mem_transaction=2.5, branch=2.0, divergence_penalty=4.0)
# GCN5 (wave64): scalar/vector split makes branches cheap to issue but a
# diverged 64-lane wave serializes twice the work, and VALU transcendentals
# run quarter-rate over 4 SIMD16 passes.
_GCN = CostTable(imul=1.5, idiv=16.0, sfu=6.0, mem_issue=2.0,
                 mem_transaction=4.0, branch=1.5, divergence_penalty=8.0)
# CDNA keeps GCN's wave64 execution model on an HBM2 part: same divergence
# economics, markedly cheaper memory transactions.
_CDNA = CostTable(imul=1.0, idiv=12.0, sfu=5.0, mem_issue=1.5,
                  mem_transaction=2.5, branch=1.5, divergence_penalty=8.0)

_BY_ARCH = {
    "Kepler": _KEPLER,
    "Pascal": _PASCAL,
    "Turing": _TURING,
    "Ampere": _AMPERE,
    "GCN5": _GCN,
    "CDNA": _CDNA,
}


def cost_table_for(device: DeviceSpec) -> CostTable:
    """Cost table for a device (defaults to Turing-like for unknown arch)."""
    return _BY_ARCH.get(device.arch, _TURING)
