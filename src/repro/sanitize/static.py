"""Static IR bounds sanitizer: prove every load/store address in-bounds.

The pass symbolically executes each compiled kernel variant over the integer
interval domain of :mod:`repro.sanitize.intervals`:

* **Per-region seeding.** Thread coordinates are seeded from the block-index
  bounds of :class:`repro.compiler.regions.RegionGeometry` (paper Eq. 2):
  for an ISP kernel the grid's block columns split into the classes
  ``[0, BH_L)``, ``[BH_L, BH_R)``, ``[BH_R, gx)`` (rows analogously), and
  every non-empty column x row class is analyzed as its own *context*.
  Under a context every dispatch-chain comparison is decidable, so each
  context flows into exactly the region clone that geometry assigns it —
  the sanitizer checks region code under precisely the coordinate ranges
  that region can observe, which is the whole soundness argument of ISP.
* **Path-sensitive refinement.** At an undecided conditional branch the
  path forks and each edge refines the registers named by the predicate
  (``and``-true and ``or``-false distribute; the bounds-guard's
  ``x >= out_w || y >= out_h`` false-edge yields ``x < out_w`` etc.).
  Refinements propagate backwards through ``mov``/``add``/``sub``/shift
  chains, so a constraint on ``warp_x = tid.x >> 5`` (warp-grained
  re-routing, paper Listing 5) tightens ``tid.x`` and with it every
  coordinate derived from it.
* **Correlation through selp.** ``selp dst, a, b, p`` is evaluated by
  re-evaluating each arm's def-chain under the corresponding refinement of
  ``p`` and joining the results.  This is what lets the pass *prove* the
  closed-form Mirror mapping in-bounds — and what made it flag the old
  single-reflection-per-side lowering, whose reflected arm can exceed the
  opposite border for taps more than one image size past the edge.
* **Loop summarization.** The Repeat pattern's ``while`` loops are detected
  structurally (a conditional branch whose taken block jumps straight back)
  and summarized by a bounded local fixpoint that accumulates the union of
  all exit states; no path explosion, no widening.

Every ``ld.global``/``st.global`` whose address resolves to ``base + off``
with a known buffer extent is then checked: ``off`` must lie within
``[0, bytes - 4]``.  Anything not provable is a :class:`Finding`.
"""

from __future__ import annotations

import dataclasses
import itertools
from collections import Counter
from typing import Iterable, Optional, Union

from ..compiler.driver import CompiledKernel, compile_kernel
from ..compiler.frontend import KernelDescription
from ..compiler.isp import Variant
from ..compiler.regions import RegionGeometry
from ..ir.function import BasicBlock, KernelFunction
from ..ir.instructions import (
    CmpOp,
    Immediate,
    Instruction,
    Opcode,
    Register,
    SpecialReg,
)
from ..ir.types import DataType
from .intervals import EMPTY, TOP, Interval, at_least, at_most, const

#: iterations after which a while-loop summary gives up (far above any real
#: Repeat trip count: trips scale with window-extent / image-size).
LOOP_CAP = 256
#: def-chain evaluation depth cap — address/predicate chains are shallow
#: (~15); hitting this returns TOP, which can only *add* findings.
MAX_DEPTH = 400
#: per-context cap on forked paths (dispatch chains are decidable under the
#: context seeds, so in practice a handful of paths suffice).
PATH_CAP = 512


class SanitizeError(Exception):
    """Raised when sanitization rejects a kernel (used by serve/CLI)."""

    def __init__(self, reports: "list[SanitizeReport]"):
        self.reports = reports
        findings = [f for r in reports for f in r.findings]
        super().__init__(
            f"{len(findings)} bounds finding(s) in "
            + ", ".join(sorted({r.kernel for r in reports if not r.ok}))
        )


@dataclasses.dataclass(frozen=True)
class Finding:
    """One unproven (or provably wrong) memory access."""

    kernel: str
    variant: str
    region: Optional[str]
    context: str
    kind: str  # "load" / "store" / "analysis"
    message: str

    def __str__(self) -> str:
        where = f"{self.kernel}/{self.variant}"
        if self.region:
            where += f"/{self.region}"
        return f"[{where}] ({self.context}) {self.kind}: {self.message}"


@dataclasses.dataclass
class SanitizeReport:
    """Result of sanitizing one compiled kernel variant."""

    kernel: str
    variant: str
    contexts: int = 0
    loads_proved: int = 0
    stores_proved: int = 0
    findings: list[Finding] = dataclasses.field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def summary(self) -> str:
        status = "ok" if self.ok else f"{len(self.findings)} finding(s)"
        return (
            f"{self.kernel:24s} {self.variant:10s} "
            f"{self.contexts:2d} context(s), "
            f"{self.loads_proved} loads / {self.stores_proved} stores proved: "
            f"{status}"
        )


@dataclasses.dataclass(frozen=True)
class _Pointer:
    """Abstract address: a named base pointer plus a byte-offset interval."""

    base: str
    off: Interval


_Value = Union[Interval, _Pointer]


# --------------------------------------------------------------- predicates


@dataclasses.dataclass(frozen=True)
class _Cmp:
    cmp: CmpOp
    lhs: object  # Register | Immediate
    rhs: object


@dataclasses.dataclass(frozen=True)
class _And:
    lhs: object
    rhs: object


@dataclasses.dataclass(frozen=True)
class _Or:
    lhs: object
    rhs: object


@dataclasses.dataclass(frozen=True)
class _Not:
    child: object


_UNKNOWN_PRED = object()


_NEGATE = {
    CmpOp.EQ: CmpOp.NE,
    CmpOp.NE: CmpOp.EQ,
    CmpOp.LT: CmpOp.GE,
    CmpOp.GE: CmpOp.LT,
    CmpOp.LE: CmpOp.GT,
    CmpOp.GT: CmpOp.LE,
}


class _Path:
    """One symbolic execution path within a context."""

    __slots__ = ("label", "index", "env", "cons", "memo", "visits", "steps")

    def __init__(self, label: str):
        self.label = label
        self.index = 0
        #: eagerly tracked values of multiply-defined (loop-carried) registers
        self.env: dict[str, _Value] = {}
        #: active branch-edge refinements, register name -> Interval
        self.cons: dict[str, Interval] = {}
        #: def-chain evaluation cache (valid for the current cons/env)
        self.memo: dict[str, _Value] = {}
        self.visits: Counter = Counter()
        self.steps = 0

    def fork(self, label: str) -> "_Path":
        child = _Path(label)
        child.env = dict(self.env)
        child.cons = dict(self.cons)
        child.visits = Counter(self.visits)
        child.steps = self.steps
        return child


class _Analyzer:
    """Symbolic interval execution of one kernel function."""

    def __init__(
        self,
        func: KernelFunction,
        *,
        grid: tuple[int, int],
        block: tuple[int, int],
        extents: dict[str, int],
        scalars: dict[str, int],
        geometry: Optional[RegionGeometry],
        report: SanitizeReport,
    ):
        self.func = func
        self.grid = grid
        self.block = block
        self.extents = extents
        self.geometry = geometry
        self.report = report
        self.blocks = {b.label: b for b in func.blocks}
        counts: Counter = Counter()
        for ins in func.instructions():
            if ins.dst is not None:
                counts[ins.dst.name] += 1
        self.multi = {name for name, n in counts.items() if n > 1}
        self.defs: dict[str, Instruction] = {}
        for ins in func.instructions():
            if ins.dst is not None and ins.dst.name not in self.multi:
                self.defs[ins.dst.name] = ins
        self.params: dict[str, _Value] = {}
        for p in func.params:
            if p.is_pointer:
                self.params[p.name] = _Pointer(p.name, const(0))
            elif p.name in scalars:
                self.params[p.name] = const(scalars[p.name])
            else:
                self.params[p.name] = TOP
        self.seed: dict[SpecialReg, Interval] = {}
        self.ctx_desc = ""
        self._seen_findings: set[tuple] = set()

    # ------------------------------------------------------------- contexts

    def contexts(self) -> Iterable[tuple[dict[SpecialReg, Interval], str]]:
        gx, gy = self.grid
        tx, ty = self.block
        base = {
            SpecialReg.NTID_X: const(tx),
            SpecialReg.NTID_Y: const(ty),
            SpecialReg.NCTAID_X: const(gx),
            SpecialReg.NCTAID_Y: const(gy),
            SpecialReg.TID_X: Interval(0, tx - 1),
            SpecialReg.TID_Y: Interval(0, ty - 1),
            SpecialReg.LANEID: Interval(0, 31),
            SpecialReg.WARPID: Interval(0, max(0, (tx * ty - 1) // 32)),
        }
        geom = self.geometry
        if geom is None:
            yield (
                {
                    **base,
                    SpecialReg.CTAID_X: Interval(0, gx - 1),
                    SpecialReg.CTAID_Y: Interval(0, gy - 1),
                },
                f"blocks [0,{gx - 1}]x[0,{gy - 1}]",
            )
            return

        def classes(low: int, high: int, total: int) -> list[tuple[int, int]]:
            out = []
            if low > 0:
                out.append((0, low - 1))
            if high > low:
                out.append((low, high - 1))
            if total > high:
                out.append((high, total - 1))
            return out

        cols = classes(geom.bh_l, geom.bh_r, gx)
        rows = classes(geom.bh_t, geom.bh_b, gy)
        for (cx0, cx1), (cy0, cy1) in itertools.product(cols, rows):
            yield (
                {
                    **base,
                    SpecialReg.CTAID_X: Interval(cx0, cx1),
                    SpecialReg.CTAID_Y: Interval(cy0, cy1),
                },
                f"blocks [{cx0},{cx1}]x[{cy0},{cy1}]",
            )

    # ------------------------------------------------------------ evaluation

    def _eval(self, opnd, path: _Path, cons: dict, memo, depth: int) -> _Value:
        if isinstance(opnd, Immediate):
            if opnd.dtype.is_integer or opnd.dtype is DataType.PRED:
                return const(int(opnd.value))
            return TOP
        assert isinstance(opnd, Register)
        name = opnd.name
        if name in path.env:
            return self._refine_val(path.env[name], cons.get(name))
        if memo is not None and name in memo:
            return memo[name]
        if depth > MAX_DEPTH:
            return TOP
        ins = self.defs.get(name)
        if ins is None:
            return self._refine_val(TOP, cons.get(name))
        val = self._compute(ins, path, cons, memo, depth + 1)
        val = self._refine_val(val, cons.get(name))
        if memo is not None:
            memo[name] = val
        return val

    @staticmethod
    def _refine_val(val: _Value, bound: Optional[Interval]) -> _Value:
        if bound is None:
            return val
        if isinstance(val, _Pointer):
            return val  # constraints never name pointer registers
        return val.intersect(bound)

    def _compute(
        self, ins: Instruction, path: _Path, cons: dict, memo, depth: int
    ) -> _Value:
        op = ins.op
        ev = lambda o: self._eval(o, path, cons, memo, depth)

        if op is Opcode.MOV:
            if ins.special is not None:
                # All MOVs of the same special read the same hardware value,
                # so constraints learned through any alias (recorded under the
                # synthetic "@SPECIAL" key) apply here too.
                val = self.seed.get(ins.special, TOP)
                return self._refine_val(val, cons.get("@" + ins.special.name))
            return ev(ins.srcs[0])
        if op is Opcode.LDPARAM:
            return self.params.get(ins.param, TOP)
        if op in (Opcode.LD, Opcode.LDS, Opcode.TEX):
            return TOP  # data, not addresses
        if op is Opcode.SELP:
            return self._compute_selp(ins, path, cons, depth)
        if not ins.dtype.is_integer:
            return TOP

        if op is Opcode.CVT:
            src = ev(ins.srcs[0])
            return src if isinstance(src, Interval) else TOP

        a = ev(ins.srcs[0]) if len(ins.srcs) > 0 else None
        bv = ev(ins.srcs[1]) if len(ins.srcs) > 1 else None

        if op is Opcode.ADD:
            if isinstance(a, _Pointer) and isinstance(bv, Interval):
                return _Pointer(a.base, a.off.add(bv))
            if isinstance(bv, _Pointer) and isinstance(a, Interval):
                return _Pointer(bv.base, bv.off.add(a))
            if isinstance(a, Interval) and isinstance(bv, Interval):
                return a.add(bv)
            return TOP
        if op is Opcode.SUB:
            if isinstance(a, _Pointer) and isinstance(bv, Interval):
                return _Pointer(a.base, a.off.sub(bv))
            if isinstance(a, Interval) and isinstance(bv, Interval):
                return a.sub(bv)
            return TOP
        if isinstance(a, _Pointer) or isinstance(bv, _Pointer):
            return TOP

        if op is Opcode.MUL:
            return a.mul(bv)
        if op is Opcode.MAD:
            c = ev(ins.srcs[2])
            if isinstance(c, _Pointer):
                prod = a.mul(bv)
                return _Pointer(c.base, c.off.add(prod))
            if not isinstance(c, Interval):
                return TOP
            return a.mul(bv).add(c)
        if op is Opcode.MIN:
            return a.min_(bv)
        if op is Opcode.MAX:
            return a.max_(bv)
        if op is Opcode.REM:
            return a.rem_trunc(bv)
        if op is Opcode.DIV:
            return a.div_trunc(bv)
        if op is Opcode.SHL:
            return a.shl(bv)
        if op is Opcode.SHR:
            return a.shr(bv)
        if op is Opcode.NEG:
            return a.neg()
        if op is Opcode.ABS:
            return a.abs_()
        if op is Opcode.AND:
            if a.is_const and bv.is_const:
                return const(int(a.lo) & int(bv.lo))
            for mask in (a, bv):
                other = bv if mask is a else a
                if mask.is_const and mask.lo >= 0 and other.lo >= 0:
                    return Interval(0, mask.lo)
            return TOP
        if op in (Opcode.OR, Opcode.XOR):
            if a.is_const and bv.is_const:
                v = int(a.lo) | int(bv.lo) if op is Opcode.OR else int(a.lo) ^ int(bv.lo)
                return const(v)
            return TOP
        return TOP

    def _compute_selp(
        self, ins: Instruction, path: _Path, cons: dict, depth: int
    ) -> _Value:
        pred = self._build_pred(ins.srcs[2], path, depth)
        dec = self._decide(pred, path, cons, depth)
        if dec is True:
            return self._eval(ins.srcs[0], path, cons, None, depth)
        if dec is False:
            return self._eval(ins.srcs[1], path, cons, None, depth)
        # Undecided: evaluate each arm under the matching refinement of the
        # predicate's registers and join.  Re-evaluating the arm's def chain
        # under the refinement is what captures the arm/predicate correlation
        # (e.g. "reflected = -1 - c" is only selected when "c < 0").
        parts = []
        for want, arm in ((True, ins.srcs[0]), (False, ins.srcs[1])):
            ref = self._refine_pred(pred, want, path, cons, depth)
            if ref is None:
                continue  # this arm is infeasible under current constraints
            merged = self._merge_cons(cons, ref)
            if merged is None:
                continue
            parts.append(self._eval(arm, path, merged, None, depth))
        if not parts:
            return EMPTY
        if all(isinstance(p, Interval) for p in parts):
            out = parts[0]
            for p in parts[1:]:
                out = out.union(p)
            return out
        if (
            all(isinstance(p, _Pointer) for p in parts)
            and len({p.base for p in parts}) == 1
        ):
            off = parts[0].off
            for p in parts[1:]:
                off = off.union(p.off)
            return _Pointer(parts[0].base, off)
        return TOP

    # ------------------------------------------------------------ predicates

    def _build_pred(self, opnd, path: _Path, depth: int = 0):
        if isinstance(opnd, Immediate):
            return bool(opnd.value)
        assert isinstance(opnd, Register)
        if opnd.name in self.multi or depth > MAX_DEPTH:
            return _UNKNOWN_PRED
        ins = self.defs.get(opnd.name)
        if ins is None:
            return _UNKNOWN_PRED
        if ins.op is Opcode.SETP:
            return _Cmp(ins.cmp, ins.srcs[0], ins.srcs[1])
        if ins.op is Opcode.AND:
            return _And(
                self._build_pred(ins.srcs[0], path, depth + 1),
                self._build_pred(ins.srcs[1], path, depth + 1),
            )
        if ins.op is Opcode.OR:
            return _Or(
                self._build_pred(ins.srcs[0], path, depth + 1),
                self._build_pred(ins.srcs[1], path, depth + 1),
            )
        if ins.op is Opcode.NOT:
            return _Not(self._build_pred(ins.srcs[0], path, depth + 1))
        if ins.op is Opcode.MOV and ins.special is None:
            return self._build_pred(ins.srcs[0], path, depth + 1)
        return _UNKNOWN_PRED

    def _decide(self, pred, path: _Path, cons: dict, depth: int = 0):
        """Three-valued truth of a predicate tree: True / False / None."""
        if isinstance(pred, bool):
            return pred
        if pred is _UNKNOWN_PRED:
            return None
        if isinstance(pred, _Not):
            d = self._decide(pred.child, path, cons, depth)
            return None if d is None else (not d)
        if isinstance(pred, _And):
            l = self._decide(pred.lhs, path, cons, depth)
            r = self._decide(pred.rhs, path, cons, depth)
            if l is False or r is False:
                return False
            if l is True and r is True:
                return True
            return None
        if isinstance(pred, _Or):
            l = self._decide(pred.lhs, path, cons, depth)
            r = self._decide(pred.rhs, path, cons, depth)
            if l is True or r is True:
                return True
            if l is False and r is False:
                return False
            return None
        assert isinstance(pred, _Cmp)
        a = self._eval(pred.lhs, path, cons, path.memo, depth)
        b = self._eval(pred.rhs, path, cons, path.memo, depth)
        if not isinstance(a, Interval) or not isinstance(b, Interval):
            return None
        if a.empty or b.empty:
            return None
        cmp = pred.cmp
        if cmp is CmpOp.LT:
            if a.hi < b.lo:
                return True
            if a.lo >= b.hi:
                return False
        elif cmp is CmpOp.LE:
            if a.hi <= b.lo:
                return True
            if a.lo > b.hi:
                return False
        elif cmp is CmpOp.GT:
            if a.lo > b.hi:
                return True
            if a.hi <= b.lo:
                return False
        elif cmp is CmpOp.GE:
            if a.lo >= b.hi:
                return True
            if a.hi < b.lo:
                return False
        elif cmp is CmpOp.EQ:
            if a.is_const and b.is_const and a.lo == b.lo:
                return True
            if a.intersect(b).empty:
                return False
        elif cmp is CmpOp.NE:
            if a.intersect(b).empty:
                return True
            if a.is_const and b.is_const and a.lo == b.lo:
                return False
        return None

    def _refine_pred(
        self, pred, want: bool, path: _Path, cons: dict, depth: int = 0
    ) -> Optional[dict[str, Interval]]:
        """Register refinements implied by ``pred == want``.

        Returns ``None`` when the assumption is infeasible, an empty dict
        when nothing can be refined (always sound).
        """
        if isinstance(pred, bool):
            return {} if pred is want else None
        if pred is _UNKNOWN_PRED:
            return {}
        if isinstance(pred, _Not):
            return self._refine_pred(pred.child, not want, path, cons, depth)
        if isinstance(pred, (_And, _Or)):
            distribute = want if isinstance(pred, _And) else not want
            if not distribute:
                return {}  # !(a&&b) / (a||b): disjunction — no refinement
            out: dict[str, Interval] = {}
            for child in (pred.lhs, pred.rhs):
                ref = self._refine_pred(child, want, path, cons, depth)
                if ref is None:
                    return None
                merged = self._merge_into(out, ref)
                if not merged:
                    return None
            return out
        assert isinstance(pred, _Cmp)
        cmp = pred.cmp if want else _NEGATE[pred.cmp]
        a, b = pred.lhs, pred.rhs
        ia = self._eval(a, path, cons, path.memo, depth)
        ib = self._eval(b, path, cons, path.memo, depth)
        if not isinstance(ia, Interval) or not isinstance(ib, Interval):
            return {}
        out: dict[str, Interval] = {}

        def bound_for(side_val: Interval, other: Interval, flip: bool) -> Interval:
            c = _NEGATE[cmp] if False else cmp
            if flip:
                swap = {
                    CmpOp.LT: CmpOp.GT,
                    CmpOp.GT: CmpOp.LT,
                    CmpOp.LE: CmpOp.GE,
                    CmpOp.GE: CmpOp.LE,
                    CmpOp.EQ: CmpOp.EQ,
                    CmpOp.NE: CmpOp.NE,
                }
                c = swap[c]
            if c is CmpOp.LT:
                return at_most(other.hi - 1)
            if c is CmpOp.LE:
                return at_most(other.hi)
            if c is CmpOp.GT:
                return at_least(other.lo + 1)
            if c is CmpOp.GE:
                return at_least(other.lo)
            if c is CmpOp.EQ:
                return other
            return TOP  # NE refines nothing interval-wise

        for opnd, own, other, flip in ((a, ia, ib, False), (b, ib, ia, True)):
            if not isinstance(opnd, Register):
                continue
            bound = bound_for(own, other, flip)
            if bound is TOP:
                continue
            refined = own.intersect(bound)
            if refined.empty:
                return None
            ok = self._prop_back(opnd.name, bound, out, path, cons, 0)
            if not ok:
                return None
        return out

    def _merge_into(self, dst: dict, src: dict) -> bool:
        for name, iv in src.items():
            cur = dst.get(name)
            nxt = iv if cur is None else cur.intersect(iv)
            if nxt.empty:
                return False
            dst[name] = nxt
        return True

    def _merge_cons(self, cons: dict, extra: dict) -> Optional[dict]:
        out = dict(cons)
        if not self._merge_into(out, extra):
            return None
        return out

    def _prop_back(
        self,
        name: str,
        bound: Interval,
        out: dict[str, Interval],
        path: _Path,
        cons: dict,
        depth: int,
    ) -> bool:
        """Record ``name ∈ bound`` and propagate it backwards through simple
        single-definition chains (mov / add-imm / sub-imm / shifts)."""
        if not self._merge_into(out, {name: bound}):
            return False
        if depth > 24 or name in self.multi:
            return True
        ins = self.defs.get(name)
        if ins is None:
            return True
        op = ins.op

        def imm_of(o) -> Optional[int]:
            if isinstance(o, Immediate) and o.dtype.is_integer:
                return int(o.value)
            if isinstance(o, Register):
                v = self._eval(o, path, cons, path.memo, depth)
                if isinstance(v, Interval) and v.is_const:
                    return int(v.lo)
            return None

        if op is Opcode.MOV and ins.special is not None:
            # Reached a special-register read.  Every MOV of this special is
            # an alias for the same value, so record the bound under a
            # synthetic per-special key that _compute consults for all of
            # them — refining only this one register name would miss aliases
            # (each b.special() call mints a fresh destination register).
            return self._merge_into(out, {"@" + ins.special.name: bound})
        if op is Opcode.MOV and ins.special is None and isinstance(ins.srcs[0], Register):
            return self._prop_back(ins.srcs[0].name, bound, out, path, cons, depth + 1)
        if op is Opcode.ADD:
            for i, j in ((0, 1), (1, 0)):
                c = imm_of(ins.srcs[j])
                if c is not None and isinstance(ins.srcs[i], Register):
                    shifted = bound.sub(const(c))
                    return self._prop_back(
                        ins.srcs[i].name, shifted, out, path, cons, depth + 1
                    )
        if op is Opcode.SUB:
            c = imm_of(ins.srcs[1])
            if c is not None and isinstance(ins.srcs[0], Register):
                return self._prop_back(
                    ins.srcs[0].name, bound.add(const(c)), out, path, cons, depth + 1
                )
            c = imm_of(ins.srcs[0])
            if c is not None and isinstance(ins.srcs[1], Register):
                return self._prop_back(
                    ins.srcs[1].name, const(c).sub(bound), out, path, cons, depth + 1
                )
        if op is Opcode.SHR:
            k = imm_of(ins.srcs[1])
            src = ins.srcs[0]
            if k is not None and k >= 0 and isinstance(src, Register):
                cur = self._eval(src, path, cons, path.memo, depth)
                if isinstance(cur, Interval) and cur.lo >= 0:
                    scale = 1 << k
                    lo = bound.lo if bound.lo == float("-inf") else bound.lo * scale
                    hi = (
                        bound.hi
                        if bound.hi == float("inf")
                        else (bound.hi + 1) * scale - 1
                    )
                    return self._prop_back(
                        src.name, Interval(lo, hi), out, path, cons, depth + 1
                    )
        if op is Opcode.SHL:
            k = imm_of(ins.srcs[1])
            src = ins.srcs[0]
            if k is not None and k >= 0 and isinstance(src, Register):
                return self._prop_back(
                    src.name, bound.shr(const(k)), out, path, cons, depth + 1
                )
        return True

    # --------------------------------------------------------------- walking

    def run(self) -> None:
        for seed, desc in self.contexts():
            self.seed = seed
            self.ctx_desc = desc
            self.report.contexts += 1
            stack = [_Path(self.func.entry.label)]
            spawned = 1
            while stack:
                path = stack.pop()
                spawned += self._run_path(path, stack)
                if spawned > PATH_CAP:
                    self._finding(None, "analysis", "path budget exceeded")
                    break

    def _run_path(self, path: _Path, stack: list) -> int:
        """Run one path to completion; pushes forks onto ``stack``.
        Returns the number of forks created."""
        forks = 0
        while True:
            block = self.blocks[path.label]
            n = len(block.instructions)
            while path.index < n:
                ins = block.instructions[path.index]
                path.index += 1
                path.steps += 1
                if path.steps > 200_000:
                    self._finding(ins, "analysis", "instruction budget exceeded")
                    return forks
                if ins.is_terminator:
                    nxt = self._terminator(ins, block, path, stack)
                    if nxt is None:
                        return forks
                    if isinstance(nxt, int):
                        forks += nxt
                        return forks
                    path.label, path.index = nxt, 0
                    path.visits[nxt] += 1
                    if path.visits[nxt] > LOOP_CAP:
                        self._finding(ins, "analysis", "block revisit cap exceeded")
                        return forks
                    break
                self._execute(ins, path)
            else:
                return forks  # block without terminator (verifier forbids)

    def _execute(self, ins: Instruction, path: _Path) -> None:
        if ins.op in (Opcode.LD, Opcode.ST):
            which = 0  # address operand
            addr = self._eval(ins.srcs[which], path, path.cons, path.memo, 0)
            self._check_access(addr, ins, "load" if ins.op is Opcode.LD else "store")
        elif ins.op in (Opcode.LDS, Opcode.STS):
            addr = self._eval(ins.srcs[0], path, path.cons, path.memo, 0)
            self._check_access(addr, ins, "shared-load" if ins.op is Opcode.LDS else "shared-store")
        if ins.dst is not None and ins.dst.name in self.multi:
            val = self._compute(ins, path, path.cons, None, 0)
            path.env[ins.dst.name] = val
            path.cons.pop(ins.dst.name, None)
            path.memo.clear()

    def _terminator(self, ins: Instruction, block: BasicBlock, path: _Path, stack):
        if ins.op is Opcode.EXIT:
            return None
        assert ins.op is Opcode.BRA
        if ins.pred is None:
            return ins.target
        pred = self._build_pred(ins.pred, path)
        if ins.pred_negated:
            pred = _Not(pred)

        # While-loop idiom (the Repeat pattern): one edge goes to a simple
        # block that branches straight back here — summarize instead of
        # forking per iteration.
        loop = self._match_loop(block, ins)
        if loop is not None:
            body_label, exit_label, body_cond = loop
            if isinstance(body_cond, _Not):
                cond = _Not(pred)
            else:
                cond = pred
            self._summarize_loop(path, cond, self.blocks[body_label], ins)
            return exit_label

        dec = self._decide(pred, path, path.cons)
        if dec is True:
            return ins.target
        if dec is False:
            return ins.target_else
        forks = 0
        for want, label in ((True, ins.target), (False, ins.target_else)):
            ref = self._refine_pred(pred, want, path, path.cons)
            if ref is None:
                continue
            merged = self._merge_cons(path.cons, ref)
            if merged is None:
                continue
            child = path.fork(label)
            child.cons = merged
            child.visits[label] += 1
            stack.append(child)
            forks += 1
        return forks

    def _match_loop(self, block: BasicBlock, ins: Instruction):
        """Detect ``while (p) { simple body }``: the cbr's taken (or else)
        target is a block ending in an unconditional branch back to us."""
        for taken, label, other in (
            (True, ins.target, ins.target_else),
            (False, ins.target_else, ins.target),
        ):
            body = self.blocks.get(label)
            if body is None:
                continue
            term = body.terminator
            if term is None or term.op is not Opcode.BRA or term.pred is not None:
                continue
            if term.target != block.label:
                continue
            if any(
                i.op in (Opcode.LD, Opcode.ST, Opcode.LDS, Opcode.STS, Opcode.TEX)
                for i in body.instructions
            ):
                continue
            # body_cond marker: _Not(...) when the *else* edge is the body
            return label, other, (object() if taken else _Not(object()))
        return None

    def _summarize_loop(
        self, path: _Path, cond, body: BasicBlock, ins: Instruction
    ) -> None:
        """Bounded local fixpoint over a single-block while loop."""
        acc: dict[str, _Value] = {}
        exited = False
        for _ in range(LOOP_CAP):
            path.memo.clear()
            dec = self._decide(cond, path, path.cons)
            if dec is not True:
                ref = self._refine_pred(cond, False, path, path.cons)
                if ref is not None:
                    snap = dict(path.env)
                    feasible = True
                    for name, iv in ref.items():
                        if name in snap and isinstance(snap[name], Interval):
                            v = snap[name].intersect(iv)
                            if v.empty:
                                feasible = False
                                break
                            snap[name] = v
                    if feasible:
                        for name, v in snap.items():
                            if name in acc and isinstance(v, Interval) and isinstance(
                                acc[name], Interval
                            ):
                                acc[name] = acc[name].union(v)
                            else:
                                acc[name] = v
                        exited = True
                if dec is False:
                    break
            ref_t = self._refine_pred(cond, True, path, path.cons)
            if ref_t is None:
                break
            dead = False
            for name, iv in ref_t.items():
                if name in path.env and isinstance(path.env[name], Interval):
                    v = path.env[name].intersect(iv)
                    if v.empty:
                        dead = True
                        break
                    path.env[name] = v
            if dead:
                break
            for body_ins in body.instructions:
                if body_ins.is_terminator:
                    break
                if body_ins.dst is not None:
                    path.env[body_ins.dst.name] = self._compute(
                        body_ins, path, path.cons, None, 0
                    )
                    path.cons.pop(body_ins.dst.name, None)
        else:
            self._finding(ins, "analysis", "loop iteration cap exceeded")
            # widen: keep only the exit refinement of whatever we know
            ref = self._refine_pred(cond, False, path, path.cons) or {}
            for name in {i.dst.name for i in body.instructions if i.dst is not None}:
                iv = ref.get(name, TOP)
                acc[name] = iv
            exited = True
        if exited:
            path.env.update(acc)
        path.memo.clear()

    # --------------------------------------------------------------- findings

    def _check_access(self, addr: _Value, ins: Instruction, kind: str) -> None:
        if not isinstance(addr, _Pointer):
            if isinstance(addr, Interval) and not addr.bounded:
                self._finding(ins, kind, "address not derived from a base pointer")
            return
        nbytes = self.extents.get(addr.base)
        if nbytes is None:
            return  # unknown buffer — nothing to check against
        off = addr.off
        if off.empty:
            return  # infeasible path
        if off.lo >= 0 and off.hi <= nbytes - 4:
            if kind == "load":
                self.report.loads_proved += 1
            elif kind == "store":
                self.report.stores_proved += 1
            return
        self._finding(
            ins,
            kind,
            f"offset {off} exceeds buffer {addr.base!r} of {nbytes} bytes",
        )

    def _finding(self, ins: Optional[Instruction], kind: str, message: str) -> None:
        region = ins.region if ins is not None else None
        key = (kind, region, message)
        if key in self._seen_findings:
            return
        self._seen_findings.add(key)
        self.report.findings.append(
            Finding(
                kernel=self.func.name,
                variant=self.report.variant,
                region=region,
                context=self.ctx_desc,
                kind=kind,
                message=message,
            )
        )


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------


def sanitize_function(
    func: KernelFunction,
    *,
    grid: tuple[int, int],
    block: tuple[int, int],
    extents: dict[str, int],
    scalars: Optional[dict[str, int]] = None,
    geometry: Optional[RegionGeometry] = None,
    variant: str = "custom",
) -> SanitizeReport:
    """Sanitize a raw :class:`KernelFunction` (testing / hand-built IR).

    ``extents`` maps pointer parameter names to buffer sizes in bytes;
    ``scalars`` maps scalar parameter names to their launch values.
    """
    report = SanitizeReport(kernel=func.name, variant=variant)
    analyzer = _Analyzer(
        func,
        grid=grid,
        block=block,
        extents=extents,
        scalars=scalars or {},
        geometry=geometry,
        report=report,
    )
    analyzer.run()
    return report


def sanitize_compiled(ck: CompiledKernel) -> SanitizeReport:
    """Sanitize one compiled kernel variant against its image geometry."""
    desc = ck.desc
    extents: dict[str, int] = {}
    scalars: dict[str, int] = {}
    for acc in desc.accessors:
        img = acc.image
        extents[f"{img.name}_ptr"] = img.width * img.height * 4
        scalars[f"{img.name}_w"] = img.width
        scalars[f"{img.name}_h"] = img.height
    extents["out_ptr"] = desc.width * desc.height * 4
    scalars["out_w"] = desc.width
    scalars["out_h"] = desc.height
    shared_bytes = int(ck.func.metadata.get("shared_bytes", 0))
    if shared_bytes:
        extents["smem_base"] = shared_bytes
    report = SanitizeReport(
        kernel=ck.func.name, variant=ck.effective_variant.value
    )
    analyzer = _Analyzer(
        ck.func,
        grid=ck.launch_config.grid,
        block=ck.block,
        extents=extents,
        scalars=scalars,
        geometry=ck.geometry,
        report=report,
    )
    analyzer.run()
    return report


def sanitize_fused(cfk) -> SanitizeReport:
    """Sanitize a fused SIMT megakernel (``CompiledFusedKernel``).

    The megakernel's parameters are the *pipeline's* external inputs plus
    the final output — intermediate stages live entirely inside the
    ``smem_base`` scratchpad, whose extent is the packed per-block
    footprint from the kernel metadata (the same number the occupancy
    charge and ``shared_tile_bytes`` derive from ``ELEMENT_BYTES``).
    """
    plan = cfk.plan
    extents: dict[str, int] = {}
    scalars: dict[str, int] = {}
    for name in cfk.layout.externals:
        extents[f"{name}_ptr"] = plan.width * plan.height * 4
        scalars[f"{name}_w"] = plan.width
        scalars[f"{name}_h"] = plan.height
    extents["out_ptr"] = plan.width * plan.height * 4
    scalars["out_w"] = plan.width
    scalars["out_h"] = plan.height
    extents["smem_base"] = int(cfk.func.metadata["shared_bytes"])
    report = SanitizeReport(kernel=cfk.func.name, variant="fused")
    analyzer = _Analyzer(
        cfk.func,
        grid=cfk.launch_config.grid,
        block=cfk.block,
        extents=extents,
        scalars=scalars,
        geometry=cfk.geometry,
        report=report,
    )
    analyzer.run()
    return report


def sanitize_kernel(
    kernel,
    *,
    variant: Variant = Variant.ISP,
    block: tuple[int, int] = (32, 4),
    fallback_to_naive: bool = True,
) -> SanitizeReport:
    """Compile ``kernel`` (DSL kernel or description) and sanitize it."""
    ck = compile_kernel(
        kernel, variant=variant, block=block, fallback_to_naive=fallback_to_naive
    )
    return sanitize_compiled(ck)


def sanitize_pipeline(
    pipeline,
    *,
    variant: Variant = Variant.ISP,
    block: tuple[int, int] = (32, 4),
) -> list[SanitizeReport]:
    """Sanitize every kernel of a DSL pipeline under one variant."""
    from ..compiler.frontend import trace_kernel

    return [
        sanitize_kernel(trace_kernel(k), variant=variant, block=block)
        for k in pipeline
    ]


DEFAULT_APPS = ("gaussian", "laplace", "bilateral", "sobel", "night")
DEFAULT_PATTERNS = ("clamp", "mirror", "repeat", "constant")
DEFAULT_VARIANTS = (Variant.NAIVE, Variant.ISP, Variant.ISP_WARP)
DEFAULT_SIZES = (64, 9)


def sanitize_corpus(
    *,
    apps: Iterable[str] = DEFAULT_APPS,
    patterns: Iterable[str] = DEFAULT_PATTERNS,
    variants: Iterable[Variant] = DEFAULT_VARIANTS,
    sizes: Iterable[int] = DEFAULT_SIZES,
    block: tuple[int, int] = (32, 4),
    constant: float = 0.0,
) -> list[SanitizeReport]:
    """Run the static sanitizer over the filter corpus.

    Every kernel of every app pipeline is compiled for every requested
    variant/pattern/size and sanitized.  Identical (kernel digest, effective
    variant, geometry) combinations are analyzed once.  The small sizes
    exercise the degenerate-geometry naive fallback, where the total Mirror
    mapping is load-bearing.
    """
    from ..compiler.frontend import trace_kernel
    from ..dsl.boundary import Boundary
    from ..filters import PIPELINES

    seen: set[tuple] = set()
    reports: list[SanitizeReport] = []
    for app, pattern, size in itertools.product(apps, patterns, sizes):
        pipe = PIPELINES[app](size, size, Boundary(pattern), constant)
        for kernel in pipe:
            desc = trace_kernel(kernel)
            for variant in variants:
                ck = compile_kernel(desc, variant=variant, block=block)
                key = (desc.stable_digest(), ck.effective_variant, block)
                if key in seen:
                    continue
                seen.add(key)
                reports.append(sanitize_compiled(ck))
    return reports
