"""Serving throughput — cold re-planning vs the compiled-plan cache.

Not a paper table: this benchmark prices the serving subsystem built on top
of the reproduction. The ``isp+m`` policy (paper Eq. 10) compiles *both* the
naive and the ISP variant of every bordered kernel just to choose one, so a
service that re-plans per request pays that cost every time. The
``repro.serve`` engine amortizes it through a content-addressed plan cache
and micro-batching; this run measures both modes on the same mixed workload
(5 apps x 2 border patterns) and checks the cache's economics hold:

* plan-cache hit rate >= 90% (10 distinct workloads over 120 requests), and
* cached throughput >= 3x the cold-compile-per-request baseline (the CLI
  acceptance run at 200 requests shows ~8x; the floor here is conservative
  to tolerate loaded CI machines).
"""

from __future__ import annotations

from repro.serve import format_report, run_serve_bench

from harness import stable_seed


def build():
    return run_serve_bench(requests=120, size=96, workers=4,
                           seed=stable_seed("bench_serve_throughput"))


def test_serve_throughput(benchmark, report, bench_summary):
    rep = benchmark.pedantic(build, rounds=1, iterations=1)
    data = {
        "requests": rep["requests"],
        "distinct_workloads": rep["distinct_workloads"],
        "hit_rate": rep["served"]["hit_rate"],
        "served_rps": rep["served"]["throughput_rps"],
        "baseline_rps": rep["baseline"]["throughput_rps"],
        "speedup": rep["speedup"],
        "errors": rep["errors"],
    }
    report("serve_throughput", format_report(rep), data=data)
    bench_summary("serve_throughput", data)

    assert rep["errors"] == 0
    assert rep["served"]["hit_rate"] >= 0.90
    assert rep["speedup"] >= 3.0, rep["speedup"]
