"""Kernel variant generation: naive, block-grained ISP, warp-grained ISP.

* **Naive** (the paper's baseline): one code path; every pixel access carries
  every border check its offsets could violate (paper Listing 1 applied to
  the whole iteration space).
* **ISP** (paper Listing 3): one "fat kernel" whose entry block dispatches on
  ``blockIdx`` against the precomputed bounds ``BH_L/R/T/B``; each of the
  nine regions is a specialized clone of the kernel body carrying only its
  required checks; the Body clone carries none.
* **Warp-grained ISP** (paper Listing 5): the dispatch additionally inspects
  the warp's x-position within the block (``tid.x >> 5``) and re-routes
  interior warps of L/R/corner blocks to the cheaper T/B/Body clones.

The switch comparisons are tagged ``role="switch"`` and each clone's
instructions ``region=<name>``, so profiled dynamic counts decompose exactly
as the paper's Table I does.
"""

from __future__ import annotations

import enum
import math

from ..ir.builder import IRBuilder
from ..ir.function import KernelFunction, Param
from ..ir.instructions import CmpOp, Register, SpecialReg
from ..ir.types import DataType
from .frontend import KernelDescription
from .lowering import (
    KernelParams,
    RegionLowering,
    emit_bounds_guard,
    emit_coordinates,
    grid_for,
    needs_bounds_guard,
)
from .regions import REGION_CHECKS, SWITCH_ORDER, Region, RegionGeometry


class Variant(enum.Enum):
    """Implementation variants benchmarked by the paper."""

    NAIVE = "naive"
    ISP = "isp"
    ISP_WARP = "isp_warp"
    #: model-guided choice between NAIVE and ISP — the paper's "isp+m"
    ISP_MODEL = "isp+m"
    #: hardware texture-unit border handling (paper Section I's alternative):
    #: no checks in the kernel, but only CLAMP/CONSTANT are expressible and
    #: "the access is bound to the image size" — sub-region reads and the
    #: other patterns are unsupported, which is exactly its limitation.
    TEXTURE = "texture"
    #: shared-memory tile staging with full checks during the load
    SHARED = "shared"
    #: tile staging whose staging loop is ISP-specialized per region
    SHARED_ISP = "shared_isp"
    #: fused-pipeline megakernel: per-block shared-memory halo staging,
    #: stage-by-stage on-chip compute, ISP check splits on the staging phase
    #: only (see :mod:`repro.compiler.fusion_simt`)
    FUSED = "fused"


class CompileError(Exception):
    pass


def _declare_params(desc: KernelDescription) -> list[Param]:
    params: list[Param] = []
    seen: set[str] = set()
    for acc in desc.accessors:
        img = acc.image
        if img.name in seen:
            continue
        seen.add(img.name)
        params.append(Param(f"{img.name}_ptr", DataType.U32, is_pointer=True,
                            elem_dtype=DataType.F32))
        params.append(Param(f"{img.name}_w", DataType.S32))
        params.append(Param(f"{img.name}_h", DataType.S32))
    params.append(Param("out_ptr", DataType.U32, is_pointer=True,
                        elem_dtype=DataType.F32))
    params.append(Param("out_w", DataType.S32))
    params.append(Param("out_h", DataType.S32))
    return params


def _load_params(b: IRBuilder, desc: KernelDescription) -> KernelParams:
    bases: dict[str, Register] = {}
    widths: dict[str, Register] = {}
    heights: dict[str, Register] = {}
    with b.role("addr"):
        for acc in desc.accessors:
            img = acc.image
            if img.name in bases:
                continue
            bases[img.name] = b.ld_param(f"{img.name}_ptr")
            widths[img.name] = b.ld_param(f"{img.name}_w")
            heights[img.name] = b.ld_param(f"{img.name}_h")
        out_base = b.ld_param("out_ptr")
        out_w = b.ld_param("out_w")
        out_h = b.ld_param("out_h")
    return KernelParams(bases, widths, heights, out_base, out_w, out_h)


def _emit_region_body(
    b: IRBuilder,
    desc: KernelDescription,
    params: KernelParams,
    x: Register,
    y: Register,
    checks: frozenset[str],
    region_tag: str,
    exit_label: str,
    *,
    sign_filter: bool = False,
) -> None:
    with b.region(region_tag):
        lowering = RegionLowering(b, desc, params, x, y, checks,
                                  sign_filter=sign_filter)
        value = lowering.lower(desc.expr)
        lowering.store_output(value)
        b.br(exit_label)


def _entry(
    b: IRBuilder, desc: KernelDescription, block: tuple[int, int]
) -> tuple[KernelParams, Register, Register, str]:
    """Common prologue: params, coordinates, optional bounds guard.

    Returns (params, x, y, exit_label); the builder is left in the block
    where region dispatch / the kernel body should continue.
    """
    b.new_block("entry")
    params = _load_params(b, desc)
    x, y = emit_coordinates(b)
    exit_label = "kernel_exit"
    if needs_bounds_guard(desc.width, desc.height, block):
        cont = b.fresh_label("in_bounds")
        emit_bounds_guard(b, x, y, params.out_width, params.out_height,
                          exit_label, cont)
        b.new_block(cont)
    return params, x, y, exit_label


def _finish(b: IRBuilder, exit_label: str) -> KernelFunction:
    b.new_block(exit_label)
    b.exit()
    return b.finish()


# ---------------------------------------------------------------------------
# Naive variant
# ---------------------------------------------------------------------------


def generate_naive(
    desc: KernelDescription, block: tuple[int, int], *, sign_filter: bool = False
) -> KernelFunction:
    """Single-path kernel with full border handling everywhere."""
    b = IRBuilder(f"{desc.name}_naive", _declare_params(desc))
    params, x, y, exit_label = _entry(b, desc, block)
    hx, hy = desc.extent
    checks = set()
    if hx > 0:
        checks |= {"left", "right"}
    if hy > 0:
        checks |= {"top", "bottom"}
    _emit_region_body(b, desc, params, x, y, frozenset(checks), "naive",
                      exit_label, sign_filter=sign_filter)
    func = _finish(b, exit_label)
    func.metadata.update(variant=Variant.NAIVE, block=block, sign_filter=sign_filter,
                         grid=grid_for(desc.width, desc.height, block))
    return func


# ---------------------------------------------------------------------------
# Texture variant
# ---------------------------------------------------------------------------

#: boundary pattern -> CUDA unnormalized-coordinate texture address mode
_TEX_MODES = {
    "clamp": "clamp",      # cudaAddressModeClamp
    "constant": "border",  # cudaAddressModeBorder
}


def generate_texture(
    desc: KernelDescription, block: tuple[int, int]
) -> KernelFunction:
    """Single-path kernel whose reads go through the texture unit.

    The TMU performs the border handling in hardware, so no checks are
    emitted at all — but only the Clamp and Constant patterns map onto the
    address modes CUDA offers for unnormalized coordinates (the paper's
    "less flexible compared to other software-based approaches").
    """
    for acc in desc.accessors:
        if acc.boundary.needs_checks and acc.boundary.value not in _TEX_MODES:
            raise CompileError(
                f"{desc.name}: texture hardware cannot express the "
                f"{acc.boundary.value!r} border pattern (only clamp/constant)"
            )
    b = IRBuilder(f"{desc.name}_texture", _declare_params(desc))
    params, x, y, exit_label = _entry(b, desc, block)
    with b.region("naive"):
        lowering = RegionLowering(b, desc, params, x, y, frozenset(),
                                  use_texture=True)
        value = lowering.lower(desc.expr)
        lowering.store_output(value)
        b.br(exit_label)
    func = _finish(b, exit_label)
    func.metadata.update(variant=Variant.TEXTURE, block=block,
                         grid=grid_for(desc.width, desc.height, block))
    return func


# ---------------------------------------------------------------------------
# ISP variants
# ---------------------------------------------------------------------------


def _warp_bounds(
    geom: RegionGeometry, block: tuple[int, int], warp_size: int = 32
) -> tuple[int, int, int]:
    """(warps_per_row, W_L, W_R) for warp-grained dispatch.

    ``W_L`` is the largest warp-x index (within a block row) that still needs
    left checks in a leftmost block; ``W_R`` the smallest warp-x index that
    needs right checks in a rightmost block (paper Listing 5 notation).
    ``warp_size`` is the device's warp/wavefront width — the strip the
    dispatch reasons in is exactly one warp of x-positions.
    """
    tx, _ = block
    warps_per_row = tx // warp_size
    w_l = math.ceil(geom.hx / warp_size) - 1
    # Right side: lanes with x-position >= tx - hx within the block need
    # right checks; their warp index is (tx - hx) // warp_size and larger.
    w_r = (tx - geom.hx) // warp_size
    return warps_per_row, w_l, w_r


def generate_isp(
    desc: KernelDescription,
    block: tuple[int, int],
    *,
    warp_grained: bool = False,
    sign_filter: bool = False,
    warp_size: int = 32,
) -> KernelFunction:
    """Fat kernel with block-grained (Listing 3) or warp-grained (Listing 5)
    region dispatch.

    ``warp_size`` sets the warp-grained strip width (the device's
    warp/wavefront width); block-grained dispatch is unaffected by it.
    """
    if warp_size <= 0 or warp_size & (warp_size - 1):
        raise CompileError(
            f"{desc.name}: warp_size must be a positive power of two, "
            f"got {warp_size}"
        )
    hx, hy = desc.extent
    geom = RegionGeometry.compute(desc.width, desc.height, hx, hy, block)
    if geom.degenerate:
        raise CompileError(
            f"{desc.name}: image {desc.width}x{desc.height} too small for "
            f"window extent {desc.extent} with block {block}; ISP regions "
            "would overlap — use the naive variant"
        )
    suffix = "isp_warp" if warp_grained else "isp"
    b = IRBuilder(f"{desc.name}_{suffix}", _declare_params(desc))
    params, x, y, exit_label = _entry(b, desc, block)

    feasible = geom.feasible_regions()

    tx, _ = block
    # Warp-grained dispatch is only meaningful (and only derived correctly)
    # when block rows span multiple warps, the image tiles exactly in x, and
    # the border block columns are single (hx <= tx, always true for the
    # paper's window/block combinations).
    use_warp = (
        warp_grained
        and tx % warp_size == 0
        and tx > warp_size
        and hx > 0
        and desc.width % tx == 0
        and geom.bh_l <= 1
        and geom.bh_r >= geom.grid[0] - 1
    )
    if warp_grained and not use_warp:
        # Warp-grained dispatch degenerates to block-grained when each block
        # row is a single warp (e.g. 32x4 blocks) — the warp index carries no
        # extra information. Record the fallback in metadata.
        pass

    # The Body clone is always emitted: it is the dispatch chain's final
    # fallthrough even when the grid has no interior blocks (narrow grids).
    # Warp-grained dispatch additionally re-routes into T/B clones, which
    # must then exist even if no *block* is classified T/B.
    emit_set = set(feasible) | {Region.BODY}
    if use_warp:
        for src, (_, _, target) in _WARP_REROUTE_TARGETS.items():
            if src in emit_set:
                emit_set.add(target)
    emit_regions = [r for r in SWITCH_ORDER if r in emit_set]
    region_labels = {r: f"region_{r.value.lower()}" for r in emit_regions}

    with b.role("switch"):
        ctaid_x = b.special(SpecialReg.CTAID_X)
        ctaid_y = b.special(SpecialReg.CTAID_Y)
        warp_x: Register | None = None
        if use_warp:
            tid_x = b.special(SpecialReg.TID_X)
            # tid.x >> log2(warp_size): Listing 5's `tid.x >> 5` generalized
            # to the device's warp width (6 on wave64 parts).
            warp_x = b.shr(tid_x, warp_size.bit_length() - 1)
        _emit_switch_chain(b, geom, region_labels, set(feasible), ctaid_x,
                           ctaid_y, warp_x if use_warp else None, block,
                           warp_size)

    for region in emit_regions:
        b.new_block(region_labels[region])
        sides = set(REGION_CHECKS[region])
        if hx == 0:
            sides -= {"left", "right"}
        if hy == 0:
            sides -= {"top", "bottom"}
        _emit_region_body(b, desc, params, x, y, frozenset(sides),
                          region.value, exit_label, sign_filter=sign_filter)

    func = _finish(b, exit_label)
    func.metadata.update(
        variant=Variant.ISP_WARP if warp_grained else Variant.ISP,
        block=block,
        sign_filter=sign_filter,
        grid=geom.grid,
        geometry=geom,
        warp_grained_effective=use_warp,
        warp_size=warp_size,
    )
    return func


#: Warp-grained re-routes (paper Listing 5): interior warps of a matched
#: block go to the cheaper region instead. (cmp, bound source, target).
_WARP_REROUTE_TARGETS: dict[Region, tuple[CmpOp, str, Region]] = {
    Region.TL: (CmpOp.GT, "w_l", Region.T),
    Region.TR: (CmpOp.LT, "w_r", Region.T),
    Region.BL: (CmpOp.GT, "w_l", Region.B),
    Region.BR: (CmpOp.LT, "w_r", Region.B),
    Region.L: (CmpOp.GT, "w_l", Region.BODY),
    Region.R: (CmpOp.LT, "w_r", Region.BODY),
}


def _emit_switch_chain(
    b: IRBuilder,
    geom: RegionGeometry,
    labels: dict[Region, str],
    feasible: set[Region],
    ctaid_x: Register,
    ctaid_y: Register,
    warp_x: Register | None,
    block: tuple[int, int],
    warp_size: int = 32,
) -> None:
    """The Listing 3 / Listing 5 dispatch chain over feasible regions.

    Each test either jumps to its region (possibly refined by the warp index)
    or falls through to the next test; the final fallthrough is Body.
    """

    def tests():
        # (region, [(reg, cmp, bound), ...]) in Listing 3 order.
        yield Region.TL, [(ctaid_x, CmpOp.LT, geom.bh_l), (ctaid_y, CmpOp.LT, geom.bh_t)]
        yield Region.TR, [(ctaid_x, CmpOp.GE, geom.bh_r), (ctaid_y, CmpOp.LT, geom.bh_t)]
        yield Region.T, [(ctaid_y, CmpOp.LT, geom.bh_t)]
        yield Region.BL, [(ctaid_y, CmpOp.GE, geom.bh_b), (ctaid_x, CmpOp.LT, geom.bh_l)]
        yield Region.BR, [(ctaid_y, CmpOp.GE, geom.bh_b), (ctaid_x, CmpOp.GE, geom.bh_r)]
        yield Region.B, [(ctaid_y, CmpOp.GE, geom.bh_b)]
        yield Region.R, [(ctaid_x, CmpOp.GE, geom.bh_r)]
        yield Region.L, [(ctaid_x, CmpOp.LT, geom.bh_l)]

    warps_per_row, w_l, w_r = _warp_bounds(geom, block, warp_size)
    #: warp-refined targets: inner warps of these regions re-route to cheaper
    #: regions, exactly as paper Listing 5 (TL->T, TR->T, BL->B, BR->B,
    #: L->Body, R->Body).
    warp_reroute = {
        Region.TL: (CmpOp.GT, w_l, Region.T),
        Region.TR: (CmpOp.LT, w_r, Region.T),
        Region.BL: (CmpOp.GT, w_l, Region.B),
        Region.BR: (CmpOp.LT, w_r, Region.B),
        Region.L: (CmpOp.GT, w_l, Region.BODY),
        Region.R: (CmpOp.LT, w_r, Region.BODY),
    }

    for region, conds in tests():
        if region not in feasible:
            continue
        target = labels[region]
        reroute = warp_reroute.get(region) if warp_x is not None else None
        if reroute is not None and labels.get(reroute[2]) is not None:
            cmp, bound, cheaper_region = reroute
            # Matched blocks take a refinement block that inspects the warp's
            # x-position and re-routes interior warps to the cheaper region
            # (paper Listing 5's nested `if (warpID.x ...) goto ...;`).
            refine = b.fresh_label(f"warp_{region.value.lower()}")
            refine_blk = b.function.new_block(refine)
            _emit_region_test(b, conds, refine)
            cont = b.block  # next test continues in the fallthrough block
            b.set_block(refine_blk)
            q = b.setp(cmp, warp_x, bound)
            b.cbr(q, labels[cheaper_region], target)
            b.set_block(cont)
        else:
            _emit_region_test(b, conds, target)
    b.br(labels[Region.BODY])


def _emit_region_test(b: IRBuilder, conds, target: str) -> None:
    """Emit `if (all conds) goto target;` falling through to a fresh block
    where the next test continues."""
    preds = [b.setp(cmp, reg, bound) for reg, cmp, bound in conds]
    p = preds[0]
    if len(preds) == 2:
        # NVCC emits `a && b` as two setp plus one and.pred for cheap operands.
        p = b.and_(preds[0], preds[1], DataType.PRED)
    nxt = b.fresh_label("switch")
    b.cbr(p, target, nxt)
    b.new_block(nxt)
