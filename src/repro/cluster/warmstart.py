"""Warm-start tier: per-slot autotune snapshots that outlive the process.

A shard's most valuable state is not in its plan cache (plans rebuild in
milliseconds) but in its autotuner's learned table — committed variants per
workload shape, earned over trials. A replacement shard that starts from
cold priors re-pays the whole trial phase; one seeded from the dead shard's
last snapshot serves committed decisions from its first request.

The mechanism is deliberately thin: each *slot* owns one JSON file in a
shared directory, written by the tuner's own :meth:`~repro.serve.autotune.
AutoTuner.save` (same format, same version field as PR 3's persistence —
nothing new to parse). The manager points every worker's ``--autotune-path``
at its slot's file, so a worker's normal close() persists there, the
snapshot loop refreshes it mid-flight (crashes don't close cleanly), and a
respawn warm-starts by construction: the engine loads whatever table the
slot file holds at boot. Slot identity — not process identity — names the
file, which is what makes the state survive the process.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union


class WarmStartStore:
    """Directory of per-slot autotune snapshot files."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, slot: str) -> Path:
        return self.root / f"shard-{slot}.json"

    def has_snapshot(self, slot: str) -> bool:
        p = self.path_for(slot)
        return p.exists() and p.stat().st_size > 0

    def configs(self, slot: str) -> int:
        """Configs recorded in a slot's snapshot (0 = none/unreadable)."""
        state = self.read(slot)
        if state is None:
            return 0
        return len(state.get("configs") or [])

    def read(self, slot: str) -> Optional[dict]:
        p = self.path_for(slot)
        if not p.exists():
            return None
        try:
            return json.loads(p.read_text())
        except (OSError, json.JSONDecodeError):
            return None

    def slots(self) -> list[str]:
        return sorted(
            p.stem[len("shard-"):] for p in self.root.glob("shard-*.json")
        )
