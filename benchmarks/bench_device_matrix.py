"""Cross-device regression matrix — who wins where, across the zoo.

For every device in the zoo (docs/devices.md) x border pattern, measures
gaussian 512x512 under {naive, isp, isp_warp} on the timing model and
records the winner plus the speedup spread. The winner grid is compared
against the checked-in golden ``device_matrix_golden.json``: a flipped cell
fails the run, because a who-wins-where flip changes what the autotuner and
``isp+m`` would deploy on that device — exactly the kind of silent drift
the devices CI job exists to catch.

Intentional flips (a timing-model or cost-table change) are committed like
IR goldens::

    REPRO_UPDATE_DEVICE_MATRIX=1 PYTHONPATH=src python -m pytest -q \
        --benchmark-only benchmarks/bench_device_matrix.py

then review the git diff of the golden alongside the WINNERS pins in
tests/test_device_matrix.py (both must move together).

Emits ``BENCH_device_matrix.json`` (machine-readable trajectory; see
``conftest.bench_summary``).
"""

from __future__ import annotations

import json
import os
import pathlib

from repro.compiler import Variant
from repro.dsl import Boundary
from repro.filters import PIPELINES
from repro.gpu import DEVICES
from repro.reporting import format_table
from repro.runtime import measure_pipeline

from harness import ZOO_DEVICE_NAMES

APP = "gaussian"
SIZE = 512
#: warp-grained dispatch effective on wave32 and wave64 parts alike
BLOCK = (128, 2)
PATTERNS = [Boundary.CLAMP, Boundary.MIRROR, Boundary.REPEAT,
            Boundary.CONSTANT]
VARIANTS = [Variant.NAIVE, Variant.ISP, Variant.ISP_WARP]

GOLDEN = pathlib.Path(__file__).parent / "device_matrix_golden.json"
UPDATE_ENV = "REPRO_UPDATE_DEVICE_MATRIX"


def build():
    cells = []
    for device_name in ZOO_DEVICE_NAMES:
        device = DEVICES[device_name]
        for pattern in PATTERNS:
            pipe = PIPELINES[APP](SIZE, SIZE, pattern)
            times = {
                v.value: measure_pipeline(pipe, variant=v, block=BLOCK,
                                          device=device).total_us
                for v in VARIANTS
            }
            winner = min(times, key=times.get)
            cells.append({
                "device": device_name,
                "warp_size": device.warp_size,
                "pattern": pattern.value,
                "winner": winner,
                "times_us": times,
                "speedup_over_naive": times["naive"] / times[winner],
            })
    return cells


def _winner_grid(cells):
    return {f"{c['device']}|{c['pattern']}": c["winner"] for c in cells}


def test_device_matrix(benchmark, report, bench_summary):
    cells = benchmark.pedantic(build, rounds=1, iterations=1)

    rows = [[c["device"], c["warp_size"], c["pattern"], c["winner"],
             f"{c['times_us']['naive']:.1f}",
             f"{c['times_us']['isp']:.1f}",
             f"{c['times_us']['isp_warp']:.1f}",
             f"{c['speedup_over_naive']:.3f}x"]
            for c in cells]
    table = format_table(
        ["device", "wave", "pattern", "winner", "naive us", "isp us",
         "isp_warp us", "win"],
        rows,
        title=f"device matrix: {APP} {SIZE}x{SIZE}, block "
              f"{BLOCK[0]}x{BLOCK[1]} — fastest variant per device/pattern",
    )
    report("device_matrix", table, data=cells)
    bench_summary("device_matrix", {
        "app": APP, "size": SIZE, "block": list(BLOCK), "cells": cells,
    })

    grid = _winner_grid(cells)
    if os.environ.get(UPDATE_ENV):
        GOLDEN.write_text(json.dumps(grid, indent=2, sort_keys=True) + "\n")
        print(f"[device-matrix golden rewritten at {GOLDEN} — review the "
              f"git diff]")
        return

    assert GOLDEN.exists(), (
        f"missing {GOLDEN.name}; generate with {UPDATE_ENV}=1 and commit"
    )
    golden = json.loads(GOLDEN.read_text())
    flips = {k: (golden.get(k), grid[k]) for k in grid
             if golden.get(k) != grid[k]}
    assert not flips, (
        f"who-wins-where flipped vs {GOLDEN.name}: {flips} — if the "
        f"timing-model change is intentional, rerun with {UPDATE_ENV}=1 "
        f"and update tests/test_device_matrix.py::WINNERS in the same commit"
    )
    assert set(golden) == set(grid), "golden covers a different grid"

    # Coarse invariants that hold across any sane cost-table change: the
    # expensive patterns are partition-side on every device.
    for c in cells:
        if c["pattern"] in ("mirror", "repeat"):
            assert c["winner"] != "naive", (c["device"], c["pattern"])
