"""Golden-file snapshots of the generated IR, per (app, variant, pattern).

The compiler is deterministic (see test_compile_determinism), so the exact
printed IR of every filter x variant x border-pattern combination is pinned
as a golden under ``tests/goldens/``. Any change to lowering, border
emission, region partitioning, or the optimizer shows up as a readable
textual diff — the reviewer sees *which instructions* changed, not just
that something did. (The PR-2 MIRROR fix, for example, changes exactly the
reflection arithmetic lines of every ``mirror`` golden.)

Storage format: goldens are gzip-compressed (the printed IR is highly
repetitive — ~10x smaller on disk) and named

    {app}-{variant}-{pattern}.{sha256(text)[:12]}.ir.gz

The content digest in the filename makes a golden update visible in a git
file listing (rename = content change) and lets ``test_golden_integrity``
catch a corrupted or hand-edited snapshot without recompiling anything.
Mismatches are still reported as unified diffs of the decompressed text.
Gzip is written with ``mtime=0`` so regenerating unchanged goldens is
byte-identical (no spurious git churn).

Regenerate intentionally with::

    pytest tests/test_codegen_goldens.py --update-goldens

then review the git diff like any other code change (``git diff --stat``
shows which combos changed; decompress with ``python -m gzip -d``/
``zcat`` to inspect contents).
"""

from __future__ import annotations

import difflib
import gzip
import hashlib
import pathlib

import pytest

from repro.compiler import Variant, compile_kernel
from repro.ir.printer import print_function
from repro.serve.plan import trace_app

GOLDEN_DIR = pathlib.Path(__file__).parent / "goldens"

#: the paper's five-application corpus (Section VI)
APPS = ("gaussian", "laplace", "bilateral", "sobel", "night")
VARIANTS = ("naive", "isp", "isp_warp")
PATTERNS = ("clamp", "mirror", "repeat", "constant")
#: small fixed geometry: big enough that ISP partitioning is non-degenerate
#: for every corpus filter, small enough to keep compiles fast
SIZE = 64
BLOCK = (32, 4)

COMBOS = [(a, v, p) for a in APPS for v in VARIANTS for p in PATTERNS]

MAX_DIFF_LINES = 120
DIGEST_LEN = 12


def golden_stem(app: str, variant: str, pattern: str) -> str:
    return f"{app}-{variant}-{pattern}"


def content_digest(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()[:DIGEST_LEN]


def golden_path_for(app: str, variant: str, pattern: str, text: str) -> pathlib.Path:
    stem = golden_stem(app, variant, pattern)
    return GOLDEN_DIR / f"{stem}.{content_digest(text)}.ir.gz"


def find_golden(app: str, variant: str, pattern: str) -> list[pathlib.Path]:
    """All stored snapshots for one combo (should be exactly one)."""
    return sorted(GOLDEN_DIR.glob(f"{golden_stem(app, variant, pattern)}.*.ir.gz"))


def read_golden(path: pathlib.Path) -> str:
    return gzip.decompress(path.read_bytes()).decode()


def write_golden(app: str, variant: str, pattern: str, text: str) -> pathlib.Path:
    """Write the combo's snapshot, replacing any stale-digest predecessors.

    ``mtime=0`` keeps the gzip bytes a pure function of the content, so an
    unchanged golden regenerates byte-identically.
    """
    path = golden_path_for(app, variant, pattern, text)
    for stale in find_golden(app, variant, pattern):
        if stale != path:
            stale.unlink()
    path.write_bytes(gzip.compress(text.encode(), mtime=0))
    return path


def render(app: str, variant: str, pattern: str) -> str:
    """The canonical printed IR of one combination (all pipeline stages)."""
    descs = trace_app(app, pattern, SIZE, SIZE)
    parts = [
        "# golden IR snapshot — regenerate with:",
        "#   pytest tests/test_codegen_goldens.py --update-goldens",
        f"# app={app} variant={variant} pattern={pattern} "
        f"size={SIZE}x{SIZE} block={BLOCK[0]}x{BLOCK[1]}",
    ]
    for desc in descs:
        compiled = compile_kernel(desc, variant=Variant(variant), block=BLOCK)
        parts.append(
            f"\n# kernel {desc.name}: requested={variant} "
            f"effective={compiled.effective_variant.value}"
        )
        parts.append(print_function(compiled.func))
    return "\n".join(parts) + "\n"


@pytest.mark.parametrize("app,variant,pattern", COMBOS,
                         ids=[f"{a}-{v}-{p}" for a, v, p in COMBOS])
def test_ir_matches_golden(app, variant, pattern, update_goldens):
    actual = render(app, variant, pattern)

    if update_goldens:
        GOLDEN_DIR.mkdir(exist_ok=True)
        write_golden(app, variant, pattern, actual)
        return

    stored = find_golden(app, variant, pattern)
    if not stored:
        pytest.fail(
            f"missing golden {golden_stem(app, variant, pattern)}.*.ir.gz; "
            f"generate it with `pytest {__name__.replace('.', '/')}.py "
            f"--update-goldens` and commit the result"
        )
    path = stored[-1]

    expected = read_golden(path)
    if actual == expected:
        return

    diff = list(difflib.unified_diff(
        expected.splitlines(keepends=True),
        actual.splitlines(keepends=True),
        fromfile=f"goldens/{path.name}",
        tofile="generated",
    ))
    shown = "".join(diff[:MAX_DIFF_LINES])
    omitted = len(diff) - MAX_DIFF_LINES
    tail = f"\n... ({omitted} more diff lines)" if omitted > 0 else ""
    pytest.fail(
        f"generated IR for {app}/{variant}/{pattern} diverges from its "
        f"golden ({len(diff)} diff lines). If the change is intentional, "
        f"rerun with --update-goldens and commit.\n{shown}{tail}"
    )


def test_no_orphan_goldens():
    """Every file under tests/goldens/ must correspond to a live combo —
    otherwise a renamed filter would leave a stale snapshot nobody checks —
    and every combo must have exactly one stored digest."""
    valid_stems = {golden_stem(*combo) for combo in COMBOS}
    seen: dict[str, list[str]] = {}
    for p in GOLDEN_DIR.iterdir():
        if p.name in (".gitattributes",):
            continue
        if p.is_dir():
            continue  # subdirectories (e.g. fused/) have their own suites
        if p.suffix == ".diff":
            continue  # cross-device IR diffs are pinned by test_device_matrix
        parts = p.name.split(".")
        assert p.suffixes[-2:] == [".ir", ".gz"], f"unexpected file: {p.name}"
        stem, digest = parts[0], parts[1]
        assert stem in valid_stems, f"orphan golden: {p.name}"
        assert len(digest) == DIGEST_LEN
        seen.setdefault(stem, []).append(digest)
    dupes = {s: d for s, d in seen.items() if len(d) > 1}
    assert not dupes, f"multiple digests stored for one combo: {dupes}"


def test_golden_integrity():
    """The digest embedded in each filename must match the decompressed
    content — a corrupted or hand-edited snapshot fails here cheaply,
    without recompiling anything."""
    checked = 0
    for path in sorted(GOLDEN_DIR.glob("*.ir.gz")):
        digest = path.name.split(".")[1]
        text = read_golden(path)
        assert content_digest(text) == digest, (
            f"{path.name}: content does not match its filename digest"
        )
        checked += 1
    assert checked == len(COMBOS)


def test_goldens_are_compressed_enough():
    """The compression satellite's contract: on-disk goldens are at least
    5x smaller than the text they pin (the plain-text corpus was ~12 MB)."""
    raw = disk = 0
    for path in GOLDEN_DIR.glob("*.ir.gz"):
        disk += path.stat().st_size
        raw += len(gzip.decompress(path.read_bytes()))
    assert disk > 0
    ratio = raw / disk
    assert ratio >= 5.0, f"compression ratio degraded to {ratio:.1f}x"
