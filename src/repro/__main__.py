"""Command-line interface: ``python -m repro <command> ...``.

Subcommands
-----------

* ``run``      — functionally simulate a filter on the GPU model and verify
                 it against the NumPy reference.
* ``measure``  — estimate naive/isp/isp+m (and optionally every variant)
                 times for a configuration and print the speedups.
* ``predict``  — evaluate the analytic model (paper Eqs. 1-10) for a kernel.
* ``codegen``  — dump the generated CUDA C for a variant.
* ``regions``  — print the ISP region map and index bounds for a geometry.
* ``devices``  — list the simulated GPUs.
* ``serve-bench`` — drive a synthetic mixed workload through the
                 ``repro.serve`` engine and report throughput / latency /
                 plan-cache hit rate vs. the cold-compile baseline.
* ``trace``    — record an end-to-end traced workload through the serve
                 engine, export Chrome trace-event JSON (Perfetto) and the
                 Prometheus text exposition, and print the
                 measured-vs-predicted ``R_reduced`` region report.
* ``sanitize`` — run the static IR bounds sanitizer over the filter corpus
                 (every app x pattern x variant), and optionally the
                 cross-variant differential harness; exits non-zero on any
                 finding.
* ``cluster``  — boot a local multi-shard cluster (one serve engine per
                 worker process), drive a digest-verified load through the
                 gateway, and report throughput / failovers / per-shard hit
                 rates; ``--scaling`` runs the 1 -> N shard scaling curve
                 instead.

``measure`` and ``predict`` accept a comma-separated size list
(``--size 512,1024``) and evaluate every size.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _parse_sizes(text: str) -> list[int]:
    try:
        sizes = [int(v) for v in text.split(",")]
        if not sizes or any(s <= 0 for s in sizes):
            raise ValueError
        return sizes
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid --size {text!r}; expected e.g. 512 or 512,1024"
        )


def _positive_int(text: str) -> int:
    try:
        value = int(text)
        if value < 1:
            raise ValueError
        return value
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {text!r}"
        )


def _add_common(p: argparse.ArgumentParser, *, size_default: int = 512,
                multi_size: bool = False) -> None:
    p.add_argument("--app", default="gaussian",
                   choices=["gaussian", "laplace", "bilateral", "sobel", "night"])
    p.add_argument("--pattern", default="clamp",
                   choices=["clamp", "mirror", "repeat", "constant"])
    if multi_size:
        p.add_argument("--size", type=_parse_sizes, default=[size_default],
                       help="image size(s), e.g. 512 or 512,1024,2048")
    else:
        p.add_argument("--size", type=int, default=size_default)
    p.add_argument("--block", default="32x4",
                   help="threadblock shape, e.g. 32x4 or 128x1")
    p.add_argument("--device", default="GTX680", choices=["GTX680", "RTX2080"])
    p.add_argument("--constant", type=float, default=0.0,
                   help="border value for the constant pattern")


def _parse_block(text: str) -> tuple[int, int]:
    try:
        tx, ty = (int(v) for v in text.lower().split("x"))
        return tx, ty
    except Exception:
        raise SystemExit(f"invalid --block {text!r}; expected e.g. 32x4")


def _boundary(name: str):
    from repro.dsl import Boundary

    return Boundary(name)


def cmd_run(args) -> int:
    from repro.filters import PIPELINES, REFERENCES
    from repro.gpu import get_device
    from repro.runtime import run_pipeline_simt
    from repro.compiler import Variant

    if args.size > 128:
        print(f"note: functional simulation of {args.size}^2 is slow; "
              "consider --size 64", file=sys.stderr)
    rng = np.random.default_rng(args.seed)
    src = rng.random((args.size, args.size)).astype(np.float32)
    pipe = PIPELINES[args.app](args.size, args.size, _boundary(args.pattern),
                               args.constant)
    result = run_pipeline_simt(
        pipe, variant=Variant(args.variant), block=_parse_block(args.block),
        device=get_device(args.device), inputs={"inp": src},
    )
    ref = REFERENCES[args.app](src, _boundary(args.pattern), args.constant)
    err = float(np.abs(result.output - ref).max())
    total_warp = sum(p.warp_instructions for p in result.profilers)
    ok = err < args.tolerance
    print(f"{args.app}/{args.pattern}/{args.variant} {args.size}x{args.size}: "
          f"max|err| vs reference = {err:.2e}, "
          f"{total_warp} warp instructions executed")
    if not ok:
        print(f"verification FAILED: max|err| {err:.2e} >= "
              f"tolerance {args.tolerance:.2e}", file=sys.stderr)
    return 0 if ok else 1


def cmd_measure(args) -> int:
    from repro.compiler import CompileError, Variant
    from repro.filters import PIPELINES
    from repro.gpu import get_device
    from repro.runtime import measure_pipeline, select_variants

    device = get_device(args.device)
    block = _parse_block(args.block)
    boundary = _boundary(args.pattern)
    for size in args.size:
        pipe_for = lambda: PIPELINES[args.app](size, size, boundary,
                                               args.constant)
        variants = [Variant.NAIVE, Variant.ISP]
        if args.all_variants:
            variants += [Variant.ISP_WARP, Variant.TEXTURE, Variant.SHARED,
                         Variant.SHARED_ISP]
        times = {}
        for v in variants:
            try:
                times[v] = measure_pipeline(pipe_for(), variant=v, block=block,
                                            device=device).total_us
            except CompileError as e:
                times[v] = None
                print(f"  {v.value:10s}: unsupported ({e})", file=sys.stderr)
        choices = select_variants(pipe_for(), block=block, device=device)
        times[Variant.ISP_MODEL] = measure_pipeline(
            pipe_for(), variant=Variant.ISP_MODEL, block=block, device=device,
            per_kernel_variants=choices,
        ).total_us

        base = times[Variant.NAIVE]
        print(f"{args.app}/{args.pattern} {size}x{size} on {device.name} "
              f"(block {block[0]}x{block[1]}):")
        for v, t in times.items():
            if t is None:
                continue
            print(f"  {v.value:10s}: {t:10.1f} pseudo-us   "
                  f"speedup {base / t:5.3f}x")
        picks = ", ".join(f"{k}->{v.value}" for k, v in choices.items())
        print(f"  isp+m choices: {picks}")
    return 0


def cmd_predict(args) -> int:
    from repro.compiler import trace_kernel
    from repro.filters import PIPELINES
    from repro.gpu import get_device
    from repro.model import predict_kernel

    device = get_device(args.device)
    block = _parse_block(args.block)
    for size in args.size:
        pipe = PIPELINES[args.app](size, size, _boundary(args.pattern),
                                   args.constant)
        print(f"analytic model (paper Eqs. 1-10) on {device.name}, "
              f"{size}x{size}:")
        for kernel in pipe:
            desc = trace_kernel(kernel)
            p = predict_kernel(desc, block=block, device=device)
            print(f"  {desc.name:12s}: R={p.r_reduced:6.3f}  "
                  f"occ {p.occupancy_naive:.0%}->{p.occupancy_isp:.0%}  "
                  f"G={p.gain:6.3f}  -> {p.choice.value}")
    return 0


def cmd_serve_bench(args) -> int:
    from repro.gpu import get_device
    from repro.serve import format_report, run_serve_bench

    report = run_serve_bench(
        requests=args.requests,
        size=args.size,
        workers=args.workers,
        batch_size=args.batch_size,
        plan_cache_size=args.cache_size,
        baseline_requests=args.baseline_requests,
        seed=args.seed,
        variant=args.variant,
        device=get_device(args.device),
    )
    print(format_report(report))
    if report["errors"]:
        print(f"{report['errors']} request(s) failed", file=sys.stderr)
        return 1
    return 0


def cmd_tune(args) -> int:
    """Drive ``auto`` requests through the engine, then print the learned
    table next to the model's prediction — a live version of the paper's
    Table III, with measurement standing in for the 'measured best' column.
    """
    from repro.gpu import get_device
    from repro.reporting import format_table
    from repro.serve import AutoTuner, Request, ServeEngine

    apps = args.apps.split(",")
    patterns = args.patterns.split(",")
    device = get_device(args.device)
    block = _parse_block(args.block)
    tuner = AutoTuner(trials_per_variant=args.trials,
                      path=args.cache)
    rng = np.random.default_rng(args.seed)

    # batch_size=1: every request is its own tuning decision — micro-batching
    # would otherwise collapse a config's whole trial phase into one choice.
    with ServeEngine(workers=args.workers, device=device, block=block,
                     batch_size=1, autotune=tuner) as engine:
        for size in args.size:
            image = rng.random((size, size), dtype=np.float32)
            for app in apps:
                for pattern in patterns:
                    engine.run([
                        Request(app=app, image=image, pattern=pattern,
                                variant="auto", constant=args.constant)
                        for _ in range(args.requests)
                    ])
        rows = []
        for row in tuner.table():
            key = row["key"]
            obs = "/".join(
                str(row["stats"][c].observations)
                for c in ("naive", "isp", "isp_warp")
            )
            agree = {True: "yes", False: "NO", None: "?"}[row["agrees"]]
            rows.append([
                key.short(),
                f"{row['model_gain']:.3f}",
                row["model_choice"],
                row["committed"] or "(trialing)",
                obs,
                agree,
            ])
        rate = tuner.agreement_rate()
        counters = tuner.metrics.snapshot()["counters"]

    print(format_table(
        ["config", "model G", "model pick", "learned pick",
         "obs n/i/w", "agree"],
        rows,
        title=(f"tune: learned variant table vs analytic model "
               f"(Eq. 10) on {device.name}"),
    ))
    print(f"\ntrials={counters['tuner.trials']} "
          f"commits={counters['tuner.commits']} "
          f"switches={counters['tuner.switches']} "
          f"penalties={counters['tuner.penalties']}")
    print("model agreement rate: "
          + (f"{rate:.0%}" if rate is not None else "n/a (nothing committed)"))
    if args.cache:
        print(f"learned table saved to {args.cache}")
    return 0


def cmd_trace(args) -> int:
    """Record a traced workload through the serve engine, export the trace
    (Chrome trace-event JSON + Prometheus text), and print the
    measured-vs-predicted ``R_reduced`` report (paper Eqs. 9-10 live)."""
    from repro.gpu import get_device
    from repro.serve import ServeEngine
    from repro.serve.bench import build_workload
    from repro.serve.plan import trace_app
    from repro.trace import (
        Tracer,
        format_comparison_report,
        measured_vs_predicted,
        parse_prometheus_text,
        prometheus_text,
        recording,
        validate_chrome_trace,
        write_chrome_trace,
    )
    from repro.reporting import format_table

    device = get_device(args.device)
    block = _parse_block(args.block)
    tracer = Tracer(sample_rate=args.sample_rate, seed=args.seed)
    workload = build_workload(args.requests, size=args.size, seed=args.seed,
                              variant=args.variant)
    with recording(tracer):
        with ServeEngine(workers=args.workers, device=device, block=block,
                         queue_depth=max(64, args.requests),
                         autotune=args.variant == "auto") as engine:
            responses = engine.run(workload)
            prom = prometheus_text(engine.metrics)
    errors = sum(1 for r in responses if not r.ok)
    traced = sum(1 for r in responses if r.trace_id is not None)

    ok = True
    spans = tracer.spans()
    print(f"trace: {args.requests} request(s), {traced} sampled "
          f"(rate {args.sample_rate:g}), {len(spans)} span(s), "
          f"{errors} error(s)")
    if errors:
        ok = False

    if args.out:
        path = write_chrome_trace(tracer, args.out)
        import json as _json

        problems = validate_chrome_trace(_json.loads(path.read_text()))
        if problems:
            ok = False
            print(f"chrome trace INVALID ({len(problems)} problem(s)):",
                  file=sys.stderr)
            for p in problems[:10]:
                print(f"  {p}", file=sys.stderr)
        else:
            print(f"chrome trace written to {path} (valid; load in "
                  "Perfetto / chrome://tracing)")

    if args.prom:
        from pathlib import Path

        target = Path(args.prom)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(prom)
        try:
            parse_prometheus_text(prom)
        except ValueError as exc:
            ok = False
            print(f"prometheus exposition INVALID: {exc}", file=sys.stderr)
        else:
            print(f"prometheus exposition written to {target} (parses clean)")

    summary = tracer.summary()
    if summary:
        rows = [
            [name, agg["count"], f"{1e3 * agg['total_s']:.2f}",
             f"{1e3 * agg['max_s']:.2f}", agg["errors"]]
            for name, agg in sorted(summary.items(),
                                    key=lambda kv: -kv[1]["total_s"])
        ]
        print(format_table(
            ["span", "count", "total ms", "max ms", "errors"], rows,
            title="span summary",
        ))

    if args.report:
        size = args.report_size or args.size
        descs = []
        for app in args.report_apps.split(","):
            descs.extend(trace_app(app, args.report_pattern, size, size))
        comparisons = measured_vs_predicted(descs, block=block, device=device)
        print()
        print(format_comparison_report(comparisons, tolerance=args.tolerance))
        drift = [c for c in comparisons if not c.within(args.tolerance)]
        if drift:
            ok = False
            print(f"{len(drift)} kernel(s) drifted past "
                  f"{100 * args.tolerance:.0f}% of the model prediction",
                  file=sys.stderr)

    return 0 if ok else 1


def cmd_sanitize(args) -> int:
    from repro.compiler import Variant
    from repro.sanitize import (
        run_differential,
        run_pipeline_differential,
        sanitize_corpus,
    )

    apps = args.apps.split(",") if args.apps else None
    sizes = args.size
    reports = sanitize_corpus(
        **({"apps": apps} if apps else {}),
        sizes=sizes,
        variants=tuple(Variant(v) for v in args.variants.split(",")),
        block=_parse_block(args.block),
    )
    findings = [f for r in reports for f in r.findings]
    proved = sum(r.loads_proved + r.stores_proved for r in reports)
    print(f"static: {len(reports)} kernel variant(s) over sizes "
          f"{','.join(str(s) for s in sizes)}: {proved} accesses proved, "
          f"{len(findings)} finding(s)")
    if args.verbose or findings:
        for r in reports:
            if args.verbose or not r.ok:
                print(" ", r.summary())
            for f in r.findings:
                print("   ", f)

    ok = not findings
    if args.differential:
        diff = run_differential(block=_parse_block(args.block))
        print(diff.summary())
        for m in diff.mismatches:
            print("  ", m)
        ok = ok and diff.ok
    if args.pipelines:
        pdiff = run_pipeline_differential()
        print("pipeline", pdiff.summary())
        for m in pdiff.mismatches:
            print("  ", m)
        ok = ok and pdiff.ok
    if not ok:
        print("sanitize FAILED", file=sys.stderr)
    return 0 if ok else 1


def cmd_cluster(args) -> int:
    """Boot a LocalCluster, drive the load generator through the gateway,
    print the report (plus the merged Prometheus exposition on request)."""
    import tempfile

    from repro.cluster import (
        Gateway,
        LocalCluster,
        SyncGateway,
        build_cluster_workload,
        format_cluster_report,
        format_load_report,
        run_cluster_bench,
        run_load,
    )

    if args.scaling:
        report = run_cluster_bench(
            requests=args.requests, size=args.size, seed=args.seed,
            concurrency=args.concurrency, verify=not args.no_verify,
            shard_counts=[int(s) for s in args.shard_counts.split(",")]
            if args.shard_counts else None,
        )
        print(format_cluster_report(report))
        failed = any(sum(p["errors"].values()) for p in report["points"])
        return 1 if failed else 0

    warm_dir = args.warmstart_dir
    tmp = None
    if warm_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-cluster-")
        warm_dir = tmp.name
    try:
        with LocalCluster(
            shards=args.shards, warmstart_dir=warm_dir,
            engine_workers=args.engine_workers,
            snapshot_interval_s=args.snapshot_interval,
        ) as cluster:
            gw = SyncGateway(Gateway(
                cluster.router,
                max_inflight=args.max_inflight,
                tenant_quota=args.tenant_quota,
                sample_rate=args.sample_rate,
                metrics_source=cluster.metrics_snapshots,
            ))
            try:
                workload, pool = build_cluster_workload(
                    args.requests, size=args.size, seed=args.seed,
                    variant=args.variant,
                )
                report = run_load(gw, workload, pool,
                                  concurrency=args.concurrency,
                                  verify=not args.no_verify)
                print(format_load_report(report))
                if args.prom:
                    from pathlib import Path

                    target = Path(args.prom)
                    target.parent.mkdir(parents=True, exist_ok=True)
                    target.write_text(gw.metrics_text())
                    print(f"merged prometheus exposition written to {target}")
                return 1 if report["errors"] else 0
            finally:
                gw.close()
    finally:
        if tmp is not None:
            tmp.cleanup()


def cmd_codegen(args) -> int:
    from repro.compiler import Variant, emit_cuda, trace_kernel
    from repro.filters import PIPELINES

    pipe = PIPELINES[args.app](args.size, args.size, _boundary(args.pattern),
                               args.constant)
    desc = trace_kernel(pipe.kernels[args.kernel_index])
    print(emit_cuda(desc, Variant(args.variant), _parse_block(args.block)))
    return 0


def cmd_regions(args) -> int:
    from repro.compiler import RegionGeometry, trace_kernel
    from repro.filters import PIPELINES

    pipe = PIPELINES[args.app](args.size, args.size, _boundary(args.pattern),
                               args.constant)
    desc = trace_kernel(pipe.kernels[0])
    hx, hy = desc.extent
    geom = RegionGeometry.compute(args.size, args.size, hx, hy,
                                  _parse_block(args.block))
    print(f"window {desc.window_size[0]}x{desc.window_size[1]}  "
          f"grid {geom.grid[0]}x{geom.grid[1]}  "
          f"BH_L={geom.bh_l} BH_R={geom.bh_r} BH_T={geom.bh_t} BH_B={geom.bh_b}")
    if geom.degenerate:
        print("geometry is DEGENERATE: ISP falls back to naive")
        return 0
    for region, count in geom.block_counts().items():
        print(f"  {region.value:5s}: {count:8d} blocks")
    print(f"  body fraction: {100 * geom.body_fraction():.2f}%")
    return 0


def cmd_devices(args) -> int:
    from repro.gpu import DEVICES

    for dev in DEVICES.values():
        print(f"{dev.name}: {dev.arch} CC{dev.compute_capability[0]}."
              f"{dev.compute_capability[1]}, {dev.sm_count} SMs, "
              f"{dev.max_warps_per_sm} warps/SM, "
              f"{dev.registers_per_sm} regs/SM "
              f"(cap {dev.max_registers_per_thread}/thread), "
              f"{dev.mem_bandwidth_gbs} GB/s")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="ISP border-handling reproduction (IPPS 2021)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("run", help="simulate a filter and verify vs NumPy")
    _add_common(p, size_default=64)
    p.add_argument("--variant", default="isp",
                   choices=["naive", "isp", "isp_warp", "texture", "shared",
                            "shared_isp"])
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--tolerance", type=float, default=1e-3,
                   help="max|err| allowed before verification fails")
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("measure", help="estimate variant times/speedups")
    _add_common(p, multi_size=True)
    p.add_argument("--all-variants", action="store_true")
    p.set_defaults(func=cmd_measure)

    p = sub.add_parser("predict", help="evaluate the analytic model")
    _add_common(p, multi_size=True)
    p.set_defaults(func=cmd_predict)

    p = sub.add_parser(
        "serve-bench",
        help="throughput/latency report for the repro.serve engine",
    )
    p.add_argument("--requests", type=_positive_int, default=200)
    p.add_argument("--size", type=_positive_int, default=128)
    p.add_argument("--workers", type=int, default=4)
    p.add_argument("--batch-size", type=int, default=8)
    p.add_argument("--cache-size", type=int, default=64,
                   help="plan-cache capacity (0 disables caching)")
    p.add_argument("--baseline-requests", type=int, default=None,
                   help="cold-baseline sample size (default: scaled)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--variant", default="isp+m",
                   choices=["naive", "isp", "isp+m"])
    p.add_argument("--device", default="GTX680", choices=["GTX680", "RTX2080"])
    p.set_defaults(func=cmd_serve_bench)

    p = sub.add_parser(
        "tune",
        help="learn per-config variant choices online and compare them to "
             "the analytic model (a live Table III)",
    )
    p.add_argument("--apps", default="gaussian,laplace,bilateral,sobel,night",
                   help="comma list of applications")
    p.add_argument("--patterns", default="clamp,mirror",
                   help="comma list of border patterns")
    p.add_argument("--size", type=_parse_sizes, default=[96],
                   help="image size(s), e.g. 96 or 64,128")
    p.add_argument("--requests", type=_positive_int, default=16,
                   help="auto requests per configuration")
    p.add_argument("--trials", type=_positive_int, default=2,
                   help="measured trials per candidate variant")
    p.add_argument("--workers", type=_positive_int, default=2)
    p.add_argument("--block", default="32x4")
    p.add_argument("--device", default="GTX680", choices=["GTX680", "RTX2080"])
    p.add_argument("--constant", type=float, default=0.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--cache", default=None,
                   help="JSON path to load/persist the learned table "
                        "(warm restarts skip trials)")
    p.set_defaults(func=cmd_tune)

    p = sub.add_parser(
        "trace",
        help="record a traced serve workload; export Chrome trace JSON + "
             "Prometheus text and the measured-vs-predicted region report",
    )
    p.add_argument("--requests", type=_positive_int, default=60)
    p.add_argument("--size", type=_positive_int, default=128)
    p.add_argument("--workers", type=_positive_int, default=4)
    p.add_argument("--variant", default="isp+m",
                   choices=["naive", "isp", "isp+m", "auto"])
    p.add_argument("--sample-rate", type=float, default=1.0,
                   help="head-sampling probability in [0, 1]")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--block", default="32x4")
    p.add_argument("--device", default="GTX680", choices=["GTX680", "RTX2080"])
    p.add_argument("--out", default=None,
                   help="write Chrome trace-event JSON here (Perfetto)")
    p.add_argument("--prom", default=None,
                   help="write the Prometheus text exposition here")
    p.add_argument("--no-report", dest="report", action="store_false",
                   help="skip the measured-vs-predicted region report")
    p.add_argument("--report-size", type=_positive_int, default=None,
                   help="image size for the region report (default: --size)")
    p.add_argument("--report-apps", default="gaussian",
                   help="comma list of apps to profile regionally")
    p.add_argument("--report-pattern", default="clamp",
                   choices=["clamp", "mirror", "repeat", "constant"])
    p.add_argument("--tolerance", type=float, default=0.10,
                   help="allowed |measured - predicted| / predicted drift")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "sanitize",
        help="prove every compiled kernel's memory accesses in-bounds",
    )
    p.add_argument("--apps", default=None,
                   help="comma list (default: all five filters)")
    p.add_argument("--size", type=_parse_sizes, default=[64, 9],
                   help="image sizes; small ones exercise the degenerate "
                        "naive fallback")
    p.add_argument("--variants", default="naive,isp,isp_warp",
                   help="comma list of compile variants")
    p.add_argument("--block", default="32x4")
    p.add_argument("--differential", action="store_true",
                   help="also run the cross-variant differential harness "
                        "(tiny images x large windows vs NumPy reference)")
    p.add_argument("--pipelines", action="store_true",
                   help="also run the pipeline differential: fused vs "
                        "staged vs reference over conv chains and the "
                        "sobel/night apps, bit-exact at every tile shape")
    p.add_argument("--verbose", action="store_true",
                   help="print one line per sanitized kernel variant")
    p.set_defaults(func=cmd_sanitize)

    p = sub.add_parser(
        "cluster",
        help="boot a local multi-shard serve cluster and drive a "
             "digest-verified load through the gateway",
    )
    p.add_argument("--shards", type=_positive_int, default=3)
    p.add_argument("--requests", type=_positive_int, default=200)
    p.add_argument("--size", type=_positive_int, default=96)
    p.add_argument("--concurrency", type=_positive_int, default=16)
    p.add_argument("--engine-workers", type=_positive_int, default=2,
                   help="serve workers inside each shard process")
    p.add_argument("--variant", default="isp+m",
                   choices=["naive", "isp", "isp_warp", "isp+m", "auto"])
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--max-inflight", type=_positive_int, default=64)
    p.add_argument("--tenant-quota", type=_positive_int, default=None)
    p.add_argument("--sample-rate", type=float, default=0.0,
                   help="gateway head-sampling probability in [0, 1]")
    p.add_argument("--snapshot-interval", type=float, default=2.0,
                   help="autotune warm-start snapshot period (s); 0 off")
    p.add_argument("--warmstart-dir", default=None,
                   help="persistent warm-start directory (default: temp)")
    p.add_argument("--no-verify", action="store_true",
                   help="skip bit-exact digest verification")
    p.add_argument("--prom", default=None,
                   help="write the merged (shard-labeled) Prometheus "
                        "exposition here")
    p.add_argument("--scaling", action="store_true",
                   help="run the 1 -> N shard scaling curve instead")
    p.add_argument("--shard-counts", default=None,
                   help="comma list for --scaling (default 1,2,4 or "
                        "$REPRO_CLUSTER_BENCH_SHARDS)")
    p.set_defaults(func=cmd_cluster)

    p = sub.add_parser("codegen", help="dump generated CUDA C")
    _add_common(p)
    p.add_argument("--variant", default="isp",
                   choices=["naive", "isp", "isp_warp", "texture"])
    p.add_argument("--kernel-index", type=int, default=0)
    p.set_defaults(func=cmd_codegen)

    p = sub.add_parser("regions", help="print the ISP region decomposition")
    _add_common(p)
    p.set_defaults(func=cmd_regions)

    p = sub.add_parser("devices", help="list simulated GPUs")
    p.set_defaults(func=cmd_devices)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
