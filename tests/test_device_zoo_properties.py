"""Property tests over the device zoo (docs/devices.md).

The zoo parameterizes everything the paper's evaluation touches per device:
warp/wavefront width, occupancy-calculator limits, and the per-architecture
cost tables. These properties must hold for *every* zoo entry — present and
future — so they are written against ``DEVICES`` itself plus
hypothesis-drawn launch shapes, not against any single pinned device:

* occupancy is never zero for a launchable block (the calculator models an
  unlaunchable kernel as one serialized block, not zero);
* warp rounding is exact: ``warps_per_block * warp_size`` covers the block,
  and never over-covers by a full warp;
* register accounting is allocation-granular and never undercounts the raw
  register demand;
* every zoo architecture has a cost table with strictly positive rates;
* ``DeviceSpec`` rejects non-power-of-two warp widths (the warp-grained
  dispatch shift ``tid.x >> log2(warp_size)`` requires one).
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import DEVICES, DeviceSpec
from repro.gpu.cost import CostTable, cost_table_for
from repro.gpu.launch import LaunchConfig
from repro.gpu.occupancy import compute_occupancy, registers_per_block

ZOO = sorted(DEVICES.values(), key=lambda d: d.name)

devices = st.sampled_from(ZOO)
#: block shapes the compiler would actually emit: x a power of two (the
#: vectorized executor and warp dispatch require it), y a small row count.
block_xs = st.sampled_from([8, 16, 32, 64, 128, 256])
block_ys = st.integers(min_value=1, max_value=8)
regs = st.integers(min_value=0, max_value=255)
shared = st.sampled_from([0, 128, 1024, 4096, 16384, 48 * 1024])


class TestZooShape:
    def test_zoo_covers_both_execution_models(self):
        # The regression matrix needs >= 4 devices including wave64 parts.
        assert len(ZOO) >= 4
        widths = {d.warp_size for d in ZOO}
        assert 32 in widths and 64 in widths
        assert sum(1 for d in ZOO if d.warp_size == 64) >= 2

    def test_every_zoo_arch_has_a_cost_table(self):
        tables = {d.name: cost_table_for(d) for d in ZOO}
        # Distinct architectures must not silently share the fallback table.
        archs = {d.arch for d in ZOO}
        assert len({id(cost_table_for(d)) for d in ZOO}) == len(archs)
        for name, table in tables.items():
            for field in dataclasses.fields(CostTable):
                assert getattr(table, field.name) > 0, (name, field.name)

    def test_warp_size_must_be_power_of_two(self):
        base = dataclasses.asdict(DEVICES["GTX680"])
        for bad in (0, -32, 33, 48):
            base["warp_size"] = bad
            with pytest.raises(ValueError):
                DeviceSpec(**base)

    def test_max_threads_follow_warp_width(self):
        for dev in ZOO:
            assert dev.max_threads_per_sm == (
                dev.max_warps_per_sm * dev.warp_size
            ), dev.name


class TestOccupancyProperties:
    @settings(max_examples=200, deadline=None)
    @given(device=devices, bx=block_xs, by=block_ys, r=regs, s=shared)
    def test_occupancy_positive_and_bounded(self, device, bx, by, r, s):
        threads = bx * by
        if threads > device.max_threads_per_block:
            return
        occ = compute_occupancy(device, threads, r, shared_bytes=s)
        assert occ.active_blocks_per_sm >= 1
        assert 0.0 < occ.occupancy <= 1.0
        assert occ.limiter in ("blocks", "warps", "registers", "shared")

    @settings(max_examples=200, deadline=None)
    @given(device=devices, bx=block_xs, by=block_ys)
    def test_warp_rounding_exact(self, device, bx, by):
        threads = bx * by
        if threads > device.max_threads_per_block:
            return
        occ = compute_occupancy(device, threads, 32)
        covered = occ.warps_per_block * device.warp_size
        assert covered >= threads
        # Ceiling division: never a whole spare warp.
        assert covered - threads < device.warp_size

    @settings(max_examples=200, deadline=None)
    @given(device=devices, bx=block_xs, by=block_ys, r=regs)
    def test_register_accounting_never_undercounts(self, device, bx, by, r):
        threads = bx * by
        if threads > device.max_threads_per_block:
            return
        block_regs = registers_per_block(device, threads, r)
        assert block_regs >= max(r, 1) * threads
        assert block_regs % device.register_alloc_unit == 0


class TestLaunchWarpDecomposition:
    @settings(max_examples=100, deadline=None)
    @given(device=devices, bx=block_xs, by=block_ys)
    def test_launch_config_warp_count_matches_occupancy(self, device, bx, by):
        if bx * by > device.max_threads_per_block:
            return
        cfg = LaunchConfig.for_image(max(bx, 64) * 4, by * 4, (bx, by),
                                     warp_size=device.warp_size)
        occ = compute_occupancy(device, bx * by, 32)
        assert cfg.warp_size == device.warp_size
        assert cfg.warps_per_block == occ.warps_per_block

    def test_launch_config_rejects_bad_warp_size(self):
        with pytest.raises(ValueError):
            LaunchConfig.for_image(64, 64, (32, 2), warp_size=48)
