"""Shared measurement harness for the table/figure benchmarks.

Centralizes the paper's evaluation grid (Section VI): five applications,
four border patterns, four image sizes, two GPUs — and the three measured
policies: ``naive``, ``isp`` (always partition) and ``isp+m`` (partition only
where the analytic model predicts a gain).

Measurements are memoized in-process; the underlying representative-block
profiles are additionally cached across image sizes by the runtime, so the
full grid is tractable.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Optional

from repro.compiler import Variant, trace_kernel
from repro.dsl import Boundary
from repro.filters import PIPELINES
from repro.gpu import DEVICES, DeviceSpec
from repro.runtime import measure_pipeline, select_variants

#: The paper's evaluation grid (Section VI).
APPS = ["gaussian", "laplace", "bilateral", "sobel", "night"]
PATTERNS = [Boundary.CLAMP, Boundary.MIRROR, Boundary.REPEAT, Boundary.CONSTANT]
SIZES = [512, 1024, 2048, 4096]
DEVICE_NAMES = ["GTX680", "RTX2080"]
#: The full device zoo (docs/devices.md) for the cross-device regression
#: matrix — the paper's two parts plus Pascal/Ampere and two wave64 AMD
#: parts. Table/figure benches stay on the paper's grid (DEVICE_NAMES);
#: zoo-wide benches iterate this list.
ZOO_DEVICE_NAMES = ["GTX680", "GTX1080", "RTX2080", "RTX3080", "VEGA64",
                    "MI100"]
BLOCK = (32, 4)


@dataclasses.dataclass(frozen=True)
class Config:
    app: str
    boundary: Boundary
    size: int
    device: str

    def pipeline(self):
        return PIPELINES[self.app](self.size, self.size, self.boundary)

    @property
    def dev(self) -> DeviceSpec:
        return DEVICES[self.device]


def stable_seed(*parts: object) -> int:
    """Deterministic 63-bit RNG seed derived from the case name.

    Every benchmark that draws random data seeds from its own identifiers
    (``stable_seed("bench_x", app, pattern, size)`` or the pytest node id),
    so autotuner trial timings and differential sweeps see the *same* inputs
    run-to-run and case-to-case collisions cannot alias two measurements —
    unlike module-level constants, which silently share one stream across
    cases, or unseeded generators, which are irreproducible.
    """
    text = "::".join(str(p) for p in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


_TIME_CACHE: dict[tuple, float] = {}
_CHOICE_CACHE: dict[tuple, dict[str, Variant]] = {}


def measured_time_us(cfg: Config, policy: str, block=BLOCK) -> float:
    """Simulated execution time of one configuration under one policy.

    ``policy`` is ``"naive"``, ``"isp"`` or ``"isp+m"``.
    """
    key = (cfg, policy, block)
    if key in _TIME_CACHE:
        return _TIME_CACHE[key]
    pipe = cfg.pipeline()
    if policy == "naive":
        m = measure_pipeline(pipe, variant=Variant.NAIVE, block=block, device=cfg.dev)
    elif policy == "isp":
        m = measure_pipeline(pipe, variant=Variant.ISP, block=block, device=cfg.dev)
    elif policy == "isp+m":
        choices = model_choices(cfg, block)
        m = measure_pipeline(pipe, variant=Variant.ISP_MODEL, block=block,
                             device=cfg.dev, per_kernel_variants=choices)
    else:
        raise ValueError(f"unknown policy {policy!r}")
    _TIME_CACHE[key] = m.total_us
    return m.total_us


def model_choices(cfg: Config, block=BLOCK) -> dict[str, Variant]:
    key = (cfg, block)
    if key not in _CHOICE_CACHE:
        _CHOICE_CACHE[key] = select_variants(cfg.pipeline(), block=block,
                                             device=cfg.dev)
    return _CHOICE_CACHE[key]


def speedup_over_naive(cfg: Config, policy: str, block=BLOCK) -> float:
    return measured_time_us(cfg, "naive", block) / measured_time_us(
        cfg, policy, block
    )


def model_gain(cfg: Config, block=BLOCK) -> float:
    """The paper's G (Eq. 10) for the pipeline's dominant bordered kernel —
    the geometric mean over bordered kernels for multi-kernel pipelines."""
    from repro.model import predict_kernel
    from repro.reporting import geometric_mean

    gains = []
    for kernel in cfg.pipeline():
        desc = trace_kernel(kernel)
        if not desc.needs_border_handling:
            continue
        gains.append(predict_kernel(desc, block=block, device=cfg.dev).gain)
    return geometric_mean(gains) if gains else 1.0
