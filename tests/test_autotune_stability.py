"""Property test: the autotuner never flaps.

The hysteresis contract (docs/autotuner.md): once a configuration commits,
the committed variant changes only when a challenger's *best* observed time
beats the incumbent's by more than the hysteresis margin. So for any
workload where one variant is genuinely fastest — its rivals' noise-free
times sit at or above the winner's worst noisy sample — the committed
variant must change **at most once** (the initial commit) and the switch
counter must stay at zero, no matter how the noise lands, how often probes
fire, or how many requests arrive.

Measurement noise is modelled the way the tuner's own scoring assumes
(module docstring of repro.serve.autotune): co-tenant interference only
ever *inflates* a wall-clock sample, so multipliers are drawn from
``[1.0, noise_max]``.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import AutoTuner, TunerKey

KEY = TunerKey(digest="f" * 64, width=64, height=64,
               pattern="clamp", device="hypothetical")

VARIANTS = ("naive", "isp", "isp_warp", "prepad", "fused")


def run_workload(tuner, key, base_times, noise_max, n_requests, rng):
    """Drive decide/observe like the engine does, with inflate-only noise."""
    served = []
    for _ in range(n_requests):
        variant, phase = tuner.decide(key, prior=lambda: 1.5)
        seconds = base_times[variant] * rng.uniform(1.0, noise_max)
        tuner.observe(key, variant, seconds)
        served.append((variant, phase))
    return served


@settings(max_examples=60, deadline=None)
@given(
    winner=st.sampled_from(VARIANTS),
    winner_base=st.floats(min_value=1e-4, max_value=5e-2),
    noise_max=st.floats(min_value=1.0, max_value=1.6),
    # rivals sit strictly above winner_base * noise_max: the winner is
    # stable even against its own worst noisy sample (an exact tie is a
    # legitimate coin-flip commit, not a stable winner)
    lifts=st.tuples(st.floats(min_value=1.01, max_value=4.0),
                    st.floats(min_value=1.01, max_value=4.0),
                    st.floats(min_value=1.01, max_value=4.0),
                    st.floats(min_value=1.01, max_value=4.0)),
    trials=st.integers(min_value=1, max_value=3),
    probe_every=st.integers(min_value=3, max_value=12),
    hysteresis=st.floats(min_value=0.0, max_value=0.3),
    n_extra=st.integers(min_value=10, max_value=80),
    noise_seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_stable_winner_commits_once_and_never_flaps(
        winner, winner_base, noise_max, lifts, trials, probe_every,
        hysteresis, n_extra, noise_seed):
    rivals = [v for v in VARIANTS if v != winner]
    base_times = {winner: winner_base}
    for rival, lift in zip(rivals, lifts):
        base_times[rival] = winner_base * noise_max * lift

    tuner = AutoTuner(trials_per_variant=trials, hysteresis=hysteresis,
                      probe_every=probe_every)
    rng = random.Random(noise_seed)
    n_requests = trials * len(VARIANTS) + probe_every + n_extra
    served = run_workload(tuner, KEY, base_times, noise_max, n_requests, rng)

    snap = tuner.metrics.snapshot()["counters"]
    assert snap["tuner.commits"] == 1, "committed more than once"
    assert snap["tuner.switches"] == 0, (
        f"tuner flapped under a stable winner: {served}"
    )
    (row,) = tuner.table()
    assert row["committed"] == winner
    assert row["switches"] == 0
    # probes did run — the no-flap property was actually exercised, not
    # trivially satisfied by never re-measuring the runner-up
    if n_extra > probe_every:
        assert snap["tuner.probes"] >= 1
    # post-commit serving sticks to the winner outside probe decisions
    post_commit = served[trials * len(VARIANTS):]
    assert all(v == winner for v, phase in post_commit if phase == "serve")


@settings(max_examples=40, deadline=None)
@given(
    hysteresis=st.floats(min_value=0.05, max_value=0.3),
    probe_every=st.integers(min_value=2, max_value=8),
    noise_seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_genuine_regime_change_switches_exactly_once(
        hysteresis, probe_every, noise_seed):
    """The dual property: when the truth changes by more than the margin,
    the tuner follows it — with exactly one switch, not a flap train."""
    tuner = AutoTuner(trials_per_variant=1, hysteresis=hysteresis,
                      probe_every=probe_every)
    rng = random.Random(noise_seed)

    # phase 1: isp clearly fastest -> commit isp
    phase1 = {"naive": 10e-3, "isp": 2e-3, "isp_warp": 12e-3,
              "prepad": 14e-3, "fused": 16e-3}
    run_workload(tuner, KEY, phase1, 1.2, 4 + probe_every, rng)
    (row,) = tuner.table()
    assert row["committed"] == "isp"

    # phase 2: the regime shifts — isp degrades far past the margin while
    # naive probes come back well under it
    phase2 = {"naive": 0.2e-3, "isp": 2e-3, "isp_warp": 12e-3,
              "prepad": 14e-3, "fused": 16e-3}
    run_workload(tuner, KEY, phase2, 1.2, 6 * probe_every, rng)

    snap = tuner.metrics.snapshot()["counters"]
    (row,) = tuner.table()
    assert row["committed"] == "naive"
    assert snap["tuner.switches"] == 1, "regime change should switch once"


def test_switch_requires_beating_the_margin_strictly():
    """Deterministic pin of the boundary: a challenger exactly at
    ``incumbent * (1 - hysteresis)`` must NOT switch; epsilon under it must."""
    for challenger_scale, expect_switch in ((1.0, False), (0.999, True)):
        tuner = AutoTuner(trials_per_variant=1, hysteresis=0.10,
                          probe_every=1)
        # commit naive at 10ms; rivals slower
        for _ in range(5):
            decided, phase = tuner.decide(KEY, prior=lambda: 0.5)
            tuner.observe(KEY, decided, {"naive": 10e-3, "isp": 20e-3,
                                         "isp_warp": 30e-3,
                                         "prepad": 40e-3,
                                         "fused": 50e-3}[decided])
        (row,) = tuner.table()
        assert row["committed"] == "naive"
        # drive probes until isp gets re-measured at the boundary value
        target = 10e-3 * (1.0 - 0.10) * challenger_scale
        for _ in range(8):
            decided, phase = tuner.decide(KEY, prior=lambda: 0.5)
            if phase == "probe" and decided == "isp":
                tuner.observe(KEY, decided, target)
            else:
                tuner.observe(KEY, decided, {"naive": 10e-3,
                                             "isp_warp": 30e-3,
                                             "prepad": 40e-3,
                                             "fused": 50e-3}.get(decided,
                                                                 target))
        (row,) = tuner.table()
        switched = row["committed"] != "naive"
        assert switched == expect_switch, (
            f"challenger at scale {challenger_scale}: "
            f"expected switch={expect_switch}, committed={row['committed']}"
        )
