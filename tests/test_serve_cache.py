"""Plan cache: principled keys, LRU behaviour, single-flight builds."""

import threading

import pytest

from repro.serve import PlanCache, PlanKey, build_plan, plan_key, trace_app


def _key(tag: str) -> PlanKey:
    """A synthetic key; the cache treats keys opaquely."""
    return PlanKey(digest=tag, variant="isp", pattern="clamp", width=64,
                   height=64, device="GTX680", block=(32, 4))


class TestPlanKey:
    def test_key_is_content_based_not_identity_based(self):
        # Two completely independent traces of the same workload must
        # produce the same key (the id()-based keys the cache replaces
        # would differ every time).
        a = trace_app("gaussian", "mirror", 128, 128)
        b = trace_app("gaussian", "mirror", 128, 128)
        ka = plan_key(a, variant="isp+m", pattern="mirror")
        kb = plan_key(b, variant="isp+m", pattern="mirror")
        assert ka == kb
        assert hash(ka) == hash(kb)

    def test_key_distinguishes_workload_dimensions(self):
        descs = trace_app("gaussian", "mirror", 128, 128)
        base = plan_key(descs, variant="isp", pattern="mirror")
        assert plan_key(descs, variant="naive", pattern="mirror") != base
        other_pattern = trace_app("gaussian", "clamp", 128, 128)
        assert plan_key(other_pattern, variant="isp", pattern="clamp") != base
        other_size = trace_app("gaussian", "mirror", 256, 256)
        assert plan_key(other_size, variant="isp", pattern="mirror") != base
        other_app = trace_app("laplace", "mirror", 128, 128)
        assert plan_key(other_app, variant="isp", pattern="mirror") != base

    def test_unknown_variant_rejected(self):
        descs = trace_app("gaussian", "clamp", 64, 64)
        with pytest.raises(ValueError):
            plan_key(descs, variant="warp9", pattern="clamp")


class TestLru:
    def test_hit_miss_accounting(self):
        cache = PlanCache(capacity=4)
        assert cache.get(_key("a")) is None
        cache.put(_key("a"), "plan-a")
        assert cache.get(_key("a")) == "plan-a"
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["hit_rate"] == 0.5
        assert stats["size"] == 1

    def test_eviction_order_is_least_recently_used(self):
        cache = PlanCache(capacity=2)
        cache.put(_key("a"), "A")
        cache.put(_key("b"), "B")
        # Touch "a" so "b" becomes the LRU entry.
        assert cache.get(_key("a")) == "A"
        cache.put(_key("c"), "C")
        assert cache.keys() == [_key("a"), _key("c")]
        assert cache.get(_key("b")) is None  # evicted
        assert cache.stats()["evictions"] == 1

    def test_reinserting_refreshes_recency(self):
        cache = PlanCache(capacity=2)
        cache.put(_key("a"), "A")
        cache.put(_key("b"), "B")
        cache.put(_key("a"), "A2")  # refresh: now "b" is LRU
        cache.put(_key("c"), "C")
        assert _key("b") not in cache
        assert cache.get(_key("a")) == "A2"

    def test_capacity_zero_disables_caching(self):
        cache = PlanCache(capacity=0)
        cache.put(_key("a"), "A")
        assert len(cache) == 0
        builds = []
        for _ in range(3):
            plan, hit = cache.get_or_build(_key("a"), lambda: builds.append(1))
            assert not hit
        assert len(builds) == 3
        assert cache.stats()["misses"] == 3

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=-1)


class TestGetOrBuild:
    def test_miss_then_hits(self):
        cache = PlanCache(capacity=4)
        calls = []

        def factory():
            calls.append(1)
            return "built"

        plan, hit = cache.get_or_build(_key("a"), factory)
        assert (plan, hit) == ("built", False)
        plan, hit = cache.get_or_build(_key("a"), factory)
        assert (plan, hit) == ("built", True)
        assert len(calls) == 1

    def test_concurrent_misses_coalesce_to_one_build(self):
        cache = PlanCache(capacity=4)
        calls = []
        release = threading.Event()

        def slow_factory():
            calls.append(1)
            release.wait(5.0)
            return "built"

        results = []

        def worker():
            results.append(cache.get_or_build(_key("a"), slow_factory))

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for t in threads:
            t.start()
        release.set()
        for t in threads:
            t.join(10.0)
        assert len(calls) == 1, "single-flight: only one thread builds"
        assert all(plan == "built" for plan, _ in results)
        # Exactly one build; the other five were served from the cache.
        assert sum(1 for _, hit in results if not hit) == 1
        assert sum(1 for _, hit in results if hit) == 5

    def test_factory_failure_releases_waiters(self):
        cache = PlanCache(capacity=4)

        def boom():
            raise RuntimeError("no plan for you")

        with pytest.raises(RuntimeError):
            cache.get_or_build(_key("a"), boom)
        # The key is not wedged: the next caller becomes the builder.
        plan, hit = cache.get_or_build(_key("a"), lambda: "fine")
        assert (plan, hit) == ("fine", False)

    def test_real_plans_round_trip(self):
        cache = PlanCache(capacity=4)
        descs = trace_app("gaussian", "clamp", 64, 64)
        key = plan_key(descs, variant="isp", pattern="clamp")
        plan, hit = cache.get_or_build(
            key,
            lambda: build_plan("gaussian", "clamp", 64, 64, variant="isp",
                               descs=descs),
        )
        assert not hit
        again, hit = cache.get_or_build(key, lambda: None)
        assert hit and again is plan
        assert again.kernel_variants == {"out": "isp"}
