"""SIMT GPU simulator: devices, occupancy, memory, warp execution, timing.

This package stands in for the paper's GTX680/RTX2080 testbed. See DESIGN.md
("Substitutions") for the fidelity argument: the simulator models exactly the
mechanisms the paper's analysis depends on — dynamic instruction counts per
region, register-limited occupancy, and wave scheduling.
"""

from .cost import CostTable, cost_table_for
from .device import DEVICES, GTX680, RTX2080, WARP_SIZE, DeviceSpec, get_device
from .launch import LaunchConfig, execute_block, launch
from .memory import GlobalMemory, MemoryError_, transactions_for
from .occupancy import OccupancyResult, compute_occupancy, registers_per_block
from .profiler import BlockProfile, Profiler
from .simt import SimtError, WarpContext, WarpExecutor
from .timing import LAUNCH_OVERHEAD_US, TimingEstimate, estimate_time

__all__ = [
    "DEVICES",
    "GTX680",
    "RTX2080",
    "WARP_SIZE",
    "LAUNCH_OVERHEAD_US",
    "BlockProfile",
    "CostTable",
    "DeviceSpec",
    "GlobalMemory",
    "LaunchConfig",
    "MemoryError_",
    "OccupancyResult",
    "Profiler",
    "SimtError",
    "TimingEstimate",
    "WarpContext",
    "WarpExecutor",
    "compute_occupancy",
    "cost_table_for",
    "estimate_time",
    "execute_block",
    "get_device",
    "launch",
    "registers_per_block",
    "transactions_for",
]
