"""Per-variant circuit breaker: stop planning code shapes that keep failing.

The engine's retry loop absorbs *transient* execution failures; this breaker
handles the *systematic* ones — a variant whose executions fail repeatedly
(injected faults in the chaos suite; a miscompiled shape or a poisoned code
path in production). Tripping reroutes subsequent requests for that variant
to ``naive`` (the always-expressible shape) instead of burning a retry budget
per request, and the engine feeds each trip into the autotuner's penalty path
so tuned configurations also learn to avoid the shape.

State machine, deliberately **count-based** (not wall-clock) so chaos runs
replay identically regardless of scheduling:

* ``closed`` — failures are counted; ``threshold`` *consecutive* failures
  trip the breaker (a success resets the streak).
* ``open`` — the next ``cooldown`` decisions for the variant are rerouted.
* ``half-open`` — after the cooldown, exactly one probe request is let
  through; success closes the breaker, failure re-opens it for another
  cooldown. Concurrent decisions during the probe keep rerouting.

``naive`` itself is never gated — with every other shape broken it must keep
serving, mirroring :meth:`ConfigState.eligible`'s last-resort rule.
"""

from __future__ import annotations

import threading
from typing import Optional

from .metrics import MetricsRegistry

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class _VariantState:
    __slots__ = ("state", "streak", "remaining", "probe_inflight", "trips")

    def __init__(self):
        self.state = CLOSED
        self.streak = 0
        self.remaining = 0
        self.probe_inflight = False
        self.trips = 0


class VariantBreaker:
    """Thread-safe circuit breaker keyed by plan-variant string."""

    def __init__(
        self,
        *,
        threshold: int = 3,
        cooldown: int = 8,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if cooldown < 1:
            raise ValueError("cooldown must be >= 1")
        self.threshold = threshold
        self.cooldown = cooldown
        self._lock = threading.Lock()
        self._states: dict[str, _VariantState] = {}

        m = metrics if metrics is not None else MetricsRegistry()
        self._c_opened = m.counter(
            "breaker.opened", "circuit trips (threshold consecutive failures)")
        self._c_rerouted = m.counter(
            "breaker.rerouted", "requests rerouted to naive by an open circuit")
        self._c_probes = m.counter(
            "breaker.probes", "half-open probe requests let through")
        self._g_open = m.gauge(
            "breaker.open_variants", "variants currently open or half-open")

    def _state(self, variant: str) -> _VariantState:
        st = self._states.get(variant)
        if st is None:
            st = self._states[variant] = _VariantState()
        return st

    def _update_gauge(self) -> None:
        self._g_open.set(sum(
            1 for s in self._states.values() if s.state != CLOSED
        ))

    # -------------------------------------------------------------- decisions

    def should_reroute(self, variant: str) -> bool:
        """Called once per planning decision for ``variant``.

        Returns True when the request must be served as ``naive`` instead.
        Advances the open-state cooldown and admits the single half-open
        probe when it expires.
        """
        if variant == "naive":
            return False
        with self._lock:
            st = self._states.get(variant)
            if st is None or st.state == CLOSED:
                return False
            if st.state == OPEN:
                if st.remaining > 0:
                    st.remaining -= 1
                    self._c_rerouted.inc()
                    return True
                st.state = HALF_OPEN
                st.probe_inflight = False
                self._update_gauge()
            # half-open: admit exactly one probe at a time
            if st.probe_inflight:
                self._c_rerouted.inc()
                return True
            st.probe_inflight = True
            self._c_probes.inc()
            return False

    # ------------------------------------------------------------- reporting

    def record_success(self, variant: str) -> None:
        with self._lock:
            st = self._states.get(variant)
            if st is None:
                return
            st.streak = 0
            if st.state != CLOSED:
                st.state = CLOSED
                st.probe_inflight = False
                self._update_gauge()

    def record_failure(self, variant: str) -> bool:
        """Count one execution failure; returns True when this trips (or
        re-trips) the circuit."""
        if variant == "naive":
            return False
        with self._lock:
            st = self._state(variant)
            if st.state == HALF_OPEN:
                # The probe failed: straight back to open.
                st.state = OPEN
                st.remaining = self.cooldown
                st.probe_inflight = False
                st.trips += 1
                self._c_opened.inc()
                self._update_gauge()
                return True
            st.streak += 1
            if st.state == CLOSED and st.streak >= self.threshold:
                st.state = OPEN
                st.remaining = self.cooldown
                st.streak = 0
                st.trips += 1
                self._c_opened.inc()
                self._update_gauge()
                return True
            return False

    def state(self, variant: str) -> str:
        with self._lock:
            st = self._states.get(variant)
            return st.state if st is not None else CLOSED

    def stats(self) -> dict:
        with self._lock:
            return {
                variant: {"state": st.state, "trips": st.trips}
                for variant, st in sorted(self._states.items())
            }
