"""Tests for reporting helpers (stats cross-checked against SciPy)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reporting import format_series, format_table, geometric_mean, pearson, speedup

positive_floats = st.floats(min_value=1e-3, max_value=1e3)


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([2.0, 2.0, 2.0]) == pytest.approx(2.0)

    @settings(deadline=None)
    @given(st.lists(positive_floats, min_size=1, max_size=20))
    def test_matches_scipy(self, values):
        scipy_stats = pytest.importorskip("scipy.stats")
        assert geometric_mean(values) == pytest.approx(
            float(scipy_stats.gmean(values)), rel=1e-9
        )

    @given(st.lists(positive_floats, min_size=1, max_size=20))
    def test_between_min_and_max(self, values):
        g = geometric_mean(values)
        assert min(values) - 1e-12 <= g <= max(values) + 1e-12

    def test_rejects_nonpositive_and_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])


class TestPearson:
    def test_perfect_correlation(self):
        assert pearson([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)
        assert pearson([1, 2, 3], [-1, -2, -3]) == pytest.approx(-1.0)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=-100, max_value=100),
                st.floats(min_value=-100, max_value=100),
            ),
            min_size=3,
            max_size=30,
        )
    )
    @settings(deadline=None)
    def test_matches_scipy(self, pairs):
        scipy_stats = pytest.importorskip("scipy.stats")
        xs = [p[0] for p in pairs]
        ys = [p[1] for p in pairs]
        if len(set(xs)) < 2 or len(set(ys)) < 2:
            return
        # Skip inputs whose variance underflows float64 (e.g. values around
        # 1e-193 square to ~1e-386 == 0.0) — both implementations reject them.
        mx, my = sum(xs) / len(xs), sum(ys) / len(ys)
        if sum((x - mx) ** 2 for x in xs) == 0 or sum((y - my) ** 2 for y in ys) == 0:
            return
        ours = pearson(xs, ys)
        theirs = float(scipy_stats.pearsonr(xs, ys).statistic)
        if math.isnan(theirs):
            return
        assert ours == pytest.approx(theirs, abs=1e-6)

    def test_bounds_and_errors(self):
        with pytest.raises(ValueError):
            pearson([1], [2])
        with pytest.raises(ValueError):
            pearson([1, 2], [3])
        with pytest.raises(ValueError):
            pearson([1, 1], [2, 3])


class TestSpeedup:
    def test_direction(self):
        assert speedup(2.0, 1.0) == 2.0  # improved is 2x faster
        assert speedup(1.0, 2.0) == 0.5
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)


class TestTables:
    def test_basic_render(self):
        text = format_table(
            ["app", "speedup"],
            [["gaussian", 1.438], ["sobel", 1.877]],
            title="Table IV",
        )
        assert "Table IV" in text
        assert "1.438" in text and "1.877" in text
        lines = text.splitlines()
        widths = {len(line) for line in lines[2:]}
        assert len(widths) == 1  # aligned columns

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [["x", "y"]])

    def test_series(self):
        text = format_series("body%", [(512, 84.8), (4096, 98.0)])
        assert "512" in text and "84.800" in text


class TestExport:
    def test_roundtrip(self, tmp_path):
        from repro.reporting import export_json, load_json

        payload = {"rows": [[1, 2.5, "x"]], "meta": {"device": "GTX680"}}
        out = export_json(tmp_path, "t1", payload)
        assert out.exists()
        assert load_json(tmp_path, "t1") == payload

    def test_converts_enums_and_dataclasses(self, tmp_path):
        import numpy as np

        from repro.compiler import Variant
        from repro.gpu import compute_occupancy, GTX680
        from repro.reporting import export_json, load_json

        occ = compute_occupancy(GTX680, 128, 46)
        export_json(tmp_path, "t2", {
            "variant": Variant.ISP,
            "occ": occ,
            "speed": np.float32(1.5),
        })
        data = load_json(tmp_path, "t2")
        assert data["variant"] == "isp"
        assert data["occ"]["occupancy"] == 0.625
        assert data["speed"] == 1.5

    def test_deterministic_output(self, tmp_path):
        from repro.reporting import export_json

        a = export_json(tmp_path, "t3", {"b": 1, "a": 2}).read_text()
        b = export_json(tmp_path, "t3", {"a": 2, "b": 1}).read_text()
        assert a == b
