"""``repro.faults`` — deterministic fault injection for the serve stack.

A seeded :class:`FaultPlan` schedules named faults (memory redzone hits,
worker crashes, latency spikes, cache-eviction storms, corrupted tuner
persistence, sanitizer rejections) through an injection registry that is
zero-overhead when disarmed; the chaos suite (``tests/test_faults_chaos.py``)
sweeps plans through :class:`~repro.serve.ServeEngine` and asserts every
request completes bit-exact or fails with a typed error. See docs/faults.md.
"""

from .core import (
    FaultAction,
    FaultError,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    active,
    armed,
    fire,
)

__all__ = [
    "FaultAction",
    "FaultError",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "active",
    "armed",
    "fire",
]
