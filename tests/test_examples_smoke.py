"""Smoke tests: the example scripts' fast paths run and verify themselves.

The heavyweight measurement sections of some examples are exercised by the
benchmark harness; here we run the cheap, correctness-bearing entry points
in-process so a broken example fails CI.
"""

import runpy
import sys

import pytest


def _run_example(name: str, argv=None, monkeypatch=None):
    if monkeypatch is not None and argv is not None:
        monkeypatch.setattr(sys, "argv", [name] + argv)
    runpy.run_path(f"examples/{name}", run_name="__main__")


class TestFastExamples:
    def test_quickstart(self, capsys):
        _run_example("quickstart.py")
        out = capsys.readouterr().out
        assert "model verdict" in out
        assert "max |err| = 0" in out or "max |err|" in out

    def test_border_patterns(self, capsys):
        _run_example("border_patterns.py")
        out = capsys.readouterr().out
        assert "clamp" in out and "repeat" in out
        # the mapping table shows the constant marker for OOB cells
        assert "  c" in out

    def test_codegen_dump_default(self, capsys, monkeypatch):
        _run_example("codegen_dump.py", [], monkeypatch)
        out = capsys.readouterr().out
        assert "goto Body;" in out
        assert "tex" not in out.split("NAIVE")[0]

    def test_codegen_dump_repeat(self, capsys, monkeypatch):
        _run_example("codegen_dump.py", ["repeat"], monkeypatch)
        out = capsys.readouterr().out
        assert "while (" in out

    def test_serve_throughput(self, capsys, monkeypatch):
        _run_example("serve_throughput.py", ["8", "48"], monkeypatch)
        out = capsys.readouterr().out
        assert "plan cache on" in out
        assert "served from cache" in out


@pytest.mark.slow
class TestSlowExamples:
    """Opt-in (pytest -m slow): the measurement-heavy examples."""

    def test_sobel_edges(self, capsys):
        _run_example("sobel_edges.py")
        assert "speedup" in capsys.readouterr().out

    def test_model_explorer(self, capsys, monkeypatch):
        _run_example("model_explorer.py", ["gaussian", "repeat"], monkeypatch)
        assert "G (Eq.10)" in capsys.readouterr().out
