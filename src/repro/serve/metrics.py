"""Built-in metrics for the serve engine: counters and latency histograms.

Deliberately tiny and dependency-free (the container has no prometheus
client): a :class:`Counter` is a locked integer, a :class:`Histogram` keeps a
bounded sample window and reports count/mean/percentiles, and the
:class:`MetricsRegistry` names them and renders one snapshot dict that
``ServeEngine.stats()`` and ``serve-bench`` consume.

All operations are thread-safe; workers record from many threads at once.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Optional


class Counter:
    """Monotonically increasing event count."""

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """Last-written value (e.g. learned-table size, agreement rate)."""

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Latency distribution over a bounded window of recent observations.

    Keeps the most recent ``window`` samples (count/sum are exact over the
    whole lifetime; percentiles are over the window). Percentiles use the
    nearest-rank method on a sorted copy — fine at these sample counts.
    """

    def __init__(self, name: str, help: str = "", window: int = 8192):
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._samples: deque[float] = deque(maxlen=window)
        self._count = 0
        self._sum = 0.0
        self._max: Optional[float] = None

    def observe(self, value: float) -> None:
        with self._lock:
            self._samples.append(float(value))
            self._count += 1
            self._sum += float(value)
            if self._max is None or value > self._max:
                self._max = float(value)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile of the sample window, q in [0, 100]."""
        with self._lock:
            samples = sorted(self._samples)
        if not samples:
            return 0.0
        rank = max(0, min(len(samples) - 1, round(q / 100.0 * len(samples)) - 1))
        return samples[rank]

    def snapshot(self) -> dict:
        with self._lock:
            samples = sorted(self._samples)
            count, total, peak = self._count, self._sum, self._max
        if not samples:
            return {"count": count, "mean": 0.0, "p50": 0.0, "p90": 0.0,
                    "p99": 0.0, "max": 0.0}

        def rank(q: float) -> float:
            idx = max(0, min(len(samples) - 1, round(q / 100.0 * len(samples)) - 1))
            return samples[idx]

        return {
            "count": count,
            "mean": total / count if count else 0.0,
            "p50": rank(50.0),
            "p90": rank(90.0),
            "p99": rank(99.0),
            "max": peak if peak is not None else 0.0,
        }


class MetricsRegistry:
    """Named collection of counters and histograms."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str, help: str = "") -> Counter:
        with self._lock:
            if name not in self._counters:
                self._counters[name] = Counter(name, help)
            return self._counters[name]

    def gauge(self, name: str, help: str = "") -> Gauge:
        with self._lock:
            if name not in self._gauges:
                self._gauges[name] = Gauge(name, help)
            return self._gauges[name]

    def histogram(self, name: str, help: str = "", window: int = 8192) -> Histogram:
        with self._lock:
            if name not in self._histograms:
                self._histograms[name] = Histogram(name, help, window)
            return self._histograms[name]

    def snapshot(self) -> dict:
        """One nested dict: {"counters": {...}, "gauges": {...}, "histograms": {...}}."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {n: c.value for n, c in sorted(counters.items())},
            "gauges": {n: g.value for n, g in sorted(gauges.items())},
            "histograms": {n: h.snapshot() for n, h in sorted(histograms.items())},
        }

    def render(self) -> str:
        """Human-readable multi-line dump (used by ``serve-bench``)."""
        snap = self.snapshot()
        lines = []
        for name, value in snap["counters"].items():
            lines.append(f"{name} = {value}")
        for name, value in snap["gauges"].items():
            lines.append(f"{name} = {value:g}")
        for name, h in snap["histograms"].items():
            lines.append(
                f"{name}: n={h['count']} mean={h['mean'] * 1e3:.2f}ms "
                f"p50={h['p50'] * 1e3:.2f}ms p90={h['p90'] * 1e3:.2f}ms "
                f"max={h['max'] * 1e3:.2f}ms"
            )
        return "\n".join(lines)
