"""Synthetic cluster load: a mixed workload driven through the gateway,
verified bit-exact against locally computed references.

The generator mirrors :func:`repro.serve.bench.build_workload`'s workload
shape (same apps, same border patterns, a small pool of seeded images) but
drives the *cluster* path: images are pre-registered on every shard once
(``put_image``), requests reference them by name and ask for
``return="digest"`` — so a 10k-request smoke run ships kilobytes per
request, not megabytes, and still proves bit-exactness: the shard's output
digest must equal the digest of the same plan executed locally.

Every response is checked against the cluster's one correctness contract:
**bit-exact or typed**. An ok response with a wrong digest, or an error
response with a kind outside :data:`~repro.cluster.protocol.
CLUSTER_ERROR_KINDS`, fails the run. Everything else — failovers included —
is accounting, reported per shard and per error kind.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

import numpy as np

from ..serve.bench import DEFAULT_APPS, DEFAULT_PATTERNS
from ..serve.plan import build_plan
from .gateway import ClusterRequest, SyncGateway
from .protocol import CLUSTER_ERROR_KINDS, array_digest


def build_cluster_workload(
    n: int,
    *,
    size: int = 128,
    seed: int = 0,
    apps: Sequence[str] = DEFAULT_APPS,
    patterns: Sequence[str] = DEFAULT_PATTERNS,
    variant: str = "isp+m",
    pool_size: int = 4,
    tenants: Sequence[str] = ("default",),
    timeout_s: Optional[float] = None,
) -> tuple[list[ClusterRequest], dict[str, np.ndarray]]:
    """(requests, image pool) for one load run.

    Requests reference pool images by name (``img-<i>``); the caller
    registers the pool on the shards before driving the requests. The mix is
    deterministic in ``seed`` — same workload, run after run.
    """
    rng = np.random.default_rng(seed)
    pool = {
        f"img-{i}": rng.random((size, size), dtype=np.float32)
        for i in range(pool_size)
    }
    refs = list(pool)
    kinds = [(a, p) for a in apps for p in patterns]
    order = rng.permutation(np.arange(n) % len(kinds))
    requests = []
    for i in range(n):
        app, pattern = kinds[order[i]]
        requests.append(ClusterRequest(
            app,
            image_ref=refs[i % len(refs)],
            shape=(size, size),
            pattern=pattern,
            variant=variant,
            tenant=tenants[i % len(tenants)],
            timeout_s=timeout_s,
            return_mode="digest",
        ))
    return requests, pool


def reference_digests(
    requests: Sequence[ClusterRequest], pool: dict[str, np.ndarray]
) -> dict[tuple, str]:
    """Locally computed output digest per distinct workload kind.

    One plan build + execute per ``(app, pattern, ref, variant)`` — the
    ground truth the shards' digests are compared against. Local plans and
    shard plans are built by the same pure compiler from the same
    descriptions, so equal digests mean bit-exact outputs. ``"auto"``
    references are built as ``"naive"``: every plan variant is bit-exact to
    every other (the ISP partitioning changes *where* border logic runs,
    never *what* it computes), so one digest covers whatever variant the
    shard's tuner resolves — which is also why failover between shards
    with differently-warmed tuners stays bit-exact.
    """
    out: dict[tuple, str] = {}
    for r in requests:
        kind = (r.app, r.pattern, r.image_ref, r.variant)
        if kind in out:
            continue
        image = pool[r.image_ref]
        h, w = image.shape
        build_variant = "naive" if r.variant == "auto" else r.variant
        plan = build_plan(r.app, r.pattern, w, h, variant=build_variant,
                          constant=r.constant)
        out[kind] = array_digest(plan.execute(image))
    return out


def run_load(
    sync_gateway: SyncGateway,
    requests: list[ClusterRequest],
    pool: dict[str, np.ndarray],
    *,
    concurrency: int = 16,
    verify: bool = True,
    timeout: float = 600.0,
) -> dict:
    """Drive the workload through the gateway; returns the report dict.

    Raises ``AssertionError`` on any contract violation (wrong digest,
    untyped error kind) so CI smoke runs fail loudly, not statistically.
    """
    slots = sync_gateway.gateway.router.table.slots()
    for ref, image in pool.items():
        sync_gateway.put_image(slots, ref, image)

    refs = reference_digests(requests, pool) if verify else {}

    t0 = time.perf_counter()
    responses = sync_gateway.run(requests, concurrency=concurrency,
                                 timeout=timeout)
    # Self-heal the two transient failure shapes a mid-run shard death
    # leaves behind: a replacement shard does not have the pre-registered
    # image pool ("unknown image ref" -> bad_request), and requests caught
    # in the dead window fail shard_unavailable. One re-seed + one retry
    # round converts both back into served requests; anything still failing
    # after that is reported as-is.
    retry_idx = [
        i for i, r in enumerate(responses)
        if (not r.ok and (r.error_kind == "shard_unavailable"
                          or (r.error_kind == "bad_request"
                              and "unknown image ref" in (r.error or ""))))
    ]
    retried = 0
    if retry_idx:
        for ref, image in pool.items():
            sync_gateway.put_image(
                sync_gateway.gateway.router.table.live_slots(), ref, image
            )
        redo = sync_gateway.run([requests[i] for i in retry_idx],
                                concurrency=concurrency, timeout=timeout)
        for i, resp in zip(retry_idx, redo):
            responses[i] = resp
        retried = len(retry_idx)
    elapsed = time.perf_counter() - t0

    ok = 0
    mismatches = 0
    failovers = 0
    errors: dict[str, int] = {}
    by_slot: dict[str, int] = {}
    cache_hits = 0
    for req, resp in zip(requests, responses):
        failovers += resp.failovers
        if resp.ok:
            ok += 1
            by_slot[resp.slot] = by_slot.get(resp.slot, 0) + 1
            if resp.cache_hit:
                cache_hits += 1
            if verify:
                expect = refs[(req.app, req.pattern, req.image_ref,
                               req.variant)]
                if resp.digest != expect:
                    mismatches += 1
        else:
            assert resp.error_kind in CLUSTER_ERROR_KINDS, (
                f"untyped cluster error {resp.error_kind!r}: {resp.error}"
            )
            errors[resp.error_kind] = errors.get(resp.error_kind, 0) + 1

    assert mismatches == 0, (
        f"{mismatches} ok responses returned non-bit-exact digests"
    )
    return {
        "requests": len(requests),
        "ok": ok,
        "errors": errors,
        "retried": retried,
        "failovers": failovers,
        "elapsed_s": elapsed,
        "throughput_rps": len(requests) / elapsed if elapsed > 0 else 0.0,
        "cache_hit_rate": (cache_hits / ok) if ok else 0.0,
        "by_slot": dict(sorted(by_slot.items())),
        "verified": bool(verify),
    }


def format_load_report(report: dict) -> str:
    lines = [
        "cluster load report",
        "-------------------",
        f"requests        {report['requests']}",
        f"ok              {report['ok']}",
        f"errors          {sum(report['errors'].values())} "
        f"{report['errors'] or ''}".rstrip(),
        f"failovers       {report['failovers']}  (retried {report['retried']})",
        f"throughput      {report['throughput_rps']:.1f} req/s",
        f"cache hit rate  {report['cache_hit_rate']:.1%}",
        f"verified        {'bit-exact digests' if report['verified'] else 'off'}",
        "per-shard served:",
    ]
    for slot, n in report["by_slot"].items():
        lines.append(f"  {slot:<12} {n}")
    return "\n".join(lines)
