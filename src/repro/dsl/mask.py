"""Masks (coefficient windows) and Domains (iteration windows).

Mirrors Hipacc's ``Mask``/``Domain`` pair (paper Listing 4): a Mask carries
compile-time filter coefficients; a Domain is the set of window offsets a
kernel iterates over. Domains may be *sparse* — the Night filter's à-trous
kernels iterate a 5x5 coefficient pattern dilated over a 17x17 window, so the
domain has 25 entries but the border-handling extent is the full window
(paper Section VI: Atrous with sizes 3x3, 5x5, 9x9, 17x17).
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np


class Domain:
    """An ordered set of (dx, dy) window offsets.

    Offsets are relative to the output pixel; ``extent`` is the half-width
    pair (hx, hy) used to derive border-region geometry.
    """

    def __init__(
        self,
        offsets: list[tuple[int, int]],
        extent: Optional[tuple[int, int]] = None,
    ):
        if not offsets:
            raise ValueError("domain must contain at least one offset")
        seen = set()
        for off in offsets:
            if off in seen:
                raise ValueError(f"duplicate domain offset {off}")
            seen.add(off)
        self.offsets = list(offsets)
        if extent is not None:
            hx, hy = self._tap_extent()
            if extent[0] < hx or extent[1] < hy:
                raise ValueError(
                    f"forced extent {extent} smaller than tap extent {(hx, hy)}"
                )
        self._extent = extent

    def _tap_extent(self) -> tuple[int, int]:
        hx = max(abs(dx) for dx, _ in self.offsets)
        hy = max(abs(dy) for _, dy in self.offsets)
        return hx, hy

    @classmethod
    def rectangle(cls, size_x: int, size_y: int) -> "Domain":
        """Dense odd-sized window centered on the output pixel."""
        _check_odd(size_x, size_y)
        hx, hy = size_x // 2, size_y // 2
        return cls([(dx, dy) for dy in range(-hy, hy + 1) for dx in range(-hx, hx + 1)])

    @property
    def extent(self) -> tuple[int, int]:
        """(hx, hy): border-handling half-extent per axis.

        For sparse (dilated) domains this can exceed the maximum tap offset —
        it is whatever the creating :class:`Mask` declares.
        """
        if self._extent is not None:
            return self._extent
        return self._tap_extent()

    @property
    def window_size(self) -> tuple[int, int]:
        """(m, n): the paper's window dimensions — full extent, both sides."""
        hx, hy = self.extent
        return 2 * hx + 1, 2 * hy + 1

    def __iter__(self) -> Iterator[tuple[int, int]]:
        return iter(self.offsets)

    def __len__(self) -> int:
        return len(self.offsets)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        m, n = self.window_size
        return f"Domain({len(self.offsets)} offsets, window {m}x{n})"


class Mask:
    """Compile-time filter coefficients over an odd-sized window.

    Coefficients are folded into the generated kernel as float immediates
    (Hipacc places them in constant memory; for instruction accounting both
    appear as one operand of the multiply, so the substitution is neutral).
    Zero coefficients are skipped when iterating — that is what makes the
    dilated à-trous masks cheap despite their large border extent.
    """

    def __init__(self, coefficients: np.ndarray):
        coeff = np.asarray(coefficients, dtype=np.float32)
        if coeff.ndim != 2:
            raise ValueError("mask coefficients must be 2-D")
        _check_odd(coeff.shape[1], coeff.shape[0])
        self.coefficients = coeff

    @property
    def size(self) -> tuple[int, int]:
        """(m, n) = (width, height)."""
        return self.coefficients.shape[1], self.coefficients.shape[0]

    @property
    def extent(self) -> tuple[int, int]:
        m, n = self.size
        return m // 2, n // 2

    def coeff(self, dx: int, dy: int) -> float:
        hx, hy = self.extent
        if not (-hx <= dx <= hx and -hy <= dy <= hy):
            raise IndexError(f"offset ({dx}, {dy}) outside mask extent ({hx}, {hy})")
        return float(self.coefficients[dy + hy, dx + hx])

    def domain(self, *, skip_zeros: bool = True) -> Domain:
        """Domain of this mask's offsets (optionally only nonzero coeffs),
        ordered row-major like Hipacc's iterate."""
        hx, hy = self.extent
        offsets = []
        for dy in range(-hy, hy + 1):
            for dx in range(-hx, hx + 1):
                if skip_zeros and self.coefficients[dy + hy, dx + hx] == 0.0:
                    continue
                offsets.append((dx, dy))
        # Border geometry must cover the full mask window even if the corner
        # coefficients are zero (dilated masks), so the extent is forced.
        return Domain(offsets, extent=self.extent)

    @classmethod
    def dilated(cls, base: np.ndarray, dilation: int) -> "Mask":
        """À-trous dilation: insert ``dilation - 1`` zero rows/cols between
        the base coefficients (paper's Atrous algorithm kernels)."""
        base = np.asarray(base, dtype=np.float32)
        if dilation < 1:
            raise ValueError("dilation must be >= 1")
        bh, bw = base.shape
        out = np.zeros(((bh - 1) * dilation + 1, (bw - 1) * dilation + 1), np.float32)
        out[::dilation, ::dilation] = base
        return cls(out)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        m, n = self.size
        return f"Mask({m}x{n})"


def _check_odd(size_x: int, size_y: int) -> None:
    if size_x < 1 or size_y < 1 or size_x % 2 == 0 or size_y % 2 == 0:
        raise ValueError(
            f"window sizes must be odd and positive, got {size_x}x{size_y}"
        )
