"""Concurrency stress tests for the metrics registry.

The serve engine's workers record metrics from many threads at once; these
tests hammer every metric type (and the registry's get-or-create path) from
N threads and assert *exact* totals — a lost update under contention shows
up as an off-by-some count, not a flake.
"""

from __future__ import annotations

import threading

import pytest

from repro.serve import MetricsRegistry

N_THREADS = 8
N_OPS = 2_000


def hammer(n_threads, fn):
    """Run fn(thread_index) on n_threads threads, started near-simultaneously."""
    barrier = threading.Barrier(n_threads)
    errors = []

    def runner(i):
        try:
            barrier.wait()
            fn(i)
        except Exception as exc:  # pragma: no cover - only on failure
            errors.append(exc)

    threads = [threading.Thread(target=runner, args=(i,)) for i in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors


def test_counter_increments_are_exact():
    registry = MetricsRegistry()

    def work(_i):
        # resolve through the registry every time: exercises the
        # get-or-create path under contention, not just Counter.inc
        for _ in range(N_OPS):
            registry.counter("stress.requests").inc()

    hammer(N_THREADS, work)
    assert registry.counter("stress.requests").value == N_THREADS * N_OPS


def test_interleaved_counters_do_not_cross_talk():
    registry = MetricsRegistry()
    names = [f"stress.c{j}" for j in range(5)]

    def work(i):
        for k in range(N_OPS):
            registry.counter(names[(i + k) % len(names)]).inc()

    hammer(N_THREADS, work)
    total = sum(registry.counter(n).value for n in names)
    assert total == N_THREADS * N_OPS


def test_counter_bulk_amounts_are_exact():
    registry = MetricsRegistry()

    def work(i):
        c = registry.counter("stress.bulk")
        for _ in range(N_OPS):
            c.inc(i + 1)

    hammer(N_THREADS, work)
    expected = N_OPS * sum(i + 1 for i in range(N_THREADS))
    assert registry.counter("stress.bulk").value == expected


def test_histogram_counts_and_sums_are_exact():
    registry = MetricsRegistry()

    def work(_i):
        h = registry.histogram("stress.latency")
        for _ in range(N_OPS):
            h.observe(1.0)  # power of two: float addition stays exact

    hammer(N_THREADS, work)
    snap = registry.histogram("stress.latency").snapshot()
    assert snap["count"] == N_THREADS * N_OPS
    assert snap["mean"] == 1.0
    assert snap["max"] == 1.0


def test_gauge_last_write_wins_with_a_real_writer():
    registry = MetricsRegistry()
    written = [float(i) for i in range(N_THREADS)]

    def work(i):
        for _ in range(N_OPS):
            registry.gauge("stress.level").set(written[i])

    hammer(N_THREADS, work)
    assert registry.gauge("stress.level").value in written


def test_get_or_create_returns_one_instance_under_race():
    registry = MetricsRegistry()
    barrier = threading.Barrier(N_THREADS)
    got = []
    lock = threading.Lock()

    def work(_i):
        barrier.wait()
        c = registry.counter("stress.singleton")
        with lock:
            got.append(c)

    threads = [threading.Thread(target=work, args=(i,)) for i in range(N_THREADS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(got) == N_THREADS
    assert all(c is got[0] for c in got), "registry built duplicate counters"


def test_snapshot_is_consistent_while_hammered():
    """Snapshots taken mid-storm never go backwards and never crash."""
    registry = MetricsRegistry()
    stop = threading.Event()
    seen = []

    def writer(_i):
        while not stop.is_set():
            registry.counter("stress.live").inc()
            registry.histogram("stress.live.h").observe(0.5)

    writers = [threading.Thread(target=writer, args=(i,)) for i in range(4)]
    for t in writers:
        t.start()
    try:
        for _ in range(50):
            snap = registry.snapshot()
            seen.append(snap["counters"].get("stress.live", 0))
    finally:
        stop.set()
        for t in writers:
            t.join()
    assert seen == sorted(seen), "counter snapshot went backwards"
    final = registry.snapshot()
    assert final["counters"]["stress.live"] == registry.counter("stress.live").value
    assert final["histograms"]["stress.live.h"]["count"] == \
        registry.histogram("stress.live.h").count


def test_counter_rejects_negative_amounts():
    registry = MetricsRegistry()
    with pytest.raises(ValueError, match="only go up"):
        registry.counter("stress.neg").inc(-1)
