"""Shared infrastructure for the benchmark/table-regeneration harness.

Each ``bench_*.py`` regenerates one table or figure of the paper (see the
per-experiment index in DESIGN.md). Rendered tables are printed to stdout
and saved under ``benchmarks/results/`` so EXPERIMENTS.md can quote them.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
REPO_ROOT = pathlib.Path(__file__).parent.parent


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def bench_summary():
    """Write a machine-readable ``BENCH_<name>.json`` at the repo root.

    Rendered tables under ``benchmarks/results/`` are for humans quoting
    them in EXPERIMENTS.md; these summaries are the machine-readable
    trajectory — one flat JSON file per benchmark, overwritten per run, so
    tooling (and CI) can diff headline numbers across commits without
    parsing text tables.
    """
    import json
    import time

    def _write(name: str, data: dict) -> pathlib.Path:
        path = REPO_ROOT / f"BENCH_{name}.json"
        payload = {"bench": name, "generated_unix": time.time(), "data": data}
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"[bench summary saved to {path}]")
        return path

    return _write


@pytest.fixture
def case_rng(request):
    """Per-case deterministic RNG: seeded from the pytest node id, so every
    parametrization gets its own fixed, reproducible stream (see
    :func:`harness.stable_seed`)."""
    import numpy as np

    from harness import stable_seed

    return np.random.default_rng(stable_seed(request.node.nodeid))


@pytest.fixture(scope="session")
def report(results_dir):
    """Save + print a named report artifact (text + JSON record)."""
    from repro.reporting import export_json

    def _report(name: str, text: str, data=None) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        export_json(results_dir, name, {"text": text, "data": data})
        print(f"\n{text}\n[saved to {path}]")

    return _report
