"""Static bounds sanitizer: interval domain, prover, shadow memory, serve.

The headline regression here is the *demonstration* pair: the pre-fix
single-reflection Mirror lowering, re-emitted by hand, must produce a bounds
finding, while the shipped total mapping must be proven in-bounds — the
static pass would have caught the out-of-bounds Mirror bug before it ever
ran.
"""

import numpy as np
import pytest

from tests.conftest import ALL_BOUNDARIES, make_conv_kernel
from repro.compiler import Variant, trace_kernel
from repro.gpu.memory import GlobalMemory, MemoryError_
from repro.ir import DataType, IRBuilder, Param, SpecialReg, verify
from repro.ir.instructions import CmpOp
from repro.sanitize import (
    check_pipeline_simt,
    sanitize_compiled,
    sanitize_function,
    sanitize_kernel,
)
from repro.sanitize.intervals import EMPTY, TOP, Interval, at_least, at_most, const


class TestIntervalDomain:
    def test_lattice(self):
        a, b = Interval(0, 5), Interval(3, 9)
        assert a.union(b) == Interval(0, 9)
        assert a.intersect(b) == Interval(3, 5)
        assert a.intersect(Interval(7, 9)).empty
        assert EMPTY.union(a) == a

    def test_arith(self):
        a = Interval(-2, 3)
        assert a.add(const(4)) == Interval(2, 7)
        assert a.sub(Interval(1, 2)) == Interval(-4, 2)
        assert a.mul(const(-2)) == Interval(-6, 4)
        assert a.neg() == Interval(-3, 2)
        assert a.abs_() == Interval(0, 3)
        assert Interval(3, 10).min_(const(5)) == Interval(3, 5)
        assert Interval(3, 10).max_(const(5)) == Interval(5, 10)

    def test_shifts(self):
        assert Interval(-3, 5).shl(const(2)) == Interval(-12, 20)
        assert Interval(-5, 5).shr(const(1)) == Interval(-3, 2)  # floor
        assert TOP.shl(const(2)) == TOP

    def test_rem_trunc_matches_concrete(self):
        """The abstract remainder must contain every concrete C-style result."""
        trunc_rem = lambda x, d: int(np.fmod(x, d)) if d else 0
        for lo, hi in [(-7, 8), (0, 5), (-20, -3), (12, 15)]:
            for d in (3, 6, 10, -4):
                out = Interval(lo, hi).rem_trunc(const(d))
                for x in range(lo, hi + 1):
                    assert trunc_rem(x, d) in out, (lo, hi, d, x)

    def test_rem_trunc_identity_only_when_whole_range_small(self):
        # [12, 15] % 10 must NOT collapse to the identity
        out = Interval(12, 15).rem_trunc(const(10))
        assert 2 in out and 5 in out
        # but a range strictly inside (-d, d) is untouched
        assert Interval(-3, 7).rem_trunc(const(10)) == Interval(-3, 7)
        # a divisor interval spanning zero cannot use the identity either
        out = Interval(1, 2).rem_trunc(Interval(-3, 10))
        assert 0 in out and 2 in out

    def test_div_trunc(self):
        assert Interval(-7, 8).div_trunc(const(2)) == Interval(-3, 4)
        assert Interval(5, 9).div_trunc(const(-2)) == Interval(-4, -2)


SIZE, HX = 3, 7  # window reaching 7 past a 3-pixel image


def _mirror_demo(total: bool):
    """A one-axis kernel: load ``img[mirror(tid - HX)]``, store to out.

    ``total=False`` re-emits the pre-fix single-reflection-per-side mapping;
    ``total=True`` the shipped closed-form triangular mapping.
    """
    b = IRBuilder("mirror_demo", [
        Param("img_ptr", DataType.U32, is_pointer=True),
        Param("out_ptr", DataType.U32, is_pointer=True),
        Param("size", DataType.S32),
    ])
    b.new_block("entry")
    img = b.ld_param("img_ptr")
    out = b.ld_param("out_ptr")
    size = b.ld_param("size")
    tid = b.special(SpecialReg.TID_X)
    c = b.sub(tid, HX)
    if total:
        period = b.add(size, size)
        r = b.rem(c, period)
        p = b.setp(CmpOp.LT, r, 0)
        r = b.selp(p, b.add(r, period), r)
        q = b.setp(CmpOp.GE, r, size)
        refl = b.sub(b.sub(period, b.imm(1, DataType.S32)), r)
        c = b.selp(q, refl, r)
    else:
        p = b.setp(CmpOp.LT, c, 0)
        c = b.selp(p, b.sub(b.imm(-1, DataType.S32), c), c)
        q = b.setp(CmpOp.GE, c, size)
        upper = b.sub(b.add(size, size), 1)
        c = b.selp(q, b.sub(upper, c), c)
    off = b.cvt(b.shl(c, 2), DataType.U32)
    v = b.ld(b.add(img, off, DataType.U32), DataType.F32)
    toff = b.cvt(b.shl(tid, 2), DataType.U32)
    b.st(b.add(out, toff, DataType.U32), v)
    b.exit()
    func = b.finish()
    verify(func)
    return func


def _sanitize_demo(total: bool):
    return sanitize_function(
        _mirror_demo(total),
        grid=(1, 1),
        block=(SIZE + 2 * HX, 1),
        extents={"img_ptr": SIZE * 4, "out_ptr": (SIZE + 2 * HX) * 4},
        scalars={"size": SIZE},
        variant="demo",
    )


class TestMirrorDemonstration:
    def test_prefix_single_reflection_is_flagged(self):
        """The old lowering reflects -7 to 6 and 6 to -1: out of bounds both
        ways once a tap is more than one image size past the edge.  The
        static pass must flag its load."""
        report = _sanitize_demo(total=False)
        assert not report.ok
        (finding,) = [f for f in report.findings if f.kind == "load"]
        assert "img_ptr" in finding.message

    def test_fixed_total_mapping_is_proved(self):
        report = _sanitize_demo(total=True)
        assert report.ok, report.findings
        assert report.loads_proved == 1 and report.stores_proved == 1


class TestConvCorpus:
    @pytest.mark.parametrize("boundary", ALL_BOUNDARIES)
    @pytest.mark.parametrize(
        "variant", [Variant.NAIVE, Variant.ISP, Variant.ISP_WARP]
    )
    def test_all_variants_proved(self, boundary, variant, rng):
        mask = rng.random((5, 5)).astype(np.float32)
        kernel = make_conv_kernel(48, 48, boundary, mask, constant=2.0)
        report = sanitize_kernel(trace_kernel(kernel), variant=variant)
        assert report.ok, report.findings
        assert report.loads_proved > 0 and report.stores_proved > 0

    @pytest.mark.parametrize("boundary", ALL_BOUNDARIES)
    def test_degenerate_fallback_proved(self, boundary, rng):
        """3x3 image with a 15x15 window: ISP degenerates to naive and every
        tap crosses both borders — only a *total* mapping is provable."""
        mask = rng.random((15, 15)).astype(np.float32)
        kernel = make_conv_kernel(3, 3, boundary, mask)
        report = sanitize_kernel(trace_kernel(kernel), variant=Variant.ISP)
        assert report.variant == "naive"  # degenerate fallback happened
        assert report.ok, report.findings

    def test_warp_grained_wide_block(self, rng):
        """Warp re-routing with block 64x4 forks on warp_x = tid.x >> 5; the
        refinement must flow back through the shift to prove the rerouted
        cheaper-region code."""
        mask = rng.random((3, 3)).astype(np.float32)
        kernel = make_conv_kernel(128, 128, ALL_BOUNDARIES[1], mask)
        from repro.compiler.driver import compile_kernel

        ck = compile_kernel(trace_kernel(kernel), variant=Variant.ISP_WARP,
                            block=(64, 4))
        assert ck.effective_variant is Variant.ISP_WARP
        report = sanitize_compiled(ck)
        assert report.ok, report.findings

    def test_contexts_follow_geometry(self, rng):
        mask = rng.random((5, 5)).astype(np.float32)
        kernel = make_conv_kernel(48, 48, ALL_BOUNDARIES[0], mask)
        naive = sanitize_kernel(trace_kernel(kernel), variant=Variant.NAIVE)
        isp = sanitize_kernel(trace_kernel(kernel), variant=Variant.ISP)
        assert naive.contexts == 1
        assert isp.contexts > 1  # one per non-empty column x row class


class TestOutOfBoundsIsCaught:
    def test_plain_overflow_load(self):
        """A load at a constant offset past its buffer must be a finding."""
        b = IRBuilder("oob", [
            Param("img_ptr", DataType.U32, is_pointer=True),
            Param("out_ptr", DataType.U32, is_pointer=True),
        ])
        b.new_block("entry")
        img = b.ld_param("img_ptr")
        out = b.ld_param("out_ptr")
        v = b.ld(b.add(img, b.imm(16, DataType.U32), DataType.U32), DataType.F32)
        tid = b.special(SpecialReg.TID_X)
        off = b.cvt(b.shl(tid, 2), DataType.U32)
        b.st(b.add(out, off, DataType.U32), v)
        b.exit()
        func = b.finish()
        verify(func)
        report = sanitize_function(
            func, grid=(1, 1), block=(4, 1),
            extents={"img_ptr": 12, "out_ptr": 16},
        )
        assert [f.kind for f in report.findings] == ["load"]


class TestShadowMemory:
    def test_cross_buffer_access_traps_only_in_shadow_mode(self):
        """An address past one buffer but inside the next is invisible to the
        whole-memory range check and must trap under shadow mode."""
        for shadow in (False, True):
            mem = GlobalMemory(1 << 12, shadow=shadow)
            a = mem.alloc(12)
            b2 = mem.alloc(12)
            mem.write_array(b2, np.full(3, 7.0, dtype=np.float32))
            stray = np.full(1, b2, dtype=np.int64)  # "a" overflowing into "b2"
            mask = np.ones(1, dtype=bool)
            if shadow:
                # b2 itself is a live allocation, so reading it is legal even
                # in shadow mode; the redzone *between* a and b2 is not.
                red = np.full(1, a + 12, dtype=np.int64)
                with pytest.raises(MemoryError_, match="shadow OOB"):
                    mem.gather(red, mask, DataType.F32)
            else:
                out = mem.gather(stray, mask, DataType.F32)
                assert out[0] == 7.0  # silent cross-buffer read

    def test_redzone_separates_allocations(self):
        mem = GlobalMemory(1 << 12, shadow=True)
        a = mem.alloc(128)
        b2 = mem.alloc(128)
        assert b2 - (a + 128) >= 128  # at least one redzone between them

    def test_shadow_pipeline_clean(self, rng):
        """A full Mirror pipeline on a tiny image with a big window runs
        clean under shadow memory (deep excursions stay inside the image)."""
        mask = rng.random((7, 7)).astype(np.float32)
        from repro.dsl.pipeline import Pipeline

        kernel = make_conv_kernel(5, 5, ALL_BOUNDARIES[1], mask)
        pipe = Pipeline("shadowed", [kernel])
        src = rng.random((5, 5)).astype(np.float32)
        report = check_pipeline_simt(pipe, variant=Variant.ISP,
                                     inputs={"inp": src})
        assert report.ok, report.violations
        assert report.images is not None and "out" in report.images


class TestServeIntegration:
    def test_plans_sanitized_on_first_build(self, rng):
        from repro.serve.engine import Request, ServeEngine

        with ServeEngine(workers=1) as eng:
            img = rng.random((48, 48)).astype(np.float32)
            resp = eng.run([Request(app="gaussian", image=img,
                                    pattern="mirror", variant="isp")])[0]
            assert resp.ok, resp.error
            stats = eng.stats()["engine"]
            assert stats["engine.plans_sanitized"] == 1
            assert stats["engine.plans_sanitize_rejected"] == 0

    def test_findings_reject_the_plan_loudly(self, rng, monkeypatch):
        """A sanitizer finding must fail the request — no silent fallback to
        another variant — and bump the rejection counter."""
        from repro.sanitize.static import SanitizeError, SanitizeReport, Finding
        from repro.serve import plan as plan_mod
        from repro.serve.engine import Request, ServeEngine

        bad = SanitizeReport(kernel="gaussian", variant="isp")
        bad.findings.append(Finding(
            kernel="gaussian", variant="isp", region=None, context="test",
            kind="load", message="injected finding",
        ))
        monkeypatch.setattr(plan_mod.ExecutionPlan, "sanitize",
                            lambda self: [bad])
        with ServeEngine(workers=1) as eng:
            img = rng.random((48, 48)).astype(np.float32)
            resp = eng.run([Request(app="gaussian", image=img,
                                    pattern="mirror", variant="isp")])[0]
            assert not resp.ok
            assert "bounds finding" in resp.error
            assert "compile:isp->naive" not in resp.fallbacks
            stats = eng.stats()["engine"]
            assert stats["engine.plans_sanitize_rejected"] == 1
