"""Tests of the analytic model (paper Eqs. 1-10)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import Region, RegionGeometry, Variant, trace_kernel
from repro.dsl import Boundary
from repro.filters import bilateral, gaussian
from repro.gpu import GTX680, RTX2080
from repro.model import (
    block_counts,
    body_fraction_series,
    calibrate,
    estimate_instructions,
    index_bounds,
    predict_kernel,
    region_cost_per_pixel,
    switch_cost,
)
from tests.conftest import make_conv_kernel


class TestBlocksModel:
    @settings(max_examples=150)
    @given(
        s=st.integers(64, 1024),
        m=st.sampled_from([3, 5, 9, 13, 17]),
        tx=st.sampled_from([16, 32, 64]),
        ty=st.sampled_from([1, 2, 4, 8]),
    )
    def test_matches_exact_geometry(self, s, m, tx, ty):
        """The paper-style closed form must agree with the compiler's exact
        geometry for non-degenerate configurations."""
        geom = RegionGeometry.compute(s, s, m // 2, m // 2, (tx, ty))
        if geom.degenerate:
            return
        model = block_counts(s, s, m, m, tx, ty)
        assert model.counts == geom.block_counts()
        assert (model.bh_l, model.bh_r, model.bh_t, model.bh_b) == (
            geom.bh_l, geom.bh_r, geom.bh_t, geom.bh_b,
        )

    def test_figure3_monotone_in_size(self):
        """Paper Figure 3: body-block percentage grows with image size."""
        series = body_fraction_series(
            [128, 256, 512, 1024, 2048, 4096], 5, 5, 32, 4
        )
        values = [v for _, v in series]
        assert all(b >= a for a, b in zip(values, values[1:]))
        assert values[-1] > 95.0

    def test_figure3_block_size_effect(self):
        """Bigger blocks -> lower body fraction at the same image size
        (paper: 'When small images are computed using a large block size,
        there are not many blocks left to execute the body region')."""
        small_block = block_counts(256, 256, 5, 5, 32, 4).body_fraction
        large_block = block_counts(256, 256, 5, 5, 64, 8).body_fraction
        assert large_block < small_block

    def test_even_window_rejected(self):
        with pytest.raises(ValueError):
            index_bounds(512, 512, 4, 3, 32, 4)


class TestCalibration:
    def test_check_cost_orders_by_pattern(self):
        costs = {}
        for b in (Boundary.CLAMP, Boundary.MIRROR, Boundary.REPEAT):
            desc = trace_kernel(make_conv_kernel(
                256, 256, b, np.ones((3, 3), np.float32)))
            costs[b] = calibrate(desc).check_per_pixel
        assert costs[Boundary.CLAMP] < costs[Boundary.MIRROR]
        assert costs[Boundary.MIRROR] < costs[Boundary.REPEAT]

    def test_kernel_cost_scales_with_window(self):
        small = calibrate(trace_kernel(make_conv_kernel(
            256, 256, Boundary.CLAMP, np.ones((3, 3), np.float32))))
        big = calibrate(trace_kernel(make_conv_kernel(
            256, 256, Boundary.CLAMP, np.ones((5, 5), np.float32))))
        assert big.kernel_per_pixel > 2 * small.kernel_per_pixel
        # but roughly constant per tap
        assert big.kernel_per_tap == pytest.approx(small.kernel_per_tap, rel=0.35)

    def test_switch_cost_monotone_in_chain_position(self):
        """Listing 3: later regions pay for more tests; Body pays most."""
        from repro.compiler.regions import SWITCH_ORDER

        costs = [switch_cost(r) for r in SWITCH_ORDER]
        assert all(b >= a for a, b in zip(costs, costs[1:]))
        assert switch_cost(Region.TL) < switch_cost(Region.BODY)


class TestInstructionModel:
    def _cal(self, boundary=Boundary.CLAMP, mask=5):
        desc = trace_kernel(make_conv_kernel(
            512, 512, boundary, np.ones((mask, mask), np.float32)))
        return calibrate(desc)

    def test_region_costs_eq6(self):
        """Eq. 6: corner > edge > body per-pixel cost."""
        cal = self._cal()
        corner = region_cost_per_pixel(cal, Region.TL)
        edge = region_cost_per_pixel(cal, Region.L)
        body = region_cost_per_pixel(cal, Region.BODY)
        assert corner > edge > body
        assert body == cal.kernel_per_pixel
        assert corner == pytest.approx(cal.kernel_per_pixel + cal.check_per_pixel / 2)

    def test_isp_reduces_instructions_for_large_images(self):
        cal = self._cal()
        est = estimate_instructions(cal, 2048, 2048, 32, 4)
        assert est.r_reduced > 1.0
        assert est.n_isp < est.n_naive

    def test_r_reduced_grows_with_size(self):
        cal = self._cal()
        rs = [estimate_instructions(cal, s, s, 32, 4).r_reduced
              for s in (256, 512, 1024, 2048, 4096)]
        assert all(b >= a for a, b in zip(rs, rs[1:]))

    def test_per_region_breakdown_sums(self):
        cal = self._cal()
        est = estimate_instructions(cal, 1024, 1024, 32, 4)
        assert sum(est.per_region.values()) == pytest.approx(est.n_isp)


class TestPrediction:
    def test_bilateral_gtx680_occupancy_discount(self):
        pipe = bilateral.build_pipeline(512, 512, Boundary.CLAMP)
        desc = trace_kernel(pipe.kernels[0])
        p = predict_kernel(desc, device=GTX680)
        assert p.occupancy_isp < p.occupancy_naive
        assert p.gain < p.r_reduced  # Eq. 10 discount applied

    def test_turing_no_discount(self):
        pipe = bilateral.build_pipeline(512, 512, Boundary.CLAMP)
        desc = trace_kernel(pipe.kernels[0])
        p = predict_kernel(desc, device=RTX2080)
        assert p.occupancy_isp == p.occupancy_naive
        assert p.gain == pytest.approx(p.r_reduced)

    def test_repeat_gains_most(self):
        """Paper Fig. 6: Repeat benefits more than Clamp at equal geometry."""
        gains = {}
        for b in (Boundary.CLAMP, Boundary.REPEAT):
            pipe = gaussian.build_pipeline(2048, 2048, b)
            desc = trace_kernel(pipe.kernels[0])
            gains[b] = predict_kernel(desc, device=GTX680).gain
        assert gains[Boundary.REPEAT] > gains[Boundary.CLAMP]

    def test_degenerate_forces_naive(self):
        desc = trace_kernel(make_conv_kernel(
            16, 16, Boundary.CLAMP, np.ones((13, 13), np.float32)))
        p = predict_kernel(desc, block=(32, 4), device=GTX680)
        assert not p.use_isp
        assert p.choice is Variant.NAIVE

    def test_point_operator_neutral(self):
        from repro.filters import sobel

        pipe = sobel.build_pipeline(256, 256, Boundary.CLAMP)
        mag = trace_kernel(pipe.kernels[2])
        p = predict_kernel(mag, device=GTX680)
        assert p.gain == 1.0
        assert not p.use_isp  # G > 1 strictly required
