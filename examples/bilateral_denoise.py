#!/usr/bin/env python3
"""Bilateral denoising — the paper's motivating application (Section IV-A.1).

Builds a noisy synthetic image, denoises it with the 13x13 bilateral filter
on the simulated GPU, verifies edge preservation, and then walks through the
paper's full decision pipeline for this kernel on both GPUs:

* profile naive vs ISP (representative blocks, paper Eq. 8 scaling),
* estimate times and speedups on the GTX680 and the RTX2080,
* compare with the analytic model's verdict G (paper Eq. 10) — on Kepler,
  clamp-pattern bilateral is the case where the model correctly says
  "stay naive".

Run:  python examples/bilateral_denoise.py
"""

import numpy as np

from repro import Boundary, GTX680, RTX2080, Variant, predict_kernel
from repro.compiler import trace_kernel
from repro.filters import bilateral
from repro.filters.reference import bilateral_reference
from repro.runtime import measure_pipeline, run_pipeline_simt


def synthetic_edges(size: int, noise: float, rng) -> np.ndarray:
    """A step-edge test card with additive Gaussian noise."""
    img = np.zeros((size, size), dtype=np.float32)
    img[:, size // 2:] = 1.0           # vertical edge
    img[size // 3:, :] += 0.4          # horizontal step
    img = np.clip(img, 0.0, 1.0)
    return np.clip(img + rng.normal(0, noise, img.shape), 0, 1).astype(np.float32)


def main():
    rng = np.random.default_rng(2021)
    size = 64  # functional simulation size; timing uses the paper's sizes
    noisy = synthetic_edges(size, noise=0.05, rng=rng)

    # --- denoise on the simulated GPU (functional check) --------------------
    pipe = bilateral.build_pipeline(size, size, Boundary.CLAMP, radius=4)
    result = run_pipeline_simt(pipe, variant=Variant.ISP, block=(16, 4),
                               inputs={"inp": noisy})
    ref = bilateral_reference(noisy, Boundary.CLAMP, radius=4)
    err = np.abs(result.output - ref).max()
    print(f"simulated bilateral vs NumPy reference: max |err| = {err:.2e}")

    clean = synthetic_edges(size, noise=0.0, rng=rng)
    before = float(np.mean((noisy - clean) ** 2))
    after = float(np.mean((result.output - clean) ** 2))
    print(f"MSE vs clean image: {before:.5f} -> {after:.5f} "
          f"({before / after:.1f}x better)")
    # The edge must survive (bilateral's whole selling point):
    edge_contrast = float(result.output[:, size // 2 + 4].mean()
                          - result.output[:, size // 2 - 4].mean())
    print(f"edge contrast after filtering: {edge_contrast:.2f} (ideal 1.0)\n")

    # --- the paper's performance story for this kernel ----------------------
    print("=== naive vs ISP for bilateral 13x13 (paper's Table II/III setup) ===")
    for device in (GTX680, RTX2080):
        for pattern in (Boundary.CLAMP, Boundary.REPEAT):
            perf_pipe = bilateral.build_pipeline(1024, 1024, pattern)
            t_naive = measure_pipeline(perf_pipe, variant=Variant.NAIVE,
                                       device=device).total_us
            t_isp = measure_pipeline(perf_pipe, variant=Variant.ISP,
                                     device=device).total_us
            desc = trace_kernel(perf_pipe.kernels[0])
            g = predict_kernel(desc, device=device).gain
            verdict = "isp" if g > 1 else "naive"
            print(f"{device.name:8s} {pattern.value:7s}: "
                  f"measured speedup {t_naive / t_isp:.3f}, "
                  f"model G={g:.3f} -> {verdict}")
    print("\nOn the GTX680 with Clamp, ISP loses (occupancy drop, paper Fig. 4)"
          "\nand the model's G < 1 correctly falls back to naive — that fallback"
          "\nis the isp+m policy evaluated throughout the paper's Figure 6.")


if __name__ == "__main__":
    main()
