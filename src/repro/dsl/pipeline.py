"""Multi-kernel pipelines.

The paper's Sobel filter is three kernels (x-derivative, y-derivative,
magnitude) and the Night filter is five (four à-trous stages plus tone
mapping). A :class:`Pipeline` is an ordered list of kernels whose images
chain producer -> consumer; the staged runtime executes the stages in order
and the benchmark harness sums per-kernel times, as NVProf does for the
paper.

Beyond the ordered list, a pipeline is a producer→consumer *graph*: each
kernel produces one image and reads images produced by earlier kernels or
supplied externally. :meth:`Pipeline.consumers` / :meth:`Pipeline.producer_of`
expose that graph, which is what the fusion pass
(:mod:`repro.compiler.fusion`) walks back-to-front to propagate halos for
overlapped-tile execution.
"""

from __future__ import annotations

from typing import Iterator

from .image import Image
from .kernel import Kernel


class Pipeline:
    """An ordered multi-kernel image pipeline."""

    def __init__(self, name: str, kernels: list[Kernel]):
        if not kernels:
            raise ValueError("pipeline needs at least one kernel")
        self.name = name
        self.kernels = list(kernels)
        self._validate_chaining()

    def _validate_chaining(self) -> None:
        """Every accessor image must be produced earlier or be an external
        input; every output must be unique; an external input may not shadow
        any produced image's name."""
        all_produced = {k.iter_space.output.name for k in self.kernels}
        produced: set[str] = set()
        for k in self.kernels:
            out = k.iter_space.output
            if out.name in produced:
                raise ValueError(
                    f"pipeline {self.name!r}: image {out.name!r} written twice"
                )
            for acc in k.accessors:
                if acc.image.name == out.name:
                    raise ValueError(
                        f"pipeline {self.name!r}: kernel {k.name!r} reads its own output"
                    )
                # A read of a not-yet-produced name that a *later* stage
                # produces is an external input shadowing a pipeline image:
                # the staged executor would feed this kernel the external
                # array while the name lookup elsewhere (digests, fusion,
                # prepad caches) resolves to the produced image. Reject the
                # collision outright.
                if (acc.image.name in all_produced
                        and acc.image.name not in produced):
                    raise ValueError(
                        f"pipeline {self.name!r}: kernel {k.name!r} reads "
                        f"{acc.image.name!r} before it is produced — an "
                        "external input must not share a produced image's "
                        "name"
                    )
            produced.add(out.name)

    @property
    def inputs(self) -> list[Image]:
        """External input images (read but never produced by the pipeline)."""
        produced = {k.iter_space.output.name for k in self.kernels}
        seen: dict[str, Image] = {}
        for k in self.kernels:
            for acc in k.accessors:
                img = acc.image
                if img.name not in produced and img.name not in seen:
                    seen[img.name] = img
        return list(seen.values())

    @property
    def output(self) -> Image:
        return self.kernels[-1].iter_space.output

    def producer_of(self, name: str) -> Kernel | None:
        """The kernel producing ``name``, or None for external inputs."""
        for k in self.kernels:
            if k.iter_space.output.name == name:
                return k
        return None

    def consumers(self) -> dict[str, list[Kernel]]:
        """Producer→consumer edges: image name -> kernels that read it.

        Covers both produced images and external inputs; a produced image
        with no entry (or an empty list) is *dead* — written but never read
        and not the final output, so fusion skips it entirely.
        """
        edges: dict[str, list[Kernel]] = {}
        for k in self.kernels:
            for acc in k.accessors:
                edges.setdefault(acc.image.name, []).append(k)
        return edges

    def live_stages(self) -> set[str]:
        """Output names whose stages feed the final output (back-to-front
        reachability over the consumer graph)."""
        live = {self.output.name}
        for k in reversed(self.kernels):
            if k.iter_space.output.name not in live:
                continue
            for acc in k.accessors:
                live.add(acc.image.name)
        return {
            k.iter_space.output.name
            for k in self.kernels
            if k.iter_space.output.name in live
        }

    def __iter__(self) -> Iterator[Kernel]:
        return iter(self.kernels)

    def __len__(self) -> int:
        return len(self.kernels)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Pipeline({self.name!r}, {len(self.kernels)} kernels)"
