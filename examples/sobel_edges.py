#!/usr/bin/env python3
"""Sobel edge detection — a multi-kernel pipeline (paper Section VI).

The Sobel filter is three chained kernels: two 3x3 derivative local
operators (which need border handling) and a point-operator magnitude stage
(which does not — the compiler provably emits it check-free under every
variant). The paper singles Sobel out as the app where ISP helps most,
because it consists of several *cheap* kernels whose address-calculation
share is large.

This example runs the pipeline functionally, prints an ASCII edge map, and
shows the per-kernel isp+m decisions.

Run:  python examples/sobel_edges.py
"""

import numpy as np

from repro import Boundary, GTX680, Variant
from repro.filters import sobel
from repro.filters.reference import sobel_reference
from repro.runtime import measure_pipeline, run_pipeline_simt, select_variants


def test_card(size: int) -> np.ndarray:
    """A box and a diagonal line — crisp edges for the detector to find."""
    img = np.zeros((size, size), dtype=np.float32)
    q = size // 4
    img[q: 3 * q, q: 3 * q] = 0.8  # box
    for i in range(size):
        img[i, min(i, size - 1)] = 1.0  # diagonal
    return img


def ascii_render(img: np.ndarray, width: int = 48) -> str:
    step = max(1, img.shape[0] // width)
    small = img[::step, ::step]
    ramp = " .:-=+*#%@"
    lo, hi = small.min(), small.max() or 1.0
    scaled = np.clip((small - lo) / max(hi - lo, 1e-9) * (len(ramp) - 1), 0,
                     len(ramp) - 1).astype(int)
    return "\n".join("".join(ramp[v] for v in row) for row in scaled)


def main():
    size = 96
    src = test_card(size)

    pipe = sobel.build_pipeline(size, size, Boundary.CLAMP)
    result = run_pipeline_simt(pipe, variant=Variant.ISP, block=(16, 4),
                               inputs={"inp": src})
    ref = sobel_reference(src, Boundary.CLAMP)
    err = np.abs(result.output - ref["mag"]).max()
    print(f"gradient magnitude vs reference: max |err| = {err:.2e}\n")
    print("edge map:")
    print(ascii_render(result.output))
    print()

    # --- per-kernel isp+m decisions ----------------------------------------
    perf_pipe = sobel.build_pipeline(2048, 2048, Boundary.REPEAT)
    choices = select_variants(perf_pipe, device=GTX680)
    print("isp+m decisions on GTX680 (Repeat, 2048x2048):")
    for name, variant in choices.items():
        print(f"  {name:10s} -> {variant.value}")

    t_naive = measure_pipeline(perf_pipe, variant=Variant.NAIVE,
                               device=GTX680).total_us
    t_model = measure_pipeline(perf_pipe, variant=Variant.ISP_MODEL,
                               device=GTX680,
                               per_kernel_variants=choices).total_us
    print(f"pipeline time: naive {t_naive:.0f} pseudo-us, "
          f"isp+m {t_model:.0f} pseudo-us "
          f"-> speedup {t_naive / t_model:.2f}x")


if __name__ == "__main__":
    main()
