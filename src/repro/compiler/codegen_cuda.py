"""CUDA C source emission.

Hipacc is a *source-to-source* compiler: its user-facing artifact is CUDA
code. This module pretty-prints the compiled kernel variants as CUDA C so the
generated code can be inspected (``examples/codegen_dump.py``) and so the
tests can assert the structural properties of paper Listings 1, 3 and 5:
the per-pattern border checks, the block-grained region-switch ``goto``
chain, and the warp-refined switch.

The emitted source is faithful to the IR variants (same regions, same checks,
same dispatch order) but is written for human eyes; the simulator executes
the IR, not this text.
"""

from __future__ import annotations

from ..dsl.boundary import Boundary
from ..dsl.expr import BinOp, Const, Expr, PixelAccess, UnOp, walk
from .frontend import KernelDescription
from .isp import Variant, _warp_bounds
from .regions import REGION_CHECKS, SWITCH_ORDER, Region, RegionGeometry

_BINOP_C = {"add": "+", "sub": "-", "mul": "*", "div": "/"}
_UNOP_C = {
    "neg": "-({})",
    "abs": "fabsf({})",
    "sqrt": "sqrtf({})",
    "rsqrt": "rsqrtf({})",
    "rcp": "(1.0f / ({}))",
    "exp": "expf({})",
    "exp2": "exp2f({})",
    "log": "logf({})",
    "log2": "log2f({})",
    "sin": "sinf({})",
    "cos": "cosf({})",
}


class _BodyEmitter:
    """Emits one region's body as C statements (creation-order temps)."""

    def __init__(self, desc: KernelDescription, checks: frozenset[str], indent: str):
        self.desc = desc
        self.checks = checks
        self.indent = indent
        self.use_texture = False
        self.lines: list[str] = []
        self._names: dict[int, str] = {}
        self._access_names: dict[tuple[int, int, int], str] = {}
        self._counter = 0

    def _fresh(self, stem: str = "t") -> str:
        self._counter += 1
        return f"{stem}{self._counter}"

    def emit(self) -> tuple[list[str], str]:
        nodes = sorted(walk(self.desc.expr), key=lambda n: n.seq)
        for node in nodes:
            if id(node) not in self._names:
                self._names[id(node)] = self._emit_node(node)
        return self.lines, self._names[id(self.desc.expr)]

    def _emit_node(self, node: Expr) -> str:
        if isinstance(node, Const):
            return _c_float(node.value)
        if isinstance(node, BinOp):
            a, b = self._names[id(node.lhs)], self._names[id(node.rhs)]
            if node.op in ("min", "max"):
                expr = f"f{node.op}f({a}, {b})"
            else:
                expr = f"{a} {_BINOP_C[node.op]} {b}"
            name = self._fresh()
            self.lines.append(f"{self.indent}const float {name} = {expr};")
            return name
        if isinstance(node, UnOp):
            expr = _UNOP_C[node.op].format(self._names[id(node.operand)])
            name = self._fresh()
            self.lines.append(f"{self.indent}const float {name} = {expr};")
            return name
        if isinstance(node, PixelAccess):
            return self._emit_access(node)
        raise TypeError(f"cannot emit {node!r}")

    def _emit_access(self, node: PixelAccess) -> str:
        key = (id(node.accessor), node.dx, node.dy)
        if key in self._access_names:
            return self._access_names[key]
        acc = node.accessor
        img = acc.image.name
        ind = self.indent
        xv, yv = self._fresh("xx"), self._fresh("yy")
        self.lines.append(f"{ind}int {xv} = gx + ({node.dx});")
        self.lines.append(f"{ind}int {yv} = gy + ({node.dy});")
        if self.use_texture:
            name = self._fresh("v")
            self.lines.append(
                f"{ind}float {name} = tex2D({img}_tex, {xv}, {yv});"
            )
            self._access_names[key] = name
            return name
        boundary = acc.boundary
        valid = None
        if boundary.needs_checks:
            lo_x = "left" in self.checks
            hi_x = "right" in self.checks
            lo_y = "top" in self.checks
            hi_y = "bottom" in self.checks
            if boundary is Boundary.CONSTANT and (lo_x or hi_x or lo_y or hi_y):
                valid = self._fresh("ok")
                self.lines.append(f"{ind}bool {valid} = true;")
            self._emit_axis(xv, f"{img}_w", boundary, lo_x, hi_x, valid)
            self._emit_axis(yv, f"{img}_h", boundary, lo_y, hi_y, valid)
        name = self._fresh("v")
        self.lines.append(
            f"{ind}float {name} = {img}[{yv} * {img}_w + {xv}];"
        )
        if valid is not None:
            self.lines.append(
                f"{ind}{name} = {valid} ? {name} : {_c_float(acc.constant)};"
            )
        self._access_names[key] = name
        return name

    def _emit_axis(self, var: str, size: str, boundary: Boundary,
                   lo: bool, hi: bool, valid: str | None) -> None:
        ind = self.indent
        if not (lo or hi):
            return
        if boundary is Boundary.CLAMP:  # Listing 1 (a)
            if lo:
                self.lines.append(f"{ind}if ({var} < 0) {var} = 0;")
            if hi:
                self.lines.append(f"{ind}if ({var} >= {size}) {var} = {size} - 1;")
        elif boundary is Boundary.MIRROR:  # Listing 1 (b)
            if lo and hi:
                # Total triangular reflection (period 2*size): exact for taps
                # arbitrarily far outside the image, unlike one reflection
                # per side (c=-7, size=3 -> 6 -> -1).
                self.lines.append(f"{ind}{var} = {var} % (2 * {size});")
                self.lines.append(
                    f"{ind}if ({var} < 0) {var} += 2 * {size};"
                )
                self.lines.append(
                    f"{ind}if ({var} >= {size}) {var} = 2 * {size} - {var} - 1;"
                )
            elif lo:
                self.lines.append(f"{ind}if ({var} < 0) {var} = -{var} - 1;")
            elif hi:
                self.lines.append(
                    f"{ind}if ({var} >= {size}) {var} = 2 * {size} - {var} - 1;"
                )
        elif boundary is Boundary.REPEAT:  # Listing 1 (c)
            if lo:
                self.lines.append(f"{ind}while ({var} < 0) {var} += {size};")
            if hi:
                self.lines.append(f"{ind}while ({var} >= {size}) {var} -= {size};")
        elif boundary is Boundary.CONSTANT:  # Listing 1 (d)
            assert valid is not None
            if lo:
                self.lines.append(f"{ind}{valid} &= ({var} >= 0);")
                self.lines.append(f"{ind}if ({var} < 0) {var} = 0;")
            if hi:
                self.lines.append(f"{ind}{valid} &= ({var} < {size});")
                self.lines.append(f"{ind}if ({var} >= {size}) {var} = {size} - 1;")


def _c_float(value: float) -> str:
    return f"{value!r}f"


def _signature(desc: KernelDescription, variant: Variant) -> str:
    args = []
    seen = set()
    for acc in desc.accessors:
        img = acc.image.name
        if img in seen:
            continue
        seen.add(img)
        args.append(f"const float *{img}, int {img}_w, int {img}_h")
    args.append("float *out, int out_w, int out_h")
    return (
        f"__global__ void {desc.name}_{variant.value.replace('+', '_')}"
        f"({', '.join(args)})"
    )


def _prologue(desc: KernelDescription, block: tuple[int, int]) -> list[str]:
    lines = [
        "    const int gx = blockIdx.x * blockDim.x + threadIdx.x;",
        "    const int gy = blockIdx.y * blockDim.y + threadIdx.y;",
    ]
    if desc.width % block[0] or desc.height % block[1]:
        lines.append("    if (gx >= out_w || gy >= out_h) return;")
    return lines


def _region_sides(desc: KernelDescription, region: Region) -> frozenset[str]:
    hx, hy = desc.extent
    sides = set(REGION_CHECKS[region])
    if hx == 0:
        sides -= {"left", "right"}
    if hy == 0:
        sides -= {"top", "bottom"}
    return frozenset(sides)


def emit_cuda(
    desc: KernelDescription,
    variant: Variant,
    block: tuple[int, int] = (32, 4),
) -> str:
    """Render one kernel variant as CUDA C source text."""
    if variant is Variant.TEXTURE:
        return _emit_texture(desc, block)
    if variant is Variant.NAIVE or not desc.needs_border_handling:
        return _emit_naive(desc, block)
    if variant in (Variant.ISP, Variant.ISP_WARP):
        return _emit_isp(desc, block, warp=variant is Variant.ISP_WARP)
    if variant in (Variant.SHARED, Variant.SHARED_ISP):
        raise ValueError(
            "CUDA emission for the staging variants is not implemented; "
            "inspect their virtual PTX via repro.ir.print_function instead"
        )
    raise ValueError(f"cannot emit source for policy variant {variant}")


def _emit_texture(desc: KernelDescription, block: tuple[int, int]) -> str:
    """Texture-unit variant: reads become tex2D, no checks at all."""
    from ..compiler.isp import _TEX_MODES

    for acc in desc.accessors:
        if acc.boundary.needs_checks and acc.boundary.value not in _TEX_MODES:
            raise ValueError(
                f"texture hardware cannot express {acc.boundary.value!r}"
            )
    emitter = _BodyEmitter(desc, frozenset(), "    ")
    emitter.use_texture = True
    body, result = emitter.emit()
    images = sorted({a.image.name for a in desc.accessors})
    lines = [f"// texture objects: " + ", ".join(f"{i}_tex" for i in images)]
    lines.append(_signature(desc, Variant.TEXTURE) + " {")
    lines += _prologue(desc, block)
    lines += body
    lines.append(f"    out[gy * out_w + gx] = {result};")
    lines.append("}")
    return "\n".join(lines)


def _emit_naive(desc: KernelDescription, block: tuple[int, int]) -> str:
    hx, hy = desc.extent
    checks = set()
    if hx:
        checks |= {"left", "right"}
    if hy:
        checks |= {"top", "bottom"}
    body, result = _BodyEmitter(desc, frozenset(checks), "    ").emit()
    lines = [_signature(desc, Variant.NAIVE) + " {"]
    lines += _prologue(desc, block)
    lines += body
    lines.append(f"    out[gy * out_w + gx] = {result};")
    lines.append("}")
    return "\n".join(lines)


def _emit_isp(desc: KernelDescription, block: tuple[int, int], *, warp: bool) -> str:
    hx, hy = desc.extent
    geom = RegionGeometry.compute(desc.width, desc.height, hx, hy, block)
    if geom.degenerate:
        raise ValueError("degenerate geometry: no ISP source shape exists")
    feasible = set(geom.feasible_regions())

    lines = [
        f"// ISP bounds: BH_L={geom.bh_l} BH_R={geom.bh_r} "
        f"BH_T={geom.bh_t} BH_B={geom.bh_b}",
        _signature(desc, Variant.ISP_WARP if warp else Variant.ISP) + " {",
    ]
    lines += _prologue(desc, block)

    warps_per_row, w_l, w_r = _warp_bounds(geom, block)
    use_warp = warp and block[0] % 32 == 0 and block[0] > 32 and hx > 0
    if use_warp:
        lines.append("    const int warp_x = threadIdx.x >> 5;")

    conds = {
        Region.TL: f"blockIdx.x < {geom.bh_l} && blockIdx.y < {geom.bh_t}",
        Region.TR: f"blockIdx.x >= {geom.bh_r} && blockIdx.y < {geom.bh_t}",
        Region.T: f"blockIdx.y < {geom.bh_t}",
        Region.BL: f"blockIdx.y >= {geom.bh_b} && blockIdx.x < {geom.bh_l}",
        Region.BR: f"blockIdx.y >= {geom.bh_b} && blockIdx.x >= {geom.bh_r}",
        Region.B: f"blockIdx.y >= {geom.bh_b}",
        Region.R: f"blockIdx.x >= {geom.bh_r}",
        Region.L: f"blockIdx.x < {geom.bh_l}",
    }
    reroute = {
        Region.TL: (f"warp_x > {w_l}", Region.T),
        Region.TR: (f"warp_x < {w_r}", Region.T),
        Region.BL: (f"warp_x > {w_l}", Region.B),
        Region.BR: (f"warp_x < {w_r}", Region.B),
        Region.L: (f"warp_x > {w_l}", Region.BODY),
        Region.R: (f"warp_x < {w_r}", Region.BODY),
    }

    # Listing 3 / Listing 5 dispatch chain.
    for region in SWITCH_ORDER:
        if region is Region.BODY or region not in feasible:
            continue
        if use_warp and region in reroute and reroute[region][1] in feasible:
            cond, cheaper = reroute[region]
            lines.append(f"    if ({conds[region]}) {{")
            lines.append(f"        if ({cond}) goto {cheaper.value};")
            lines.append(f"        goto {region.value};")
            lines.append("    }")
        else:
            lines.append(f"    if ({conds[region]}) goto {region.value};")
    lines.append("    goto Body;")
    lines.append("")

    for region in SWITCH_ORDER:
        if region not in feasible:
            continue
        body, result = _BodyEmitter(
            desc, _region_sides(desc, region), "        "
        ).emit()
        lines.append(f"{region.value}: {{")
        lines += body
        lines.append(f"        out[gy * out_w + gx] = {result};")
        lines.append("        goto done;")
        lines.append("    }")
    lines.append("done:  return;")
    lines.append("}")
    return "\n".join(lines)
