"""Bounds verification subsystem: prove, instrument, and cross-check.

Three independent layers defend against out-of-bounds border accesses (the
bug class behind the Mirror mapping fix this package shipped with):

* :mod:`repro.sanitize.static` — a symbolic interval analysis over the IR
  that *proves* every load/store of every compiled region variant in-bounds,
  seeded per region from the paper's block-partition geometry;
* :mod:`repro.sanitize.shadow` — runtime instrumentation (shadow allocation
  tracking with redzones on the SIMT path, NaN canary rings on the
  vectorized path) that traps anything the prover could miss;
* :mod:`repro.sanitize.differential` — a cross-variant harness comparing
  every execution path bit-exactly against the NumPy golden reference over
  an adversarial tiny-image / large-window corpus.

``python -m repro sanitize`` runs all three; the serve engine runs the
static pass on every newly built plan.
"""

from .differential import (
    DifferentialReport,
    Mismatch,
    make_chain_pipeline,
    make_conv_pipeline,
    run_differential,
    run_pipeline_differential,
)
from .intervals import Interval
from .shadow import ShadowReport, check_pipeline_simt, check_pipeline_vectorized
from .static import (
    Finding,
    SanitizeError,
    SanitizeReport,
    sanitize_compiled,
    sanitize_corpus,
    sanitize_function,
    sanitize_kernel,
    sanitize_pipeline,
)

__all__ = [
    "DifferentialReport",
    "Finding",
    "Interval",
    "Mismatch",
    "SanitizeError",
    "SanitizeReport",
    "ShadowReport",
    "check_pipeline_simt",
    "check_pipeline_vectorized",
    "make_chain_pipeline",
    "make_conv_pipeline",
    "run_differential",
    "run_pipeline_differential",
    "sanitize_compiled",
    "sanitize_corpus",
    "sanitize_function",
    "sanitize_kernel",
    "sanitize_pipeline",
]
