#!/usr/bin/env python3
"""Sparse (irregular) stencils — the paper's future-work direction.

Paper Section VII: "we plan to explore the ISP optimization on irregular
stencil kernels beyond image processing, such as using a sparse stencil mask
that is only applied to a few neighbors."

Our Domain/Mask machinery already supports this (it is what the Night
filter's à-trous masks use): a mask with mostly zero coefficients iterates
only its real taps, while the border geometry still covers its full extent.
This example builds a 5-point "plus" stencil and a diagonal-cross stencil at
a large dilation, shows the tap-count vs window-extent split, and measures
how ISP behaves when the window is large but the work per pixel is tiny —
the regime where border checks dominate hardest.

Run:  python examples/sparse_stencil.py
"""

import numpy as np

from repro import Boundary, GTX680, Variant
from repro.compiler import RegionGeometry, trace_kernel
from repro.dsl import (
    Accessor,
    BoundaryCondition,
    Image,
    IterationSpace,
    Kernel,
    Mask,
    Pipeline,
)
from repro.filters.reference import correlate
from repro.model import predict_kernel
from repro.runtime import measure_pipeline, run_pipeline_simt


def plus_stencil(radius: int) -> np.ndarray:
    """5-point Laplacian 'plus' at distance `radius` (4 neighbors + center)."""
    size = 2 * radius + 1
    m = np.zeros((size, size), dtype=np.float32)
    m[radius, radius] = -4.0
    m[0, radius] = m[-1, radius] = m[radius, 0] = m[radius, -1] = 1.0
    return m


def diagonal_cross(radius: int) -> np.ndarray:
    """4 diagonal taps + center — an X-shaped irregular stencil."""
    size = 2 * radius + 1
    m = np.zeros((size, size), dtype=np.float32)
    m[radius, radius] = 0.5
    for s in (0, size - 1):
        for t in (0, size - 1):
            m[s, t] = 0.125
    return m


class SparseKernel(Kernel):
    def __init__(self, it, acc, mask, name):
        super().__init__(it)
        self.acc = self.add_accessor(acc)
        self.mask = mask
        self._name = name

    @property
    def name(self):
        return self._name

    def kernel(self):
        return self.convolve(self.mask, self.acc)


def main():
    rng = np.random.default_rng(11)
    size = 64
    src = rng.random((size, size)).astype(np.float32)

    for label, coeffs in [("plus r=8", plus_stencil(8)),
                          ("diag-X r=8", diagonal_cross(8))]:
        mask = Mask(coeffs)
        dom = mask.domain()
        inp = Image.from_array(src, "inp")
        out = Image(size, size, "out")
        k = SparseKernel(IterationSpace(out),
                         Accessor(BoundaryCondition(inp, Boundary.REPEAT)),
                         mask, "sparse")
        desc = trace_kernel(k)
        res = run_pipeline_simt(Pipeline("sparse", [k]), variant=Variant.ISP,
                                block=(16, 4), inputs={"inp": src})
        ref = correlate(src, coeffs, Boundary.REPEAT)
        err = np.abs(res.output - ref).max()
        print(f"{label}: {len(dom)} taps over a "
              f"{desc.window_size[0]}x{desc.window_size[1]} window, "
              f"max|err| = {err:.2e}")

    # The sparse regime: huge window (wide border bands), almost no math.
    print("\nISP economics for a sparse 5-tap stencil with a 17x17 extent")
    print("(vs a dense 17x17 stencil with 289 taps), 1024x1024, GTX680:\n")
    perf_size = 1024
    for label, coeffs in [("sparse plus r=8", plus_stencil(8)),
                          ("dense 17x17", np.ones((17, 17), np.float32) / 289)]:
        inp = Image(perf_size, perf_size, "inp")
        out = Image(perf_size, perf_size, "out")
        k = SparseKernel(IterationSpace(out),
                         Accessor(BoundaryCondition(inp, Boundary.REPEAT)),
                         Mask(coeffs), "sparse")
        pipe = Pipeline("sparse", [k])
        desc = trace_kernel(k)
        geom = RegionGeometry.compute(perf_size, perf_size, *desc.extent, (32, 4))
        mn = measure_pipeline(pipe, variant=Variant.NAIVE, device=GTX680)
        mi = measure_pipeline(pipe, variant=Variant.ISP, device=GTX680)
        g = predict_kernel(desc, device=GTX680).gain
        print(f"  {label:16s}: body blocks {100 * geom.body_fraction():5.1f}%  "
              f"model G={g:5.3f}  measured ISP speedup {mn.total_us / mi.total_us:5.3f}")
    print("\nBorder checks scale with the *tap count*, so the check share of "
          "each tap is\nwhat ISP removes: the sparse stencil benefits almost "
          "as much as the dense one\n(its per-block dispatch overhead "
          "amortizes over less work, hence the slightly\nlower numbers). ISP "
          "transfers directly to irregular stencils — the machinery\nthe "
          "paper's Section VII asks for already falls out of Domain-based "
          "iteration.")


if __name__ == "__main__":
    main()
