"""Unit tests for CFG analyses, instruction statistics, and the printer."""

from repro.ir import (
    CmpOp,
    DataType,
    IRBuilder,
    Param,
    build_cfg,
    count_by_region,
    count_by_role,
    count_function,
    format_instruction,
    has_loops,
    immediate_postdominators,
    print_function,
)
from repro.ir.cfg import VIRTUAL_EXIT, back_edges
from repro.ir.stats import ordered_categories, total


def diamond():
    """entry -> (then|else) -> join -> exit."""
    b = IRBuilder("diamond", [Param("n", DataType.S32)])
    b.new_block("entry")
    n = b.ld_param("n")
    p = b.setp(CmpOp.GT, n, 0)
    b.cbr(p, "then", "els")
    b.new_block("then")
    b.br("join")
    b.new_block("els")
    b.br("join")
    b.new_block("join")
    b.exit()
    return b.finish()


def loop():
    b = IRBuilder("loop", [Param("n", DataType.S32)])
    b.new_block("entry")
    n = b.ld_param("n")
    x = b.fresh_reg(DataType.S32, "x")
    b.mov_to(x, 0)
    b.br("head")
    b.new_block("head")
    p = b.setp(CmpOp.LT, x, n)
    b.cbr(p, "body", "after")
    b.new_block("body")
    b.mov_to(x, b.add(x, 1))
    b.br("head")
    b.new_block("after")
    b.exit()
    return b.finish()


class TestCfg:
    def test_diamond_edges(self):
        g = build_cfg(diamond())
        assert set(g.successors("entry")) == {"then", "els"}
        assert set(g.successors("join")) == {VIRTUAL_EXIT}

    def test_diamond_ipdom(self):
        ipd = immediate_postdominators(diamond())
        assert ipd["entry"] == "join"
        assert ipd["then"] == "join"
        assert ipd["els"] == "join"
        assert ipd["join"] is None

    def test_loop_ipdom_and_backedges(self):
        f = loop()
        ipd = immediate_postdominators(f)
        assert ipd["head"] == "after"
        assert back_edges(f) == {("body", "head")}
        assert has_loops(f)
        assert not has_loops(diamond())


class TestStats:
    def test_count_function(self):
        counts = count_function(diamond())
        assert counts["bra"] == 3
        assert counts["exit"] == 1
        assert counts["setp"] == 1
        assert counts["ld"] == 1  # ld.param counts as ld

    def test_total_and_order(self):
        counts = count_function(diamond())
        assert total(counts) == sum(counts.values())
        cats = ordered_categories([counts])
        # setp should come before ld before bra in Table-I order
        assert cats.index("setp") < cats.index("ld") < cats.index("bra")

    def test_region_role_grouping(self):
        b = IRBuilder("t", [Param("n", DataType.S32)])
        b.new_block("entry")
        n = b.ld_param("n")
        with b.region("Body"), b.role("kernel"):
            b.add(n, 1)
        with b.region("L"), b.role("check"):
            b.max(n, 0)
        b.exit()
        f = b.finish()
        by_region = count_by_region(f)
        assert by_region["Body"]["add"] == 1
        assert by_region["L"]["max"] == 1
        assert "(shared)" in by_region
        by_role = count_by_role(f)
        assert by_role["check"]["max"] == 1


class TestPrinter:
    def test_roundtrip_text_shape(self):
        text = print_function(diamond())
        assert ".visible .entry diamond(" in text
        assert "entry:" in text and "join:" in text
        assert "setp.gt.s32" in text
        assert "exit;" in text

    def test_annotated_output(self):
        b = IRBuilder("t", [Param("n", DataType.S32)])
        b.new_block("entry")
        n = b.ld_param("n")
        with b.region("TL"), b.role("check"):
            b.max(n, 0)
        b.exit()
        text = print_function(b.finish(), annotate=True)
        assert "region=TL role=check" in text

    def test_format_specific_instructions(self):
        f = loop()
        texts = [format_instruction(i) for i in f.instructions()]
        assert any(t.startswith("@") and "bra" in t for t in texts)  # cond branch
        assert any("ld.param.s32" in t for t in texts)
