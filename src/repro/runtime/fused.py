"""Fused pipeline executor: overlapped tiles, halos recomputed per tile.

Replays the geometry-only schedule built by
:func:`repro.compiler.fusion.fuse_descs`: for each output tile, every live
stage evaluates just the region its consumers read into a small per-tile
buffer, so no full-image intermediate is ever materialized. Check-free
sub-rectangles run the pure-slice Body code shape; sub-rectangles touching a
true image border run the same vectorized border mapping
(:func:`~repro.runtime.vectorized._map_axis`) as the staged nine-region
executor, which is what makes fused output bit-exact against staged — both
select source pixels through the identical mapping, and every arithmetic
node is an elementwise float32 NumPy op whose value is independent of the
evaluation footprint.

Like every other executor here, the fused path is batch-aware: leading axes
on the external inputs carry through each per-tile buffer untouched.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from ..compiler.frontend import trace_kernel
from ..compiler.fusion import FusedPlan, fuse_descs
from ..dsl.boundary import Boundary
from ..dsl.expr import PixelAccess
from ..dsl.pipeline import Pipeline
from ..trace import core as _trace_core
from .vectorized import _map_axis, _RegionEvaluator, _RegionRect


class _FusedEvaluator(_RegionEvaluator):
    """Region evaluator reading from offset per-tile stage buffers.

    ``bufs`` maps image name -> (array, ox, oy): the buffer holds image
    rows/cols ``[oy, oy+bh) x [ox, ox+bw)``. External inputs are full
    images at offset (0, 0). Border mapping always runs against the *full*
    image dimensions (every pipeline image shares the iteration-space
    geometry), then translates into buffer coordinates; the fusion pass
    guarantees the producer buffer hulls every mapped coordinate.
    """

    def __init__(self, desc, bufs, dims, rect: _RegionRect):
        super().__init__(desc, {}, rect)
        self.bufs = bufs
        self.dims = dims

    def _eval_access(self, access: PixelAccess) -> np.ndarray:
        acc = access.accessor
        arr, ox, oy = self.bufs[acc.image.name]
        w, h = self.dims
        rect = self.rect
        boundary = acc.boundary

        check_left = "left" in rect.checks and access.dx < 0
        check_right = "right" in rect.checks and access.dx > 0
        check_top = "top" in rect.checks and access.dy < 0
        check_bottom = "bottom" in rect.checks and access.dy > 0

        if not any((check_left, check_right, check_top, check_bottom)):
            y0 = rect.y0 + access.dy - oy
            y1 = rect.y1 + access.dy - oy
            x0 = rect.x0 + access.dx - ox
            x1 = rect.x1 + access.dx - ox
            # Negative slice bounds would silently wrap to the buffer's far
            # side; the fusion pass must have hulled every in-bounds read.
            assert (0 <= y0 and y1 <= arr.shape[-2]
                    and 0 <= x0 and x1 <= arr.shape[-1]), (
                f"fused buffer under-covers {access!r}: "
                f"[{y0}:{y1}, {x0}:{x1}] in {arr.shape[-2:]}"
            )
            return arr[..., y0:y1, x0:x1]

        xs = np.arange(rect.x0 + access.dx, rect.x1 + access.dx)
        ys = np.arange(rect.y0 + access.dy, rect.y1 + access.dy)
        xs, vx = _map_axis(xs, w, boundary, check_left, check_right)
        ys, vy = _map_axis(ys, h, boundary, check_top, check_bottom)
        xs = xs - ox
        ys = ys - oy
        if boundary is not Boundary.UNDEFINED:
            assert xs.size == 0 or (
                xs.min() >= 0 and xs.max() < arr.shape[-1]
            ), f"{boundary.value} fused x-mapping outside buffer for {access!r}"
            assert ys.size == 0 or (
                ys.min() >= 0 and ys.max() < arr.shape[-2]
            ), f"{boundary.value} fused y-mapping outside buffer for {access!r}"
        values = arr[..., ys[:, None], xs[None, :]]
        if vx is not None or vy is not None:
            valid = np.ones((ys.size, xs.size), dtype=bool)
            if vy is not None:
                valid &= vy[:, None]
            if vx is not None:
                valid &= vx[None, :]
            values = np.where(
                valid, values, np.float32(acc.constant)
            ).astype(np.float32)
        return values


def run_fused(
    plan: FusedPlan, images: dict[str, np.ndarray]
) -> np.ndarray:
    """Execute a fused plan over its external inputs; returns the final
    output image (intermediates are deliberately never materialized in
    full — that is the point)."""
    trace_ctx = None
    if _trace_core._current is not None:
        trace_ctx = _trace_core.current_context()
    t_start = time.perf_counter() if trace_ctx is not None else 0.0

    w, h = plan.width, plan.height
    lead: Optional[tuple[int, ...]] = None
    ext: dict[str, np.ndarray] = {}
    for name in plan.external_inputs:
        if name not in images:
            raise ValueError(f"fused plan missing external input {name!r}")
        img = np.asarray(images[name], dtype=np.float32)
        if img.shape[-2:] != (h, w):
            raise ValueError(
                f"input {name!r} shape {img.shape} != (..., {h}, {w})"
            )
        if lead is None:
            lead = img.shape[:-2]
        elif img.shape[:-2] != lead:
            raise ValueError(
                f"inconsistent batch shapes across inputs: {lead} vs "
                f"{img.shape[:-2]} for {name!r}"
            )
        ext[name] = img
    if lead is None:
        lead = ()

    out = np.empty((*lead, h, w), dtype=np.float32)
    final = plan.output_name
    dims = (w, h)
    for tile in plan.tiles:
        bufs: dict[str, tuple[np.ndarray, int, int]] = {
            name: (img, 0, 0) for name, img in ext.items()
        }
        for step in tile.steps:
            desc = plan.descs[step.stage]
            rx0, rx1, ry0, ry1 = step.region
            buf = np.empty((*lead, ry1 - ry0, rx1 - rx0), dtype=np.float32)
            for sx0, sx1, sy0, sy1, checks in step.subrects:
                rect = _RegionRect(sx0, sx1, sy0, sy1, checks)
                ev = _FusedEvaluator(desc, bufs, dims, rect)
                value = ev.eval(desc.expr)
                buf[..., sy0 - ry0 : sy1 - ry0, sx0 - rx0 : sx1 - rx0] = (
                    np.broadcast_to(value, (*lead, sy1 - sy0, sx1 - sx0))
                )
            bufs[desc.output_name] = (buf, rx0, ry0)
        fbuf, fx, fy = bufs[final]
        tx0, tx1, ty0, ty1 = tile.rect
        out[..., ty0:ty1, tx0:tx1] = fbuf[
            ..., ty0 - fy : ty1 - fy, tx0 - fx : tx1 - fx
        ]

    if trace_ctx is not None:
        tracer, parent = trace_ctx
        tracer.record_span(
            f"fused:{plan.name}", parent, t_start, time.perf_counter(),
            variant="fused", tiles=len(plan.tiles),
            stages=len(plan.descs),
        )
    return out


def run_pipeline_fused(
    pipeline: Pipeline,
    inputs: Optional[dict[str, np.ndarray]] = None,
    *,
    tile_rows: Optional[int] = None,
    tile_cols: Optional[int] = None,
    plan: Optional[FusedPlan] = None,
) -> np.ndarray:
    """Trace, fuse and execute a pipeline; returns the final output.

    The staged counterpart is :func:`~repro.runtime.vectorized
    .run_pipeline_vectorized`, which returns every intermediate — the fused
    path cannot, by construction. Pass ``plan`` to reuse a previously built
    fused schedule (the serve plan cache does).
    """
    if plan is None:
        descs = [trace_kernel(k) for k in pipeline]
        plan = fuse_descs(
            descs, tile_rows=tile_rows, tile_cols=tile_cols,
            name=pipeline.name,
        )
    images: dict[str, np.ndarray] = {}
    for img in pipeline.inputs:
        if inputs is not None and img.name in inputs:
            images[img.name] = np.asarray(inputs[img.name], dtype=np.float32)
        else:
            images[img.name] = img.host
    return run_fused(plan, images)


__all__ = ["run_fused", "run_pipeline_fused"]
