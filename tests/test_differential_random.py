"""Differential property testing: three executors, one semantics.

Hypothesis generates random convolution kernels (mask shape, sparse taps,
coefficients, border pattern, image size, block shape); for each, the
SIMT-simulated compiled kernel, the vectorized host executor, and the
pad-based NumPy reference must all agree. This is the strongest correctness
net in the suite — any divergence between the compiler's border codegen, the
simulator's masked execution, and the independent references fails here.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import Variant, trace_kernel
from repro.dsl import Boundary, Pipeline
from repro.filters.reference import correlate
from repro.runtime import run_kernel_vectorized, run_pipeline_simt
from tests.conftest import make_conv_kernel

PATTERNS = [Boundary.CLAMP, Boundary.MIRROR, Boundary.REPEAT, Boundary.CONSTANT]


@st.composite
def random_case(draw):
    mask_w = draw(st.sampled_from([1, 3, 5]))
    mask_h = draw(st.sampled_from([1, 3, 5]))
    # random sparse coefficients, at least one nonzero
    coeffs = np.zeros((mask_h, mask_w), dtype=np.float32)
    n_taps = draw(st.integers(1, mask_w * mask_h))
    positions = draw(
        st.lists(
            st.tuples(st.integers(0, mask_h - 1), st.integers(0, mask_w - 1)),
            min_size=n_taps, max_size=n_taps, unique=True,
        )
    )
    for (r, c) in positions:
        coeffs[r, c] = draw(
            st.floats(min_value=-2.0, max_value=2.0, width=32)
            .filter(lambda v: v != 0.0)
        )
    if not coeffs.any():
        coeffs[mask_h // 2, mask_w // 2] = 1.0
    width = draw(st.integers(12, 40))
    height = draw(st.integers(12, 40))
    pattern = draw(st.sampled_from(PATTERNS))
    constant = draw(st.floats(min_value=-1.0, max_value=1.0, width=32))
    block = draw(st.sampled_from([(8, 4), (16, 2), (32, 1), (16, 4)]))
    variant = draw(st.sampled_from([Variant.NAIVE, Variant.ISP]))
    seed = draw(st.integers(0, 2**31 - 1))
    return coeffs, width, height, pattern, constant, block, variant, seed


class TestDifferential:
    @settings(max_examples=30, deadline=None)
    @given(case=random_case())
    def test_simt_equals_vectorized_equals_reference(self, case):
        coeffs, width, height, pattern, constant, block, variant, seed = case
        src = np.random.default_rng(seed).random((height, width)).astype(np.float32)

        kernel = make_conv_kernel(width, height, pattern, coeffs, constant)
        desc = trace_kernel(kernel)

        simt = run_pipeline_simt(
            Pipeline("diff", [kernel]), variant=variant, block=block,
            inputs={"inp": src},
        ).output
        vec = run_kernel_vectorized(desc, {"inp": src}, variant="isp")
        ref = correlate(src, coeffs, pattern, constant)

        # The three paths use the same float32 accumulation order; they must
        # agree to tight tolerance (bit-exact in the common case; padding's
        # zero-coefficient skipping matches the DSL's).
        assert np.abs(simt - ref).max() < 1e-5, (pattern, variant)
        assert np.abs(vec - ref).max() < 1e-5, pattern
        assert np.abs(simt - vec).max() < 1e-5

        # The pre-padded mode evaluates through an entirely different data
        # path (one materialized gather + check-free slicing) and must be
        # bit-exact with the checked evaluators.
        prepad = run_kernel_vectorized(desc, {"inp": src}, variant="prepad")
        assert np.array_equal(prepad, vec), pattern

    @settings(max_examples=20, deadline=None)
    @given(case=random_case(), batch_n=st.sampled_from([1, 3, 8]))
    def test_batched_execution_bitexact(self, case, batch_n):
        """An (N, H, W) stack evaluates bit-identically to N single calls,
        for every variant including prepad."""
        coeffs, width, height, pattern, constant, _, _, seed = case
        rng = np.random.default_rng(seed)
        stack = rng.random((batch_n, height, width)).astype(np.float32)
        kernel = make_conv_kernel(width, height, pattern, coeffs, constant)
        desc = trace_kernel(kernel)

        for variant in ("naive", "isp", "isp_warp", "prepad"):
            batched = run_kernel_vectorized(
                desc, {"inp": stack}, variant=variant
            )
            assert batched.shape == (batch_n, height, width), variant
            for i in range(batch_n):
                single = run_kernel_vectorized(
                    desc, {"inp": stack[i]}, variant=variant
                )
                assert np.array_equal(batched[i], single), (variant, pattern, i)

    @settings(max_examples=10, deadline=None)
    @given(case=random_case())
    def test_naive_and_isp_bitexact(self, case):
        coeffs, width, height, pattern, constant, block, _, seed = case
        src = np.random.default_rng(seed).random((height, width)).astype(np.float32)
        kernel = make_conv_kernel(width, height, pattern, coeffs, constant)
        outs = []
        for variant in (Variant.NAIVE, Variant.ISP):
            outs.append(
                run_pipeline_simt(
                    Pipeline("diff", [kernel]), variant=variant, block=block,
                    inputs={"inp": src},
                ).output
            )
        assert np.array_equal(outs[0], outs[1]), pattern


class TestPrepadEdges:
    """Tiny images and over-wide windows: the regime np.pad-style padding
    gets wrong and the PR-2 total mappings exist for."""

    def test_prepad_tiny_images_overwide_windows(self):
        rng = np.random.default_rng(7)
        coeffs = rng.uniform(-1, 1, size=(5, 5)).astype(np.float32)
        for pattern in PATTERNS:
            for (w, h) in [(1, 1), (2, 3), (3, 3), (4, 2), (5, 5)]:
                src = rng.random((h, w)).astype(np.float32)
                kernel = make_conv_kernel(w, h, pattern, coeffs, 0.5)
                desc = trace_kernel(kernel)
                naive = run_kernel_vectorized(
                    desc, {"inp": src}, variant="naive"
                )
                prepad = run_kernel_vectorized(
                    desc, {"inp": src}, variant="prepad"
                )
                ref = correlate(src, coeffs, pattern, 0.5)
                assert np.array_equal(prepad, naive), (pattern, w, h)
                assert np.abs(prepad - ref).max() < 1e-5, (pattern, w, h)


class TestTextureDifferential:
    @settings(max_examples=10, deadline=None)
    @given(case=random_case())
    def test_texture_matches_reference(self, case):
        coeffs, width, height, pattern, constant, block, _, seed = case
        if pattern not in (Boundary.CLAMP, Boundary.CONSTANT):
            return  # texture hardware cannot express mirror/repeat
        src = np.random.default_rng(seed).random((height, width)).astype(np.float32)
        kernel = make_conv_kernel(width, height, pattern, coeffs, constant)
        out = run_pipeline_simt(
            Pipeline("diff", [kernel]), variant=Variant.TEXTURE, block=block,
            inputs={"inp": src},
        ).output
        ref = correlate(src, coeffs, pattern, constant)
        assert np.abs(out - ref).max() < 1e-5
