"""Unit tests for DSL expressions, images, masks/domains, pipelines."""

import numpy as np
import pytest

from repro.dsl import (
    Accessor,
    BinOp,
    Boundary,
    BoundaryCondition,
    Const,
    Domain,
    Image,
    IterationSpace,
    Kernel,
    Mask,
    Pipeline,
    PixelAccess,
    UnOp,
    expf,
    fminf,
    pixel_accesses,
    powf,
    sqrtf,
    walk,
    wrap,
)


class TestExpr:
    def test_operator_overloads_build_nodes(self):
        img = Image(8, 8)
        acc = Accessor(BoundaryCondition(img, Boundary.CLAMP))
        e = (acc(0, 0) + 1.0) * 2.0 - acc(1, 0) / 3.0
        assert isinstance(e, BinOp)
        assert len(pixel_accesses(e)) == 2

    def test_reverse_operators(self):
        img = Image(8, 8)
        acc = Accessor(img)
        e = 1.0 + acc(0, 0)
        assert isinstance(e, BinOp) and e.op == "add"
        assert isinstance(e.lhs, Const)
        e2 = 2.0 / acc(0, 0)
        assert e2.op == "div" and isinstance(e2.lhs, Const)

    def test_neg_and_pos(self):
        img = Image(8, 8)
        acc = Accessor(img)
        assert isinstance(-acc(0, 0), UnOp)
        v = acc(0, 0)
        assert +v is v

    def test_seq_is_creation_ordered(self):
        img = Image(8, 8)
        acc = Accessor(img)
        a = acc(0, 0)
        b = a + 1.0
        c = b * 2.0
        assert a.seq < b.seq < c.seq

    def test_wrap_rejects_bool_and_junk(self):
        with pytest.raises(TypeError):
            wrap(True)
        with pytest.raises(TypeError):
            wrap("hello")

    def test_walk_visits_shared_once(self):
        img = Image(8, 8)
        acc = Accessor(img)
        shared = acc(0, 0) * 2.0
        e = shared + shared
        nodes = list(walk(e))
        assert len([n for n in nodes if n is shared]) == 1

    def test_math_intrinsics(self):
        img = Image(8, 8)
        acc = Accessor(img)
        assert isinstance(expf(acc(0, 0)), UnOp)
        assert isinstance(sqrtf(1.0), UnOp)
        assert isinstance(fminf(acc(0, 0), 1.0), BinOp)
        # powf is sugar for exp2(y * log2(x))
        p = powf(acc(0, 0), 2.0)
        assert isinstance(p, UnOp) and p.op == "exp2"

    def test_offsets_must_be_static_ints(self):
        img = Image(8, 8)
        acc = Accessor(img)
        with pytest.raises(TypeError):
            PixelAccess(acc, 1.5, 0)


class TestImage:
    def test_shape_and_binding(self, rng):
        img = Image(16, 8, "x")
        assert img.shape == (8, 16)
        data = rng.random((8, 16))
        img.bind(data)
        assert img.host.dtype == np.float32

    def test_bind_shape_mismatch(self):
        img = Image(16, 8)
        with pytest.raises(ValueError, match="shape"):
            img.bind(np.zeros((16, 8)))

    def test_from_array(self):
        img = Image.from_array(np.zeros((4, 6), dtype=np.float64))
        assert img.width == 6 and img.height == 4
        assert img.is_bound

    def test_unbound_host_raises(self):
        with pytest.raises(ValueError, match="no bound host data"):
            _ = Image(4, 4).host

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            Image(0, 4)


class TestMaskDomain:
    def test_rectangle_domain(self):
        dom = Domain.rectangle(3, 5)
        assert len(dom) == 15
        assert dom.extent == (1, 2)
        assert dom.window_size == (3, 5)

    def test_even_window_rejected(self):
        with pytest.raises(ValueError, match="odd"):
            Domain.rectangle(4, 3)
        with pytest.raises(ValueError, match="odd"):
            Mask(np.zeros((2, 3), np.float32))

    def test_duplicate_offsets_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Domain([(0, 0), (0, 0)])

    def test_mask_coeff_indexing(self):
        m = Mask(np.array([[1, 2, 3], [4, 5, 6], [7, 8, 9]], np.float32))
        assert m.coeff(0, 0) == 5.0
        assert m.coeff(-1, -1) == 1.0
        assert m.coeff(1, 1) == 9.0
        with pytest.raises(IndexError):
            m.coeff(2, 0)

    def test_mask_domain_skips_zeros_keeps_extent(self):
        coeffs = np.zeros((5, 5), np.float32)
        coeffs[0, 0] = coeffs[2, 2] = coeffs[4, 4] = 1.0
        dom = Mask(coeffs).domain()
        assert len(dom) == 3
        assert dom.extent == (2, 2)

    def test_dilated_atrous_mask(self):
        base = np.array([[1, 2, 1], [2, 4, 2], [1, 2, 1]], np.float32)
        m = Mask.dilated(base, 4)
        assert m.size == (9, 9)
        dom = m.domain()
        assert len(dom) == 9  # still 9 taps
        assert dom.extent == (4, 4)  # full window extent
        assert m.coeff(0, 0) == 4.0
        assert m.coeff(-4, -4) == 1.0
        assert m.coeff(1, 0) == 0.0  # a hole

    def test_forced_extent_cannot_shrink(self):
        with pytest.raises(ValueError, match="smaller than"):
            Domain([(2, 0)], extent=(1, 0))


class TestKernelPrimitives:
    def test_iterate_sums_row_major(self):
        img = Image(8, 8)
        acc = Accessor(BoundaryCondition(img, Boundary.CLAMP))
        dom = Domain.rectangle(3, 3)
        e = Kernel.iterate(dom, lambda dx, dy: acc(dx, dy))
        # 9 adds chained onto the 0.0 seed
        adds = [n for n in walk(e) if isinstance(n, BinOp) and n.op == "add"]
        assert len(adds) == 9
        assert len(pixel_accesses(e)) == 9

    def test_convolve_skips_zero_coefficients(self):
        img = Image(8, 8)
        acc = Accessor(BoundaryCondition(img, Boundary.CLAMP))
        coeffs = np.zeros((3, 3), np.float32)
        coeffs[1, 1] = 1.0
        e = Kernel.convolve(Mask(coeffs), acc)
        assert len(pixel_accesses(e)) == 1

    def test_custom_combine(self):
        img = Image(8, 8)
        acc = Accessor(BoundaryCondition(img, Boundary.CLAMP))
        dom = Domain.rectangle(3, 1)
        e = Kernel.iterate(dom, lambda dx, dy: acc(dx, dy),
                           init=-1e30, combine=lambda a, b: fminf(a, b))
        mins = [n for n in walk(e) if isinstance(n, BinOp) and n.op == "min"]
        assert len(mins) == 3


class TestPipeline:
    def _stage(self, src: Image, dst: Image):
        from tests.conftest import ConvKernel

        acc = Accessor(BoundaryCondition(src, Boundary.CLAMP))
        return ConvKernel(IterationSpace(dst), acc,
                          Mask(np.ones((3, 3), np.float32) / 9),
                          kernel_name=f"k_{dst.name}")

    def test_chaining_and_io(self):
        a, b, c = Image(8, 8, "a"), Image(8, 8, "b"), Image(8, 8, "c")
        p = Pipeline("p", [self._stage(a, b), self._stage(b, c)])
        assert [i.name for i in p.inputs] == ["a"]
        assert p.output.name == "c"
        assert len(p) == 2

    def test_double_write_rejected(self):
        a, b = Image(8, 8, "a"), Image(8, 8, "b")
        with pytest.raises(ValueError, match="written twice"):
            Pipeline("p", [self._stage(a, b), self._stage(a, b)])

    def test_self_read_rejected(self):
        a = Image(8, 8, "a")
        with pytest.raises(ValueError, match="its own output"):
            Pipeline("p", [self._stage(a, a)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Pipeline("p", [])

    def test_input_shadowing_produced_name_rejected(self):
        """A stage reading a name that a *later* stage produces would make
        the staged executor bind an external array while digests/fusion
        resolve the produced image — the collision must be rejected."""
        a, b, c = Image(8, 8, "a"), Image(8, 8, "b"), Image(8, 8, "c")
        with pytest.raises(ValueError, match="before it is produced"):
            Pipeline("p", [self._stage(b, c), self._stage(a, b)])

    def test_graph_accessors(self):
        a, b, c = Image(8, 8, "a"), Image(8, 8, "b"), Image(8, 8, "c")
        p = Pipeline("p", [self._stage(a, b), self._stage(b, c)])
        assert p.producer_of("b").name == "k_b"
        assert p.producer_of("a") is None
        assert [k.name for k in p.consumers()["b"]] == ["k_c"]
        assert p.live_stages() == {"b", "c"}

    def test_dead_stage_not_live(self):
        a, b, c, d = (Image(8, 8, n) for n in "abcd")
        p = Pipeline("p", [self._stage(a, b), self._stage(a, d),
                           self._stage(b, c)])
        # d is written but never read and is not the final output: dead.
        assert p.live_stages() == {"b", "c"}
        assert "d" not in p.consumers()
