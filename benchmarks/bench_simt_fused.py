"""Fused SIMT megakernel vs staged NAIVE stages, simulated per zoo device.

The host-executor fusion bench (``bench_pipeline_fusion``) prices wall
clock; this one prices the *simulated machine*: for each device in the zoo
the sobel diamond runs once as staged per-stage NAIVE kernels and once as
the per-block shared-memory megakernel, and the profiler's issue-cycle and
event totals are compared. The fused shape trades the intermediates' global
round-trips for shared-memory traffic, so the cells that move are
``smem_load``/``smem_store`` (zero when staged) and the global-access
events (shrink when fused); the LDS bank-conflict counter differs between
warp32 and wave64 parts because the padded stride does.

Headline numbers land in ``BENCH_simt_fused.json`` at the repo root.
"""

from __future__ import annotations

import numpy as np

from repro.gpu import DEVICES
from repro.serve.plan import build_plan

APP = "sobel"
PATTERN = "clamp"
SIZE = 48
BLOCK = (16, 4)


def _simulate(variant: str, device, img: np.ndarray):
    plan = build_plan(APP, PATTERN, SIZE, SIZE, variant=variant,
                      block=BLOCK, device=device)
    collect: list = []
    out = plan.execute_simt(img, collect=collect)
    cycles = sum(prof.issue_cycles for _, _, prof in collect)
    instrs = sum(prof.warp_instructions for _, _, prof in collect)
    events: dict = {}
    for _, _, prof in collect:
        for name, count in prof.event_totals().items():
            events[name] = events.get(name, 0) + count
    return out, len(collect), cycles, instrs, events


def test_fused_simt_cycles_per_device(benchmark, report, bench_summary,
                                      case_rng):
    img = case_rng.random((SIZE, SIZE), dtype=np.float32)

    def build():
        rows = []
        for name, device in DEVICES.items():
            staged_out, n_staged, staged_cyc, staged_instr, staged_ev = \
                _simulate("naive", device, img)
            fused_out, n_fused, fused_cyc, fused_instr, fused_ev = \
                _simulate("fused", device, img)
            assert np.array_equal(staged_out, fused_out), name
            assert n_fused == 1, name   # one megakernel, one profiler
            assert n_staged > 1, name
            assert fused_ev["smem_load"] > 0 and fused_ev["smem_store"] > 0
            assert staged_ev["smem_load"] == staged_ev["smem_store"] == 0
            rows.append({
                "device": name,
                "warp_size": device.warp_size,
                "staged_kernels": n_staged,
                "staged_cycles": staged_cyc,
                "fused_cycles": fused_cyc,
                "cycle_ratio": staged_cyc / fused_cyc,
                "staged_instructions": staged_instr,
                "fused_instructions": fused_instr,
                "fused_smem_load": fused_ev["smem_load"],
                "fused_smem_store": fused_ev["smem_store"],
                "lds_bank_conflicts": fused_ev["lds_bank_conflict"],
            })
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)

    lines = [f"fused SIMT vs staged NAIVE, {APP}/{PATTERN}/{SIZE}² "
             f"block {BLOCK[0]}x{BLOCK[1]} (simulated cycles)"]
    for row in rows:
        lines.append(
            f"  {row['device']:8s} wave{row['warp_size']}: "
            f"staged {row['staged_cycles']:10.0f} cy "
            f"({row['staged_kernels']} kernels), "
            f"fused {row['fused_cycles']:10.0f} cy "
            f"-> {row['cycle_ratio']:.2f}x, "
            f"smem ld/st {row['fused_smem_load']}/{row['fused_smem_store']}, "
            f"LDS conflicts {row['lds_bank_conflicts']}"
        )
    text = "\n".join(lines)
    report("simt_fused", text, data={"rows": rows})
    bench_summary("simt_fused", {"rows": rows})

    # Warp width changes the conflict picture: a 32-element row collides on
    # 32 banks, not on 64, so warp32 and wave64 parts must disagree.
    by_warp = {row["warp_size"]: row["lds_bank_conflicts"] for row in rows}
    assert by_warp[32] != by_warp[64], by_warp
