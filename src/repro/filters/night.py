"""Night filter — 5-kernel pipeline (paper Section VI).

"The night filter consists of five kernels that first iteratively apply the
Atrous (with holes) algorithm with different sizes (3x3, 5x5, 9x9, 17x17),
before performing the actual tone mapping."

The a-trous ("with holes") stages dilate a 3x3 binomial mask by 1, 2, 4 and
8, giving window sizes 3, 5, 9 and 17 while keeping 9 taps per stage — the
classic multiresolution smoothing used in low-light denoising. Despite the
few taps, the *border extent* of the later stages is large (hx = hy = 8 for
the final stage), so the border regions of the iteration space are wide.
The final stage is Reinhard-style tone mapping, a point operator.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..dsl import (
    Accessor,
    Boundary,
    BoundaryCondition,
    Image,
    IterationSpace,
    Kernel,
    Mask,
    Pipeline,
)

#: Base 3x3 binomial smoothing mask.
ATROUS_BASE = np.array([[1, 2, 1], [2, 4, 2], [1, 2, 1]], dtype=np.float32) / 16.0

#: Dilations of the four a-trous stages -> windows 3x3, 5x5, 9x9, 17x17.
ATROUS_DILATIONS = (1, 2, 4, 8)

#: Reinhard tone-mapping white point.
TONEMAP_WHITE = 1.0


def atrous_mask(dilation: int) -> np.ndarray:
    """The base mask dilated a-trous style (zeros in the holes)."""
    return Mask.dilated(ATROUS_BASE, dilation).coefficients


class AtrousKernel(Kernel):
    """One a-trous stage: 9 taps spread over a (2*dilation+1)^2 window."""

    def __init__(
        self, iter_space: IterationSpace, acc: Accessor, dilation: int
    ):
        super().__init__(iter_space)
        self.acc = self.add_accessor(acc)
        self.dilation = dilation
        self.mask = Mask.dilated(ATROUS_BASE, dilation)

    @property
    def name(self) -> str:
        return f"atrous_d{self.dilation}"

    def kernel(self):
        return self.convolve(self.mask, self.acc)


class TonemapKernel(Kernel):
    """Reinhard tone mapping: out = x * (1 + x/white^2) / (1 + x).

    A point operator — reads only (0, 0), compiles without border handling.
    """

    def __init__(self, iter_space: IterationSpace, acc: Accessor,
                 white: float = TONEMAP_WHITE):
        super().__init__(iter_space)
        self.acc = self.add_accessor(acc)
        self.white = white

    @property
    def name(self) -> str:
        return "tonemap"

    def kernel(self):
        x = self.acc(0, 0)
        w2 = self.white * self.white
        return x * (1.0 + x * (1.0 / w2)) / (1.0 + x)


def tonemap_reference(src: np.ndarray, white: float = TONEMAP_WHITE) -> np.ndarray:
    src = np.asarray(src, dtype=np.float32)
    w2 = np.float32(white * white)
    one = np.float32(1.0)
    return (src * (one + src * (one / w2)) / (one + src)).astype(np.float32)


def build_pipeline(
    width: int,
    height: int,
    boundary: Boundary,
    constant: float = 0.0,
    input_image: Optional[Image] = None,
) -> Pipeline:
    inp = input_image or Image(width, height, "inp")
    kernels: list[Kernel] = []
    current = inp
    for i, dilation in enumerate(ATROUS_DILATIONS):
        name = "out" if False else f"atrous{i}"
        stage_out = Image(width, height, name)
        kernels.append(
            AtrousKernel(
                IterationSpace(stage_out),
                Accessor(BoundaryCondition(current, boundary, constant)),
                dilation,
            )
        )
        current = stage_out
    out = Image(width, height, "out")
    kernels.append(TonemapKernel(IterationSpace(out), Accessor(current)))
    return Pipeline("night", kernels)
