"""Unit tests for the virtual ISA's type system."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ir.types import DataType, coerce_immediate


class TestDataType:
    def test_suffixes(self):
        assert DataType.S32.suffix == "s32"
        assert DataType.U32.suffix == "u32"
        assert DataType.F32.suffix == "f32"
        assert DataType.PRED.suffix == "pred"

    def test_numpy_dtypes(self):
        assert DataType.S32.numpy_dtype == np.int32
        assert DataType.U32.numpy_dtype == np.uint32
        assert DataType.F32.numpy_dtype == np.float32
        assert DataType.PRED.numpy_dtype == np.bool_

    def test_classification(self):
        assert DataType.S32.is_integer and DataType.U32.is_integer
        assert not DataType.F32.is_integer
        assert DataType.F32.is_float
        assert DataType.PRED.is_predicate
        assert not DataType.S32.is_predicate

    def test_size_bytes(self):
        for dt in (DataType.S32, DataType.U32, DataType.F32):
            assert dt.size_bytes == 4

    def test_predicate_not_addressable(self):
        with pytest.raises(ValueError):
            _ = DataType.PRED.size_bytes


class TestCoerceImmediate:
    def test_f32_rounding(self):
        # 0.1 is not exactly representable; coercion snaps to float32.
        v = coerce_immediate(0.1, DataType.F32)
        assert v == float(np.float32(0.1))
        assert v != 0.1

    def test_s32_wraps(self):
        assert coerce_immediate(2**31, DataType.S32) == -(2**31)
        assert coerce_immediate(-1, DataType.S32) == -1

    def test_u32_wraps(self):
        assert coerce_immediate(-1, DataType.U32) == 2**32 - 1
        assert coerce_immediate(2**32, DataType.U32) == 0

    def test_pred(self):
        assert coerce_immediate(1, DataType.PRED) is True
        assert coerce_immediate(0, DataType.PRED) is False

    @given(st.integers(min_value=-(2**40), max_value=2**40))
    def test_s32_matches_numpy(self, value):
        assert coerce_immediate(value, DataType.S32) == int(
            np.int64(value).astype(np.int32)
        )

    @given(st.floats(allow_nan=False, allow_infinity=False, width=32))
    def test_f32_fixed_point(self, value):
        # Coercing an exact float32 value is the identity.
        once = coerce_immediate(value, DataType.F32)
        assert coerce_immediate(once, DataType.F32) == once
