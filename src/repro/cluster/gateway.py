"""Asyncio gateway: admission control, quotas, priorities, failover, stitching.

The gateway is the cluster's single front door. It owns the policy a fleet
needs that a single engine does not:

* **Admission control** — a hard cap on in-flight requests
  (``max_inflight``); past it, new work is rejected *typed*
  (``error_kind="admission"``) instead of queueing unboundedly. Same
  philosophy as the engine's bounded queue, one level up.
* **Priority classes** — ``"interactive"`` admits up to the full cap;
  ``"batch"`` only below ``batch_watermark`` (a fraction of the cap), so a
  bulk backfill cannot starve latency-sensitive traffic. No reordering
  is attempted beyond that — the shards' own queues stay short because
  admission is the throttle.
* **Per-tenant quotas** — each tenant's concurrent in-flight count is
  capped; past it, ``error_kind="quota"``. One noisy tenant degrades to
  *its own* rejections, not the fleet's.
* **Failover** — a request is dispatched to its digest's rendezvous
  preference order; a connection failure (or an injected
  ``cluster.gateway.send`` partition) marks the shard dead in the routing
  table and retries the next preference. Only when every slot has been
  tried does the request fail, typed ``shard_unavailable``.
* **Trace stitching** — the gateway makes the head-sampling decision; a
  sampled request's shard returns its span subtree on the wire, and the
  gateway rebases + adopts it under its own ``gateway.request`` span —
  one process, one exported trace, ONE tree per request.
* **Merged metrics** — :meth:`Gateway.metrics_text` renders every shard's
  snapshot plus the cross-shard aggregate as one Prometheus exposition.

The gateway core is a single asyncio event loop (connection pools are
per-shard lists of (reader, writer) pairs used in lockstep
request/response). :class:`SyncGateway` wraps it for threaded callers —
tests, the CLI, and the load generator drive the sync facade.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
import time
from typing import Optional

import numpy as np

from ..faults import core as _faults
from ..serve.metrics import MetricsRegistry
from ..trace import core as _trace_core
from ..trace.exporters import prometheus_merged_text
from .protocol import (
    CLUSTER_ERROR_KINDS,
    decode_array,
    encode_array,
    recv_frame_async,
    send_frame_async,
    spans_from_wire,
)
from .router import NoLiveShards, Router

PRIORITIES = ("interactive", "batch")


class ClusterRequest:
    """One request as the gateway sees it (image inline or by shard ref)."""

    _ids = itertools.count(1)

    def __init__(
        self,
        app: str,
        *,
        image: Optional[np.ndarray] = None,
        image_ref: Optional[str] = None,
        shape: Optional[tuple[int, int]] = None,
        pattern: str = "clamp",
        variant: str = "isp+m",
        exec_mode: str = "vectorized",
        constant: float = 0.0,
        timeout_s: Optional[float] = None,
        tenant: str = "default",
        priority: str = "interactive",
        return_mode: str = "array",
    ):
        if (image is None) == (image_ref is None):
            raise ValueError("exactly one of image / image_ref is required")
        if image_ref is not None and shape is None:
            raise ValueError("image_ref requires shape (routing needs h, w)")
        if priority not in PRIORITIES:
            raise ValueError(f"priority must be one of {PRIORITIES}")
        if return_mode not in ("array", "digest"):
            raise ValueError("return_mode must be 'array' or 'digest'")
        self.app = app
        self.image = (np.ascontiguousarray(image, dtype=np.float32)
                      if image is not None else None)
        self.image_ref = image_ref
        self.shape = tuple(shape) if shape is not None else self.image.shape
        self.pattern = pattern
        self.variant = variant
        self.exec_mode = exec_mode
        self.constant = float(constant)
        self.timeout_s = timeout_s
        self.tenant = tenant
        self.priority = priority
        self.return_mode = return_mode
        self.request_id = next(self._ids)


class ClusterResponse:
    """Outcome of one gateway request (mirrors the engine's Response shape,
    with the cluster-level fields added)."""

    def __init__(self, request_id: int, app: str):
        self.request_id = request_id
        self.app = app
        self.output: Optional[np.ndarray] = None
        self.digest: Optional[str] = None
        self.slot: Optional[str] = None
        self.variant: Optional[str] = None
        self.cache_hit: bool = False
        self.fallbacks: list[str] = []
        self.retries: int = 0
        self.failovers: int = 0
        self.error: Optional[str] = None
        self.error_kind: Optional[str] = None
        self.trace_id: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def fail(self, kind: str, message: str) -> "ClusterResponse":
        assert kind in CLUSTER_ERROR_KINDS, f"untyped error kind {kind!r}"
        self.error_kind = kind
        self.error = message
        return self


class _ShardPool:
    """Connection pool for one shard address; connections are used in
    lockstep (one request, one response), so a checked-out pair is exclusive
    to its request until returned."""

    def __init__(self, addr: tuple[str, int], limit: int):
        self.addr = tuple(addr)
        self._idle: list[tuple] = []
        self._sem = asyncio.Semaphore(limit)

    async def acquire(self):
        await self._sem.acquire()
        while self._idle:
            reader, writer = self._idle.pop()
            if not writer.is_closing():
                return reader, writer
        try:
            return await asyncio.open_connection(*self.addr)
        except OSError as exc:
            self._sem.release()
            raise ConnectionError(
                f"cannot connect to shard at {self.addr}: {exc}"
            ) from exc

    def release(self, pair, *, broken: bool = False) -> None:
        reader, writer = pair
        if broken or writer.is_closing():
            writer.close()
        else:
            self._idle.append(pair)
        self._sem.release()

    def close(self) -> None:
        while self._idle:
            _, writer = self._idle.pop()
            writer.close()


class Gateway:
    """Asyncio cluster front door (single event loop; see module docstring)."""

    def __init__(
        self,
        router: Router,
        *,
        max_inflight: int = 64,
        batch_watermark: float = 0.5,
        tenant_quota: Optional[int] = None,
        pool_size: int = 8,
        sample_rate: float = 0.0,
        trace_seed: int = 0,
        metrics: Optional[MetricsRegistry] = None,
        metrics_source=None,
    ):
        if not 0.0 < batch_watermark <= 1.0:
            raise ValueError("batch_watermark must be in (0, 1]")
        self.router = router
        self.max_inflight = max_inflight
        self.batch_cap = max(1, int(max_inflight * batch_watermark))
        self.tenant_quota = tenant_quota
        self.pool_size = pool_size
        #: callable returning {shard: metrics snapshot} for the merged
        #: exporter (typically LocalCluster.metrics_snapshots)
        self.metrics_source = metrics_source

        self.metrics = metrics if metrics is not None else MetricsRegistry()
        m = self.metrics
        self._c_submitted = m.counter("gateway.requests_submitted")
        self._c_ok = m.counter("gateway.responses_ok")
        self._c_error = m.counter("gateway.responses_error")
        self._c_admission = m.counter(
            "gateway.rejected_admission", "load-shed at the inflight cap")
        self._c_quota = m.counter(
            "gateway.rejected_quota", "per-tenant inflight quota exceeded")
        self._c_failovers = m.counter(
            "gateway.failovers", "dispatches retried on the next shard")
        self._c_partitions = m.counter(
            "gateway.partitions_injected",
            "cluster.gateway.send faults observed")
        self._g_inflight = m.gauge("gateway.inflight")
        self._h_latency = m.histogram("gateway.latency_seconds", unit="s")

        self._inflight = 0
        self._tenant_inflight: dict[str, int] = {}
        self._state_lock = threading.Lock()
        self._pools: dict[tuple[str, int], _ShardPool] = {}

        # Head sampling is the gateway's call (shards obey, see worker.py).
        self.tracer = _trace_core.Tracer(
            sample_rate=sample_rate, seed=trace_seed
        ) if sample_rate > 0.0 else None

    # ------------------------------------------------------------- admission

    def _admit(self, request: ClusterRequest) -> Optional[str]:
        """Reserve an in-flight slot; returns a rejection kind or None."""
        with self._state_lock:
            cap = (self.batch_cap if request.priority == "batch"
                   else self.max_inflight)
            if self._inflight >= cap:
                return "admission"
            if self.tenant_quota is not None:
                if self._tenant_inflight.get(request.tenant, 0) >= \
                        self.tenant_quota:
                    return "quota"
            self._inflight += 1
            self._tenant_inflight[request.tenant] = (
                self._tenant_inflight.get(request.tenant, 0) + 1
            )
            self._g_inflight.set(self._inflight)
        return None

    def _release(self, request: ClusterRequest) -> None:
        with self._state_lock:
            self._inflight -= 1
            left = self._tenant_inflight.get(request.tenant, 1) - 1
            if left <= 0:
                self._tenant_inflight.pop(request.tenant, None)
            else:
                self._tenant_inflight[request.tenant] = left
            self._g_inflight.set(self._inflight)

    # -------------------------------------------------------------- dispatch

    def _pool_for(self, addr: tuple[str, int]) -> _ShardPool:
        pool = self._pools.get(addr)
        if pool is None:
            pool = self._pools[addr] = _ShardPool(addr, self.pool_size)
        return pool

    async def submit(self, request: ClusterRequest) -> ClusterResponse:
        """Admit, route, dispatch (with failover), stitch, account."""
        response = ClusterResponse(request.request_id, request.app)
        self._c_submitted.inc()
        rejection = self._admit(request)
        if rejection is not None:
            (self._c_admission if rejection == "admission"
             else self._c_quota).inc()
            self._c_error.inc()
            return response.fail(
                rejection,
                f"{rejection} rejected (inflight cap "
                f"{self.batch_cap if request.priority == 'batch' else self.max_inflight}"
                f", tenant {request.tenant!r})",
            )

        root = None
        if self.tracer is not None:
            root = self.tracer.start_trace(
                "gateway.request", key=f"g{request.request_id}",
                request_id=request.request_id, app=request.app,
                pattern=request.pattern, tenant=request.tenant,
                priority=request.priority,
            )
        t0 = time.perf_counter()
        try:
            await self._dispatch(request, response, root)
        finally:
            self._release(request)
            self._h_latency.observe(time.perf_counter() - t0)
            (self._c_ok if response.ok else self._c_error).inc()
            if root is not None:
                response.trace_id = root.trace_id
                self.tracer.finish(
                    root,
                    status="ok" if response.ok else f"error:{response.error_kind}",
                    error_kind=response.error_kind, slot=response.slot,
                    failovers=response.failovers,
                )
        return response

    async def _dispatch(self, request: ClusterRequest,
                        response: ClusterResponse, root) -> None:
        h, w = request.shape
        try:
            order = self.router.route(
                request.app, request.pattern, w, h, request.constant
            )
        except NoLiveShards as exc:
            response.fail("shard_unavailable", str(exc))
            return

        header: dict = {
            "op": "run", "app": request.app, "pattern": request.pattern,
            "variant": request.variant, "exec_mode": request.exec_mode,
            "constant": request.constant, "timeout_s": request.timeout_s,
            "return": request.return_mode, "trace": root is not None,
            "key": f"g{request.request_id}",
        }
        payload = b""
        if request.image_ref is not None:
            header["ref"] = request.image_ref
        else:
            header["array"], payload = encode_array(request.image)

        tried: list[str] = []
        last_error = "no shard tried"
        for slot in order:
            tried.append(slot)
            call_span = None
            if root is not None:
                call_span = self.tracer.start_span(
                    "shard_call", root, slot=slot, attempt=len(tried),
                )
            try:
                if _faults._current is not None:
                    # Fault point: the network between gateway and this
                    # shard partitions. The shard is healthy; the gateway
                    # cannot reach it — so this dispatch fails over exactly
                    # like a dead shard, without killing anything.
                    act = _faults.fire("cluster.gateway.send",
                                       key=f"g{request.request_id}",
                                       slot=slot)
                    if act is not None:
                        self._c_partitions.inc()
                        raise ConnectionError(
                            f"injected partition to {slot} "
                            "(cluster.gateway.send)"
                        )
                reply, out_payload = await self._call(slot, header, payload)
            except (ConnectionError, OSError, asyncio.IncompleteReadError) as exc:
                last_error = str(exc)
                # A slot we cannot reach serves nothing until the manager
                # revives it: mark dead so subsequent requests skip it, then
                # try this request's next preference.
                self.router.table.mark_dead(slot)
                response.failovers += 1
                self._c_failovers.inc()
                if call_span is not None:
                    self.tracer.finish(call_span, status="error",
                                       error=last_error)
                continue

            if call_span is not None:
                self.tracer.finish(call_span, ok=bool(reply.get("ok")))
            self._ingest(request, response, reply, out_payload, root, slot,
                         call_span)
            return

        response.fail(
            "shard_unavailable",
            f"all {len(tried)} shard(s) unreachable "
            f"(tried {tried}; last error: {last_error})",
        )

    async def _call(self, slot: str, header: dict,
                    payload: bytes) -> tuple[dict, bytes]:
        addr = self.router.table.addr(slot)
        pool = self._pool_for(addr)
        pair = await pool.acquire()
        broken = True
        try:
            await send_frame_async(pair[1], header, payload)
            reply, out_payload = await recv_frame_async(pair[0])
            broken = False
            return reply, out_payload
        finally:
            pool.release(pair, broken=broken)

    def _ingest(self, request: ClusterRequest, response: ClusterResponse,
                reply: dict, out_payload: bytes, root, slot: str,
                call_span=None) -> None:
        """Fold a shard's reply into the ClusterResponse (+ adopt spans)."""
        response.slot = slot
        response.variant = reply.get("variant")
        response.cache_hit = bool(reply.get("cache_hit"))
        response.fallbacks = list(reply.get("fallbacks", []))
        response.retries = int(reply.get("retries", 0))
        if not reply.get("ok"):
            kind = reply.get("error_kind") or "execution"
            if kind not in CLUSTER_ERROR_KINDS:
                kind = "execution"
            response.fail(kind, str(reply.get("error", "shard error")))
        else:
            if reply.get("digest") is not None:
                response.digest = reply["digest"]
            elif out_payload:
                response.output = decode_array(reply.get("array", {}),
                                               out_payload)
        if root is not None and reply.get("spans"):
            # Rebase the shard's unix-anchored spans onto this tracer's
            # timeline, then graft them under the shard_call span that
            # carried them — id-prefixed by slot so two shards' span ids
            # cannot collide.
            foreign = spans_from_wire(reply["spans"], self.tracer)
            self.tracer.adopt_spans(
                foreign, parent=call_span if call_span is not None else root,
                prefix=f"{slot}.",
            )

    # --------------------------------------------------------------- metrics

    def metrics_text(self) -> str:
        """One merged Prometheus exposition: every shard + the gateway's own
        registry, each labeled ``shard=``, plus the ``shard="merged"``
        aggregate."""
        snapshots: dict[str, dict] = {}
        if self.metrics_source is not None:
            snapshots.update(self.metrics_source())
        snapshots["gateway"] = self.metrics.snapshot(include_samples=True)
        return prometheus_merged_text(snapshots)

    def close(self) -> None:
        for pool in self._pools.values():
            pool.close()
        self._pools.clear()


class SyncGateway:
    """Threaded facade over :class:`Gateway` (own event loop on a daemon
    thread) — what tests, the CLI, and the load generator drive."""

    def __init__(self, gateway: Gateway):
        self.gateway = gateway
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="gateway-loop", daemon=True
        )
        self._thread.start()

    def submit(self, request: ClusterRequest,
               timeout: Optional[float] = 60.0) -> ClusterResponse:
        fut = asyncio.run_coroutine_threadsafe(
            self.gateway.submit(request), self._loop
        )
        return fut.result(timeout)

    def run(self, requests: list[ClusterRequest], *,
            concurrency: int = 16,
            timeout: Optional[float] = 300.0) -> list[ClusterResponse]:
        """Submit many requests with bounded concurrency; results in order."""

        async def _run():
            sem = asyncio.Semaphore(concurrency)

            async def one(req):
                async with sem:
                    return await self.gateway.submit(req)

            return await asyncio.gather(*(one(r) for r in requests))

        fut = asyncio.run_coroutine_threadsafe(_run(), self._loop)
        return list(fut.result(timeout))

    def put_image(self, slots: list[str], ref: str,
                  image: np.ndarray, timeout: float = 30.0) -> None:
        """Register ``image`` under ``ref`` on every given shard slot (the
        load generator pre-distributes its image pool this way)."""
        meta, payload = encode_array(np.asarray(image, dtype=np.float32))

        async def _put():
            for slot in slots:
                addr = self.gateway.router.table.addr(slot)
                pool = self.gateway._pool_for(addr)
                pair = await pool.acquire()
                broken = True
                try:
                    await send_frame_async(
                        pair[1], {"op": "put_image", "ref": ref,
                                  "array": meta}, payload)
                    reply, _ = await recv_frame_async(pair[0])
                    broken = False
                    if not reply.get("ok"):
                        raise RuntimeError(f"put_image failed on {slot}: "
                                           f"{reply}")
                finally:
                    pool.release(pair, broken=broken)

        asyncio.run_coroutine_threadsafe(_put(), self._loop).result(timeout)

    def metrics_text(self) -> str:
        return self.gateway.metrics_text()

    def close(self) -> None:
        # Pool writers belong to the gateway loop; close them there.
        self._loop.call_soon_threadsafe(self.gateway.close)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=5)
        self._loop.close()

    def __enter__(self) -> "SyncGateway":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
