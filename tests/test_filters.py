"""Unit tests for the five application filters and their references."""

import numpy as np
import pytest

from repro.compiler import trace_kernel
from repro.dsl import Boundary
from repro.filters import PIPELINES, REFERENCES, bilateral, gaussian, laplace, night, sobel
from repro.filters.reference import correlate, pad_image


class TestMasks:
    def test_gaussian_mask_normalized(self):
        assert gaussian.GAUSSIAN_MASK.sum() == pytest.approx(1.0)
        assert gaussian.GAUSSIAN_MASK.shape == (3, 3)

    def test_laplace_mask_zero_sum(self):
        assert laplace.LAPLACE_MASK.sum() == pytest.approx(0.0)
        assert laplace.LAPLACE_MASK.shape == (5, 5)

    def test_sobel_masks_antisymmetric(self):
        assert np.array_equal(sobel.SOBEL_Y_MASK, sobel.SOBEL_X_MASK.T)
        assert sobel.SOBEL_X_MASK.sum() == 0

    def test_bilateral_spatial_mask(self):
        m = bilateral.spatial_mask()
        assert m.shape == (13, 13)  # the paper's window
        assert m[6, 6] == pytest.approx(1.0)  # center weight is exp(0)
        assert np.all(m > 0)
        # radially symmetric
        assert m[0, 6] == pytest.approx(m[12, 6])
        assert m[6, 0] == pytest.approx(m[6, 12])
        # monotone decreasing from the center along an axis
        row = m[6]
        assert all(row[i] <= row[i + 1] for i in range(6))

    def test_atrous_masks_grow_as_paper_says(self):
        """Paper: Atrous sizes 3x3, 5x5, 9x9, 17x17."""
        sizes = [night.atrous_mask(d).shape for d in night.ATROUS_DILATIONS]
        assert sizes == [(3, 3), (5, 5), (9, 9), (17, 17)]
        for d in night.ATROUS_DILATIONS:
            m = night.atrous_mask(d)
            assert np.count_nonzero(m) == 9  # always 9 real taps
            assert m.sum() == pytest.approx(1.0)


class TestPipelinesStructure:
    def test_kernel_counts_match_paper(self):
        """Section VI: Gaussian/Laplace/Bilateral 1 kernel, Sobel 3, Night 5."""
        expected = {"gaussian": 1, "laplace": 1, "bilateral": 1,
                    "sobel": 3, "night": 5}
        for name, n in expected.items():
            pipe = PIPELINES[name](64, 64, Boundary.CLAMP)
            assert len(pipe) == n, name

    def test_window_sizes_match_paper(self):
        """Gaussian 3x3, Laplace 5x5, Bilateral 13x13."""
        for name, window in [("gaussian", (3, 3)), ("laplace", (5, 5)),
                             ("bilateral", (13, 13))]:
            pipe = PIPELINES[name](64, 64, Boundary.CLAMP)
            desc = trace_kernel(pipe.kernels[0])
            assert desc.window_size == window, name

    def test_sobel_last_stage_point_op(self):
        pipe = sobel.build_pipeline(64, 64, Boundary.CLAMP)
        assert trace_kernel(pipe.kernels[2]).is_point_operator

    def test_night_last_stage_point_op(self):
        pipe = night.build_pipeline(64, 64, Boundary.CLAMP)
        descs = [trace_kernel(k) for k in pipe]
        assert [d.is_point_operator for d in descs] == [False] * 4 + [True]
        assert [d.extent for d in descs[:4]] == [(1, 1), (2, 2), (4, 4), (8, 8)]

    def test_shared_input_image(self):
        from repro.dsl import Image

        inp = Image(64, 64, "inp")
        pipe = sobel.build_pipeline(64, 64, Boundary.CLAMP, input_image=inp)
        assert pipe.inputs == [inp]


class TestReferences:
    def test_gaussian_preserves_constant_field(self):
        src = np.full((32, 32), 0.7, dtype=np.float32)
        for b in (Boundary.CLAMP, Boundary.MIRROR, Boundary.REPEAT):
            out = REFERENCES["gaussian"](src, b)
            assert np.allclose(out, 0.7, atol=1e-6), b

    def test_laplace_zero_on_flat(self):
        src = np.full((32, 32), 0.5, dtype=np.float32)
        out = REFERENCES["laplace"](src, Boundary.CLAMP)
        assert np.abs(out).max() < 1e-5

    def test_bilateral_smooths_noise_keeps_edges(self, rng):
        step = np.zeros((32, 32), dtype=np.float32)
        step[:, 16:] = 1.0
        noisy = np.clip(step + rng.normal(0, 0.02, step.shape), 0, 1).astype(np.float32)
        out = REFERENCES["bilateral"](noisy, Boundary.CLAMP)
        # noise reduced on the flats
        assert out[:, :8].std() < noisy[:, :8].std()
        # edge magnitude preserved
        assert (out[:, 20:].mean() - out[:, :12].mean()) > 0.9

    def test_sobel_detects_vertical_edge(self):
        src = np.zeros((32, 32), dtype=np.float32)
        src[:, 16:] = 1.0
        res = REFERENCES["sobel"](src, Boundary.CLAMP)
        col = np.argmax(res[8])
        assert col in (15, 16)

    def test_night_output_bounded(self, rng):
        src = rng.random((32, 32)).astype(np.float32)
        out = REFERENCES["night"](src, Boundary.MIRROR)
        assert out.min() >= 0.0
        assert out.max() <= 1.0 + 1e-6

    def test_tonemap_identity_at_zero_and_monotone(self):
        xs = np.linspace(0, 1, 64).astype(np.float32)
        ys = night.tonemap_reference(xs)
        assert ys[0] == 0.0
        assert np.all(np.diff(ys) > 0)

    def test_pad_image_depths(self, rng):
        src = rng.random((8, 12)).astype(np.float32)
        padded = pad_image(src, 3, 2, Boundary.REPEAT)
        assert padded.shape == (12, 18)
        # wrap semantics: left pad column equals right-side data
        assert np.array_equal(padded[2:-2, 0], src[:, -3])

    def test_correlate_zero_coeff_skipped_matches_dense(self, rng):
        """Zero coefficients contribute nothing either way, but skipping must
        not change the float32 accumulation of nonzero taps' row-major order."""
        src = rng.random((16, 16)).astype(np.float32)
        sparse = np.zeros((3, 3), np.float32)
        sparse[0, 0] = 0.5
        sparse[2, 2] = 0.25
        out = correlate(src, sparse, Boundary.CLAMP)
        manual = (0.5 * pad_image(src, 1, 1, Boundary.CLAMP)[0:16, 0:16]
                  + np.float32(0.25) * pad_image(src, 1, 1, Boundary.CLAMP)[2:18, 2:18])
        assert np.allclose(out, manual, atol=1e-7)

    def test_constant_pattern_uses_constant(self):
        src = np.ones((8, 8), dtype=np.float32)
        out = REFERENCES["gaussian"](src, Boundary.CONSTANT, 0.0)
        # corners lose weight to the zero border
        assert out[0, 0] < out[4, 4]
        assert out[4, 4] == pytest.approx(1.0)
