"""Region profiles and the measured-vs-predicted R_reduced report.

The acceptance gate for the tracing PR: the *measured* instruction-reduction
factor ``R_reduced = N_naive / N_ISP`` (paper Eq. 9), computed live from
representative-block profiles, must agree with the analytic model's
:func:`repro.model.prediction.predict_for` within 10% — including at the
paper's 2048x2048 evaluation size, where representative profiling is the
only tractable way to measure (full simulation would run millions of
blocks).
"""

from __future__ import annotations

import pytest

from repro.serve.plan import trace_app
from repro.trace import (
    RegionProfile,
    format_comparison_report,
    format_region_profile,
    measured_vs_predicted,
    profile_regions,
)


def gaussian_desc(size: int, pattern: str = "clamp"):
    return trace_app("gaussian", pattern, size, size)[0]


class TestRegionProfile:
    def test_profile_structure_and_accounting(self):
        prof = profile_regions(gaussian_desc(256), variant="isp")
        assert prof.kernel == "gaussian"
        assert prof.variant == "isp"
        # region tags partition the dynamic instruction count exactly
        assert prof.warp_instructions == sum(prof.by_region.values())
        assert prof.warp_instructions == sum(prof.by_role.values())
        assert "Body" in prof.by_region
        # the Body region dominates every border region on a 256x256 grid
        # (the paper's premise); shared prologue code is tagged separately
        assert prof.by_region["Body"] == max(
            n for r, n in prof.by_region.items() if r != "(shared)"
        )
        assert "kernel" in prof.by_role

    def test_naive_profile_has_no_region_split(self):
        prof = profile_regions(gaussian_desc(256), variant="naive")
        # a naive kernel is one unpartitioned iteration space: a single
        # 'naive' tag plus shared prologue code, no per-border regions
        assert set(prof.by_region) <= {"(shared)", "naive"}
        assert "Body" not in prof.by_region
        assert prof.warp_instructions == sum(prof.by_region.values())

    def test_isp_spends_fewer_instructions_than_naive(self):
        desc = gaussian_desc(256)
        naive = profile_regions(desc, variant="naive")
        isp = profile_regions(desc, variant="isp")
        assert isp.warp_instructions < naive.warp_instructions

    def test_to_dict_roundtrip(self):
        prof = profile_regions(gaussian_desc(128), variant="isp")
        d = prof.to_dict()
        assert d["kernel"] == prof.kernel
        assert d["by_region"] == prof.by_region
        assert RegionProfile(**d).warp_instructions == prof.warp_instructions

    def test_format_renders_every_region(self):
        prof = profile_regions(gaussian_desc(128), variant="isp")
        text = format_region_profile(prof)
        for region in prof.by_region:
            assert region in text
        assert "by role:" in text


class TestMeasuredVsPredicted:
    @pytest.mark.parametrize("size", [256, 2048])
    def test_gaussian_clamp_within_ten_percent(self, size):
        """The PR's acceptance criterion, at a quick size and at the paper's
        2048x2048 (tractable because representative profiles are
        size-independent and cached)."""
        comps = measured_vs_predicted(trace_app("gaussian", "clamp",
                                                size, size))
        assert len(comps) == 1
        c = comps[0]
        assert c.kernel == "gaussian"
        assert c.measured_r > 1.0  # ISP must actually reduce instructions
        assert c.within(0.10), (
            f"measured R {c.measured_r:.4f} vs model {c.predicted_r:.4f} "
            f"({100 * c.rel_error:.1f}% > 10%)"
        )

    def test_multi_kernel_pipeline_compares_each_bordered_stage(self):
        comps = measured_vs_predicted(trace_app("sobel", "clamp", 256, 256))
        assert comps, "sobel has bordered stages"
        for c in comps:
            # ISP is not always a win (sobel's 1-pixel halo barely checks
            # anything); what must hold is that measurement and model AGREE.
            assert c.measured_naive > 0 and c.measured_isp > 0
            assert 0.0 <= c.body_fraction <= 1.0
            assert c.within(0.10), (c.kernel, c.measured_r, c.predicted_r)

    def test_pointwise_kernels_are_skipped(self):
        descs = trace_app("night", "clamp", 256, 256)
        comps = measured_vs_predicted(descs)
        bordered = [d.name for d in descs if d.needs_border_handling]
        assert [c.kernel for c in comps] == bordered
        assert len(comps) < len(descs)

    def test_degenerate_geometry_is_skipped_not_fatal(self):
        # 8x8 with a (32, 4) block: borders overlap — nothing to compare.
        assert measured_vs_predicted(trace_app("gaussian", "clamp", 8, 8)) == []

    def test_report_renders_and_flags(self):
        comps = measured_vs_predicted(trace_app("gaussian", "clamp",
                                                256, 256))
        text = format_comparison_report(comps, tolerance=0.10)
        assert "R measured" in text and "gaussian" in text
        assert "ok" in text
        # an impossible tolerance flags the same rows as DRIFT
        assert "DRIFT" in format_comparison_report(comps, tolerance=0.0)
