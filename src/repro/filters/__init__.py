"""The five evaluated image filters (paper Section VI) and their references.

Each module exposes ``build_pipeline(width, height, boundary, constant=0.0,
input_image=None) -> Pipeline``; :mod:`repro.filters.reference` holds the
vectorized NumPy golden implementations.
"""

from . import bilateral, gaussian, laplace, night, sobel
from .reference import (
    bilateral_reference,
    correlate,
    gaussian_reference,
    laplace_reference,
    night_reference,
    pad_image,
    sobel_reference,
)

#: Registry used by the benchmark harness: app name -> pipeline builder.
PIPELINES = {
    "gaussian": gaussian.build_pipeline,
    "laplace": laplace.build_pipeline,
    "bilateral": bilateral.build_pipeline,
    "sobel": sobel.build_pipeline,
    "night": night.build_pipeline,
}

#: App name -> reference function returning the final output image.
REFERENCES = {
    "gaussian": gaussian_reference,
    "laplace": laplace_reference,
    "bilateral": bilateral_reference,
    "sobel": lambda src, boundary, constant=0.0: sobel_reference(
        src, boundary, constant
    )["mag"],
    "night": night_reference,
}

__all__ = [
    "PIPELINES",
    "REFERENCES",
    "bilateral",
    "bilateral_reference",
    "correlate",
    "gaussian",
    "gaussian_reference",
    "laplace",
    "laplace_reference",
    "night",
    "night_reference",
    "pad_image",
    "sobel",
    "sobel_reference",
]
