"""Ablation — shared-memory tile staging vs ISP, and their composition.

Hipacc's production stencil path stages the input tile in shared memory, so
border handling runs once per staged halo pixel instead of once per tap.
This ablation compares four software strategies on the simulated GTX680:

* naive            — checks on every tap of every pixel,
* isp              — paper Listing 3 (checks only in border blocks),
* shared           — staging with full checks in every block's load loop,
* shared+isp       — staging whose load loop is ISP-specialized per region
                     (the composition of the two ideas).

Expected shape: staging amortizes checks over taps, so its advantage over
ISP grows with the tap count (bilateral 169 taps >> gaussian 9); composing
ISP on top of staging removes the remaining staging checks in body blocks —
a small additional win that shrinks as images grow (fewer border blocks).
"""

from __future__ import annotations

from repro.compiler import Variant
from repro.dsl import Boundary
from repro.filters import PIPELINES
from repro.gpu import GTX680
from repro.reporting import format_table
from repro.runtime import measure_pipeline

CASES = [
    ("gaussian", Boundary.REPEAT, 1024),
    ("laplace", Boundary.REPEAT, 1024),
    ("bilateral", Boundary.CLAMP, 1024),
    ("bilateral", Boundary.REPEAT, 1024),
]
POLICIES = [Variant.NAIVE, Variant.ISP, Variant.SHARED, Variant.SHARED_ISP]


def build():
    rows = []
    data = {}
    for app, pattern, size in CASES:
        times = {}
        for variant in POLICIES:
            pipe = PIPELINES[app](size, size, pattern)
            times[variant] = measure_pipeline(
                pipe, variant=variant, block=(32, 4), device=GTX680
            ).total_us
        base = times[Variant.NAIVE]
        rows.append(
            [app, pattern.value]
            + [f"{base / times[v]:.3f}" for v in POLICIES]
        )
        data[(app, pattern)] = times
    table = format_table(
        ["app", "pattern"] + [v.value for v in POLICIES],
        rows,
        title="Ablation: staging vs ISP — speedup over naive "
              "(GTX680, 1024x1024, block 32x4)",
    )
    return data, table


def test_ablation_shared(benchmark, report):
    data, table = benchmark.pedantic(build, rounds=1, iterations=1)
    report("ablation_shared", table)

    for (app, pattern), times in data.items():
        # Staging always beats naive for repeat (checks amortized over taps).
        if pattern is Boundary.REPEAT:
            assert times[Variant.SHARED] < times[Variant.NAIVE], app
        # Composing ISP onto staging never hurts beyond noise: body blocks'
        # staging loses its checks.
        assert times[Variant.SHARED_ISP] <= times[Variant.SHARED] * 1.02, app
