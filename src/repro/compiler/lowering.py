"""Lowering: DSL expression AST -> virtual-ISA instructions.

One :class:`RegionLowering` instance lowers the kernel body for a single ISP
region (or for the whole image, in the naive variant), emitting only the
border checks that region requires. Expression nodes are memoized by object
identity, so user-shared subexpressions lower once (CSE); pixel accesses are
memoized by (accessor, dx, dy), so the same tap read through the same
accessor never loads twice.

Address math follows the standard row-major scheme the paper's Listing 1
implies: ``addr = base + 4 * (yy * width + xx)``, with the border mapping
applied to ``xx``/``yy`` first.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional

from ..dsl.boundary import Boundary
from ..dsl.expr import BinOp, Const, Expr, PixelAccess, UnOp
from ..ir.builder import IRBuilder
from ..ir.instructions import CmpOp, Register
from ..ir.types import DataType
from .border import combine_valid, emit_axis_checks
from .frontend import KernelDescription

#: log2(e) — NVCC lowers expf(x) to ex2(x * LOG2E).
_LOG2E = 1.4426950408889634
#: ln(2) — logf(x) = lg2(x) * LN2.
_LN2 = 0.6931471805599453


class LoweringError(Exception):
    pass


@dataclasses.dataclass
class KernelParams:
    """Registers holding the kernel parameters inside the function body."""

    bases: dict[str, Register]  # image name -> base pointer (u32, bytes)
    widths: dict[str, Register]  # image name -> width (s32)
    heights: dict[str, Register]  # image name -> height (s32)
    out_base: Register
    out_width: Register
    out_height: Register


class RegionLowering:
    """Lowers one kernel body under a fixed set of border-check sides."""

    def __init__(
        self,
        b: IRBuilder,
        desc: KernelDescription,
        params: KernelParams,
        x: Register,
        y: Register,
        checks: frozenset[str],
        *,
        sign_filter: bool = False,
        use_texture: bool = False,
    ):
        self.b = b
        self.desc = desc
        self.params = params
        self.x = x
        self.y = y
        self.checks = checks
        #: paper-faithful default (False): every access in a checked region
        #: carries all of the region's checks, exactly as Listing 1 applies
        #: the full border handling to every read in the window. With True,
        #: checks are elided for taps whose static offset sign proves them
        #: unnecessary (e.g. a dx >= 0 tap can never cross the left border) —
        #: an additional optimization measured by the ablation benchmark.
        self.sign_filter = sign_filter
        #: route pixel reads through the texture unit (hardware border
        #: handling; only clamp/constant — enforced by generate_texture)
        self.use_texture = use_texture
        self._expr_memo: dict[int, Register] = {}
        self._access_memo: dict[tuple[int, int, int], Register] = {}
        # per-region cache of size-derived check invariants (NVCC-style CSE)
        self._check_consts: dict = {}

    # ------------------------------------------------------------ expressions

    def lower(self, root: Expr) -> Register:
        """Lower the whole tree in *creation order* (user program order).

        Creation order is a topological order by construction (operands are
        created before the node combining them), and it matches the
        accumulation-loop order of the user's ``kernel()`` body — shared
        subexpressions die at their last textual use instead of living
        across entire reduction chains, keeping register pressure realistic
        (see :class:`repro.dsl.expr.Expr`).
        """
        from ..dsl.expr import walk

        nodes = sorted(walk(root), key=lambda n: n.seq)
        for node in nodes:
            if id(node) not in self._expr_memo:
                self._expr_memo[id(node)] = self._lower_node(node)
        return self._expr_memo[id(root)]

    def _lower_memoized(self, expr: Expr) -> Register:
        memo = self._expr_memo.get(id(expr))
        if memo is not None:
            return memo
        reg = self._lower_node(expr)
        self._expr_memo[id(expr)] = reg
        return reg

    def _lower_node(self, expr: Expr) -> Register:
        b = self.b
        if isinstance(expr, Const):
            with b.role("kernel"):
                return b.mov(b.imm(expr.value, expr.dtype), expr.dtype)
        if isinstance(expr, PixelAccess):
            return self._lower_access(expr)
        if isinstance(expr, BinOp):
            lhs = self._lower_memoized(expr.lhs)
            rhs = self._lower_memoized(expr.rhs)
            with b.role("kernel"):
                op = expr.op
                if op == "add":
                    return b.add(lhs, rhs)
                if op == "sub":
                    return b.sub(lhs, rhs)
                if op == "mul":
                    return b.mul(lhs, rhs)
                if op == "div":
                    return b.div(lhs, rhs)
                if op == "min":
                    return b.min(lhs, rhs)
                if op == "max":
                    return b.max(lhs, rhs)
            raise LoweringError(f"unknown binary op {expr.op!r}")
        if isinstance(expr, UnOp):
            src = self._lower_memoized(expr.operand)
            with b.role("kernel"):
                op = expr.op
                if op == "neg":
                    return b.neg(src)
                if op == "abs":
                    return b.abs(src)
                if op == "sqrt":
                    return b.sqrt(src)
                if op == "rsqrt":
                    return b.rsqrt(src)
                if op == "rcp":
                    return b.rcp(src)
                if op == "exp":
                    scaled = b.mul(src, b.imm(_LOG2E, DataType.F32))
                    return b.ex2(scaled)
                if op == "exp2":
                    return b.ex2(src)
                if op == "log":
                    lg = b.lg2(src)
                    return b.mul(lg, b.imm(_LN2, DataType.F32))
                if op == "log2":
                    return b.lg2(src)
                if op == "sin":
                    return b.sin(src)
                if op == "cos":
                    return b.cos(src)
            raise LoweringError(f"unknown unary op {expr.op!r}")
        raise LoweringError(f"cannot lower expression node {expr!r}")

    # ----------------------------------------------------------- pixel access

    def _lower_access(self, access: PixelAccess) -> Register:
        key = (id(access.accessor), access.dx, access.dy)
        memo = self._access_memo.get(key)
        if memo is not None:
            return memo

        b = self.b
        acc = access.accessor
        img = acc.image
        boundary = acc.boundary

        with b.role("addr"):
            xx = b.add(self.x, access.dx) if access.dx else self.x
            yy = b.add(self.y, access.dy) if access.dy else self.y

        if self.use_texture:
            from ..dsl.boundary import Boundary as _B

            mode = "border" if boundary is _B.CONSTANT else "clamp"
            with b.role("kernel"):
                value = b.tex(img.name, xx, yy, mode=mode,
                              border_value=acc.constant)
            self._access_memo[key] = value
            return value

        # Which sides does this access check? All of the region's sides by
        # default (paper Listing 1); with sign filtering, only the sides the
        # tap's static offset can actually violate (output coordinates are
        # in-image, so x+dx < 0 requires dx < 0, etc.). The border mappings
        # are identity for in-bounds coordinates, so both modes agree.
        if self.sign_filter:
            check_left = "left" in self.checks and access.dx < 0
            check_right = "right" in self.checks and access.dx > 0
            check_top = "top" in self.checks and access.dy < 0
            check_bottom = "bottom" in self.checks and access.dy > 0
        else:
            check_left = "left" in self.checks
            check_right = "right" in self.checks
            check_top = "top" in self.checks
            check_bottom = "bottom" in self.checks

        bx = emit_axis_checks(
            b, xx, self.params.widths[img.name], boundary,
            check_low=check_left, check_high=check_right,
            consts=self._check_consts,
        )
        by = emit_axis_checks(
            b, yy, self.params.heights[img.name], boundary,
            check_low=check_top, check_high=check_bottom,
            consts=self._check_consts,
        )
        valid = combine_valid(b, bx.valid, by.valid)

        with b.role("addr"):
            idx = b.mad(by.coord, self.params.widths[img.name], bx.coord)
            byte_off = b.shl(idx, 2)
            addr = b.add(
                self.params.bases[img.name], b.cvt(byte_off, DataType.U32), DataType.U32
            )
        with b.role("kernel"):
            value = b.ld(addr, DataType.F32)
            if valid is not None:
                value = b.selp(valid, value, b.imm(acc.constant, DataType.F32))

        self._access_memo[key] = value
        return value

    # ----------------------------------------------------------------- output

    def store_output(self, value: Register) -> None:
        b = self.b
        with b.role("addr"):
            idx = b.mad(self.y, self.params.out_width, self.x)
            byte_off = b.shl(idx, 2)
            addr = b.add(
                self.params.out_base, b.cvt(byte_off, DataType.U32), DataType.U32
            )
        with b.role("kernel"):
            b.st(addr, value, DataType.F32)


def emit_coordinates(b: IRBuilder) -> tuple[Register, Register]:
    """x = ctaid.x * ntid.x + tid.x; y = ctaid.y * ntid.y + tid.y."""
    from ..ir.instructions import SpecialReg

    with b.role("addr"):
        tid_x = b.special(SpecialReg.TID_X)
        tid_y = b.special(SpecialReg.TID_Y)
        ctaid_x = b.special(SpecialReg.CTAID_X)
        ctaid_y = b.special(SpecialReg.CTAID_Y)
        ntid_x = b.special(SpecialReg.NTID_X)
        ntid_y = b.special(SpecialReg.NTID_Y)
        x = b.mad(ctaid_x, ntid_x, tid_x)
        y = b.mad(ctaid_y, ntid_y, tid_y)
    return x, y


def emit_bounds_guard(
    b: IRBuilder,
    x: Register,
    y: Register,
    out_w: Register,
    out_h: Register,
    exit_label: str,
    continue_label: str,
) -> None:
    """Early-exit threads whose output pixel is outside the image (only
    emitted when the grid over-covers the image)."""
    with b.role("addr"):
        px = b.setp(CmpOp.GE, x, out_w)
        py = b.setp(CmpOp.GE, y, out_h)
        p = b.or_(px, py, DataType.PRED)
        b.cbr(p, exit_label, continue_label)


def needs_bounds_guard(width: int, height: int, block: tuple[int, int]) -> bool:
    tx, ty = block
    return (width % tx != 0) or (height % ty != 0)


def grid_for(width: int, height: int, block: tuple[int, int]) -> tuple[int, int]:
    return math.ceil(width / block[0]), math.ceil(height / block[1])
