"""Multi-kernel pipelines.

The paper's Sobel filter is three kernels (x-derivative, y-derivative,
magnitude) and the Night filter is five (four à-trous stages plus tone
mapping). A :class:`Pipeline` is an ordered list of kernels whose images
chain producer -> consumer; the runtime executes the stages in order and the
benchmark harness sums per-kernel times, as NVProf does for the paper.
"""

from __future__ import annotations

from typing import Iterator

from .image import Image
from .kernel import Kernel


class Pipeline:
    """An ordered multi-kernel image pipeline."""

    def __init__(self, name: str, kernels: list[Kernel]):
        if not kernels:
            raise ValueError("pipeline needs at least one kernel")
        self.name = name
        self.kernels = list(kernels)
        self._validate_chaining()

    def _validate_chaining(self) -> None:
        """Every accessor image must be produced earlier or be an external
        input; every output must be unique."""
        produced: set[str] = set()
        for k in self.kernels:
            out = k.iter_space.output
            if out.name in produced:
                raise ValueError(
                    f"pipeline {self.name!r}: image {out.name!r} written twice"
                )
            for acc in k.accessors:
                if acc.image.name == out.name:
                    raise ValueError(
                        f"pipeline {self.name!r}: kernel {k.name!r} reads its own output"
                    )
            produced.add(out.name)

    @property
    def inputs(self) -> list[Image]:
        """External input images (read but never produced by the pipeline)."""
        produced = {k.iter_space.output.name for k in self.kernels}
        seen: dict[str, Image] = {}
        for k in self.kernels:
            for acc in k.accessors:
                img = acc.image
                if img.name not in produced and img.name not in seen:
                    seen[img.name] = img
        return list(seen.values())

    @property
    def output(self) -> Image:
        return self.kernels[-1].iter_space.output

    def __iter__(self) -> Iterator[Kernel]:
        return iter(self.kernels)

    def __len__(self) -> int:
        return len(self.kernels)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Pipeline({self.name!r}, {len(self.kernels)} kernels)"
