"""Cross-device regression matrix: device x variant x pattern, pinned.

The device zoo (docs/devices.md) only earns its keep if the *decisions* it
drives are frozen per device. This module pins, for every zoo entry:

* **who wins where** — the fastest of {naive, isp, isp_warp} for gaussian
  512x512 per border pattern, from the timing model. The grid shape is the
  paper's Table III story generalized across architectures: Clamp sits near
  the switching point (naive-side on most parts, partition-side on MI100's
  cheap-memory CDNA tables), the expensive patterns are partition-side
  everywhere;
* **architectural event counters** — whole-grid coalesced/scattered
  transaction and replay totals from representative-block profiling. The
  wave64 parts pin to *zero* coalesced accesses: a 64-lane f32 access spans
  two 128-byte segments by construction, so every access is ≥ 2
  transactions — the counter semantics, not a bug (docs/devices.md);
* **codegen** — the warp-grained dispatch provably follows
  ``device.warp_size``: the printed-IR diff between a warp32 and a wave64
  compile of the same kernel is exactly the strip-shift amount
  (``tid.x >> 5`` vs ``>> 6``) and the derived W_R warp bound, pinned as a
  golden diff under ``tests/goldens/``;
* **caching and priors** — block profiles are shared across devices with
  the same warp width and never across widths; the autotuner's model prior
  is computed per device and flips sides where the per-device gain does.

Pins regenerate like the IR goldens: run the printed command in the
assertion message, review the diff, commit in the same change.
"""

from __future__ import annotations

import difflib
import pathlib

import numpy as np
import pytest

from repro.compiler import Variant, compile_kernel, trace_kernel
from repro.dsl import Boundary
from repro.filters import PIPELINES
from repro.gpu import DEVICES, GTX680, VEGA64
from repro.gpu.profiler import EVENT_NAMES
from repro.ir.printer import print_function
from repro.runtime import measure_pipeline, run_pipeline_simt
from repro.runtime.executor import profile_kernel
from repro.trace.profile import profile_regions

SIZE = 512
#: two warps per block row on wave32 *and* wave64 parts — warp-grained
#: dispatch is effective for the whole zoo at this shape
BLOCK = (128, 2)
PATTERNS = ("clamp", "mirror", "repeat", "constant")
GOLDEN_DIR = pathlib.Path(__file__).parent / "goldens"


def _gaussian_desc(pattern: str, size: int = SIZE):
    pipe = PIPELINES["gaussian"](size, size, Boundary(pattern))
    return trace_kernel(pipe.kernels[0])


# ---------------------------------------------------------------------------
# Who wins where: fastest of {naive, isp, isp_warp}, gaussian 512, per device.
# ---------------------------------------------------------------------------

WINNERS = {
    ("GTX680", "clamp"): "naive",
    ("GTX680", "mirror"): "isp_warp",
    ("GTX680", "repeat"): "isp_warp",
    ("GTX680", "constant"): "isp_warp",
    ("GTX1080", "clamp"): "naive",
    ("GTX1080", "mirror"): "isp_warp",
    ("GTX1080", "repeat"): "isp_warp",
    ("GTX1080", "constant"): "isp_warp",
    ("RTX2080", "clamp"): "naive",
    ("RTX2080", "mirror"): "isp_warp",
    ("RTX2080", "repeat"): "isp_warp",
    ("RTX2080", "constant"): "isp_warp",
    ("RTX3080", "clamp"): "naive",
    ("RTX3080", "mirror"): "isp_warp",
    ("RTX3080", "repeat"): "isp_warp",
    ("RTX3080", "constant"): "isp_warp",
    # GCN5: high per-transaction cost and flat occupancy squeeze the ISP
    # margin — the cheap patterns stay naive-side.
    ("VEGA64", "clamp"): "naive",
    ("VEGA64", "mirror"): "isp_warp",
    ("VEGA64", "repeat"): "isp_warp",
    ("VEGA64", "constant"): "naive",
    # CDNA's cheap memory path makes even Clamp partition-side.
    ("MI100", "clamp"): "isp",
    ("MI100", "mirror"): "isp_warp",
    ("MI100", "repeat"): "isp_warp",
    ("MI100", "constant"): "isp_warp",
}


@pytest.mark.parametrize("pattern", PATTERNS)
@pytest.mark.parametrize("device", sorted(DEVICES))
def test_who_wins_where(device, pattern):
    pipe = PIPELINES["gaussian"](SIZE, SIZE, Boundary(pattern))
    times = {
        v.value: measure_pipeline(pipe, variant=v, block=BLOCK,
                                  device=DEVICES[device]).total_us
        for v in (Variant.NAIVE, Variant.ISP, Variant.ISP_WARP)
    }
    winner = min(times, key=times.get)
    assert winner == WINNERS[(device, pattern)], (
        f"who-wins-where flipped for {device}/{pattern}: {times} — if the "
        f"timing-model change is intentional, update WINNERS and the "
        f"benchmark golden (REPRO_UPDATE_DEVICE_MATRIX=1 pytest -q "
        f"--benchmark-only benchmarks/bench_device_matrix.py) together"
    )


# ---------------------------------------------------------------------------
# Counter pins: whole-grid event totals, gaussian 512 / MIRROR.
# ---------------------------------------------------------------------------

#: (device, variant) -> (warp_instructions, coalesced, scattered, replays).
#: Identical events across variants per device is itself the pin: ISP
#: removes border *checks*, never loads, so the transaction mix is variant-
#: invariant while instruction totals drop.
REGION_EVENT_PINS = {
    ("GTX680", "naive"): (1859584, 35840, 46080, 46080),
    ("GTX680", "isp"): (1107008, 35840, 46080, 46080),
    ("GTX680", "isp_warp"): (1045568, 35840, 46080, 46080),
    ("RTX3080", "naive"): (1859584, 35840, 46080, 46080),
    ("RTX3080", "isp"): (1107008, 35840, 46080, 46080),
    ("RTX3080", "isp_warp"): (1045568, 35840, 46080, 46080),
    # wave64: half the warp instructions (64 lanes per wave), zero coalesced
    # accesses (every 64-lane f32 access spans >= 2 segments), more replays.
    ("VEGA64", "naive"): (929792, 0, 40960, 62464),
    ("VEGA64", "isp"): (553504, 0, 40960, 62464),
    ("VEGA64", "isp_warp"): (537120, 0, 40960, 62464),
    ("MI100", "naive"): (929792, 0, 40960, 62464),
    ("MI100", "isp"): (553504, 0, 40960, 62464),
    ("MI100", "isp_warp"): (537120, 0, 40960, 62464),
}


@pytest.mark.parametrize(("device", "variant"), sorted(REGION_EVENT_PINS))
def test_event_counter_pins(device, variant):
    rp = profile_regions(_gaussian_desc("mirror"), variant=variant,
                         block=BLOCK, device=DEVICES[device])
    instrs, coalesced, scattered, replays = REGION_EVENT_PINS[
        (device, variant)]
    assert rp.warp_instructions == instrs
    assert rp.events.get("coalesced_access", 0) == coalesced
    assert rp.events.get("scattered_access", 0) == scattered
    assert rp.events.get("mem_replay", 0) == replays
    assert rp.events.get("branch_divergence", 0) == 0
    assert rp.events.get("watchdog_stall", 0) == 0


def test_wave64_halves_warp_instructions():
    """The wave64 naive grid executes exactly half the warp instructions of
    the warp32 grid: same code, 64 lanes per wave -> half the waves."""
    w32 = REGION_EVENT_PINS[("GTX680", "naive")][0]
    w64 = REGION_EVENT_PINS[("VEGA64", "naive")][0]
    assert w64 * 2 == w32


# ---------------------------------------------------------------------------
# Full functional simulation across warp widths: bits and events.
# ---------------------------------------------------------------------------

#: full-SIMT event totals for gaussian 64x64 / MIRROR / block (64,2)
SIMT_EVENT_PINS = {
    # NAIVE stages no shared memory, so the smem/LDS counters pin to zero.
    "GTX680": {"branch_divergence": 0, "mem_replay": 384,
               "coalesced_access": 896, "scattered_access": 384,
               "watchdog_stall": 0, "smem_load": 0, "smem_store": 0,
               "lds_bank_conflict": 0},
    "VEGA64": {"branch_divergence": 0, "mem_replay": 640,
               "coalesced_access": 0, "scattered_access": 640,
               "watchdog_stall": 0, "smem_load": 0, "smem_store": 0,
               "lds_bank_conflict": 0},
}
SIMT_INSTR_PINS = {"GTX680": 29056, "VEGA64": 14528}


def test_simt_bit_exact_across_warp_widths(rng):
    src = rng.random((64, 64), dtype=np.float32)
    outs, profs = {}, {}
    for name in ("GTX680", "VEGA64"):
        pipe = PIPELINES["gaussian"](64, 64, Boundary.MIRROR)
        res = run_pipeline_simt(pipe, variant=Variant.NAIVE, block=(64, 2),
                                device=DEVICES[name], inputs={"inp": src})
        outs[name] = res.output
        profs[name] = res.profilers[0]
    # Warp width is an execution-shape choice, never a semantics choice.
    assert np.array_equal(outs["GTX680"], outs["VEGA64"])
    for name in ("GTX680", "VEGA64"):
        assert profs[name].warp_instructions == SIMT_INSTR_PINS[name], name
        assert profs[name].event_totals() == SIMT_EVENT_PINS[name], name
    # event_totals is zero-filled over the full schema, in declared order.
    assert tuple(profs["GTX680"].event_totals()) == EVENT_NAMES


# ---------------------------------------------------------------------------
# Codegen: the warp strip width provably follows device.warp_size.
# ---------------------------------------------------------------------------

WARP_IR_GOLDEN = GOLDEN_DIR / "isp_warp-warp32-vs-wave64.diff"


def _warp_ir_diff() -> str:
    texts = {}
    for dev in (GTX680, VEGA64):
        ck = compile_kernel(_gaussian_desc("mirror"), variant=Variant.ISP_WARP,
                            block=BLOCK, device=dev)
        assert ck.effective_variant is Variant.ISP_WARP
        assert ck.func.metadata["warp_size"] == dev.warp_size
        assert ck.func.metadata["warp_grained_effective"] is True
        texts[dev.name] = print_function(ck.func)
    diff = difflib.unified_diff(
        texts["GTX680"].splitlines(keepends=True),
        texts["VEGA64"].splitlines(keepends=True),
        fromfile="gaussian_isp_warp@warp32",
        tofile="gaussian_isp_warp@wave64",
        n=0,
    )
    return "".join(diff)


def test_warp_strip_width_follows_device(update_goldens):
    diff = _warp_ir_diff()
    if update_goldens:
        WARP_IR_GOLDEN.write_text(diff)
        pytest.skip("golden diff rewritten; review and commit")
    # The two compiles differ in exactly the dispatch arithmetic: the strip
    # shift (tid.x >> log2(warp_size)) and the derived W_R warp bound.
    changed = [ln for ln in diff.splitlines()
               if ln[:1] in "+-" and ln[:3] not in ("+++", "---")]
    assert any("shr.s32" in ln and ln.rstrip().endswith(", 5;")
               for ln in changed if ln.startswith("-")), diff
    assert any("shr.s32" in ln and ln.rstrip().endswith(", 6;")
               for ln in changed if ln.startswith("+")), diff
    for ln in changed:
        assert "shr.s32" in ln or "setp." in ln, (
            f"unexpected non-dispatch difference between warp widths: "
            f"{ln!r}\n{diff}"
        )
    assert WARP_IR_GOLDEN.exists(), (
        "golden missing — regenerate with `pytest "
        "tests/test_device_matrix.py --update-goldens` and commit"
    )
    golden = WARP_IR_GOLDEN.read_text()
    if diff != golden:
        delta = "".join(difflib.unified_diff(
            golden.splitlines(keepends=True), diff.splitlines(keepends=True),
            fromfile="golden", tofile="recompiled"))
        raise AssertionError(
            f"warp32-vs-wave64 IR diff drifted from golden — if intentional "
            f"rerun with --update-goldens and commit:\n{delta}"
        )


WARP_EFFECTIVE_PINS = {
    # block (64,2): one warp per row on wave64 — the warp index carries no
    # information, so warp-grained dispatch degenerates to block-grained
    # (recorded in metadata), while warp32 parts keep the Listing 5 shape.
    "GTX680": True, "GTX1080": True, "RTX2080": True, "RTX3080": True,
    "VEGA64": False, "MI100": False,
}


@pytest.mark.parametrize("device", sorted(WARP_EFFECTIVE_PINS))
def test_warp_grained_effectiveness_per_device(device):
    ck = compile_kernel(_gaussian_desc("mirror"), variant=Variant.ISP_WARP,
                        block=(64, 2), device=DEVICES[device])
    assert ck.effective_variant is Variant.ISP_WARP
    meta = ck.func.metadata
    assert meta["warp_size"] == DEVICES[device].warp_size
    assert meta["warp_grained_effective"] is WARP_EFFECTIVE_PINS[device]


# ---------------------------------------------------------------------------
# Caching and priors are warp-width / device aware.
# ---------------------------------------------------------------------------


def test_profile_cache_shared_within_width_never_across():
    desc = _gaussian_desc("mirror")
    kp_680 = profile_kernel(desc, variant=Variant.ISP, block=BLOCK,
                            device=GTX680)
    kp_3080 = profile_kernel(desc, variant=Variant.ISP, block=BLOCK,
                             device=DEVICES["RTX3080"])
    kp_vega = profile_kernel(desc, variant=Variant.ISP, block=BLOCK,
                             device=VEGA64)
    # Same warp width -> the cached per-class profiles are literally shared.
    assert kp_680.profiles is kp_3080.profiles
    # Different width -> distinct profiles with different instruction counts
    # (a warp32 profile reused for wave64 would double-count waves).
    assert kp_vega.profiles is not kp_680.profiles
    total32 = sum(p.warp_instructions for p in kp_680.profiles.values())
    total64 = sum(p.warp_instructions for p in kp_vega.profiles.values())
    assert total64 < total32


def test_autotune_prior_flips_with_the_device():
    """The model prior is computed per device and lands on different sides
    of G = 1 for laplace/clamp: partition-side on Kepler, naive-side on
    GCN5's wave64 economics. TunerKeys carrying different devices never
    share state."""
    from repro.serve import pipeline_gain
    from repro.serve.autotune import AutoTuner, tuner_key
    from repro.serve.plan import trace_app

    descs = trace_app("laplace", "clamp", SIZE, SIZE)
    tuner = AutoTuner(candidates=("naive", "isp", "isp_warp"))
    choices = {}
    for dev in (GTX680, VEGA64):
        key = tuner_key(descs, "clamp", dev)
        gain = pipeline_gain(descs, block=(32, 4), device=dev)
        tuner.decide(key, lambda g=gain: g)
        choices[dev.name] = tuner.explain(key)["model_choice"]
    assert choices == {"GTX680": "isp", "VEGA64": "naive"}
    assert tuner.stats()["configs"] == 2
