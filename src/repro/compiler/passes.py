"""Post-codegen IR optimization passes.

The paper observes (Section IV-A.1) that NVCC removes much of the apparent
border-check redundancy of the naive source via common-subexpression
elimination — "many of them share common sub-expressions that can be
optimized by the NVCC compiler". Our lowering memoizes shared DSL nodes
(structural CSE at codegen time); the passes here clean up what codegen
cannot see:

* **constant folding** — arithmetic on immediates (mask coefficients,
  compile-time bounds) collapses to ``mov`` of a folded immediate, then
  copy-propagates away;
* **copy propagation** — ``mov r2, r1`` forwards ``r1`` to users of ``r2``
  (single-definition destinations only, so loop-carried registers of the
  Repeat pattern are untouched);
* **dead code elimination** — instructions whose results are never used are
  dropped (e.g. a region clone's unused parameter loads).

Each pass is idempotent and the pipeline iterates to a fixed point.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from ..ir.function import KernelFunction
from ..ir.instructions import Immediate, Instruction, Opcode, Register
from ..ir.types import DataType


def optimize(func: KernelFunction, *, max_rounds: int = 8) -> KernelFunction:
    """Run the pass pipeline to a fixed point (in place) and return ``func``."""
    for _ in range(max_rounds):
        changed = False
        changed |= fold_constants(func)
        changed |= propagate_copies(func)
        changed |= eliminate_dead_code(func)
        if not changed:
            break
    return func


# ---------------------------------------------------------------------------
# Constant folding
# ---------------------------------------------------------------------------

_FOLDABLE = {
    Opcode.ADD: lambda a, b: a + b,
    Opcode.SUB: lambda a, b: a - b,
    Opcode.MUL: lambda a, b: a * b,
    Opcode.MIN: min,
    Opcode.MAX: max,
    Opcode.SHL: lambda a, b: a << b,
    Opcode.SHR: lambda a, b: a >> b,
    Opcode.AND: lambda a, b: a & b,
    Opcode.OR: lambda a, b: a | b,
    Opcode.XOR: lambda a, b: a ^ b,
}


def fold_constants(func: KernelFunction) -> bool:
    """Replace all-immediate arithmetic with a ``mov`` of the folded value."""
    changed = False
    for block in func.blocks:
        for i, instr in enumerate(block.instructions):
            if instr.dst is None or instr.op not in _FOLDABLE:
                continue
            if not all(isinstance(s, Immediate) for s in instr.srcs):
                continue
            dtype = instr.dtype
            vals = [s.value for s in instr.srcs]
            if dtype is DataType.F32:
                if instr.op in (Opcode.SHL, Opcode.SHR, Opcode.AND, Opcode.OR,
                                Opcode.XOR):
                    continue
                folded = float(np.float32(_FOLDABLE[instr.op](
                    np.float32(vals[0]), np.float32(vals[1]))))
            elif dtype.is_integer:
                folded = _FOLDABLE[instr.op](int(vals[0]), int(vals[1]))
            else:
                continue
            block.instructions[i] = Instruction(
                Opcode.MOV, dtype, instr.dst, [Immediate(folded, dtype)],
                region=instr.region, role=instr.role,
            )
            changed = True
    return changed


# ---------------------------------------------------------------------------
# Copy propagation
# ---------------------------------------------------------------------------


def _definition_counts(func: KernelFunction) -> Counter:
    counts: Counter = Counter()
    for instr in func.instructions():
        if instr.dst is not None:
            counts[instr.dst.name] += 1
    return counts


def propagate_copies(func: KernelFunction) -> bool:
    """Forward `mov dst, src` (register or immediate source) to users of
    ``dst`` when ``dst`` has exactly one definition in the function.

    Single-definition is a conservative dominance proxy: our codegen emits
    straight-line region bodies where every fresh register has one def; the
    only multiply-defined registers are Repeat's loop-carried coordinates,
    which must not be propagated.
    """
    defs = _definition_counts(func)
    replace: dict[str, object] = {}
    for instr in func.instructions():
        if (
            instr.op is Opcode.MOV
            and instr.special is None
            and instr.dst is not None
            and defs[instr.dst.name] == 1
            and len(instr.srcs) == 1
        ):
            src = instr.srcs[0]
            if isinstance(src, Register):
                if defs[src.name] == 1 and src.dtype is instr.dst.dtype:
                    replace[instr.dst.name] = src
            elif isinstance(src, Immediate) and src.dtype is instr.dst.dtype:
                replace[instr.dst.name] = src

    if not replace:
        return False

    def resolve(op):
        seen = set()
        while isinstance(op, Register) and op.name in replace:
            if op.name in seen:  # defensive: no cycles expected
                break
            seen.add(op.name)
            op = replace[op.name]
        return op

    changed = False
    for block in func.blocks:
        for instr in block:
            new_srcs = tuple(resolve(s) for s in instr.srcs)
            if new_srcs != tuple(instr.srcs):
                instr.srcs = new_srcs
                changed = True
            if instr.pred is not None:
                new_pred = resolve(instr.pred)
                if isinstance(new_pred, Register) and new_pred is not instr.pred:
                    instr.pred = new_pred
                    changed = True
    return changed


# ---------------------------------------------------------------------------
# Dead code elimination
# ---------------------------------------------------------------------------


def eliminate_dead_code(func: KernelFunction) -> bool:
    """Drop instructions whose destination is never read.

    Stores, branches and ``exit`` are always live. Name-based use counting is
    sound for multiply-defined registers (any read keeps every definition).
    Iterates within itself until no instruction dies.
    """
    changed = False
    while True:
        used: set[str] = set()
        for instr in func.instructions():
            for reg in instr.used_registers():
                used.add(reg.name)
        removed = False
        for block in func.blocks:
            kept = []
            for instr in block.instructions:
                side_effect = instr.op in (Opcode.ST, Opcode.BRA, Opcode.EXIT)
                if side_effect or instr.dst is None or instr.dst.name in used:
                    kept.append(instr)
                else:
                    removed = True
            block.instructions = kept
        if not removed:
            break
        changed = True
    return changed
