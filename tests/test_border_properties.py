"""Property-based tests of the four border index mappings.

Two independent implementations of the same mathematical maps exist in the
codebase — the vectorized executor's :func:`_map_axis` (NumPy, used for all
host execution) and the compiler's :func:`emit_axis_checks` (virtual-PTX IR,
used by the SIMT path) — and both must agree with the textbook definition of
each pattern at *any* depth past the image edge. Hypothesis drives sizes
``>= 1`` and coordinates across ``[-4*size, 5*size)``: deep enough to cross
the image more than once in either direction, which is exactly the regime
where the historical single-reflection MIRROR bug (fixed in PR 2) produced
out-of-bounds indices that NumPy fancy indexing silently wrapped.

The oracles are deliberately naive iterative loops (reflect / wrap one step
at a time) — slow, obviously correct, and entirely independent of both
implementations under test. The IR side is executed by a ~60-line scalar
interpreter over the emitted basic blocks, using the same truncated-REM /
C-division semantics as the SIMT simulator.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.border import emit_axis_checks
from repro.dsl import Boundary
from repro.ir import DataType, IRBuilder
from repro.ir.instructions import CmpOp, Instruction, Opcode, Register

from .conftest import ALL_BOUNDARIES  # noqa: F401  (documents the corpus)

# --------------------------------------------------------------------------
# Brute-force oracles: one step at a time, obviously correct.
# --------------------------------------------------------------------------


def clamp_oracle(c: int, size: int) -> int:
    return min(max(c, 0), size - 1)


def reflect_oracle(c: int, size: int) -> int:
    steps = 0
    while not 0 <= c < size:
        if c < 0:
            c = -c - 1
        else:
            c = 2 * size - 1 - c
        steps += 1
        assert steps < 10_000, "reflection oracle diverged"
    return c


def wrap_oracle(c: int, size: int) -> int:
    while c < 0:
        c += size
    while c >= size:
        c -= size
    return c


# --------------------------------------------------------------------------
# Strategies: any size >= 1, coordinates across [-4*size, 5*size).
# --------------------------------------------------------------------------


@st.composite
def axis_case(draw):
    size = draw(st.integers(min_value=1, max_value=64))
    coord = draw(st.integers(min_value=-4 * size, max_value=5 * size - 1))
    return size, coord


@st.composite
def axis_batch(draw):
    size = draw(st.integers(min_value=1, max_value=64))
    coords = draw(st.lists(
        st.integers(min_value=-4 * size, max_value=5 * size - 1),
        min_size=1, max_size=32))
    return size, coords


# --------------------------------------------------------------------------
# Layer 1: the vectorized executor's _map_axis.
# --------------------------------------------------------------------------


class TestMapAxisTotal:
    """Both sides checked: the mapping must be total over the whole range."""

    @settings(deadline=None)
    @given(axis_batch())
    def test_clamp(self, case):
        size, coords = case
        mapped, valid = _map(coords, size, Boundary.CLAMP)
        assert valid is None
        self._check(mapped, coords, size, clamp_oracle)

    @settings(deadline=None)
    @given(axis_batch())
    def test_mirror(self, case):
        size, coords = case
        mapped, valid = _map(coords, size, Boundary.MIRROR)
        assert valid is None
        self._check(mapped, coords, size, reflect_oracle)

    @settings(deadline=None)
    @given(axis_batch())
    def test_repeat(self, case):
        size, coords = case
        mapped, valid = _map(coords, size, Boundary.REPEAT)
        assert valid is None
        self._check(mapped, coords, size, wrap_oracle)

    @settings(deadline=None)
    @given(axis_batch())
    def test_constant_clamps_address_and_flags_validity(self, case):
        size, coords = case
        mapped, valid = _map(coords, size, Boundary.CONSTANT)
        self._check(mapped, coords, size, clamp_oracle)
        expected_valid = [0 <= c < size for c in coords]
        assert valid.tolist() == expected_valid

    @staticmethod
    def _check(mapped, coords, size, oracle):
        assert ((mapped >= 0) & (mapped < size)).all(), (
            f"out-of-bounds mapped index: {mapped} for size {size}")
        assert mapped.tolist() == [oracle(c, size) for c in coords]


class TestMapAxisSingleSided:
    """One side checked: sound whenever the coordinate cannot cross the
    unchecked side — the contract ISP region geometry guarantees. MIRROR
    additionally self-promotes to the total mapping on deep coordinates."""

    @settings(deadline=None)
    @given(axis_batch())
    def test_low_side_only(self, case):
        size, coords = case
        coords = [c for c in coords if c < size]  # cannot cross the high side
        if not coords:
            return
        for boundary, oracle in [(Boundary.CLAMP, clamp_oracle),
                                 (Boundary.MIRROR, reflect_oracle),
                                 (Boundary.REPEAT, wrap_oracle)]:
            mapped, _ = _map(coords, size, boundary,
                             check_low=True, check_high=False)
            TestMapAxisTotal._check(mapped, coords, size, oracle)

    @settings(deadline=None)
    @given(axis_batch())
    def test_high_side_only(self, case):
        size, coords = case
        coords = [c for c in coords if c >= 0]  # cannot cross the low side
        if not coords:
            return
        for boundary, oracle in [(Boundary.CLAMP, clamp_oracle),
                                 (Boundary.MIRROR, reflect_oracle),
                                 (Boundary.REPEAT, wrap_oracle)]:
            mapped, _ = _map(coords, size, boundary,
                             check_low=False, check_high=True)
            TestMapAxisTotal._check(mapped, coords, size, oracle)


def _map(coords, size, boundary, *, check_low=True, check_high=True):
    from repro.runtime.vectorized import _map_axis

    return _map_axis(np.asarray(list(coords), dtype=np.int64), size, boundary,
                     check_low, check_high)


# --------------------------------------------------------------------------
# Layer 2: the compiler's emit_axis_checks, executed by a scalar IR
# interpreter with the SIMT simulator's integer semantics.
# --------------------------------------------------------------------------


def _trunc_rem(a: int, b: int) -> int:
    """C-style (truncating) remainder — PTX rem.s32, matching gpu.simt."""
    q = abs(a) // abs(b)
    if (a >= 0) != (b >= 0):
        q = -q
    return a - q * b


_CMP = {
    CmpOp.EQ: lambda a, b: a == b,
    CmpOp.NE: lambda a, b: a != b,
    CmpOp.LT: lambda a, b: a < b,
    CmpOp.LE: lambda a, b: a <= b,
    CmpOp.GT: lambda a, b: a > b,
    CmpOp.GE: lambda a, b: a >= b,
}


def interpret(func, env: dict, max_steps: int = 10_000) -> dict:
    """Execute a straight-line-plus-loops IR function over scalar ints."""

    def val(operand):
        if isinstance(operand, Register):
            return env[operand.name]
        return operand.value

    blocks = list(func.blocks)
    index = {blk.label: i for i, blk in enumerate(blocks)}
    bi = 0
    steps = 0
    while True:
        blk = blocks[bi]
        jumped = False
        for instr in blk.instructions:
            steps += 1
            assert steps <= max_steps, "interpreter ran away (bad loop?)"
            op = instr.op
            if op is Opcode.EXIT:
                return env
            if op is Opcode.BRA:
                taken = True
                if instr.pred is not None:
                    taken = bool(env[instr.pred.name])
                    if instr.pred_negated:
                        taken = not taken
                bi = index[instr.target if taken else instr.target_else]
                jumped = True
                break
            a = val(instr.srcs[0]) if instr.srcs else None
            b2 = val(instr.srcs[1]) if len(instr.srcs) > 1 else None
            if op is Opcode.MOV:
                env[instr.dst.name] = a
            elif op is Opcode.ADD:
                env[instr.dst.name] = a + b2
            elif op is Opcode.SUB:
                env[instr.dst.name] = a - b2
            elif op is Opcode.MIN:
                env[instr.dst.name] = min(a, b2)
            elif op is Opcode.MAX:
                env[instr.dst.name] = max(a, b2)
            elif op is Opcode.REM:
                env[instr.dst.name] = _trunc_rem(a, b2)
            elif op is Opcode.SETP:
                env[instr.dst.name] = _CMP[instr.cmp](a, b2)
            elif op is Opcode.SELP:
                pred = val(instr.srcs[2])
                env[instr.dst.name] = a if pred else b2
            elif op is Opcode.AND:
                env[instr.dst.name] = bool(a) and bool(b2)
            else:  # pragma: no cover - border.py emits nothing else
                raise AssertionError(f"opcode {op} not modelled")
        if not jumped:
            bi += 1  # fall through to the next emitted block
            assert bi < len(blocks), "fell off the end of the function"


def emit_and_run(boundary, coord_value, size_value, *, check_low, check_high):
    """Build a tiny function around emit_axis_checks and interpret it."""
    b = IRBuilder("axis_harness", [])
    b.new_block("entry")
    coord = b.fresh_reg(DataType.S32, "coord")
    size = b.fresh_reg(DataType.S32, "size")
    bc = emit_axis_checks(b, coord, size, boundary,
                          check_low=check_low, check_high=check_high)
    b.exit()
    env = interpret(b.finish(),
                    {coord.name: coord_value, size.name: size_value})
    mapped = env[bc.coord.name]
    valid = None if bc.valid is None else env[bc.valid.name]
    return mapped, valid


class TestEmittedIRTotal:
    @settings(deadline=None)
    @given(axis_case())
    def test_clamp(self, case):
        size, c = case
        mapped, _ = emit_and_run(Boundary.CLAMP, c, size,
                                 check_low=True, check_high=True)
        assert mapped == clamp_oracle(c, size)

    @settings(deadline=None)
    @given(axis_case())
    def test_mirror_total_reflection(self, case):
        """The emitted rem/setp/selp closed form must equal iterated
        reflection at any depth — the exact property the PR-2 fix restored."""
        size, c = case
        mapped, _ = emit_and_run(Boundary.MIRROR, c, size,
                                 check_low=True, check_high=True)
        assert 0 <= mapped < size, f"IR mapped {c} -> {mapped} (size {size})"
        assert mapped == reflect_oracle(c, size)

    @settings(deadline=None)
    @given(axis_case())
    def test_repeat_loops(self, case):
        size, c = case
        mapped, _ = emit_and_run(Boundary.REPEAT, c, size,
                                 check_low=True, check_high=True)
        assert mapped == wrap_oracle(c, size)

    @settings(deadline=None)
    @given(axis_case())
    def test_constant_validity_predicate(self, case):
        size, c = case
        mapped, valid = emit_and_run(Boundary.CONSTANT, c, size,
                                     check_low=True, check_high=True)
        assert mapped == clamp_oracle(c, size)  # address stays loadable
        assert valid == (0 <= c < size)


class TestEmittedIRSingleSided:
    """Single-sided emission carries a precondition (the region geometry
    proves the coordinate cannot cross the unchecked side); within it, the
    cheap one-reflection forms must still match the oracle."""

    @settings(deadline=None)
    @given(axis_case())
    def test_mirror_low(self, case):
        size, c = case
        c = -abs(c) % size if size > 0 else 0  # precondition: -size < c < size
        c = c - size if c > 0 else c
        mapped, _ = emit_and_run(Boundary.MIRROR, c, size,
                                 check_low=True, check_high=False)
        assert mapped == reflect_oracle(c, size)

    @settings(deadline=None)
    @given(axis_case())
    def test_mirror_high(self, case):
        size, c = case
        c = size + (abs(c) % size)  # precondition: size <= c < 2*size
        mapped, _ = emit_and_run(Boundary.MIRROR, c, size,
                                 check_low=False, check_high=True)
        assert mapped == reflect_oracle(c, size)

    @settings(deadline=None)
    @given(axis_case())
    def test_clamp_and_repeat_sides(self, case):
        size, c = case
        low_c = min(c, size - 1)   # cannot cross the high side
        high_c = max(c, 0)         # cannot cross the low side
        for boundary, oracle in [(Boundary.CLAMP, clamp_oracle),
                                 (Boundary.REPEAT, wrap_oracle)]:
            mapped, _ = emit_and_run(boundary, low_c, size,
                                     check_low=True, check_high=False)
            assert mapped == oracle(low_c, size)
            mapped, _ = emit_and_run(boundary, high_c, size,
                                     check_low=False, check_high=True)
            assert mapped == oracle(high_c, size)


class TestImplementationsAgree:
    """Differential property: NumPy executor vs compiled IR, same answers —
    including the CONSTANT validity predicate."""

    @settings(deadline=None)
    @given(axis_case(), st.sampled_from(
        [Boundary.CLAMP, Boundary.MIRROR, Boundary.REPEAT, Boundary.CONSTANT]))
    def test_both_layers_map_identically(self, case, boundary):
        size, c = case
        ir_mapped, ir_valid = emit_and_run(boundary, c, size,
                                           check_low=True, check_high=True)
        vec_mapped, vec_valid = _map([c], size, boundary)
        assert ir_mapped == int(vec_mapped[0])
        if boundary is Boundary.CONSTANT:
            assert ir_valid == bool(vec_valid[0])


# --------------------------------------------------------------------------
# Layer 3: make_border — the materialized form of the same mappings.
# --------------------------------------------------------------------------


_PAD_ORACLES = [
    (Boundary.CLAMP, clamp_oracle),
    (Boundary.MIRROR, reflect_oracle),
    (Boundary.REPEAT, wrap_oracle),
]


@st.composite
def pad_case(draw):
    w = draw(st.integers(min_value=1, max_value=16))
    h = draw(st.integers(min_value=1, max_value=16))
    # apron up to 3x the image: well past the over-wide-window regime
    hx = draw(st.integers(min_value=0, max_value=3 * w))
    hy = draw(st.integers(min_value=0, max_value=3 * h))
    seed = draw(st.integers(0, 2**31 - 1))
    return w, h, hx, hy, seed


class TestMakeBorderMatchesOracles:
    """Every padded cell, at any apron depth, holds exactly the source pixel
    the brute-force oracle maps it to — the prepad executor's soundness rests
    on this property."""

    @settings(deadline=None, max_examples=40)
    @given(pad_case(), st.sampled_from([b for b, _ in _PAD_ORACLES]))
    def test_padded_cells_match_oracle(self, case, boundary):
        from repro.runtime.make_border import make_border

        w, h, hx, hy, seed = case
        oracle = dict(_PAD_ORACLES)[boundary]
        src = np.random.default_rng(seed).random((h, w)).astype(np.float32)
        out = make_border(src, hx, hy, boundary)
        assert out.shape == (h + 2 * hy, w + 2 * hx)
        for py in range(out.shape[0]):
            for px in range(out.shape[1]):
                sy = oracle(py - hy, h)
                sx = oracle(px - hx, w)
                assert out[py, px] == src[sy, sx], (boundary, py, px)

    @settings(deadline=None, max_examples=40)
    @given(pad_case(), st.floats(min_value=-2.0, max_value=2.0, width=32))
    def test_constant_cells(self, case, constant):
        from repro.runtime.make_border import make_border

        w, h, hx, hy, seed = case
        src = np.random.default_rng(seed).random((h, w)).astype(np.float32)
        out = make_border(src, hx, hy, Boundary.CONSTANT, constant)
        interior = out[hy:hy + h, hx:hx + w]
        assert np.array_equal(interior, src)
        mask = np.ones(out.shape, dtype=bool)
        mask[hy:hy + h, hx:hx + w] = False
        assert (out[mask] == np.float32(constant)).all()

    @settings(deadline=None, max_examples=20)
    @given(pad_case(), st.sampled_from([b for b, _ in _PAD_ORACLES]),
           st.integers(min_value=1, max_value=4))
    def test_batch_axis_pads_per_image(self, case, boundary, n):
        from repro.runtime.make_border import make_border

        w, h, hx, hy, seed = case
        stack = np.random.default_rng(seed).random((n, h, w)).astype(np.float32)
        out = make_border(stack, hx, hy, boundary)
        assert out.shape == (n, h + 2 * hy, w + 2 * hx)
        for i in range(n):
            assert np.array_equal(out[i], make_border(stack[i], hx, hy,
                                                      boundary))


def test_unchecked_axis_is_identity():
    """The Body region's whole point: no checks, untouched coordinate,
    zero emitted instructions."""
    b = IRBuilder("body", [])
    b.new_block("entry")
    coord = b.fresh_reg(DataType.S32, "coord")
    size = b.fresh_reg(DataType.S32, "size")
    bc = emit_axis_checks(b, coord, size, Boundary.MIRROR,
                          check_low=False, check_high=False)
    assert bc.coord is coord
    assert sum(len(blk.instructions) for blk in b.finish().blocks) == 0
