"""Legacy shim so `pip install -e . --no-use-pep517` works in offline
environments without the `wheel` package."""
from setuptools import setup

setup()
