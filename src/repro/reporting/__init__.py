"""Reporting helpers: stats and ASCII tables for the benchmark harness."""

from .export import export_json, load_json
from .stats import geometric_mean, pearson, speedup
from .tables import format_series, format_table

__all__ = ["export_json", "format_series", "format_table", "geometric_mean", "load_json", "pearson", "speedup"]
