"""Iteration spaces: the set of output pixels a kernel writes.

Matches Hipacc's ``IterationSpace<float> iter(out)`` (paper Listing 4). The
iteration space of every evaluated kernel is the full output image — border
handling exists precisely so input and output stay consistently sized
(paper Section I: discarding the border "produces inconsistently sized
images ... unfavorable within a multi-kernel pipeline").
"""

from __future__ import annotations

from .image import Image


class IterationSpace:
    """Full-image iteration space over an output image."""

    def __init__(self, output: Image):
        self.output = output

    @property
    def width(self) -> int:
        return self.output.width

    @property
    def height(self) -> int:
        return self.output.height

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"IterationSpace({self.output.name}, {self.width}x{self.height})"
