"""Ablation — warp-grained vs block-grained partitioning (paper Section V-B).

With wide blocks (e.g. 128x1), a left/right border block contains four warps
of which only one actually touches the border; block-grained ISP makes all
four run the checked path, warp-grained ISP re-routes the inner three to the
cheap path. This ablation quantifies the saving in dynamic instructions and
simulated time.

Expected: warp-ISP strictly reduces border-class block cost; the total
benefit is proportional to the border fraction (largest for small images).
"""

from __future__ import annotations

from repro.compiler import Variant, trace_kernel
from repro.dsl import Boundary
from repro.filters import gaussian, laplace
from repro.gpu import GTX680
from repro.reporting import format_table
from repro.runtime import measure_pipeline, profile_kernel

BLOCK = (128, 1)
SIZES = [512, 1024, 2048]
BOUNDARY = Boundary.REPEAT


def build():
    rows = []
    data = {}
    for app_name, app in [("gaussian", gaussian), ("laplace", laplace)]:
        for size in SIZES:
            pipe = app.build_pipeline(size, size, BOUNDARY)
            desc = trace_kernel(pipe.kernels[0])
            total = {}
            for variant in (Variant.ISP, Variant.ISP_WARP):
                prof = profile_kernel(desc, variant=variant, block=BLOCK,
                                      device=GTX680)
                total[variant] = sum(
                    prof.profiles[c.name].warp_instructions * c.count
                    for c in prof.classes
                )
            mn = measure_pipeline(pipe, variant=Variant.NAIVE, block=BLOCK,
                                  device=GTX680)
            mi = measure_pipeline(pipe, variant=Variant.ISP, block=BLOCK,
                                  device=GTX680)
            mw = measure_pipeline(pipe, variant=Variant.ISP_WARP, block=BLOCK,
                                  device=GTX680)
            saved = 1 - total[Variant.ISP_WARP] / total[Variant.ISP]
            rows.append([
                app_name, size,
                total[Variant.ISP], total[Variant.ISP_WARP],
                f"{100 * saved:.2f}%",
                mn.total_us / mi.total_us,
                mn.total_us / mw.total_us,
            ])
            data[(app_name, size)] = (
                total[Variant.ISP], total[Variant.ISP_WARP],
                mn.total_us / mi.total_us, mn.total_us / mw.total_us,
            )
    table = format_table(
        ["app", "size", "isp warp-instrs", "warp-isp warp-instrs",
         "instr saved", "isp speedup", "warp-isp speedup"],
        rows,
        title=f"Ablation: block- vs warp-grained ISP ({BOUNDARY.value}, "
              f"block {BLOCK[0]}x{BLOCK[1]}, GTX680)",
    )
    return data, table


def test_ablation_warp_isp(benchmark, report):
    data, table = benchmark.pedantic(build, rounds=1, iterations=1)
    report("ablation_warp_isp", table)

    for key, (isp_instrs, warp_instrs, isp_speed, warp_speed) in data.items():
        # Warp-grained partitioning strictly reduces executed instructions.
        assert warp_instrs < isp_instrs, key
        # And never makes the measured time worse by more than noise.
        assert warp_speed >= isp_speed * 0.995, key
