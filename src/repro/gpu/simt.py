"""SIMT warp execution engine.

Executes virtual-ISA kernels the way an Nvidia SM does at the model level the
paper reasons about:

* a warp is ``warp_size`` lanes (32 on NVIDIA parts, 64 on AMD wavefront
  devices) executing in lock step under an active mask,
* on a divergent branch, both paths execute serially with complementary
  masks, reconverging at the *immediate post-dominator* of the branch block
  (the classic stack-based reconvergence model),
* loops (the Repeat border pattern's ``while`` re-indexing) iterate until all
  active lanes exit.

Lane values are NumPy vectors of length ``warp_size``, so arithmetic is
bit-accurate (int32 wraparound, float32 rounding) while remaining fast enough
to simulate full threadblocks in tests.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Optional

import numpy as np

from ..ir.cfg import immediate_postdominators
from ..ir.function import KernelFunction
from ..ir.instructions import (
    CmpOp,
    Immediate,
    Instruction,
    Opcode,
    Register,
    SpecialReg,
)
from ..ir.types import DataType
from .memory import GlobalMemory, transactions_for
from .profiler import Profiler

#: Deprecated: warp width is a per-device property now (see the module
#: ``__getattr__`` shim at the bottom). Internal code sizes lane vectors
#: from the launch's :class:`WarpContext` / the executor's ``warp_size``.
_DEFAULT_WARP_SIZE = 32

#: Safety valve against runaway loops in broken kernels.
MAX_WARP_INSTRUCTIONS = 20_000_000


class SimtError(Exception):
    """Raised on dynamic execution errors (undefined register reads etc.)."""


class SimtAbort(SimtError):
    """Raised when a launch's abort event is set mid-execution.

    Cooperative cancellation: the serve engine sets the event when a SIMT
    execution blows its deadline, so the abandoned simulation stops burning
    CPU instead of running to completion in a zombie thread.
    """


@dataclasses.dataclass
class WarpContext:
    """Per-warp launch context: special-register values for each lane.

    ``tid_x``/``tid_y`` are per-lane vectors; the block/grid identifiers are
    scalars broadcast on read.
    """

    tid_x: np.ndarray
    tid_y: np.ndarray
    ctaid_x: int
    ctaid_y: int
    ntid_x: int
    ntid_y: int
    nctaid_x: int
    nctaid_y: int
    warp_id: int
    lane_mask: np.ndarray  # lanes that correspond to real threads

    @property
    def warp_size(self) -> int:
        """Lane width of this warp (the device's warp/wavefront size)."""
        return int(self.lane_mask.size)

    def special_value(self, sreg: SpecialReg) -> np.ndarray:
        if sreg is SpecialReg.TID_X:
            return self.tid_x.astype(np.int32)
        if sreg is SpecialReg.TID_Y:
            return self.tid_y.astype(np.int32)
        scalar = {
            SpecialReg.CTAID_X: self.ctaid_x,
            SpecialReg.CTAID_Y: self.ctaid_y,
            SpecialReg.NTID_X: self.ntid_x,
            SpecialReg.NTID_Y: self.ntid_y,
            SpecialReg.NCTAID_X: self.nctaid_x,
            SpecialReg.NCTAID_Y: self.nctaid_y,
            SpecialReg.WARPID: self.warp_id,
        }
        if sreg in scalar:
            return np.full(self.warp_size, scalar[sreg], dtype=np.int32)
        if sreg is SpecialReg.LANEID:
            return np.arange(self.warp_size, dtype=np.int32)
        raise SimtError(f"unsupported special register {sreg}")


class WarpExecutor:
    """Executes one warp of a kernel function to completion."""

    def __init__(
        self,
        func: KernelFunction,
        memory: GlobalMemory,
        params: dict[str, float | int],
        profiler: Optional[Profiler] = None,
        ipdoms: Optional[dict[str, Optional[str]]] = None,
        shared: Optional[GlobalMemory] = None,
        abort: Optional["threading.Event"] = None,
        warp_size: int = _DEFAULT_WARP_SIZE,
    ):
        self.func = func
        self.memory = memory
        self.params = params
        self.shared = shared
        self.profiler = profiler
        self.abort = abort
        self.warp_size = warp_size
        self.ipdoms = ipdoms if ipdoms is not None else immediate_postdominators(func)
        self.regs: dict[str, np.ndarray] = {}
        self._executed = 0
        # Lanes that executed EXIT; divergence continuations must not revive
        # them (a lane can exit inside one arm of a branch while the stack
        # still holds the pre-branch mask for the reconvergence point).
        self._exited = np.zeros(warp_size, dtype=bool)

    # ----------------------------------------------------------------- values

    def _read(self, operand, mask: np.ndarray) -> np.ndarray:
        if isinstance(operand, Immediate):
            return np.full(self.warp_size, operand.value,
                           dtype=operand.dtype.numpy_dtype)
        assert isinstance(operand, Register)
        try:
            return self.regs[operand.name]
        except KeyError:
            raise SimtError(
                f"{self.func.name}: read of undefined register {operand} "
                f"(active lanes: {int(mask.sum())})"
            ) from None

    def _write(self, reg: Register, values: np.ndarray, mask: np.ndarray) -> None:
        dtype = reg.dtype.numpy_dtype
        values = values.astype(dtype, copy=False)
        current = self.regs.get(reg.name)
        if current is None:
            current = np.zeros(self.warp_size, dtype=dtype)
            self.regs[reg.name] = current
        current[mask] = values[mask]

    # -------------------------------------------------------------- execution

    def run(self, ctx: WarpContext) -> None:
        """Run the warp to completion (kernels without barriers)."""
        for _ in self.run_phases(ctx):
            raise SimtError(
                f"{self.func.name}: bar.sync executed, but the warp was "
                "launched without barrier-phased block execution"
            )

    def run_phases(self, ctx: WarpContext):
        """Generator: executes the warp, yielding once per ``bar.sync``.

        The block executor advances all warps of a block in lock-step
        phases, resuming each generator after every warp has arrived at the
        barrier — the CUDA ``__syncthreads`` contract. Barriers must execute
        in uniform control flow (full lane mask, no pending divergence); a
        divergent barrier raises, as the real hardware's behaviour is
        undefined.
        """
        full = ctx.lane_mask.copy()
        if not full.any():
            return
        # Divergence stack entries: (block_label, resume_index, mask,
        # reconvergence_label).
        stack: list[tuple[str, int, np.ndarray, Optional[str]]] = [
            (self.func.entry.label, 0, full, None)
        ]
        while stack:
            label, start, mask, reconv = stack.pop()
            while label is not None and label != reconv:
                mask = mask & ~self._exited
                if not mask.any():
                    break
                result = self._run_block(label, start, mask, reconv, stack, ctx)
                start = 0
                if isinstance(result, tuple):  # ("bar", label, resume_index)
                    _, bar_label, resume = result
                    if stack or not np.array_equal(mask, ctx.lane_mask & ~self._exited):
                        raise SimtError(
                            f"{self.func.name}: bar.sync in divergent control "
                            "flow — undefined behaviour on real hardware"
                        )
                    yield
                    label, start = bar_label, resume
                    continue
                label = result

    def _run_block(
        self,
        label: str,
        start: int,
        mask: np.ndarray,
        reconv: Optional[str],
        stack: list,
        ctx: WarpContext,
    ):
        """Execute one block under ``mask`` from instruction ``start``.

        Returns the next label (or None to pop the stack), or a
        ``("bar", label, resume_index)`` tuple when a barrier is hit.
        """
        block = self.func.block(label)
        for i in range(start, len(block.instructions)):
            instr = block.instructions[i]
            self._executed += 1
            if self._executed > MAX_WARP_INSTRUCTIONS:
                raise SimtError(
                    f"{self.func.name}: warp exceeded {MAX_WARP_INSTRUCTIONS} "
                    "instructions — runaway loop?"
                )
            # Checked sparsely: Event.is_set() is cheap but not free, and
            # this is the interpreter's innermost loop. Each poll counts as
            # a watchdog stall event — the warp pauses for the host check.
            if self.abort is not None and self._executed % 2048 == 0:
                if self.profiler is not None:
                    self.profiler.on_watchdog_poll()
                if self.abort.is_set():
                    raise SimtAbort(f"{self.func.name}: execution aborted")
            if instr.op is Opcode.BRA:
                return self._branch(instr, label, mask, reconv, stack)
            if instr.op is Opcode.EXIT:
                self._count(instr, mask)
                self._exited |= mask
                return None
            if instr.op is Opcode.BAR:
                self._count(instr, mask)
                return ("bar", label, i + 1)
            self._execute(instr, mask, ctx)
        raise SimtError(f"{self.func.name}:{label}: block fell through without terminator")

    def _branch(
        self,
        instr: Instruction,
        label: str,
        mask: np.ndarray,
        reconv: Optional[str],
        stack: list,
    ) -> Optional[str]:
        self._count(instr, mask)
        if instr.pred is None:
            return instr.target
        pvals = self._read(instr.pred, mask).astype(bool)
        if instr.pred_negated:
            pvals = ~pvals
        taken = mask & pvals
        fallthrough = mask & ~pvals
        any_taken = bool(taken[mask].any()) if mask.any() else False
        any_fall = bool(fallthrough[mask].any()) if mask.any() else False
        if any_taken and not any_fall:
            return instr.target
        if any_fall and not any_taken:
            return instr.target_else
        # Divergence: serialize both paths, reconverging at the ipdom.
        if self.profiler is not None:
            self.profiler.on_divergence(instr)
        ip = self.ipdoms.get(label)
        if ip is not None and ip != reconv:
            stack.append((ip, 0, mask, reconv))
        stack.append((instr.target_else, 0, fallthrough, ip))
        stack.append((instr.target, 0, taken, ip))
        return None

    def _count(self, instr: Instruction, mask: np.ndarray, transactions: int = 0) -> None:
        if self.profiler is not None:
            self.profiler.on_instruction(instr, int(mask.sum()), transactions)

    def _bank_conflicts(self, addrs: np.ndarray, mask: np.ndarray) -> int:
        """Replay count of one warp shared access under the stride model:
        ``warp_size`` banks of one 4-byte word; replays = distinct words
        beyond the first in the most-loaded bank (same-word lanes
        broadcast)."""
        words = np.unique(addrs[mask] >> 2)
        if words.size <= 1:
            return 0
        per_bank = np.bincount(
            (words % self.warp_size).astype(np.int64), minlength=self.warp_size
        )
        return int(per_bank.max()) - 1

    def _execute(self, instr: Instruction, mask: np.ndarray, ctx: WarpContext) -> None:
        op = instr.op

        if op is Opcode.MOV and instr.special is not None:
            self._count(instr, mask)
            self._write(instr.dst, ctx.special_value(instr.special), mask)
            return
        if op is Opcode.LDPARAM:
            self._count(instr, mask)
            value = self.params[instr.param]
            vec = np.full(self.warp_size, value, dtype=instr.dtype.numpy_dtype)
            self._write(instr.dst, vec, mask)
            return
        if op is Opcode.LD:
            addrs = self._read(instr.srcs[0], mask).astype(np.int64)
            tx = transactions_for(addrs, mask)
            self._count(instr, mask, tx)
            vals = self.memory.gather(addrs, mask, instr.dtype)
            self._write(instr.dst, vals, mask)
            return
        if op is Opcode.ST:
            addrs = self._read(instr.srcs[0], mask).astype(np.int64)
            vals = self._read(instr.srcs[1], mask)
            tx = transactions_for(addrs, mask)
            self._count(instr, mask, tx)
            self.memory.scatter(addrs, vals, mask, instr.dtype)
            return
        if op is Opcode.TEX:
            self._execute_tex(instr, mask)
            return
        if op is Opcode.LDS or op is Opcode.STS:
            if self.shared is None:
                raise SimtError(
                    f"{self.func.name}: shared-memory access but the launch "
                    "allocated no shared memory (kernel metadata missing "
                    "'shared_bytes'?)"
                )
            addrs = self._read(instr.srcs[0], mask).astype(np.int64)
            self._count(instr, mask)
            if self.profiler is not None:
                self.profiler.on_shared_access(
                    instr, store=op is Opcode.STS,
                    conflicts=self._bank_conflicts(addrs, mask),
                )
            if op is Opcode.LDS:
                vals = self.shared.gather(addrs, mask, instr.dtype)
                self._write(instr.dst, vals, mask)
            else:
                vals = self._read(instr.srcs[1], mask)
                self.shared.scatter(addrs, vals, mask, instr.dtype)
            return

        self._count(instr, mask)
        srcs = [self._read(s, mask) for s in instr.srcs]
        result = _apply(instr, srcs, mask)
        if instr.dst is not None:
            self._write(instr.dst, result, mask)

    def _execute_tex(self, instr: Instruction, mask: np.ndarray) -> None:
        """Textured 2-D load: the TMU resolves out-of-range coordinates in
        hardware (clamp-to-edge or border color), so the kernel needs no
        checks — the exact trade-off the paper's Section I describes."""
        img = instr.param
        try:
            base = int(self.params[f"{img}_ptr"])
            width = int(self.params[f"{img}_w"])
            height = int(self.params[f"{img}_h"])
        except KeyError as exc:
            raise SimtError(
                f"{self.func.name}: tex sample of {img!r} but launch lacks "
                f"parameter {exc.args[0]!r}"
            ) from None
        xs = self._read(instr.srcs[0], mask).astype(np.int64)
        ys = self._read(instr.srcs[1], mask).astype(np.int64)
        if instr.tex_mode == "border":
            in_range = (xs >= 0) & (xs < width) & (ys >= 0) & (ys < height)
        else:
            in_range = np.ones_like(xs, dtype=bool)
        cx = np.clip(xs, 0, width - 1)
        cy = np.clip(ys, 0, height - 1)
        addrs = base + 4 * (cy * width + cx)
        tx = transactions_for(addrs, mask)
        self._count(instr, mask, tx)
        vals = self.memory.gather(addrs, mask, DataType.F32)
        if instr.tex_mode == "border":
            vals = np.where(in_range, vals,
                            np.float32(instr.tex_border_value)).astype(np.float32)
        self._write(instr.dst, vals, mask)


# ---------------------------------------------------------------------------
# Scalar semantics of the ALU, vectorized over lanes.
# ---------------------------------------------------------------------------


def _trunc_div(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """C-style truncating integer division (PTX div.s32) with /0 -> 0."""
    safe_b = np.where(b == 0, 1, b)
    q = np.floor_divide(a, safe_b)
    r = a - q * safe_b
    fix = (r != 0) & ((a < 0) != (safe_b < 0))
    q = q + fix.astype(q.dtype)
    return np.where(b == 0, 0, q)


def _trunc_rem(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    safe_b = np.where(b == 0, 1, b)
    return np.where(b == 0, 0, a - _trunc_div(a, safe_b) * safe_b)


_CMP = {
    CmpOp.EQ: np.equal,
    CmpOp.NE: np.not_equal,
    CmpOp.LT: np.less,
    CmpOp.LE: np.less_equal,
    CmpOp.GT: np.greater,
    CmpOp.GE: np.greater_equal,
}


def _apply(instr: Instruction, srcs: list[np.ndarray], mask: np.ndarray) -> np.ndarray:
    op = instr.op
    dtype = instr.dtype.numpy_dtype
    with np.errstate(all="ignore"):
        if op is Opcode.MOV:
            return srcs[0].astype(dtype, copy=False)
        if op is Opcode.ADD:
            return srcs[0] + srcs[1]
        if op is Opcode.SUB:
            return srcs[0] - srcs[1]
        if op is Opcode.MUL:
            return srcs[0] * srcs[1]
        if op is Opcode.MAD:
            if instr.dtype is DataType.F32:
                # fused multiply-add in float32
                return np.float32(srcs[0]) * np.float32(srcs[1]) + np.float32(srcs[2])
            return srcs[0] * srcs[1] + srcs[2]
        if op is Opcode.DIV:
            if instr.dtype.is_integer:
                return _trunc_div(srcs[0], srcs[1])
            out = srcs[0] / np.where(srcs[1] == 0, np.float32(np.nan), srcs[1])
            return np.where(srcs[1] == 0, np.float32(np.inf) * np.sign(srcs[0]), out)
        if op is Opcode.REM:
            if instr.dtype.is_integer:
                return _trunc_rem(srcs[0], srcs[1])
            return np.fmod(srcs[0], srcs[1])
        if op is Opcode.MIN:
            return np.minimum(srcs[0], srcs[1])
        if op is Opcode.MAX:
            return np.maximum(srcs[0], srcs[1])
        if op is Opcode.ABS:
            return np.abs(srcs[0])
        if op is Opcode.NEG:
            return -srcs[0]
        if op is Opcode.AND:
            return srcs[0] & srcs[1] if instr.dtype.is_integer else srcs[0] & srcs[1]
        if op is Opcode.OR:
            return srcs[0] | srcs[1]
        if op is Opcode.XOR:
            return srcs[0] ^ srcs[1]
        if op is Opcode.NOT:
            return ~srcs[0]
        if op is Opcode.SHL:
            return np.left_shift(srcs[0], srcs[1] & 31)
        if op is Opcode.SHR:
            return np.right_shift(srcs[0], srcs[1] & 31)
        if op is Opcode.SETP:
            return _CMP[instr.cmp](srcs[0], srcs[1])
        if op is Opcode.SELP:
            return np.where(srcs[2].astype(bool), srcs[0], srcs[1])
        if op is Opcode.CVT:
            src = srcs[0]
            if instr.dtype.is_integer and instr.src_dtype is DataType.F32:
                # PTX cvt.rzi: round toward zero
                src = np.trunc(src)
                src = np.where(np.isfinite(src), src, 0.0)
            return src.astype(dtype)
        if op is Opcode.EX2:
            return np.exp2(srcs[0], dtype=np.float32)
        if op is Opcode.LG2:
            return np.log2(srcs[0], dtype=np.float32)
        if op is Opcode.RCP:
            return np.float32(1.0) / srcs[0]
        if op is Opcode.SQRT:
            return np.sqrt(srcs[0], dtype=np.float32)
        if op is Opcode.RSQRT:
            return np.float32(1.0) / np.sqrt(srcs[0], dtype=np.float32)
        if op is Opcode.SIN:
            return np.sin(srcs[0], dtype=np.float32)
        if op is Opcode.COS:
            return np.cos(srcs[0], dtype=np.float32)
    raise SimtError(f"unimplemented opcode {op}")


def __getattr__(name: str):
    if name == "WARP_SIZE":
        import warnings

        warnings.warn(
            "repro.gpu.simt.WARP_SIZE is deprecated: warp width follows the "
            "device now; use DeviceSpec.warp_size / WarpContext.warp_size",
            DeprecationWarning,
            stacklevel=2,
        )
        return _DEFAULT_WARP_SIZE
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
