"""Metrics registry: counters, histogram percentiles, snapshots."""

import threading

import pytest

from repro.serve import Counter, Histogram, MetricsRegistry


class TestCounter:
    def test_increments(self):
        c = Counter("c")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_thread_safety(self):
        c = Counter("c")

        def bump():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000


class TestHistogram:
    def test_empty_snapshot(self):
        snap = Histogram("h").snapshot()
        assert snap == {"count": 0, "mean": 0.0, "p50": 0.0, "p90": 0.0,
                        "p99": 0.0, "max": 0.0}

    def test_percentiles_and_mean(self):
        h = Histogram("h")
        for v in range(1, 101):  # 1..100
            h.observe(float(v))
        snap = h.snapshot()
        assert snap["count"] == 100
        assert snap["mean"] == pytest.approx(50.5)
        assert snap["p50"] == pytest.approx(50.0)
        assert snap["p90"] == pytest.approx(90.0)
        assert snap["max"] == 100.0
        assert h.percentile(99) == pytest.approx(99.0)

    def test_window_bounds_memory_but_count_is_exact(self):
        h = Histogram("h", window=16)
        for v in range(100):
            h.observe(float(v))
        snap = h.snapshot()
        assert snap["count"] == 100          # lifetime count
        assert snap["max"] == 99.0           # lifetime max
        assert snap["p50"] >= 84.0           # window holds the last 16 only


class TestRegistry:
    def test_same_name_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.histogram("y") is reg.histogram("y")

    def test_snapshot_and_render(self):
        reg = MetricsRegistry()
        reg.counter("requests").inc(3)
        reg.histogram("lat").observe(0.25)
        snap = reg.snapshot()
        assert snap["counters"] == {"requests": 3}
        assert snap["histograms"]["lat"]["count"] == 1
        text = reg.render()
        assert "requests = 3" in text
        assert "lat:" in text
