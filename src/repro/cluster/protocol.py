"""Wire protocol of the cluster: length-prefixed JSON headers + raw binary.

Every message on a shard connection is one *frame*::

    u32 header_len | u32 payload_len | header (JSON, UTF-8) | payload (bytes)

The header is a small JSON object (``{"op": "run", ...}``); the payload is
opaque binary — a float32 image on the way in, a float32 result on the way
out. Keeping pixels out of JSON matters: a 512x512 request is 1 MB of
payload but would be ~7 MB of JSON floats, and the gateway shovels thousands
of these per second.

The same frame functions exist in blocking-socket form (shard workers and
control connections use plain threads) and asyncio form (the gateway's
event loop). Both sides enforce :data:`MAX_FRAME` so a corrupt or hostile
length prefix fails loudly instead of allocating gigabytes.

Also here, because every layer of the cluster shares them:

* :func:`rendezvous_order` — highest-random-weight (rendezvous) hashing.
  Each routing key gets a stable preference order over the shard *slots*;
  the first live shard serves it, so losing one shard only remaps that
  shard's keys (to their second choice) and every other key stays put —
  exactly the property that keeps per-shard plan/autotune caches hot
  through membership churn.
* span wire form — serialized :class:`repro.trace.Span` trees, anchored to
  unix time so a gateway can rebase a shard's spans onto its own timeline
  (perf_counter epochs do not survive a process boundary).
* :data:`CLUSTER_ERROR_KINDS` — the engine's typed failure set extended
  with the failure modes only a distributed deployment has.
"""

from __future__ import annotations

import hashlib
import json
import socket
import struct
from typing import Optional, Sequence

import numpy as np

from ..serve.engine import ERROR_KINDS
from ..trace.core import Span, Tracer

#: Protocol revision; a worker rejects frames from a different revision
#: loudly rather than mis-parsing them.
PROTOCOL_VERSION = 1

#: Hard cap on either frame segment (64 MiB covers a 4096x4096 float32
#: image with headroom); a prefix beyond it means stream corruption.
MAX_FRAME = 64 * 1024 * 1024

_PREFIX = struct.Struct(">II")

#: Every way a *cluster* request is allowed to fail: the engine's typed set
#: plus the distributed-only failure modes. The cluster chaos suite asserts
#: membership for every non-ok response, same invariant as the engine's.
CLUSTER_ERROR_KINDS = ERROR_KINDS + (
    "admission",          # gateway admission control rejected (load shedding)
    "quota",              # per-tenant in-flight quota exhausted
    "shard_unavailable",  # no live shard could serve after failover
    "bad_request",        # malformed frame / unknown image_ref / bad field
)


class ProtocolError(RuntimeError):
    """A frame violated the wire contract (bad prefix, oversize, bad JSON)."""


# ---------------------------------------------------------------------------
# Frames — blocking-socket form
# ---------------------------------------------------------------------------

def pack_frame(header: dict, payload: bytes = b"") -> bytes:
    """Serialize one frame (header JSON + optional binary payload)."""
    raw = json.dumps(header, separators=(",", ":")).encode("utf-8")
    if len(raw) > MAX_FRAME or len(payload) > MAX_FRAME:
        raise ProtocolError(
            f"frame too large (header {len(raw)}, payload {len(payload)})"
        )
    return _PREFIX.pack(len(raw), len(payload)) + raw + payload


def _parse_prefix(prefix: bytes) -> tuple[int, int]:
    header_len, payload_len = _PREFIX.unpack(prefix)
    if header_len > MAX_FRAME or payload_len > MAX_FRAME:
        raise ProtocolError(
            f"frame prefix claims {header_len}+{payload_len} bytes "
            f"(cap {MAX_FRAME}); stream is corrupt"
        )
    return header_len, payload_len


def _decode_header(raw: bytes) -> dict:
    try:
        header = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"unparseable frame header: {exc}") from exc
    if not isinstance(header, dict):
        raise ProtocolError(
            f"frame header must be an object, got {type(header).__name__}"
        )
    return header


def _recv_exactly(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise ``ConnectionError`` on EOF."""
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError(
                f"peer closed mid-frame ({n - remaining}/{n} bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_frame(sock: socket.socket, header: dict, payload: bytes = b"") -> None:
    sock.sendall(pack_frame(header, payload))


def recv_frame(sock: socket.socket) -> tuple[dict, bytes]:
    """Blocking read of one frame; raises ``ConnectionError`` on EOF."""
    header_len, payload_len = _parse_prefix(_recv_exactly(sock, _PREFIX.size))
    header = _decode_header(_recv_exactly(sock, header_len))
    payload = _recv_exactly(sock, payload_len) if payload_len else b""
    return header, payload


# ---------------------------------------------------------------------------
# Frames — asyncio form (the gateway side)
# ---------------------------------------------------------------------------

async def send_frame_async(writer, header: dict, payload: bytes = b"") -> None:
    writer.write(pack_frame(header, payload))
    await writer.drain()


async def recv_frame_async(reader) -> tuple[dict, bytes]:
    """Async read of one frame; raises ``ConnectionError`` on EOF."""
    import asyncio

    try:
        prefix = await reader.readexactly(_PREFIX.size)
        header_len, payload_len = _parse_prefix(prefix)
        header = _decode_header(await reader.readexactly(header_len))
        payload = (await reader.readexactly(payload_len)
                   if payload_len else b"")
    except asyncio.IncompleteReadError as exc:
        raise ConnectionError("peer closed mid-frame") from exc
    return header, payload


# ---------------------------------------------------------------------------
# Array payloads
# ---------------------------------------------------------------------------

def encode_array(arr: np.ndarray) -> tuple[dict, bytes]:
    """(metadata, bytes) for a numpy array payload (C-order, explicit dtype)."""
    arr = np.ascontiguousarray(arr)
    meta = {"dtype": arr.dtype.name, "shape": list(arr.shape)}
    return meta, arr.tobytes()


def decode_array(meta: dict, payload: bytes) -> np.ndarray:
    try:
        dtype = np.dtype(meta["dtype"])
        shape = tuple(int(d) for d in meta["shape"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"bad array metadata {meta!r}") from exc
    expected = int(np.prod(shape)) * dtype.itemsize if shape else dtype.itemsize
    if len(payload) != expected:
        raise ProtocolError(
            f"array payload is {len(payload)} bytes, metadata implies "
            f"{expected} ({dtype.name} x {shape})"
        )
    return np.frombuffer(payload, dtype=dtype).reshape(shape).copy()


def array_digest(arr: np.ndarray) -> str:
    """Content digest of an array's raw bytes — the bit-exactness currency.

    The load generator compares shard responses against locally computed
    reference digests; two float32 images are bit-exact iff digests match.
    """
    arr = np.ascontiguousarray(arr)
    return hashlib.sha256(arr.tobytes()).hexdigest()


# ---------------------------------------------------------------------------
# Rendezvous (highest-random-weight) hashing
# ---------------------------------------------------------------------------

def _weight(key: str, slot: str) -> int:
    digest = hashlib.sha256(f"{key}|{slot}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def rendezvous_order(key: str, slots: Sequence[str]) -> list[str]:
    """Shard slots ordered by preference for ``key`` (pure, stable).

    Highest weight first. Properties the router relies on:

    * removing a slot never reorders the survivors — failover for a dead
      primary is "next in the list", and keys whose primary is alive do
      not move at all;
    * adding a slot steals only the keys it now wins, ~1/n of the space.
    """
    return sorted(slots, key=lambda s: (_weight(key, s), s), reverse=True)


def route_key(app: str, pattern: str, width: int, height: int,
              constant: float = 0.0) -> str:
    """Cheap routing key string for one request signature.

    Two requests with equal signatures always resolve to the same
    ``KernelDescription`` digest, so hashing the signature fields keeps a
    plan's keyspace on one shard without tracing anything at the gateway.
    The router upgrades this to the true content digest (memoized per
    signature) so routing is keyed the same way plan caches are.
    """
    return f"{app}|{pattern}|{width}x{height}|{constant:g}"


# ---------------------------------------------------------------------------
# Span wire form (cross-process trace propagation)
# ---------------------------------------------------------------------------

def spans_to_wire(spans: Sequence[Span], epoch_unix: float) -> list[dict]:
    """Serialize spans with unix-anchored times.

    ``epoch_unix`` is the recording tracer's epoch; span times are relative
    to it, so shipping ``epoch + rel`` lets any receiver rebase onto its own
    epoch without sharing a perf_counter origin.
    """
    out = []
    for s in spans:
        out.append({
            "name": s.name,
            "span_id": s.span_id,
            "parent_id": s.parent_id,
            "start_unix": epoch_unix + s.start_s,
            "end_unix": (epoch_unix + s.end_s) if s.end_s is not None else None,
            "status": s.status,
            "thread": s.thread,
            "attributes": _json_safe_attrs(s.attributes),
        })
    return out


def spans_from_wire(wire: Sequence[dict], tracer: Tracer) -> list[Span]:
    """Deserialize wire spans onto ``tracer``'s timeline (times rebased to
    its epoch); ids are left as sent — :meth:`Tracer.adopt_spans` namespaces
    them when grafting."""
    spans = []
    for d in wire:
        end_unix = d.get("end_unix")
        spans.append(Span(
            trace_id="",  # assigned on adoption
            span_id=str(d["span_id"]),
            parent_id=d.get("parent_id"),
            name=str(d["name"]),
            start_s=float(d["start_unix"]) - tracer.epoch_unix,
            end_s=(float(end_unix) - tracer.epoch_unix
                   if end_unix is not None else None),
            attributes=dict(d.get("attributes", {})),
            status=str(d.get("status", "ok")),
            thread=str(d.get("thread", "")),
        ))
    return spans


def _json_safe_attrs(attributes: dict) -> dict:
    from ..trace.exporters import _json_safe

    return {str(k): _json_safe(v) for k, v in attributes.items()}
