"""Pins for the fused SIMT megakernel — the closed fused→naive staging gap.

``variant="fused"`` used to be a *host-only* execution strategy: the SIMT
simulator staged each stage as a fully checked NAIVE kernel. The compiler
now lowers fused tile schedules to a single per-block megakernel
(:mod:`repro.compiler.fusion_simt`) that cooperatively stages each stage's
tile + halo hull into shared memory, computes stage-by-stage on-chip, and
only writes the final stage to global memory. These tests pin the new
contract:

* a fused plan compiles to **one** :class:`CompiledFusedKernel` (not one
  kernel per stage) carrying ``Variant.FUSED`` and a nonzero shared-memory
  footprint;
* one request produces **one** profiler whose event totals include the
  shared-memory traffic (``smem_load`` / ``smem_store``) and the
  ``lds_bank_conflict`` counter;
* the megakernel is bit-identical to the staged reference on both warp
  widths (warp32 and wave64);
* shapes the generator refuses — non-exact tiling, degenerate geometry —
  fall back to the old staged per-kernel NAIVE execution, bit-exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compiler import CompiledFusedKernel, Variant
from repro.dsl import Boundary
from repro.filters import PIPELINES
from repro.gpu import GTX680, VEGA64
from repro.runtime import run_pipeline_vectorized
from repro.serve.plan import build_plan

SIZE = 48


@pytest.fixture
def image(rng):
    return rng.random((SIZE, SIZE), dtype=np.float32)


def _staged_reference(app: str, image: np.ndarray, pattern: str,
                      size: int = SIZE) -> np.ndarray:
    pipe = PIPELINES[app](size, size, Boundary(pattern))
    images = run_pipeline_vectorized(pipe, {pipe.inputs[0].name: image},
                                     variant="naive")
    return images[pipe.output.name]


def test_fused_simt_variant_exists():
    """The tripwire flipped: fused is now a compiler-level variant."""
    assert Variant("fused") is Variant.FUSED


class TestFusedMegakernel:
    def test_fused_plan_compiles_one_megakernel(self):
        plan = build_plan("night", "mirror", SIZE, SIZE, variant="fused",
                          block=(16, 4))
        compiled = plan._compiled_simt()
        assert len(compiled) == 1
        cfk = compiled[0]
        assert isinstance(cfk, CompiledFusedKernel)
        assert cfk.effective_variant is Variant.FUSED
        assert cfk.func.metadata["shared_bytes"] > 0
        # The megakernel spans every live stage of the plan.
        assert tuple(cfk.func.metadata["fused_stages"]) == tuple(
            d.name for d in plan.descs if d.output_name in plan.fused_plan.live
        )

    @pytest.mark.parametrize("device", [GTX680, VEGA64],
                             ids=lambda d: d.name)
    @pytest.mark.parametrize("app", ["sobel", "night"])
    def test_fused_simt_output_matches_staged(self, image, app, device):
        """On-chip staging must be invisible in the bits, both warp widths."""
        plan = build_plan(app, "clamp", SIZE, SIZE, variant="fused",
                          block=(16, 4), device=device)
        compiled = plan._compiled_simt()
        assert len(compiled) == 1 and isinstance(compiled[0],
                                                 CompiledFusedKernel)
        out = plan.execute_simt(image)
        assert np.array_equal(out, _staged_reference(app, image, "clamp"))

    def test_one_profiler_per_request_with_smem_events(self, image):
        plan = build_plan("sobel", "constant", SIZE, SIZE, variant="fused",
                          block=(16, 4))
        collect: list = []
        plan.execute_simt(image, collect=collect)
        assert len(collect) == 1
        name, variant, prof = collect[0]
        assert variant == "fused"
        events = prof.event_totals()
        assert events["smem_load"] > 0
        assert events["smem_store"] > 0
        assert "lds_bank_conflict" in events

    def test_non_tiling_block_falls_back_to_staged_naive(self, image):
        """48 is not a multiple of 5: the generator refuses, stages run."""
        plan = build_plan("sobel", "repeat", SIZE, SIZE, variant="fused",
                          block=(5, 3))
        compiled = plan._compiled_simt()
        assert len(compiled) == len(plan.descs) > 1
        for ck in compiled:
            assert ck.effective_variant is Variant.NAIVE
        out = plan.execute_simt(image)
        assert np.array_equal(out, _staged_reference("sobel", image, "repeat"))

    def test_degenerate_1x1_falls_back_to_staged_naive(self, rng):
        image = rng.random((1, 1), dtype=np.float32)
        plan = build_plan("sobel", "mirror", 1, 1, variant="fused",
                          block=(16, 4))
        compiled = plan._compiled_simt()
        assert len(compiled) == len(plan.descs)
        for ck in compiled:
            assert ck.effective_variant is Variant.NAIVE
        out = plan.execute_simt(image)
        assert np.array_equal(
            out, _staged_reference("sobel", image, "mirror", size=1)
        )

    def test_prepad_plan_stages_the_same_way(self):
        """prepad remains a host-side strategy with no SIMT code shape."""
        plan = build_plan("gaussian", "repeat", SIZE, SIZE, variant="prepad",
                          block=(16, 4))
        for ck in plan._compiled_simt():
            assert ck.effective_variant is Variant.NAIVE
