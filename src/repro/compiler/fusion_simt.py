"""Fused SIMT megakernel — per-block shared-memory halo staging.

Lowers a :class:`repro.compiler.fusion.FusedPlan` to a single kernel in
which every block produces one ``tx x ty`` output tile entirely out of
on-chip scratch:

1. **Stage** each external input's tile + cumulative-halo hull into shared
   memory with one cooperative strided loop per buffer (the
   :mod:`repro.compiler.shared` staging shape), applying only the block's
   region checks — the tile-granular ISP split of the staging phase.
2. **Compute** each live intermediate stage slot-by-slot into its own
   shared window. In-range slots are exact by induction; halo slots are
   then filled by a checked smem->smem copy that applies the consumer's
   border mapping (``slot[c] <- slot[m(c)]``), so downstream taps read
   plain offsets with no checks at all. Stages consumed with REPEAT are
   instead computed over the whole extended window (wraparound commutes
   with translation, so the extended values *are* the wrapped values —
   gated by the closure rule below).
3. The **final stage** computes one pixel per thread straight from shared
   memory and stores to global — the only global traffic besides the
   initial staging reads.

Intermediates never touch global memory: the DRAM round-trip the staged
path pays per stage becomes smem traffic (Jangda & Guha's overlapped
tiling, arXiv:1909.07190, executed with Chen et al.'s on-chip data-reuse
discipline, arXiv:1907.06154).

Shared windows are row-padded by one element whenever the row length is a
multiple of the device's warp width — the classic LDS bank-conflict dodge —
which is why the generated IR differs between warp32 and wave64 parts.

The generator refuses (``CompileError`` — callers fall back to per-stage
NAIVE) exactly where the host fused path degrades: non-exact grid tiling
(``bar.sync`` forbids early-exit guards), degenerate region geometry for
the *maximum* cumulative halo (a strict superset of
:func:`repro.runtime.vectorized.degenerate_geometry` — covers 1x1 images
and over-wide windows), inconsistent border conditions on one staged
buffer, a REPEAT consumer whose producer does not itself read everything
with REPEAT (wraparound does not commute through other mappings), and a
footprint beyond ``device.shared_mem_per_sm``.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional

from ..dsl.boundary import Boundary
from ..gpu.device import DeviceSpec
from ..gpu.launch import LaunchConfig
from ..ir.builder import IRBuilder
from ..ir.function import KernelFunction, Param
from ..ir.instructions import Register, SpecialReg
from ..ir.types import DataType
from ..ir.verifier import verify
from .border import combine_valid, emit_axis_checks
from .frontend import KernelDescription
from .fusion import FusedPlan
from .isp import CompileError, Variant, _emit_switch_chain
from .lowering import KernelParams, RegionLowering, emit_coordinates, grid_for
from .passes import optimize as run_passes
from .regions import REGION_CHECKS, SWITCH_ORDER, Region, RegionGeometry
from .registers import RegisterEstimate, estimate_registers


# ---------------------------------------------------------------------------
# Shared-memory layout
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class StagedBuffer:
    """One shared-memory window: a tile plus its cumulative halo hull."""

    name: str
    #: cumulative halo (hx, hy) — from ``FusedPlan.halos``
    halo: tuple[int, int]
    #: window dimensions (tx + 2*hx, ty + 2*hy) in elements
    window: tuple[int, int]
    #: row stride in elements (bank-conflict padded)
    stride: int
    #: byte offset of this window inside the block's scratchpad
    offset: int
    #: True for pipeline inputs (staged from global), False for on-chip
    #: intermediates (computed in place)
    external: bool
    #: the single border mapping every checked consumer applies — halo
    #: slots hold ``img[m(c)]`` under exactly this mapping
    boundary: Boundary
    constant: float


@dataclasses.dataclass(frozen=True)
class FusedSmemLayout:
    """Scratchpad plan for one block: all staged windows, packed."""

    buffers: dict[str, StagedBuffer]
    #: external buffer names in parameter/staging order
    externals: tuple[str, ...]
    #: total scratchpad bytes per block (the occupancy charge)
    total_bytes: int


def _bank_padded_stride(row_elems: int, warp_size: int) -> int:
    """Row stride avoiding whole-warp LDS bank conflicts.

    With ``warp_size`` banks of one word, a row length that is a multiple
    of the bank count puts every column of a warp-strided access in the
    same bank; the +1 pad staggers the rows (see the CUDA shared-memory
    guide). This is the one place the fused IR depends on warp width.
    """
    return row_elems + 1 if row_elems % warp_size == 0 else row_elems


def _live_stages(plan: FusedPlan) -> list[KernelDescription]:
    return [d for d in plan.descs if d.output_name in plan.live]


def _consumer_condition(
    plan: FusedPlan, live: list[KernelDescription], name: str
) -> tuple[Boundary, float]:
    """The one (boundary, constant) all checked readers of ``name`` share.

    Halo slots can hold only a single value, so every consumer that applies
    border checks must agree on the mapping. Point readers (UNDEFINED) are
    neutral: they only ever read in-range slots. With no checked reader at
    all the halo slots are provably unread and CLAMP merely keeps the
    staging addresses in bounds.
    """
    condition: Optional[tuple[Boundary, float]] = None
    for desc in live:
        for acc in desc.accessors:
            if acc.image.name != name or not acc.boundary.needs_checks:
                continue
            const = float(acc.constant or 0.0) \
                if acc.boundary is Boundary.CONSTANT else 0.0
            if condition is None:
                condition = (acc.boundary, const)
            elif condition != (acc.boundary, const):
                raise CompileError(
                    f"{plan.name}: {name} is read under inconsistent border "
                    f"conditions ({condition[0].value} vs "
                    f"{acc.boundary.value}); fused halo slots can hold only "
                    "one mapping"
                )
    return condition if condition is not None else (Boundary.CLAMP, 0.0)


def plan_fused_smem(
    plan: FusedPlan, block: tuple[int, int], warp_size: int = 32
) -> FusedSmemLayout:
    """Pack every staged window into one per-block scratchpad."""
    tx, ty = block
    live = _live_stages(plan)
    final_name = plan.output_name
    names = [n for n in plan.external_inputs if n in plan.halos]
    names += [d.output_name for d in live if d.output_name != final_name]

    buffers: dict[str, StagedBuffer] = {}
    offset = 0
    for name in names:
        hx, hy = plan.halos[name]
        w, h = tx + 2 * hx, ty + 2 * hy
        stride = _bank_padded_stride(w, warp_size)
        boundary, constant = _consumer_condition(plan, live, name)
        buffers[name] = StagedBuffer(
            name=name, halo=(hx, hy), window=(w, h), stride=stride,
            offset=offset, external=name in plan.external_inputs,
            boundary=boundary, constant=constant,
        )
        offset += stride * h * _element_bytes()
    externals = tuple(n for n in names if buffers[n].external)
    return FusedSmemLayout(buffers=buffers, externals=externals,
                           total_bytes=offset)


def fused_smem_bytes(
    plan: FusedPlan, block: tuple[int, int], warp_size: int = 32
) -> int:
    """Per-block scratchpad footprint of the fused megakernel."""
    return plan_fused_smem(plan, block, warp_size).total_bytes


def _element_bytes() -> int:
    # Imported lazily: repro.runtime pulls in the executor, which imports
    # this package back.
    from ..runtime.make_border import ELEMENT_BYTES

    return ELEMENT_BYTES


# ---------------------------------------------------------------------------
# Lowering helpers
# ---------------------------------------------------------------------------


def _slot_addr(b: IRBuilder, smem_base: Register, buf: StagedBuffer,
               sx, sy) -> Register:
    """Byte address of window slot (sx, sy) inside the scratchpad."""
    with b.role("addr"):
        idx = b.mad(sy, b.imm(buf.stride, DataType.S32), sx)
        byte = b.cvt(b.shl(idx, 2), DataType.U32)
        if buf.offset:
            byte = b.add(byte, b.imm(buf.offset, DataType.U32), DataType.U32)
        return b.add(smem_base, byte, DataType.U32)


class _FusedSmemLowering(RegionLowering):
    """Stage-body lowering where *every* access reads a shared window.

    The producing stage's window carries halo ``self.halo``; an input
    window carries a (cumulative) halo at least ``self.halo + |offset|``
    larger, so the tap at window slot ``(sx, sy)`` plus static delta
    ``(H_in - H_self) + (dx, dy)`` is in bounds by construction — no
    checks, no guards, plain ``lds``.
    """

    def __init__(self, *args, layout=None, smem_base=None, halo=None,
                 sx=None, sy=None, **kwargs):
        super().__init__(*args, **kwargs)
        self.layout = layout
        self.smem_base = smem_base
        self.halo = halo
        self.sx = sx
        self.sy = sy

    def _lower_access(self, access):
        key = (id(access.accessor), access.dx, access.dy)
        memo = self._access_memo.get(key)
        if memo is not None:
            return memo
        b = self.b
        buf = self.layout.buffers[access.accessor.image.name]
        ddx = buf.halo[0] - self.halo[0] + access.dx
        ddy = buf.halo[1] - self.halo[1] + access.dy
        with b.role("addr"):
            ix = b.add(self.sx, ddx) if ddx else self.sx
            iy = b.add(self.sy, ddy) if ddy else self.sy
        addr = _slot_addr(b, self.smem_base, buf, ix, iy)
        with b.role("kernel"):
            value = b.lds(addr, DataType.F32)
        self._access_memo[key] = value
        return value


def _for_each_slot(b: IRBuilder, window: tuple[int, int],
                   block: tuple[int, int], tid_x: Register, tid_y: Register,
                   emit_slot) -> None:
    """Cooperative strided walk over a window: each thread visits
    ``ceil(w/tx) * ceil(h/ty)`` slots.

    The ragged last strip of each axis is *clamped* to the window edge
    instead of branch-guarded: the redirected thread recomputes an edge
    slot with the exact value it already holds, so the duplicate store is
    race-free — and every clone stays branchless, which keeps the static
    prover on one path per region seed instead of forking per strip."""
    w, h = window
    tx, ty = block
    for ry in range(math.ceil(h / ty)):
        for rx in range(math.ceil(w / tx)):
            with b.role("addr"):
                sx = b.add(tid_x, rx * tx) if rx else tid_x
                sy = b.add(tid_y, ry * ty) if ry else tid_y
                if (rx + 1) * tx > w:
                    sx = b.min(sx, w - 1)
                if (ry + 1) * ty > h:
                    sy = b.min(sy, h - 1)
            emit_slot(sx, sy)


# ---------------------------------------------------------------------------
# Megakernel generation
# ---------------------------------------------------------------------------


def _repeat_closure_check(plan: FusedPlan, live: list[KernelDescription],
                          layout: FusedSmemLayout) -> None:
    """A stage whose output is wrapped (REPEAT-consumed) must read all of
    its own inputs with REPEAT: only then does ``out[c mod N]`` equal the
    extended-window value at ``c`` (mod commutes with translation but not
    with clamping/mirroring)."""
    final_name = plan.output_name
    for desc in live:
        if desc.output_name == final_name:
            continue
        if layout.buffers[desc.output_name].boundary is not Boundary.REPEAT:
            continue
        for acc in desc.accessors:
            if acc.boundary is not Boundary.REPEAT:
                raise CompileError(
                    f"{plan.name}: stage {desc.name} feeds a REPEAT consumer "
                    f"but reads {acc.image.name} with {acc.boundary.value}; "
                    "wraparound does not commute through that mapping"
                )


def generate_fused_simt(
    plan: FusedPlan, block: tuple[int, int], *, warp_size: int = 32
) -> KernelFunction:
    """Lower a fused plan to the per-block halo-staging megakernel."""
    tx, ty = block
    width, height = plan.width, plan.height
    if width % tx or height % ty:
        raise CompileError(
            f"{plan.name}: fused staging requires the grid to tile the "
            f"image exactly ({width}x{height} vs block {tx}x{ty}) — "
            "bar.sync forbids early-exit guards"
        )
    if len(plan.descs) < 2:
        raise CompileError(
            f"{plan.name}: single-stage plans have nothing to fuse"
        )

    layout = plan_fused_smem(plan, block, warp_size)
    live = _live_stages(plan)
    final = plan.descs[-1]
    _repeat_closure_check(plan, live, layout)

    hx_max = max((buf.halo[0] for buf in layout.buffers.values()), default=0)
    hy_max = max((buf.halo[1] for buf in layout.buffers.values()), default=0)
    geom = RegionGeometry.compute(width, height, hx_max, hy_max, block)
    if geom.degenerate:
        raise CompileError(
            f"{plan.name}: degenerate fused geometry for {width}x{height} "
            f"with halo ({hx_max}, {hy_max}) and block {block}"
        )

    # -------------------------------------------------- params & prologue
    params_list: list[Param] = []
    for name in layout.externals:
        params_list.append(Param(f"{name}_ptr", DataType.U32,
                                 is_pointer=True, elem_dtype=DataType.F32))
        params_list.append(Param(f"{name}_w", DataType.S32))
        params_list.append(Param(f"{name}_h", DataType.S32))
    params_list.append(Param("out_ptr", DataType.U32, is_pointer=True,
                             elem_dtype=DataType.F32))
    params_list.append(Param("out_w", DataType.S32))
    params_list.append(Param("out_h", DataType.S32))
    params_list.append(Param("smem_base", DataType.U32, is_pointer=True,
                             elem_dtype=DataType.F32))

    b = IRBuilder(f"{plan.name}_fused", params_list)
    b.new_block("entry")
    with b.role("addr"):
        bases = {n: b.ld_param(f"{n}_ptr") for n in layout.externals}
        out_base = b.ld_param("out_ptr")
        out_w = b.ld_param("out_w")
        out_h = b.ld_param("out_h")
        smem_base = b.ld_param("smem_base")
    # Every staged image shares the output geometry (fuse_descs validates
    # it), so out_w/out_h serve as the size operand of every border check.
    params = KernelParams(
        bases=bases,
        widths={n: out_w for n in layout.externals},
        heights={n: out_h for n in layout.externals},
        out_base=out_base, out_width=out_w, out_height=out_h,
    )
    x, y = emit_coordinates(b)
    exit_label = "kernel_exit"

    with b.role("addr"):
        tid_x = b.special(SpecialReg.TID_X)
        tid_y = b.special(SpecialReg.TID_Y)
        ctaid_x = b.special(SpecialReg.CTAID_X)
        ctaid_y = b.special(SpecialReg.CTAID_Y)

    axis_checks = set()
    if hx_max > 0:
        axis_checks |= {"left", "right"}
    if hy_max > 0:
        axis_checks |= {"top", "bottom"}

    # ------------------------------------------------------ clone emission

    def buffer_sides(buf: StagedBuffer, sides: frozenset[str]) -> frozenset[str]:
        """Region sides that can actually cut this buffer's window."""
        keep = set()
        if buf.halo[0] > 0:
            keep |= {"left", "right"}
        if buf.halo[1] > 0:
            keep |= {"top", "bottom"}
        return frozenset(sides & keep)

    def window_origin(buf: StagedBuffer) -> tuple[Register, Register]:
        with b.role("addr"):
            ox = b.sub(b.mul(ctaid_x, tx), buf.halo[0])
            oy = b.sub(b.mul(ctaid_y, ty), buf.halo[1])
        return ox, oy

    def emit_external_staging(buf: StagedBuffer, sides: frozenset[str],
                              consts: dict) -> None:
        ox, oy = window_origin(buf)

        def stage_slot(sx, sy):
            with b.role("addr"):
                gx = b.add(ox, sx)
                gy = b.add(oy, sy)
            bx = emit_axis_checks(
                b, gx, out_w, buf.boundary,
                check_low="left" in sides, check_high="right" in sides,
                consts=consts,
            )
            by = emit_axis_checks(
                b, gy, out_h, buf.boundary,
                check_low="top" in sides, check_high="bottom" in sides,
                consts=consts,
            )
            valid = combine_valid(b, bx.valid, by.valid)
            with b.role("addr"):
                gidx = b.mad(by.coord, out_w, bx.coord)
                gaddr = b.add(bases[buf.name],
                              b.cvt(b.shl(gidx, 2), DataType.U32),
                              DataType.U32)
            with b.role("kernel"):
                val = b.ld(gaddr, DataType.F32)
                if valid is not None:
                    val = b.selp(valid, val,
                                 b.imm(buf.constant, DataType.F32))
            saddr = _slot_addr(b, smem_base, buf, sx, sy)
            with b.role("kernel"):
                b.sts(saddr, val, DataType.F32)

        _for_each_slot(b, buf.window, block, tid_x, tid_y, stage_slot)

    def emit_stage_compute(desc: KernelDescription, buf: StagedBuffer,
                           guard_sides: frozenset[str]) -> None:
        """Evaluate one intermediate stage into its window. With
        ``guard_sides`` the evaluation covers in-range slots only (halo
        slots are filled afterwards); without, the whole extended window
        (the REPEAT shape).

        "In-range only" is again expressed by clamping, not branching:
        the in-range slots form a rectangle (it contains the output tile,
        so it is never empty), and a thread whose slot falls outside it
        recomputes the nearest in-range slot instead — same inputs, same
        value, race-free duplicate store, no control flow."""
        w, h = buf.window
        ox, oy = window_origin(buf)
        lo_x = hi_x = lo_y = hi_y = None
        if guard_sides:
            with b.role("check"):
                if "left" in guard_sides:
                    lo_x = b.neg(ox)
                if "right" in guard_sides:
                    hi_x = b.sub(b.sub(out_w, 1), ox)
                if "top" in guard_sides:
                    lo_y = b.neg(oy)
                if "bottom" in guard_sides:
                    hi_y = b.sub(b.sub(out_h, 1), oy)

        def compute_slot(sx, sy):
            if guard_sides:
                with b.role("check"):
                    if lo_x is not None:
                        sx = b.max(sx, lo_x)
                    if hi_x is not None:
                        sx = b.min(sx, hi_x)
                    if lo_y is not None:
                        sy = b.max(sy, lo_y)
                    if hi_y is not None:
                        sy = b.min(sy, hi_y)
                    # Syntactic window bound for the prover (identity: the
                    # in-range rectangle is inside the window).
                    sx = b.min(b.max(sx, 0), w - 1)
                    sy = b.min(b.max(sy, 0), h - 1)
            lowering = _FusedSmemLowering(
                b, desc, params, None, None, frozenset(),
                layout=layout, smem_base=smem_base, halo=buf.halo,
                sx=sx, sy=sy,
            )
            value = lowering.lower(desc.expr)
            saddr = _slot_addr(b, smem_base, buf, sx, sy)
            with b.role("kernel"):
                b.sts(saddr, value, DataType.F32)

        _for_each_slot(b, buf.window, block, tid_x, tid_y, compute_slot)

    def emit_halo_fill(buf: StagedBuffer, sides: frozenset[str],
                       consts: dict) -> None:
        """``slot[c] <- slot[m(c)]`` over the whole window: the consumer's
        border mapping applied on-chip. In-range slots copy themselves
        (the checks are identity there), so no slot ever changes value and
        the unguarded pass is race-free across warps."""
        w, h = buf.window
        ox, oy = window_origin(buf)

        def fill_slot(sx, sy):
            with b.role("addr"):
                vx = b.add(ox, sx)
                vy = b.add(oy, sy)
            bx = emit_axis_checks(
                b, vx, out_w, buf.boundary,
                check_low="left" in sides, check_high="right" in sides,
                consts=consts,
            )
            by = emit_axis_checks(
                b, vy, out_h, buf.boundary,
                check_low="top" in sides, check_high="bottom" in sides,
                consts=consts,
            )
            valid = combine_valid(b, bx.valid, by.valid)
            with b.role("check"):
                # Identity clamps: m(c) provably lands in the window, but
                # the prover's intervals cannot cancel the two ctaid terms
                # in (m(c) - origin); the clamp makes the bound syntactic
                # without changing any value (same trick CONSTANT uses for
                # its dummy address).
                px = b.min(b.max(b.sub(bx.coord, ox), 0), w - 1)
                py = b.min(b.max(b.sub(by.coord, oy), 0), h - 1)
            src = _slot_addr(b, smem_base, buf, px, py)
            with b.role("kernel"):
                val = b.lds(src, DataType.F32)
                if valid is not None:
                    val = b.selp(valid, val,
                                 b.imm(buf.constant, DataType.F32))
            dst = _slot_addr(b, smem_base, buf, sx, sy)
            with b.role("kernel"):
                b.sts(dst, val, DataType.F32)

        _for_each_slot(b, buf.window, block, tid_x, tid_y, fill_slot)

    def emit_clone(region: Region, tag: str) -> None:
        sides = frozenset(REGION_CHECKS[region] & axis_checks)
        consts: dict = {}
        with b.region(tag):
            for name in layout.externals:
                buf = layout.buffers[name]
                emit_external_staging(buf, buffer_sides(buf, sides), consts)
            with b.role("kernel"):
                b.bar()
            for desc in live:
                if desc is final or desc.output_name == plan.output_name:
                    continue
                buf = layout.buffers[desc.output_name]
                if buf.boundary is Boundary.REPEAT:
                    # Extended-domain evaluation: every slot, no checks.
                    emit_stage_compute(desc, buf, frozenset())
                    with b.role("kernel"):
                        b.bar()
                else:
                    fill = buffer_sides(buf, sides)
                    emit_stage_compute(desc, buf, fill)
                    with b.role("kernel"):
                        b.bar()
                    if fill:
                        emit_halo_fill(buf, fill, consts)
                        with b.role("kernel"):
                            b.bar()
            # Final stage: one pixel per thread, all inputs on-chip.
            lowering = _FusedSmemLowering(
                b, final, params, x, y, frozenset(),
                layout=layout, smem_base=smem_base, halo=(0, 0),
                sx=tid_x, sy=tid_y,
            )
            value = lowering.lower(final.expr)
            lowering.store_output(value)
            b.br(exit_label)

    feasible = geom.feasible_regions()
    emit_set = set(feasible) | {Region.BODY}
    emit_regions = [r for r in SWITCH_ORDER if r in emit_set]
    labels = {r: f"region_{r.value.lower()}" for r in emit_regions}
    with b.role("switch"):
        _emit_switch_chain(b, geom, labels, set(feasible), ctaid_x, ctaid_y,
                           None, block, warp_size=warp_size)
    for region in emit_regions:
        b.new_block(labels[region])
        emit_clone(region, region.value)

    b.new_block(exit_label)
    b.exit()
    func = b.finish()
    func.metadata.update(
        variant=Variant.FUSED,
        block=block,
        grid=grid_for(width, height, block),
        geometry=geom,
        shared_bytes=layout.total_bytes,
        warp_size=warp_size,
        fused_layout=layout,
        fused_stages=tuple(d.name for d in live),
    )
    return func


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class CompiledFusedKernel:
    """A fused megakernel ready to launch: one kernel for the whole plan."""

    plan: FusedPlan
    func: KernelFunction
    block: tuple[int, int]
    launch_config: LaunchConfig
    geometry: RegionGeometry
    layout: FusedSmemLayout
    registers: Optional[RegisterEstimate] = None
    variant: Variant = Variant.FUSED
    effective_variant: Variant = Variant.FUSED

    @property
    def name(self) -> str:
        return self.func.name

    @property
    def desc(self) -> KernelDescription:
        """The stage whose output the megakernel writes (the last one)."""
        return self.plan.descs[-1]

    def param_values(self, image_bases: dict[str, int]) -> dict[str, int]:
        """Launch parameters: external input pointers plus the output."""
        values: dict[str, int] = {}
        for name in self.layout.externals:
            values[f"{name}_ptr"] = image_bases[name]
            values[f"{name}_w"] = self.plan.width
            values[f"{name}_h"] = self.plan.height
        values["out_ptr"] = image_bases[self.plan.output_name]
        values["out_w"] = self.plan.width
        values["out_h"] = self.plan.height
        return values


def compile_fused_simt(
    plan: FusedPlan,
    *,
    block: tuple[int, int] = (32, 4),
    device: Optional[DeviceSpec] = None,
    optimize: bool = True,
) -> CompiledFusedKernel:
    """Compile a fused plan into the halo-staging SIMT megakernel.

    Raises :class:`CompileError` where the shape is unsound (degenerate
    geometry, non-exact tiling, inconsistent/uncommuting border
    conditions) or does not fit (scratchpad over the device limit) —
    callers fall back to the per-stage staged path.
    """
    warp_size = device.warp_size if device is not None else 32
    func = generate_fused_simt(plan, block, warp_size=warp_size)
    shared_bytes = func.metadata["shared_bytes"]
    if device is not None and shared_bytes > device.shared_mem_per_sm:
        raise CompileError(
            f"{plan.name}: fused scratchpad ({shared_bytes} B/block) "
            f"exceeds {device.name} shared memory "
            f"({device.shared_mem_per_sm} B/SM)"
        )
    if optimize:
        run_passes(func)
    verify(func)
    regs = estimate_registers(func, device)
    cfg = LaunchConfig.for_image(plan.width, plan.height, block,
                                 warp_size=warp_size)
    return CompiledFusedKernel(
        plan=plan,
        func=func,
        block=block,
        launch_config=cfg,
        geometry=func.metadata["geometry"],
        layout=func.metadata["fused_layout"],
        registers=regs,
    )
