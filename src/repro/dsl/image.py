"""DSL image handles.

An :class:`Image` is a named 2-D single-channel float32 buffer, the DSL-level
analogue of Hipacc's ``Image<float>``. Host data is attached with
:meth:`Image.bind`; the runtime copies it into simulated device memory at
launch time.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class Image:
    """A width x height single-channel float32 image."""

    _counter = 0

    def __init__(self, width: int, height: int, name: Optional[str] = None):
        if width <= 0 or height <= 0:
            raise ValueError(f"image dimensions must be positive, got {width}x{height}")
        self.width = int(width)
        self.height = int(height)
        if name is None:
            Image._counter += 1
            name = f"img{Image._counter}"
        self.name = name
        self._host: Optional[np.ndarray] = None

    @property
    def shape(self) -> tuple[int, int]:
        """NumPy-style (height, width)."""
        return (self.height, self.width)

    def bind(self, data: np.ndarray) -> "Image":
        """Attach host pixel data (converted to float32, copied)."""
        arr = np.asarray(data, dtype=np.float32)
        if arr.shape != self.shape:
            raise ValueError(
                f"data shape {arr.shape} does not match image {self.shape}"
            )
        self._host = arr.copy()
        return self

    @property
    def host(self) -> np.ndarray:
        if self._host is None:
            raise ValueError(f"image {self.name!r} has no bound host data")
        return self._host

    @property
    def is_bound(self) -> bool:
        return self._host is not None

    @classmethod
    def from_array(cls, data: np.ndarray, name: Optional[str] = None) -> "Image":
        arr = np.asarray(data, dtype=np.float32)
        if arr.ndim != 2:
            raise ValueError("images are 2-D single-channel")
        img = cls(arr.shape[1], arr.shape[0], name)
        return img.bind(arr)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        bound = "bound" if self.is_bound else "unbound"
        return f"Image({self.name!r}, {self.width}x{self.height}, {bound})"
