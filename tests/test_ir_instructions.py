"""Unit tests for instruction construction and validation."""

import pytest

from repro.ir import CmpOp, Immediate, Instruction, Opcode, Register
from repro.ir.instructions import SFU_OPS, TERMINATORS
from repro.ir.types import DataType

R = lambda name, dt=DataType.S32: Register(name, dt)
I = lambda v, dt=DataType.S32: Immediate(v, dt)


class TestInstruction:
    def test_arity_enforced(self):
        with pytest.raises(ValueError, match="expects 2"):
            Instruction(Opcode.ADD, DataType.S32, R("d"), [R("a")])
        with pytest.raises(ValueError, match="expects 3"):
            Instruction(Opcode.MAD, DataType.S32, R("d"), [R("a"), R("b")])

    def test_setp_requires_cmp(self):
        with pytest.raises(ValueError, match="comparison"):
            Instruction(Opcode.SETP, DataType.S32, R("p", DataType.PRED),
                        [R("a"), R("b")])

    def test_cvt_requires_src_dtype(self):
        with pytest.raises(ValueError, match="src_dtype"):
            Instruction(Opcode.CVT, DataType.F32, R("d", DataType.F32), [R("a")])

    def test_ldparam_requires_name(self):
        with pytest.raises(ValueError, match="parameter name"):
            Instruction(Opcode.LDPARAM, DataType.S32, R("d"), [])

    def test_keywords_match_paper_categories(self):
        instr = Instruction(Opcode.LD, DataType.F32, R("d", DataType.F32),
                            [R("a", DataType.U32)])
        assert instr.keyword == "ld"
        instr = Instruction(Opcode.LDPARAM, DataType.S32, R("d"), [], param="w")
        assert instr.keyword == "ld"  # ld.param counts as 'ld'
        instr = Instruction(
            Opcode.SETP, DataType.S32, R("p", DataType.PRED),
            [R("a"), I(0)], cmp=CmpOp.LT,
        )
        assert instr.keyword == "setp"

    def test_terminator_flags(self):
        bra = Instruction(Opcode.BRA, DataType.S32, target="somewhere")
        assert bra.is_terminator
        ext = Instruction(Opcode.EXIT, DataType.S32)
        assert ext.is_terminator
        add = Instruction(Opcode.ADD, DataType.S32, R("d"), [R("a"), I(1)])
        assert not add.is_terminator
        assert TERMINATORS == {Opcode.BRA, Opcode.EXIT}

    def test_used_and_defined_registers(self):
        p = R("p", DataType.PRED)
        instr = Instruction(
            Opcode.BRA, DataType.S32, pred=p, target="a", target_else="b"
        )
        assert instr.used_registers() == [p]
        assert instr.defined_register() is None

        add = Instruction(Opcode.ADD, DataType.S32, R("d"), [R("a"), I(1)])
        assert [r.name for r in add.used_registers()] == ["a"]
        assert add.defined_register().name == "d"

    def test_sfu_classification(self):
        assert Opcode.EX2 in SFU_OPS
        assert Opcode.SQRT in SFU_OPS
        assert Opcode.ADD not in SFU_OPS


class TestImmediate:
    def test_immediates_precoerced(self):
        imm = Immediate(2**33 + 5, DataType.S32)
        assert imm.value == 5
        imm = Immediate(0.1, DataType.F32)
        import numpy as np

        assert imm.value == float(np.float32(0.1))

    def test_str(self):
        assert str(Immediate(7, DataType.S32)) == "7"
        assert "0F" in str(Immediate(1.5, DataType.F32))
