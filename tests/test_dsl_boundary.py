"""Property tests for the border-pattern index mapping (paper Figure 2).

``reference_index`` is the scalar golden model everything else is tested
against; these tests pin down its own mathematical properties.
"""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dsl import Boundary, reference_index

coords = st.integers(min_value=-(10**6), max_value=10**6)
sizes = st.integers(min_value=1, max_value=10**4)
checked = st.sampled_from(
    [Boundary.CLAMP, Boundary.MIRROR, Boundary.REPEAT, Boundary.CONSTANT]
)


class TestReferenceIndexProperties:
    @given(c=coords, s=sizes, b=checked)
    def test_result_in_bounds_or_none(self, c, s, b):
        r = reference_index(c, s, b)
        if r is None:
            assert b is Boundary.CONSTANT and not (0 <= c < s)
        else:
            assert 0 <= r < s

    @given(c=coords, s=sizes, b=checked)
    def test_identity_in_bounds(self, c, s, b):
        """All patterns agree on in-bounds coordinates."""
        if 0 <= c < s:
            assert reference_index(c, s, b) == c

    @given(c=coords, s=sizes)
    def test_clamp_idempotent(self, c, s):
        r = reference_index(c, s, Boundary.CLAMP)
        assert reference_index(r, s, Boundary.CLAMP) == r

    @given(c=coords, s=sizes)
    def test_clamp_is_nearest(self, c, s):
        r = reference_index(c, s, Boundary.CLAMP)
        assert r == min(max(c, 0), s - 1)

    @given(c=coords, s=sizes, k=st.integers(-5, 5))
    def test_repeat_periodic(self, c, s, k):
        assert reference_index(c, s, Boundary.REPEAT) == reference_index(
            c + k * s, s, Boundary.REPEAT
        )

    @given(c=coords, s=sizes)
    def test_mirror_symmetric_about_edge(self, c, s):
        """Symmetric reflection: position -1-k mirrors position k."""
        left = reference_index(-1 - c, s, Boundary.MIRROR) if c >= 0 else None
        if c >= 0:
            assert left == reference_index(c, s, Boundary.MIRROR)

    @given(c=coords, s=sizes, k=st.integers(-3, 3))
    def test_mirror_periodic_2s(self, c, s, k):
        assert reference_index(c, s, Boundary.MIRROR) == reference_index(
            c + k * 2 * s, s, Boundary.MIRROR
        )

    @given(c=coords, s=sizes)
    def test_constant_none_exactly_oob(self, c, s):
        r = reference_index(c, s, Boundary.CONSTANT)
        assert (r is None) == (c < 0 or c >= s)

    @given(c=coords, s=sizes)
    def test_undefined_raises_oob(self, c, s):
        if 0 <= c < s:
            assert reference_index(c, s, Boundary.UNDEFINED) == c
        else:
            with pytest.raises(IndexError):
                reference_index(c, s, Boundary.UNDEFINED)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            reference_index(0, 0, Boundary.CLAMP)


class TestAgainstNumpyPad:
    """The np.pad modes used by the golden references must match
    reference_index for all border depths up to the image size."""

    @pytest.mark.parametrize(
        "boundary,mode",
        [
            (Boundary.CLAMP, "edge"),
            (Boundary.MIRROR, "symmetric"),
            (Boundary.REPEAT, "wrap"),
        ],
    )
    def test_pad_mode_equivalence(self, boundary, mode):
        size = 7
        data = np.arange(size, dtype=np.float32)
        pad = size  # depth up to a full image
        padded = np.pad(data, pad, mode=mode)
        for c in range(-pad, size + pad):
            idx = reference_index(c, size, boundary)
            assert padded[c + pad] == data[idx], (boundary, c)

    def test_constant_pad_equivalence(self):
        size = 5
        data = np.arange(size, dtype=np.float32)
        padded = np.pad(data, 3, mode="constant", constant_values=9.5)
        for c in range(-3, size + 3):
            idx = reference_index(c, size, Boundary.CONSTANT)
            expect = 9.5 if idx is None else data[idx]
            assert padded[c + 3] == expect


class TestExamplesFromFigure2:
    """Concrete mappings spelled out in the paper's Figure 2 description."""

    def test_clamp_duplicates_nearest(self):
        assert reference_index(-1, 10, Boundary.CLAMP) == 0
        assert reference_index(-3, 10, Boundary.CLAMP) == 0
        assert reference_index(12, 10, Boundary.CLAMP) == 9

    def test_mirror(self):
        assert reference_index(-1, 10, Boundary.MIRROR) == 0
        assert reference_index(-2, 10, Boundary.MIRROR) == 1
        assert reference_index(10, 10, Boundary.MIRROR) == 9
        assert reference_index(11, 10, Boundary.MIRROR) == 8

    def test_repeat_tiles(self):
        assert reference_index(-1, 10, Boundary.REPEAT) == 9
        assert reference_index(10, 10, Boundary.REPEAT) == 0
        assert reference_index(-10, 10, Boundary.REPEAT) == 0
