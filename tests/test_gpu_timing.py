"""Unit tests for the cost tables and the timing estimator."""

import math

import pytest

from repro.gpu import GTX680, RTX2080, cost_table_for, estimate_time
from repro.gpu.cost import category_of
from repro.gpu.timing import LAUNCH_OVERHEAD_US
from repro.ir import DataType, Immediate, Instruction, Opcode, Register


def instr(op, dtype=DataType.S32, **kw):
    dst = Register("d", dtype) if op not in (Opcode.BRA, Opcode.EXIT, Opcode.ST) else None
    srcs = []
    arity = {Opcode.ADD: 2, Opcode.MUL: 2, Opcode.DIV: 2, Opcode.SQRT: 1,
             Opcode.LD: 1, Opcode.EXIT: 0}[op]
    for _ in range(arity):
        srcs.append(Register("s", DataType.U32 if op is Opcode.LD else dtype))
    return Instruction(op, dtype, dst, srcs, **kw)


class TestCostTables:
    def test_categories(self):
        assert category_of(instr(Opcode.ADD)) == "alu"
        assert category_of(instr(Opcode.MUL)) == "imul"
        assert category_of(instr(Opcode.MUL, DataType.F32)) == "alu"
        assert category_of(instr(Opcode.DIV)) == "idiv"
        assert category_of(instr(Opcode.DIV, DataType.F32)) == "sfu"
        assert category_of(instr(Opcode.SQRT, DataType.F32)) == "sfu"
        assert category_of(instr(Opcode.LD, DataType.F32)) == "mem"
        assert category_of(instr(Opcode.EXIT)) == "branch"

    def test_tables_differ_per_arch(self):
        k = cost_table_for(GTX680)
        t = cost_table_for(RTX2080)
        assert k.sfu != t.sfu or k.idiv != t.idiv

    def test_rate_consistency(self):
        table = cost_table_for(GTX680)
        for inst in [instr(Opcode.ADD), instr(Opcode.DIV), instr(Opcode.SQRT, DataType.F32)]:
            assert table.issue_cost(inst) == table.rate(category_of(inst))


def _estimate(device, *, blocks=1024, cycles=1000.0, regs=32,
              mem_frac=0.2, threads=128, spill=1.0):
    return estimate_time(
        device,
        total_blocks=blocks,
        block_threads=threads,
        regs_per_thread=regs,
        class_block_cycles={"all": cycles},
        class_block_counts={"all": blocks},
        mem_issue_fraction=mem_frac,
        spill_factor=spill,
    )


class TestTimingEstimator:
    def test_time_scales_with_work(self):
        t1 = _estimate(GTX680, cycles=1000.0)
        t2 = _estimate(GTX680, cycles=2000.0)
        assert t2.cycles == pytest.approx(2 * t1.cycles, rel=0.05)

    def test_more_blocks_more_time(self):
        t1 = _estimate(GTX680, blocks=1024)
        t2 = _estimate(GTX680, blocks=4096)
        assert t2.cycles > t1.cycles * 3.5

    def test_register_pressure_slows_down(self):
        """The paper's core cost mechanism: lower occupancy -> more time
        (when below the latency-hiding requirement)."""
        fast = _estimate(GTX680, regs=32, mem_frac=0.5)
        slow = _estimate(GTX680, regs=59, mem_frac=0.5)
        assert slow.occupancy.occupancy < fast.occupancy.occupancy
        assert slow.cycles > fast.cycles

    def test_turing_insensitive_to_these_registers(self):
        """On Turing, 59 regs costs no occupancy (paper Section VI-A.2)."""
        a = _estimate(RTX2080, regs=32)
        b = _estimate(RTX2080, regs=59)
        assert a.occupancy.occupancy == b.occupancy.occupancy == 1.0
        assert a.cycles == pytest.approx(b.cycles)

    def test_wave_quantization(self):
        est = _estimate(GTX680, blocks=100)
        assert est.waves_quantized == math.ceil(est.waves)
        assert est.waves_quantized >= 1

    def test_tiny_grid_single_block_path(self):
        est = _estimate(GTX680, blocks=4)
        assert est.waves < 1.0
        assert est.cycles > 0

    def test_spill_factor_multiplies(self):
        a = _estimate(GTX680, spill=1.0)
        b = _estimate(GTX680, spill=1.2)
        assert b.total_issue_cycles == pytest.approx(1.2 * a.total_issue_cycles)

    def test_launch_overhead_included(self):
        est = _estimate(GTX680)
        assert est.time_us >= LAUNCH_OVERHEAD_US
        assert est.time_ms == pytest.approx(est.time_us / 1000)

    def test_heterogeneous_classes(self):
        est = estimate_time(
            GTX680,
            total_blocks=100,
            block_threads=128,
            regs_per_thread=32,
            class_block_cycles={"border": 2000.0, "body": 1000.0},
            class_block_counts={"border": 20, "body": 80},
            mem_issue_fraction=0.1,
        )
        assert est.total_issue_cycles == pytest.approx(20 * 2000 + 80 * 1000)

    def test_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="sum to"):
            estimate_time(
                GTX680, total_blocks=10, block_threads=128, regs_per_thread=32,
                class_block_cycles={"a": 1.0}, class_block_counts={"a": 5},
                mem_issue_fraction=0.0,
            )

    def test_missing_class_rejected(self):
        with pytest.raises(ValueError, match="no profiled cycles"):
            estimate_time(
                GTX680, total_blocks=10, block_threads=128, regs_per_thread=32,
                class_block_cycles={}, class_block_counts={"a": 10},
                mem_issue_fraction=0.0,
            )

    def test_memory_heavy_kernels_need_more_warps(self):
        compute = _estimate(GTX680, regs=59, mem_frac=0.0)
        memory = _estimate(GTX680, regs=59, mem_frac=1.0)
        assert memory.stall_factor > compute.stall_factor
