"""Machine-readable export of benchmark artifacts.

The bench harness saves each reproduced table/figure both as rendered text
(for EXPERIMENTS.md) and as a JSON record (for downstream tooling /
regression diffing). Records are append-only per run and deterministic
except for the caller-supplied metadata.
"""

from __future__ import annotations

import dataclasses
import enum
import json
import pathlib
from typing import Any


def _jsonable(value: Any) -> Any:
    """Recursively convert repro objects into JSON-compatible values."""
    if isinstance(value, enum.Enum):
        return value.value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(_jsonable(k)): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "item") and callable(value.item):  # numpy scalar
        try:
            return value.item()
        except Exception:
            pass
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def export_json(path: pathlib.Path, name: str, payload: Any) -> pathlib.Path:
    """Write one artifact record as ``<path>/<name>.json``; returns the path."""
    path = pathlib.Path(path)
    path.mkdir(parents=True, exist_ok=True)
    record = {"artifact": name, "data": _jsonable(payload)}
    out = path / f"{name}.json"
    out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return out


def load_json(path: pathlib.Path, name: str) -> Any:
    """Read back an artifact record's payload."""
    record = json.loads((pathlib.Path(path) / f"{name}.json").read_text())
    return record["data"]
