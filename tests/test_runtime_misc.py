"""Runtime odds and ends: default-bound inputs, policy overrides, timing
monotonicity properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import Variant, trace_kernel
from repro.dsl import Boundary, Image, Pipeline
from repro.filters import gaussian
from repro.gpu import GTX680, RTX2080, estimate_time
from repro.runtime import measure_pipeline, run_pipeline_simt
from tests.conftest import make_conv_kernel


class TestSimulationInputs:
    def test_bound_image_used_when_no_inputs_given(self, rng):
        src = rng.random((32, 32)).astype(np.float32)
        inp = Image.from_array(src, "inp")
        pipe = gaussian.build_pipeline(32, 32, Boundary.CLAMP, input_image=inp)
        res = run_pipeline_simt(pipe, variant=Variant.NAIVE, block=(16, 4))
        from repro.filters.reference import gaussian_reference

        assert np.abs(res.output - gaussian_reference(src, Boundary.CLAMP)).max() < 1e-6

    def test_unbound_image_without_inputs_raises(self):
        pipe = gaussian.build_pipeline(32, 32, Boundary.CLAMP)
        with pytest.raises(ValueError, match="no bound host data"):
            run_pipeline_simt(pipe, variant=Variant.NAIVE, block=(16, 4))

    def test_intermediate_images_exposed(self, rng):
        from repro.filters import sobel

        src = rng.random((32, 32)).astype(np.float32)
        pipe = sobel.build_pipeline(32, 32, Boundary.CLAMP)
        res = run_pipeline_simt(pipe, variant=Variant.NAIVE, block=(16, 4),
                                inputs={"inp": src})
        assert set(res.images) >= {"inp", "dx", "dy", "out"}
        assert len(res.compiled) == 3
        assert len(res.profilers) == 3


class TestPolicyOverrides:
    def test_per_kernel_override_applied(self):
        from repro.filters import sobel

        pipe = sobel.build_pipeline(256, 256, Boundary.CLAMP)
        m = measure_pipeline(
            pipe, variant=Variant.NAIVE, device=GTX680,
            per_kernel_variants={"sobel_dx": Variant.ISP},
        )
        assert m.kernels[0].requested_variant is Variant.ISP
        assert m.kernels[1].requested_variant is Variant.NAIVE

    def test_mixed_policy_total_between_pure_policies(self):
        """A mixed naive/ISP pipeline's time lies between the pure ones."""
        from repro.filters import sobel

        pipe = sobel.build_pipeline(512, 512, Boundary.REPEAT)
        t_naive = measure_pipeline(pipe, variant=Variant.NAIVE,
                                   device=GTX680).total_us
        t_isp = measure_pipeline(pipe, variant=Variant.ISP,
                                 device=GTX680).total_us
        t_mixed = measure_pipeline(
            pipe, variant=Variant.NAIVE, device=GTX680,
            per_kernel_variants={"sobel_dx": Variant.ISP},
        ).total_us
        lo, hi = sorted((t_naive, t_isp))
        assert lo <= t_mixed <= hi


class TestTimingMonotonicity:
    @settings(max_examples=40, deadline=None)
    @given(
        cycles=st.floats(min_value=100.0, max_value=1e6),
        blocks=st.integers(8, 100000),
        extra=st.floats(min_value=1.0, max_value=3.0),
    )
    def test_more_work_never_faster(self, cycles, blocks, extra):
        for dev in (GTX680, RTX2080):
            t1 = estimate_time(
                dev, total_blocks=blocks, block_threads=128, regs_per_thread=32,
                class_block_cycles={"a": cycles}, class_block_counts={"a": blocks},
                mem_issue_fraction=0.2,
            )
            t2 = estimate_time(
                dev, total_blocks=blocks, block_threads=128, regs_per_thread=32,
                class_block_cycles={"a": cycles * extra},
                class_block_counts={"a": blocks},
                mem_issue_fraction=0.2,
            )
            assert t2.time_us >= t1.time_us - 1e-9

    @settings(max_examples=40, deadline=None)
    @given(
        regs1=st.integers(16, 120),
        delta=st.integers(0, 80),
        mem=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_more_registers_never_meaningfully_faster(self, regs1, delta, mem):
        """The paper's cost direction: register growth can only slow down.

        Strict monotonicity does not hold — wave *quantization* can make a
        lower-occupancy kernel tile its waves slightly more evenly (a real
        GPU effect too) — so the contract is: occupancy and stall factor are
        monotone, and time never improves beyond the one-wave tail slack.
        """
        for dev in (GTX680, RTX2080):
            common = dict(
                total_blocks=4096, block_threads=128,
                class_block_cycles={"a": 1000.0},
                class_block_counts={"a": 4096},
                mem_issue_fraction=mem,
            )
            t1 = estimate_time(dev, regs_per_thread=regs1, **common)
            t2 = estimate_time(dev, regs_per_thread=regs1 + delta, **common)
            assert t2.occupancy.occupancy <= t1.occupancy.occupancy + 1e-12
            assert t2.stall_factor >= t1.stall_factor - 1e-12
            tail_slack = t1.time_us / max(t1.waves, 1.0)
            assert t2.time_us >= t1.time_us - tail_slack - 1e-9

    @settings(max_examples=30, deadline=None)
    @given(shared1=st.integers(0, 8192), delta=st.integers(0, 32768))
    def test_more_shared_memory_never_meaningfully_faster(self, shared1, delta):
        # Like registers (above), shared-memory growth is subject to wave
        # quantization: e.g. shared_bytes 3073 -> 3585 on GTX680 drops
        # occupancy 0.875 -> 0.75 yet tiles 4096 blocks into slightly more
        # even waves. Occupancy must be monotone; time gets one-wave slack.
        common = dict(
            total_blocks=4096, block_threads=128, regs_per_thread=32,
            class_block_cycles={"a": 1000.0}, class_block_counts={"a": 4096},
            mem_issue_fraction=0.2,
        )
        t1 = estimate_time(GTX680, shared_bytes=shared1, **common)
        t2 = estimate_time(GTX680, shared_bytes=shared1 + delta, **common)
        assert t2.occupancy.occupancy <= t1.occupancy.occupancy + 1e-12
        tail_slack = t1.time_us / max(t1.waves, 1.0)
        assert t2.time_us >= t1.time_us - tail_slack - 1e-9


class TestMeasurementDeterminism:
    def test_measure_is_deterministic(self):
        pipe = gaussian.build_pipeline(512, 512, Boundary.MIRROR)
        a = measure_pipeline(pipe, variant=Variant.ISP, device=GTX680).total_us
        b = measure_pipeline(pipe, variant=Variant.ISP, device=GTX680).total_us
        assert a == b

    def test_simulation_is_deterministic(self, rng):
        src = rng.random((32, 32)).astype(np.float32)
        k = make_conv_kernel(32, 32, Boundary.REPEAT, np.ones((3, 3), np.float32))
        outs = [
            run_pipeline_simt(Pipeline("p", [k]), variant=Variant.ISP,
                              block=(16, 4), inputs={"inp": src}).output
            for _ in range(2)
        ]
        assert np.array_equal(outs[0], outs[1])
