"""Model calibration: extract (n_check, n_kernel, n_switch) from compiled IR.

The paper's model (Section IV-A.2) is parameterized by the number of
instructions for border checking vs. kernel execution. Rather than guessing,
we calibrate from the compiler's own output — which is exactly what the
authors did by inventorying the PTX of the compiled kernels (Table I):

* ``check_per_pixel``  — static instructions tagged ``role="check"`` in the
  naive variant (all checks, every access): the paper's
  ``4 * n_check * m * n`` aggregate.
* ``kernel_per_pixel`` — static instructions tagged ``kernel``/``addr``: the
  paper's ``n_kernel * m * n`` aggregate (filter math + address calculation).
* ``switch_cost(region)`` — per-thread cost of the Listing 3 dispatch chain
  up to the given region's test, computed from the chain structure.

The calibration is *static*: it ignores loop trip counts (Repeat) and
divergence, which is one of the ways the model stays coarser than the
simulator — mispredictions near the decision boundary are expected and are
part of the reproduction (paper Table III's red cells).
"""

from __future__ import annotations

import dataclasses

from ..compiler.driver import compile_kernel
from ..compiler.frontend import KernelDescription
from ..compiler.isp import Variant
from ..compiler.regions import SWITCH_ORDER, Region

#: Per-test instruction cost in the dispatch chain: setp (+ setp + and) + bra.
_TEST_COST_ONE = 2.0
_TEST_COST_TWO = 4.0
#: Regions whose Listing 3 test has two conditions.
_TWO_COND = {Region.TL, Region.TR, Region.BL, Region.BR}


@dataclasses.dataclass(frozen=True)
class Calibration:
    """Static per-pixel instruction budget of one kernel."""

    #: all-checks cost per output pixel (sum over taps and sides)
    check_per_pixel: float
    #: kernel + address cost per output pixel
    kernel_per_pixel: float
    #: window size the aggregates were measured at
    window: tuple[int, int]

    @property
    def check_per_tap_side(self) -> float:
        """The paper's ``n_check``: one border check of one access."""
        m, n = self.window
        sides = 4 if (m > 1 and n > 1) else 2
        return self.check_per_pixel / (sides * m * n)

    @property
    def kernel_per_tap(self) -> float:
        """The paper's ``n_kernel`` (per window element)."""
        m, n = self.window
        return self.kernel_per_pixel / (m * n)


def calibrate(desc: KernelDescription, block: tuple[int, int] = (32, 4)) -> Calibration:
    """Compile the naive variant and count role-tagged instructions."""
    ck = compile_kernel(desc, variant=Variant.NAIVE, block=block)
    check = 0
    kern = 0
    for instr in ck.func.instructions():
        if instr.role == "check":
            check += 1
        elif instr.role in ("kernel", "addr"):
            kern += 1
    return Calibration(
        check_per_pixel=float(check),
        kernel_per_pixel=float(kern),
        window=desc.window_size,
    )


def switch_cost(region: Region) -> float:
    """Per-thread instructions spent in the dispatch chain before entering
    ``region`` (the model's ``n_switch(p)``, paper Eq. 5)."""
    cost = 0.0
    for r in SWITCH_ORDER:
        if r is Region.BODY:
            cost += 1.0  # final unconditional bra
            break
        cost += _TEST_COST_TWO if r in _TWO_COND else _TEST_COST_ONE
        if r is region:
            break
    return cost
